//! Property-based tests for the STRIPS substrate: bitset algebra, operator
//! application, parser/builder agreement.

use gaplan_core::strips::{parse_strips, CondId, CondSet, StripsBuilder};
use gaplan_core::{Domain, DomainExt, OpId};
use proptest::prelude::*;

fn arb_ids(width: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..width as u32, 0..width)
}

proptest! {
    /// `apply_effects` equals the set-theoretic definition `(s \ del) ∪ add`.
    #[test]
    fn apply_effects_matches_set_algebra(width in 1usize..200, s in arb_ids(200), add in arb_ids(200), del in arb_ids(200)) {
        let clamp = |v: &[u32]| v.iter().copied().filter(|&i| (i as usize) < width).map(CondId).collect::<Vec<_>>();
        let (s, add, del) = (clamp(&s), clamp(&add), clamp(&del));
        let mut state = CondSet::from_ids(width, s.iter().copied());
        let add_set = CondSet::from_ids(width, add.iter().copied());
        let del_set = CondSet::from_ids(width, del.iter().copied());
        state.apply_effects(&add_set, &del_set);
        for i in 0..width {
            let id = CondId(i as u32);
            let expected = add.contains(&id) || (s.contains(&id) && !del.contains(&id));
            prop_assert_eq!(state.contains(id), expected, "condition {}", i);
        }
    }

    /// Subset is a partial order consistent with membership.
    #[test]
    fn subset_is_consistent_with_membership(width in 1usize..150, a in arb_ids(150), b in arb_ids(150)) {
        fn clamp(width: usize, v: &[u32]) -> impl Iterator<Item = CondId> + '_ {
            v.iter().copied().filter(move |&i| (i as usize) < width).map(CondId)
        }
        let sa = CondSet::from_ids(width, clamp(width, &a));
        let sb = CondSet::from_ids(width, clamp(width, &b));
        let subset = sa.is_subset_of(&sb);
        let by_membership = sa.iter().all(|id| sb.contains(id));
        prop_assert_eq!(subset, by_membership);
        // reflexivity and empty-set bottom
        prop_assert!(sa.is_subset_of(&sa));
        prop_assert!(CondSet::empty(width).is_subset_of(&sa));
    }

    /// count/intersection agree with the iterator view.
    #[test]
    fn counting_matches_iteration(width in 1usize..150, a in arb_ids(150), b in arb_ids(150)) {
        fn clamp(width: usize, v: &[u32]) -> impl Iterator<Item = CondId> + '_ {
            v.iter().copied().filter(move |&i| (i as usize) < width).map(CondId)
        }
        let sa = CondSet::from_ids(width, clamp(width, &a));
        let sb = CondSet::from_ids(width, clamp(width, &b));
        prop_assert_eq!(sa.count(), sa.iter().count());
        let inter = sa.iter().filter(|&id| sb.contains(id)).count();
        prop_assert_eq!(sa.intersection_count(&sb), inter);
    }

    /// A builder-constructed chain problem round-trips through the text
    /// format with identical planning behaviour.
    #[test]
    fn parser_and_builder_agree_on_chains(n in 2usize..8) {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 0..n {
            b.op(&format!("go{i}"), &[&format!("s{i}")], &[&format!("s{}", i + 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        b.goal(&[&format!("s{n}")]).unwrap();
        let built = b.build().unwrap();

        let mut text = format!("conditions: {}\n", (0..=n).map(|i| format!("s{i}")).collect::<Vec<_>>().join(" "));
        text.push_str("init: s0\n");
        text.push_str(&format!("goal: s{n}\n"));
        for i in 0..n {
            text.push_str(&format!("op go{i}\n pre: s{i}\n add: s{}\n del: s{i}\n", i + 1));
        }
        let parsed = parse_strips(&text).unwrap();

        prop_assert_eq!(built.num_conditions(), parsed.num_conditions());
        prop_assert_eq!(built.num_operations(), parsed.num_operations());
        let mut sb = built.initial_state();
        let mut sp = parsed.initial_state();
        for i in 0..n {
            let ob = built.valid_ops_vec(&sb);
            let op = parsed.valid_ops_vec(&sp);
            prop_assert_eq!(ob.len(), 1);
            prop_assert_eq!(op.len(), 1);
            prop_assert_eq!(ob[0], OpId(i as u32));
            sb = built.apply(&sb, ob[0]);
            sp = parsed.apply(&sp, op[0]);
        }
        prop_assert!(built.is_goal(&sb));
        prop_assert!(parsed.is_goal(&sp));
    }
}
