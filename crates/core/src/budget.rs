//! Cooperative execution budgets: deadlines and cancellation.
//!
//! GA runs are long loops over generations; the planning service needs to
//! stop them early — because a request's deadline passed or because the
//! client cancelled the job — without killing threads. A [`Budget`] is
//! checked *between* generations by the engine: when it reports
//! [`StopCause::Deadline`] or [`StopCause::Cancelled`], the run winds down
//! and returns its best-so-far plan, tagged with the cause.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run stopped before exhausting its configured generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The wall-clock deadline passed.
    Deadline,
    /// The job was cancelled by the client.
    Cancelled,
}

impl std::fmt::Display for StopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StopCause::Deadline => write!(f, "deadline"),
            StopCause::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// A shared flag for cooperative cancellation.
///
/// Cloning yields handles to the *same* flag; any clone can cancel, all
/// clones observe it. The flag is sticky: once cancelled, always cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Limits on a single run: an optional wall-clock deadline and an optional
/// cancellation token. The default budget is unlimited.
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    token: Option<CancelToken>,
}

impl Budget {
    /// An unlimited budget (never stops a run early).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Add a deadline `timeout` from now.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Add an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a cancellation token.
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Does this budget impose any limit at all?
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.token.is_some()
    }

    /// Should the run stop now? Cancellation takes precedence over the
    /// deadline so an explicit client action is always reported as such.
    pub fn check(&self) -> Option<StopCause> {
        if let Some(t) = &self.token {
            if t.is_cancelled() {
                return Some(StopCause::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Some(StopCause::Deadline);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        assert_eq!(Budget::unlimited().check(), None);
        assert!(!Budget::unlimited().is_limited());
    }

    #[test]
    fn expired_deadline_stops() {
        let b = Budget::unlimited().with_timeout(Duration::ZERO);
        // Duration::ZERO puts the deadline at or before "now"
        assert_eq!(b.check(), Some(StopCause::Deadline));
    }

    #[test]
    fn future_deadline_does_not_stop() {
        let b = Budget::unlimited().with_timeout(Duration::from_secs(3600));
        assert_eq!(b.check(), None);
        assert!(b.is_limited());
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_token(token.clone());
        assert_eq!(b.check(), None);
        token.cancel();
        assert_eq!(b.check(), Some(StopCause::Cancelled));
        token.cancel(); // idempotent
        assert_eq!(b.check(), Some(StopCause::Cancelled));
    }

    #[test]
    fn cancellation_beats_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let b = Budget::unlimited().with_timeout(Duration::ZERO).with_token(token);
        assert_eq!(b.check(), Some(StopCause::Cancelled));
    }
}
