//! Ground STRIPS problems: the paper's four-tuple `⟨C, O, I, G⟩` as data.

use rustc_hash::FxHashMap;

use super::{CondId, CondSet};
use crate::domain::{Domain, OpId};
use crate::{Error, Result};

/// A ground STRIPS operator: preconditions, postconditions split into an
/// add list and a delete list, and a cost (paper §1: "Each operation has
/// three attributes: a set of preconditions, a set of postconditions, and a
/// cost").
#[derive(Debug, Clone)]
pub struct StripsOp {
    /// Human-readable operator name.
    pub name: String,
    /// Conditions that must hold for the operator to be valid.
    pub pre: CondSet,
    /// Conditions made true by the operator.
    pub add: CondSet,
    /// Conditions made false by the operator.
    pub del: CondSet,
    /// Cost of executing the operator.
    pub cost: f64,
}

/// How [`StripsProblem::goal_fitness`] scores non-goal states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GoalFitnessMode {
    /// Fraction of goal conditions satisfied (uniform weights). This is the
    /// generic analogue of the paper's per-disk-weighted Hanoi fitness.
    #[default]
    FractionSatisfied,
    /// All-or-nothing: 1.0 on goal states, 0.0 otherwise. Useful to expose
    /// how much the GA depends on a graded fitness signal (paper §4.1
    /// discusses exactly this sensitivity).
    Exact,
}

/// A ground STRIPS planning problem.
///
/// Implements [`Domain`] with `State = CondSet`, so every planner in the
/// workspace (GA and baselines) runs on it unchanged.
#[derive(Debug, Clone)]
pub struct StripsProblem {
    conditions: Vec<String>,
    ops: Vec<StripsOp>,
    init: CondSet,
    goal: CondSet,
    fitness_mode: GoalFitnessMode,
    /// Per-goal-condition weights, parallel to `goal.iter()` order; uniform
    /// (all 1.0) unless customized via [`StripsBuilder::goal_weight`].
    goal_weights: FxHashMap<CondId, f64>,
}

impl StripsProblem {
    /// Number of ground conditions `|C|`.
    pub fn num_conditions(&self) -> usize {
        self.conditions.len()
    }

    /// Name of a condition.
    pub fn condition_name(&self, id: CondId) -> &str {
        &self.conditions[id.index()]
    }

    /// Look up a condition id by name.
    pub fn condition_id(&self, name: &str) -> Option<CondId> {
        self.conditions.iter().position(|c| c == name).map(|i| CondId(i as u32))
    }

    /// The operators `O`.
    pub fn operators(&self) -> &[StripsOp] {
        &self.ops
    }

    /// The goal condition set `G`.
    pub fn goal(&self) -> &CondSet {
        &self.goal
    }

    /// Select how non-goal states are scored.
    pub fn set_fitness_mode(&mut self, mode: GoalFitnessMode) {
        self.fitness_mode = mode;
    }

    /// Sum of weights over all goal conditions.
    fn total_goal_weight(&self) -> f64 {
        self.goal.iter().map(|c| self.goal_weights.get(&c).copied().unwrap_or(1.0)).sum()
    }

    /// Stable 64-bit signature of the *semantic content* of this problem:
    /// conditions, operators (names, pre/add/del sets, costs), initial
    /// state, goal, fitness mode and goal weights. Two problems built the
    /// same way hash the same across runs and processes; changing any of
    /// the above changes the signature. Used by the planning service as
    /// (part of) its plan-cache key.
    pub fn signature(&self) -> u64 {
        let mut s = crate::sig::SigBuilder::new();
        s.tag("strips-problem-v1");
        s.tag("conds").usize(self.conditions.len());
        for c in &self.conditions {
            s.str(c);
        }
        s.tag("ops").usize(self.ops.len());
        for op in &self.ops {
            s.str(&op.name);
            for (label, set) in [("pre", &op.pre), ("add", &op.add), ("del", &op.del)] {
                s.tag(label).usize(set.count());
                for c in set.iter() {
                    s.u32(c.0);
                }
            }
            s.f64(op.cost);
        }
        s.tag("init").usize(self.init.count());
        for c in self.init.iter() {
            s.u32(c.0);
        }
        s.tag("goal").usize(self.goal.count());
        for c in self.goal.iter() {
            s.u32(c.0);
        }
        s.tag("fitness").bool(self.fitness_mode == GoalFitnessMode::Exact);
        // hash weights in goal-iteration order (deterministic), not map order
        s.tag("weights");
        for c in self.goal.iter() {
            s.f64(self.goal_weights.get(&c).copied().unwrap_or(1.0));
        }
        s.finish()
    }
}

impl Domain for StripsProblem {
    type State = CondSet;

    fn initial_state(&self) -> CondSet {
        self.init.clone()
    }

    fn num_operations(&self) -> usize {
        self.ops.len()
    }

    fn valid_operations(&self, state: &CondSet, out: &mut Vec<OpId>) {
        for (i, op) in self.ops.iter().enumerate() {
            if op.pre.is_subset_of(state) {
                out.push(OpId(i as u32));
            }
        }
    }

    fn apply(&self, state: &CondSet, op: OpId) -> CondSet {
        let o = &self.ops[op.index()];
        debug_assert!(o.pre.is_subset_of(state), "apply() called with invalid op");
        let mut next = state.clone();
        next.apply_effects(&o.add, &o.del);
        next
    }

    fn is_goal(&self, state: &CondSet) -> bool {
        self.goal.is_subset_of(state)
    }

    fn goal_fitness(&self, state: &CondSet) -> f64 {
        match self.fitness_mode {
            GoalFitnessMode::Exact => {
                if self.goal.is_subset_of(state) {
                    1.0
                } else {
                    0.0
                }
            }
            GoalFitnessMode::FractionSatisfied => {
                let total = self.total_goal_weight();
                if total == 0.0 {
                    return 1.0; // empty goal: every state is a goal state
                }
                let satisfied: f64 = self
                    .goal
                    .iter()
                    .filter(|&c| state.contains(c))
                    .map(|c| self.goal_weights.get(&c).copied().unwrap_or(1.0))
                    .sum();
                satisfied / total
            }
        }
    }

    fn op_cost(&self, op: OpId) -> f64 {
        self.ops[op.index()].cost
    }

    fn op_name(&self, op: OpId) -> String {
        self.ops[op.index()].name.clone()
    }
}

/// Pending operator inside the builder: (name, pre, add, del, cost).
type PendingOp = (String, Vec<CondId>, Vec<CondId>, Vec<CondId>, f64);

/// Programmatic builder for [`StripsProblem`].
///
/// ```
/// use gaplan_core::strips::StripsBuilder;
/// use gaplan_core::{Domain, DomainExt};
///
/// let mut b = StripsBuilder::new();
/// b.condition("at-home").unwrap();
/// b.condition("at-work").unwrap();
/// b.op("commute", &["at-home"], &["at-work"], &["at-home"], 1.0).unwrap();
/// b.init(&["at-home"]).unwrap();
/// b.goal(&["at-work"]).unwrap();
/// let p = b.build().unwrap();
/// let s = p.initial_state();
/// assert_eq!(p.valid_ops_vec(&s).len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct StripsBuilder {
    conditions: Vec<String>,
    index: FxHashMap<String, CondId>,
    ops: Vec<PendingOp>,
    init: Vec<CondId>,
    goal: Vec<CondId>,
    goal_weights: FxHashMap<CondId, f64>,
}

impl StripsBuilder {
    /// A fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a ground condition; returns its id.
    pub fn condition(&mut self, name: &str) -> Result<CondId> {
        if self.index.contains_key(name) {
            return Err(Error::DuplicateSymbol(name.to_string()));
        }
        let id = CondId(self.conditions.len() as u32);
        self.conditions.push(name.to_string());
        self.index.insert(name.to_string(), id);
        Ok(id)
    }

    /// Declare a condition if new; either way return its id.
    pub fn condition_or_existing(&mut self, name: &str) -> CondId {
        if let Some(&id) = self.index.get(name) {
            id
        } else {
            self.condition(name).expect("checked for existence")
        }
    }

    fn resolve(&self, names: &[&str]) -> Result<Vec<CondId>> {
        names
            .iter()
            .map(|n| self.index.get(*n).copied().ok_or_else(|| Error::UnknownSymbol((*n).to_string())))
            .collect()
    }

    /// Declare an operator with precondition / add / delete condition names.
    pub fn op(&mut self, name: &str, pre: &[&str], add: &[&str], del: &[&str], cost: f64) -> Result<()> {
        if !cost.is_finite() || cost < 0.0 {
            return Err(Error::Invalid(format!("operator `{name}` has invalid cost {cost}")));
        }
        let (pre, add, del) = (self.resolve(pre)?, self.resolve(add)?, self.resolve(del)?);
        self.ops.push((name.to_string(), pre, add, del, cost));
        Ok(())
    }

    /// Set the initial state.
    pub fn init(&mut self, conds: &[&str]) -> Result<()> {
        self.init = self.resolve(conds)?;
        Ok(())
    }

    /// Set the goal conditions.
    pub fn goal(&mut self, conds: &[&str]) -> Result<()> {
        self.goal = self.resolve(conds)?;
        Ok(())
    }

    /// Assign a goal-fitness weight to one goal condition (analogue of the
    /// paper's per-disk weights in the Hanoi goal fitness, Eq. 5).
    pub fn goal_weight(&mut self, cond: &str, weight: f64) -> Result<()> {
        let id = self.index.get(cond).copied().ok_or_else(|| Error::UnknownSymbol(cond.to_string()))?;
        if !weight.is_finite() || weight < 0.0 {
            return Err(Error::Invalid(format!("invalid goal weight {weight} for `{cond}`")));
        }
        self.goal_weights.insert(id, weight);
        Ok(())
    }

    /// Finalize into a [`StripsProblem`].
    pub fn build(self) -> Result<StripsProblem> {
        if self.conditions.is_empty() {
            return Err(Error::Invalid("no conditions declared".into()));
        }
        if self.ops.is_empty() {
            return Err(Error::Invalid("no operators declared".into()));
        }
        let w = self.conditions.len();
        let mk = |ids: &[CondId]| CondSet::from_ids(w, ids.iter().copied());
        let ops = self
            .ops
            .iter()
            .map(|(name, pre, add, del, cost)| StripsOp {
                name: name.clone(),
                pre: mk(pre),
                add: mk(add),
                del: mk(del),
                cost: *cost,
            })
            .collect();
        Ok(StripsProblem {
            conditions: self.conditions,
            ops,
            init: mk(&self.init),
            goal: mk(&self.goal),
            fitness_mode: GoalFitnessMode::default(),
            goal_weights: self.goal_weights,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainExt;
    use crate::plan::Plan;

    /// Two-room robot: move between rooms, pick/drop a ball.
    fn robot() -> StripsProblem {
        let mut b = StripsBuilder::new();
        for c in ["robot-a", "robot-b", "ball-a", "ball-b", "holding"] {
            b.condition(c).unwrap();
        }
        b.op("move-a-b", &["robot-a"], &["robot-b"], &["robot-a"], 1.0).unwrap();
        b.op("move-b-a", &["robot-b"], &["robot-a"], &["robot-b"], 1.0).unwrap();
        b.op("pick-a", &["robot-a", "ball-a"], &["holding"], &["ball-a"], 1.0).unwrap();
        b.op("drop-b", &["robot-b", "holding"], &["ball-b"], &["holding"], 1.0).unwrap();
        b.init(&["robot-a", "ball-a"]).unwrap();
        b.goal(&["ball-b"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn valid_operations_respect_preconditions() {
        let p = robot();
        let s = p.initial_state();
        let names: Vec<String> = p.valid_ops_vec(&s).iter().map(|&o| p.op_name(o)).collect();
        assert_eq!(names, vec!["move-a-b", "pick-a"]);
    }

    #[test]
    fn plan_reaches_goal() {
        let p = robot();
        let pick = OpId(2);
        let mv = OpId(0);
        let drop = OpId(3);
        let plan = Plan::from_ops(vec![pick, mv, drop]);
        let out = plan.simulate(&p, &p.initial_state()).unwrap();
        assert!(out.solves);
        assert_eq!(out.cost, 3.0);
    }

    #[test]
    fn invalid_plan_rejected() {
        let p = robot();
        // drop before holding anything
        let plan = Plan::from_ops(vec![OpId(3)]);
        assert!(plan.simulate(&p, &p.initial_state()).is_err());
    }

    #[test]
    fn fraction_goal_fitness_grades_progress() {
        let mut b = StripsBuilder::new();
        for c in ["x", "y", "sx", "sy"] {
            b.condition(c).unwrap();
        }
        b.op("do-x", &["sx"], &["x"], &[], 1.0).unwrap();
        b.op("do-y", &["sy"], &["y"], &[], 1.0).unwrap();
        b.init(&["sx", "sy"]).unwrap();
        b.goal(&["x", "y"]).unwrap();
        let p = b.build().unwrap();
        let s0 = p.initial_state();
        assert_eq!(p.goal_fitness(&s0), 0.0);
        let s1 = p.apply(&s0, OpId(0));
        assert_eq!(p.goal_fitness(&s1), 0.5);
        let s2 = p.apply(&s1, OpId(1));
        assert_eq!(p.goal_fitness(&s2), 1.0);
        assert!(p.is_goal(&s2));
    }

    #[test]
    fn weighted_goal_fitness() {
        let mut b = StripsBuilder::new();
        for c in ["x", "y", "s"] {
            b.condition(c).unwrap();
        }
        b.op("do-x", &["s"], &["x"], &[], 1.0).unwrap();
        b.op("do-y", &["s"], &["y"], &[], 1.0).unwrap();
        b.init(&["s"]).unwrap();
        b.goal(&["x", "y"]).unwrap();
        b.goal_weight("x", 3.0).unwrap();
        let p = b.build().unwrap();
        let s1 = p.apply(&p.initial_state(), OpId(0)); // x satisfied
        assert!((p.goal_fitness(&s1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn exact_fitness_mode_is_all_or_nothing() {
        let mut p = robot();
        p.set_fitness_mode(GoalFitnessMode::Exact);
        assert_eq!(p.goal_fitness(&p.initial_state()), 0.0);
    }

    #[test]
    fn builder_rejects_duplicates_and_unknowns() {
        let mut b = StripsBuilder::new();
        b.condition("a").unwrap();
        assert_eq!(b.condition("a"), Err(Error::DuplicateSymbol("a".into())));
        assert!(matches!(b.op("o", &["missing"], &[], &[], 1.0), Err(Error::UnknownSymbol(_))));
        assert!(matches!(b.init(&["nope"]), Err(Error::UnknownSymbol(_))));
    }

    #[test]
    fn builder_rejects_bad_cost_and_empty_problem() {
        let mut b = StripsBuilder::new();
        b.condition("a").unwrap();
        assert!(b.op("o", &["a"], &[], &[], -1.0).is_err());
        assert!(b.op("o", &["a"], &[], &[], f64::NAN).is_err());
        assert!(StripsBuilder::new().build().is_err());
    }

    #[test]
    fn condition_lookup_roundtrip() {
        let p = robot();
        let id = p.condition_id("holding").unwrap();
        assert_eq!(p.condition_name(id), "holding");
        assert!(p.condition_id("absent").is_none());
        assert_eq!(p.num_conditions(), 5);
    }

    #[test]
    fn empty_goal_means_every_state_is_goal() {
        let mut b = StripsBuilder::new();
        b.condition("a").unwrap();
        b.op("noop", &[], &["a"], &[], 1.0).unwrap();
        b.init(&[]).unwrap();
        b.goal(&[]).unwrap();
        let p = b.build().unwrap();
        assert!(p.is_goal(&p.initial_state()));
        assert_eq!(p.goal_fitness(&p.initial_state()), 1.0);
    }
}
