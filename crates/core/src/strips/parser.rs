//! A small line-oriented text format for ground STRIPS problems, so domains
//! can be written as data files (the paper's ontology descriptions of
//! programs — preconditions / postconditions / cost — map directly onto it).
//!
//! Format (`#` starts a comment; blank lines ignored):
//!
//! ```text
//! conditions: at-home at-work rested
//! init: at-home rested
//! goal: at-work
//!
//! op commute
//!   pre: at-home
//!   add: at-work
//!   del: at-home rested
//!   cost: 2.5
//! ```
//!
//! `pre`/`add`/`del`/`cost` lines are optional inside an `op` block and
//! default to empty / `1.0`.

use super::problem::{StripsBuilder, StripsProblem};
use crate::{Error, Result};

fn perr(line: usize, msg: impl Into<String>) -> Error {
    Error::Parse { line, msg: msg.into() }
}

/// Parse the text format described at module level.
pub fn parse_strips(text: &str) -> Result<StripsProblem> {
    let mut b = StripsBuilder::new();
    // (line_no, name, pre, add, del, cost)
    struct PendingOp {
        line: usize,
        name: String,
        pre: Vec<String>,
        add: Vec<String>,
        del: Vec<String>,
        cost: f64,
    }
    let mut ops: Vec<PendingOp> = Vec::new();
    let mut init: Option<Vec<String>> = None;
    let mut goal: Option<Vec<String>> = None;
    let mut saw_conditions = false;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("conditions:") {
            saw_conditions = true;
            for name in rest.split_whitespace() {
                b.condition(name).map_err(|_| perr(lineno, format!("duplicate condition `{name}`")))?;
            }
        } else if let Some(rest) = line.strip_prefix("init:") {
            if init.is_some() {
                return Err(perr(lineno, "duplicate init:"));
            }
            init = Some(rest.split_whitespace().map(String::from).collect());
        } else if let Some(rest) = line.strip_prefix("goal:") {
            if goal.is_some() {
                return Err(perr(lineno, "duplicate goal:"));
            }
            goal = Some(rest.split_whitespace().map(String::from).collect());
        } else if let Some(rest) = line.strip_prefix("op ") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(perr(lineno, "op requires a name"));
            }
            ops.push(PendingOp {
                line: lineno,
                name: name.to_string(),
                pre: vec![],
                add: vec![],
                del: vec![],
                cost: 1.0,
            });
        } else {
            // op-block field lines
            let op =
                ops.last_mut().ok_or_else(|| perr(lineno, format!("unexpected line outside op block: `{line}`")))?;
            if let Some(rest) = line.strip_prefix("pre:") {
                op.pre.extend(rest.split_whitespace().map(String::from));
            } else if let Some(rest) = line.strip_prefix("add:") {
                op.add.extend(rest.split_whitespace().map(String::from));
            } else if let Some(rest) = line.strip_prefix("del:") {
                op.del.extend(rest.split_whitespace().map(String::from));
            } else if let Some(rest) = line.strip_prefix("cost:") {
                op.cost = rest.trim().parse::<f64>().map_err(|e| perr(lineno, format!("bad cost: {e}")))?;
            } else {
                return Err(perr(lineno, format!("unknown directive: `{line}`")));
            }
        }
    }

    if !saw_conditions {
        return Err(perr(0, "missing conditions: section"));
    }
    fn as_refs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }
    for op in &ops {
        b.op(&op.name, &as_refs(&op.pre), &as_refs(&op.add), &as_refs(&op.del), op.cost)
            .map_err(|e| perr(op.line, format!("in op `{}`: {e}", op.name)))?;
    }
    let init = init.ok_or_else(|| perr(0, "missing init: section"))?;
    let goal = goal.ok_or_else(|| perr(0, "missing goal: section"))?;
    b.init(&as_refs(&init)).map_err(|e| perr(0, format!("in init: {e}")))?;
    b.goal(&as_refs(&goal)).map_err(|e| perr(0, format!("in goal: {e}")))?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{Domain, DomainExt, OpId};
    use crate::plan::Plan;

    const COMMUTE: &str = "
# a tiny domain
conditions: at-home at-work rested
init: at-home rested
goal: at-work

op commute
  pre: at-home
  add: at-work
  del: at-home rested
  cost: 2.5

op rest
  pre: at-work
  add: rested
";

    #[test]
    fn parses_and_plans() {
        let p = parse_strips(COMMUTE).unwrap();
        assert_eq!(p.num_conditions(), 3);
        assert_eq!(p.num_operations(), 2);
        assert_eq!(p.op_cost(OpId(0)), 2.5);
        assert_eq!(p.op_cost(OpId(1)), 1.0); // default cost
        let plan = Plan::from_ops(vec![OpId(0)]);
        let out = plan.simulate(&p, &p.initial_state()).unwrap();
        assert!(out.solves);
        assert_eq!(out.cost, 2.5);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_strips("conditions: a b # trailing\ninit: a\ngoal: b\n\nop go\n pre: a\n add: b\n").unwrap();
        assert_eq!(p.num_operations(), 1);
        assert_eq!(p.valid_ops_vec(&p.initial_state()), vec![OpId(0)]);
    }

    #[test]
    fn missing_sections_rejected() {
        assert!(parse_strips("init: a\ngoal: a\n").is_err());
        assert!(parse_strips("conditions: a\ngoal: a\nop o\n add: a\n").is_err());
        assert!(parse_strips("conditions: a\ninit: a\nop o\n add: a\n").is_err());
    }

    #[test]
    fn unknown_symbol_reported_with_op_context() {
        let err = parse_strips("conditions: a\ninit: a\ngoal: a\nop o\n pre: zz\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("zz"), "unexpected error: {msg}");
    }

    #[test]
    fn field_line_outside_op_block_rejected() {
        let err = parse_strips("conditions: a\n pre: a\n").unwrap_err();
        assert!(err.to_string().contains("outside op block"));
    }

    #[test]
    fn duplicate_sections_rejected() {
        assert!(parse_strips("conditions: a\ninit: a\ninit: a\ngoal: a\nop o\n add: a\n").is_err());
        assert!(parse_strips("conditions: a\ninit: a\ngoal: a\ngoal: a\nop o\n add: a\n").is_err());
    }

    #[test]
    fn bad_cost_rejected() {
        let err = parse_strips("conditions: a\ninit: a\ngoal: a\nop o\n cost: abc\n").unwrap_err();
        assert!(err.to_string().contains("bad cost"));
    }

    #[test]
    fn no_ops_rejected() {
        assert!(parse_strips("conditions: a\ninit: a\ngoal: a\n").is_err());
    }
}
