//! Ground STRIPS representation (paper §1: "We are particularly interested
//! in STRIPS-like domains. In such domains, the change of system state is
//! given by operations which are defined by preconditions and
//! postconditions.").
//!
//! States are bitsets over the finite set of ground atomic conditions `C`;
//! operators carry a precondition set and add/delete postcondition sets plus
//! a cost, exactly matching the paper's four-tuple `⟨C, O, I, G⟩`.
//!
//! Problems can be built programmatically ([`StripsBuilder`]) or parsed from
//! a small text format ([`parse_strips`]).

mod condset;
mod parser;
mod problem;

pub use condset::CondSet;
pub use parser::parse_strips;
pub use problem::{GoalFitnessMode, StripsBuilder, StripsOp, StripsProblem};

/// Identifier of a ground atomic condition within a [`StripsProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CondId(pub u32);

impl CondId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
