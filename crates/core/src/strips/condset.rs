//! Fixed-width bitsets over ground atomic conditions.

use std::fmt;

use super::CondId;

const WORD_BITS: usize = 64;

/// A set of ground atomic conditions, stored as a bitset.
///
/// All sets belonging to one [`super::StripsProblem`] share the same width
/// (the number of conditions in the problem), so subset/union/difference are
/// straight word-wise loops — the operations on the planning hot path.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CondSet {
    words: Vec<u64>,
    /// Number of condition slots (bits) this set ranges over.
    width: usize,
}

impl CondSet {
    /// An empty set over `width` conditions.
    pub fn empty(width: usize) -> Self {
        CondSet { words: vec![0; width.div_ceil(WORD_BITS)], width }
    }

    /// Build a set from condition ids.
    pub fn from_ids(width: usize, ids: impl IntoIterator<Item = CondId>) -> Self {
        let mut s = CondSet::empty(width);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Number of condition slots.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Insert a condition. Panics if out of range.
    #[inline]
    pub fn insert(&mut self, id: CondId) {
        assert!(id.index() < self.width, "condition id out of range");
        self.words[id.index() / WORD_BITS] |= 1 << (id.index() % WORD_BITS);
    }

    /// Remove a condition.
    #[inline]
    pub fn remove(&mut self, id: CondId) {
        if id.index() < self.width {
            self.words[id.index() / WORD_BITS] &= !(1 << (id.index() % WORD_BITS));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: CondId) -> bool {
        id.index() < self.width && self.words[id.index() / WORD_BITS] >> (id.index() % WORD_BITS) & 1 == 1
    }

    /// Is `self ⊆ other`? (The paper's operation-validity test: an operation
    /// is valid iff its preconditions are a subset of the current state.)
    #[inline]
    pub fn is_subset_of(&self, other: &CondSet) -> bool {
        debug_assert_eq!(self.width, other.width);
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// Number of conditions in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of conditions present in both `self` and `other`.
    pub fn intersection_count(&self, other: &CondSet) -> usize {
        debug_assert_eq!(self.width, other.width);
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// In-place `self := (self \ del) ∪ add` — applying an operation's
    /// postconditions (delete list then add list).
    #[inline]
    pub fn apply_effects(&mut self, add: &CondSet, del: &CondSet) {
        debug_assert_eq!(self.width, add.width);
        debug_assert_eq!(self.width, del.width);
        for ((w, a), d) in self.words.iter_mut().zip(&add.words).zip(&del.words) {
            *w = (*w & !d) | a;
        }
    }

    /// Iterate over the ids of conditions in the set, ascending.
    pub fn iter(&self) -> impl Iterator<Item = CondId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(CondId((wi * WORD_BITS + b) as u32))
                }
            })
        })
    }
}

impl fmt::Debug for CondSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|c| c.0)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(width: usize, ids: &[u32]) -> CondSet {
        CondSet::from_ids(width, ids.iter().map(|&i| CondId(i)))
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = CondSet::empty(100);
        assert!(!s.contains(CondId(70)));
        s.insert(CondId(70));
        assert!(s.contains(CondId(70)));
        s.remove(CondId(70));
        assert!(!s.contains(CondId(70)));
    }

    #[test]
    fn subset_semantics() {
        let a = set(130, &[1, 65, 129]);
        let b = set(130, &[0, 1, 65, 100, 129]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(CondSet::empty(130).is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn apply_effects_is_delete_then_add() {
        let mut s = set(10, &[1, 2, 3]);
        let add = set(10, &[3, 4]);
        let del = set(10, &[2, 3]);
        s.apply_effects(&add, &del);
        // 2 deleted; 3 deleted then re-added; 4 added.
        assert_eq!(s, set(10, &[1, 3, 4]));
    }

    #[test]
    fn count_and_intersection() {
        let a = set(200, &[0, 63, 64, 199]);
        let b = set(200, &[63, 64, 65]);
        assert_eq!(a.count(), 4);
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(b.intersection_count(&a), 2);
    }

    #[test]
    fn iter_yields_sorted_ids() {
        let a = set(200, &[199, 0, 64, 63]);
        let ids: Vec<u32> = a.iter().map(|c| c.0).collect();
        assert_eq!(ids, vec![0, 63, 64, 199]);
    }

    #[test]
    fn empty_and_is_empty() {
        let s = CondSet::empty(5);
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.iter().count(), 0);
        assert!(!set(5, &[4]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut s = CondSet::empty(5);
        s.insert(CondId(5));
    }

    #[test]
    fn equality_and_hash_by_content() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        seen.insert(set(70, &[1, 69]));
        assert!(seen.contains(&set(70, &[69, 1])));
        assert!(!seen.contains(&set(70, &[1])));
    }
}
