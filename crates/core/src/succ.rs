//! Transposition table for successor sets.
//!
//! The paper's indirect encoding makes [`Domain::valid_operations`] the inner
//! loop of decoding: every gene of every individual re-enumerates the valid
//! operations of a state the population has almost certainly visited before
//! (crossover preserves whole prefixes; replace-mutation changes a handful of
//! genes). [`SuccessorCache`] memoizes, per state signature, both the
//! valid-op list and its hash (the `ValidOpSet` match key), so each state is
//! paid for once per cache rather than once per individual.
//!
//! Design constraints, in order:
//!
//! * **Determinism.** A lookup returns exactly what
//!   [`Domain::valid_operations`] would have produced, so decoding is
//!   bitwise-identical with the cache on or off, serial or parallel. Only the
//!   hit/miss/eviction *counters* are racy under parallel evaluation (two
//!   workers can miss the same state concurrently), which is why observability
//!   masks them in golden traces.
//! * **Bounded memory.** The table is a fixed array of slots, direct-mapped
//!   by signature: a colliding insert replaces the previous occupant
//!   (counted as an eviction) instead of growing.
//! * **Cheap sharing.** Sixteen shards behind `parking_lot` mutexes keep the
//!   rayon workers of `EvalMode::Parallel` from serialising on one lock; a
//!   hit copies the op list into the caller's scratch under the shard lock,
//!   avoiding per-hit `Arc` traffic.
//!
//! Keys are [`Domain::state_signature`] values. The default signature is a
//! 64-bit hash, so two distinct states *can* collide; debug builds store the
//! full state in each entry and assert equality on every hit, turning any
//! collision into a loud panic instead of a silent wrong decode. Domains with
//! small state spaces (e.g. Towers of Hanoi) override `state_signature` with
//! an injective packing, making collisions impossible, not just improbable.

use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::domain::{Domain, OpId};
use crate::sig::hash_one;

/// Number of independently locked shards. Power of two; the low signature
/// bits pick the shard, the remaining bits pick the slot within it.
const SHARDS: usize = 16;

/// Default total capacity of a [`SuccessorCache`], in entries. Sized so the
/// benchmark domains (hanoi ≤ 3^20 reachable states but tiny hot sets, tile
/// and grid much hotter) rarely evict, at tens of MB worst case.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// One memoized state: its signature, valid-op list, and the FxHash of that
/// list (the decoder's `ValidOpSet` match key, precomputed).
struct Entry<S> {
    sig: u64,
    ops: Vec<OpId>,
    ops_key: u64,
    /// Debug builds keep the state itself so hits can verify the signature
    /// was not a collision.
    #[cfg(debug_assertions)]
    state: S,
    #[cfg(not(debug_assertions))]
    _marker: std::marker::PhantomData<S>,
}

/// Counter snapshot returned by [`SuccessorCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to `valid_operations`.
    pub misses: u64,
    /// Entries replaced by a different state mapping to the same slot.
    pub evictions: u64,
}

impl CacheStats {
    /// Counters accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.wrapping_sub(earlier.hits),
            misses: self.misses.wrapping_sub(earlier.misses),
            evictions: self.evictions.wrapping_sub(earlier.evictions),
        }
    }

    /// Fraction of lookups served from the table (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded, bounded, direct-mapped transposition table keyed by
/// [`Domain::state_signature`]. See the module docs for the contract.
pub struct SuccessorCache<S> {
    shards: Vec<Mutex<Vec<Option<Entry<S>>>>>,
    slots_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<S: Clone + PartialEq + Eq + Hash> SuccessorCache<S> {
    /// A cache holding at most (roughly) `capacity` entries; memory is
    /// allocated lazily as slots fill. Capacities below one slot per shard
    /// are rounded up.
    pub fn new(capacity: usize) -> Self {
        let slots_per_shard = capacity.div_ceil(SHARDS).max(1);
        SuccessorCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            slots_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Total number of slots across all shards.
    pub fn capacity(&self) -> usize {
        self.slots_per_shard * SHARDS
    }

    /// Memoized [`Domain::valid_operations`]: fill `out` with the valid ops
    /// of `state` (whose signature the caller already computed) and return
    /// the FxHash of that list — the decoder's `ValidOpSet` match key.
    ///
    /// On a hit the ops are copied out of the table; on a miss they are
    /// computed, hashed, and inserted. Either way `out` and the returned key
    /// are exactly what an uncached decode would have produced.
    pub fn successors<D>(&self, domain: &D, state: &S, sig: u64, out: &mut Vec<OpId>) -> u64
    where
        D: Domain<State = S> + ?Sized,
    {
        let shard_idx = (sig as usize) % SHARDS;
        let slot_idx = ((sig >> 4) as usize) % self.slots_per_shard;
        {
            let shard = self.shards[shard_idx].lock();
            if let Some(Some(entry)) = shard.get(slot_idx) {
                if entry.sig == sig {
                    #[cfg(debug_assertions)]
                    debug_assert!(
                        entry.state == *state,
                        "state_signature collision: two distinct states share signature {sig:#x}; \
                         override Domain::state_signature with an injective packing"
                    );
                    out.clear();
                    out.extend_from_slice(&entry.ops);
                    let key = entry.ops_key;
                    drop(shard);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return key;
                }
            }
        }
        // Miss: compute outside the lock (valid_operations may be costly),
        // then publish. Two threads racing on the same state insert the same
        // value, so losing the race is harmless.
        out.clear();
        domain.valid_operations(state, out);
        let ops_key = hash_one::<Vec<OpId>>(out);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[shard_idx].lock();
        if shard.is_empty() {
            shard.resize_with(self.slots_per_shard, || None);
        }
        let slot = &mut shard[slot_idx];
        if slot.as_ref().is_some_and(|e| e.sig != sig) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        *slot = Some(Entry {
            sig,
            ops: out.clone(),
            ops_key,
            #[cfg(debug_assertions)]
            state: state.clone(),
            #[cfg(not(debug_assertions))]
            _marker: std::marker::PhantomData,
        });
        ops_key
    }

    /// Credit `n` hits observed by a caller-side front cache (e.g. a
    /// decoder's private L1 mirroring this table), so `stats()` reports the
    /// cache layer's full effectiveness rather than only the probes that
    /// reached the shared table.
    pub fn credit_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainExt;
    use std::sync::atomic::AtomicUsize;

    /// Counter domain that tallies how often `valid_operations` runs.
    struct Counted {
        calls: AtomicUsize,
    }

    impl Domain for Counted {
        type State = i64;

        fn initial_state(&self) -> i64 {
            0
        }
        fn num_operations(&self) -> usize {
            2
        }
        fn valid_operations(&self, state: &i64, out: &mut Vec<OpId>) {
            self.calls.fetch_add(1, Ordering::Relaxed);
            out.push(OpId(0));
            if *state > 0 {
                out.push(OpId(1));
            }
        }
        fn apply(&self, state: &i64, op: OpId) -> i64 {
            if op.0 == 0 {
                state + 1
            } else {
                state - 1
            }
        }
        fn goal_fitness(&self, state: &i64) -> f64 {
            if *state == 3 {
                1.0
            } else {
                0.0
            }
        }
    }

    fn counted() -> Counted {
        Counted { calls: AtomicUsize::new(0) }
    }

    #[test]
    fn hit_returns_same_ops_and_key_as_miss() {
        let d = counted();
        let cache = SuccessorCache::new(64);
        let state = 5i64;
        let sig = d.state_signature(&state);
        let mut a = Vec::new();
        let mut b = Vec::new();
        let k1 = cache.successors(&d, &state, sig, &mut a);
        let k2 = cache.successors(&d, &state, sig, &mut b);
        assert_eq!(a, b);
        assert_eq!(k1, k2);
        assert_eq!(d.calls.load(Ordering::Relaxed), 1, "second lookup must be a hit");
        assert_eq!(a, d.valid_ops_vec(&state));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn ops_key_matches_uncached_valid_op_set_hash() {
        // The decoder's `ValidOpSet` match key is `hash_one` of the scratch
        // vector; the cached key must be byte-identical to it.
        let d = counted();
        let cache = SuccessorCache::new(64);
        for state in [-2i64, 0, 1, 7] {
            let sig = d.state_signature(&state);
            let mut out = Vec::new();
            let key = cache.successors(&d, &state, sig, &mut out);
            assert_eq!(key, hash_one(&d.valid_ops_vec(&state)));
        }
    }

    #[test]
    fn vec_hash_equals_repopulated_vec_hash() {
        // `hash_one(&Vec<OpId>)` must not depend on capacity or provenance:
        // a cloned entry and the caller's reused scratch hash identically.
        let ops = vec![OpId(3), OpId(1), OpId(4)];
        let mut scratch = Vec::with_capacity(128);
        scratch.extend_from_slice(&ops);
        assert_eq!(hash_one(&ops), hash_one(&scratch));
    }

    #[test]
    fn capacity_is_bounded_and_evictions_are_counted() {
        let d = counted();
        // 16 shards × 1 slot: 16 total slots, so 1000 distinct states must
        // recycle them rather than grow.
        let cache = SuccessorCache::<i64>::new(1);
        assert_eq!(cache.capacity(), 16);
        let mut out = Vec::new();
        for s in 0..1000i64 {
            let sig = d.state_signature(&s);
            cache.successors(&d, &s, sig, &mut out);
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1000);
        assert!(stats.evictions > 0, "direct-mapped slots must evict under pressure");
        // Memory bound: no shard ever holds more than slots_per_shard slots.
        for shard in &cache.shards {
            assert!(shard.lock().len() <= cache.slots_per_shard);
        }
    }

    #[test]
    fn evicted_entries_are_recomputed_correctly() {
        let d = counted();
        let cache = SuccessorCache::<i64>::new(1);
        let mut out = Vec::new();
        for round in 0..3 {
            for s in 0..100i64 {
                let sig = d.state_signature(&s);
                let key = cache.successors(&d, &s, sig, &mut out);
                assert_eq!(out, d.valid_ops_vec(&s), "round {round} state {s}");
                assert_eq!(key, hash_one(&d.valid_ops_vec(&s)));
            }
        }
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let d = Arc::new(counted());
        let cache = Arc::new(SuccessorCache::new(256));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let d = Arc::clone(&d);
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for s in 0..50i64 {
                        let sig = d.state_signature(&s);
                        let key = cache.successors(&*d, &s, sig, &mut out);
                        assert_eq!(key, hash_one(&out));
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert!(stats.hits >= 100, "at least the three late threads should mostly hit");
    }
}
