//! Object-safe domain dispatch.
//!
//! The GA engine is generic over [`Domain`], which monomorphizes a full copy
//! of the decode/evaluate/breed pipeline per state type. That is the right
//! trade for benchmarks, but the planning service selects its domain at
//! runtime from a `ProblemSpec`-style enum, and a per-variant match arm
//! instantiating a dedicated engine copy multiplies compile time and code
//! size for zero runtime benefit (decode cost is dominated by
//! `valid_operations`, not dispatch).
//!
//! This module provides the erasure layer: [`DynState`] (a boxed,
//! clone/eq/hash-able state) and [`DynDomain`] (an object-safe wrapper that
//! itself implements [`Domain`] with `State = DynState`). One compiled engine
//! then serves every runtime-selected domain.
//!
//! Two invariants make erased runs *bitwise-identical* to typed runs:
//!
//! * `DynState`'s `Hash` forwards the inner state's `Hash` writes verbatim,
//!   so `hash_one(&DynState(s))` equals `hash_one(&s)`.
//! * [`DynDomain`]'s `state_signature` delegates to the *typed* domain's
//!   override (after downcasting), so domains with injective signature
//!   packings keep them behind erasure, and successor-cache keys agree
//!   between typed and erased runs.

use std::any::Any;
use std::hash::{Hash, Hasher};

use crate::domain::{Domain, OpId};

/// Object-safe mirror of the `Clone + PartialEq + Eq + Hash` bounds on
/// [`Domain::State`], implemented for every eligible `'static` state type.
pub trait ErasedState: Any + Send + Sync {
    /// Clone behind the box.
    fn clone_box(&self) -> Box<dyn ErasedState>;
    /// Equality against another erased state (false across types).
    fn eq_dyn(&self, other: &dyn ErasedState) -> bool;
    /// Forward the inner `Hash` impl's writes to `hasher` unchanged.
    fn hash_dyn(&self, hasher: &mut dyn Hasher);
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcast support (in-place [`Domain::apply_into`]).
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T> ErasedState for T
where
    T: Any + Clone + PartialEq + Eq + Hash + Send + Sync,
{
    fn clone_box(&self) -> Box<dyn ErasedState> {
        Box::new(self.clone())
    }
    fn eq_dyn(&self, other: &dyn ErasedState) -> bool {
        other.as_any().downcast_ref::<T>().is_some_and(|o| self == o)
    }
    fn hash_dyn(&self, mut hasher: &mut dyn Hasher) {
        self.hash(&mut hasher);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A type-erased domain state. Satisfies every bound [`Domain::State`]
/// requires, so generic planners run over it unchanged.
pub struct DynState(Box<dyn ErasedState>);

impl DynState {
    /// Erase a concrete state.
    pub fn new<T>(state: T) -> Self
    where
        T: Any + Clone + PartialEq + Eq + Hash + Send + Sync,
    {
        DynState(Box::new(state))
    }

    /// Borrow the inner state as `T`, if that is its concrete type.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.0.as_any().downcast_ref::<T>()
    }

    /// Mutably borrow the inner state as `T`, if that is its concrete type.
    pub fn downcast_mut<T: Any>(&mut self) -> Option<&mut T> {
        self.0.as_any_mut().downcast_mut::<T>()
    }
}

impl Clone for DynState {
    fn clone(&self) -> Self {
        DynState(self.0.clone_box())
    }
}

impl PartialEq for DynState {
    fn eq(&self, other: &Self) -> bool {
        self.0.eq_dyn(&*other.0)
    }
}

impl Eq for DynState {}

impl Hash for DynState {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Forward the inner writes with no framing, so hashing a `DynState`
        // is indistinguishable from hashing the state it wraps.
        self.0.hash_dyn(state);
    }
}

impl std::fmt::Debug for DynState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DynState(..)")
    }
}

/// Object-safe mirror of [`Domain`], operating on [`DynState`]s.
///
/// Implemented automatically for every domain whose state is `'static`;
/// methods panic if handed a state of the wrong concrete type (which cannot
/// happen through [`DynDomain`], the only intended caller).
pub trait ErasedDomain: Send + Sync {
    /// See [`Domain::initial_state`].
    fn initial_state_dyn(&self) -> DynState;
    /// See [`Domain::num_operations`].
    fn num_operations_dyn(&self) -> usize;
    /// See [`Domain::valid_operations`].
    fn valid_operations_dyn(&self, state: &DynState, out: &mut Vec<OpId>);
    /// See [`Domain::apply`].
    fn apply_dyn(&self, state: &DynState, op: OpId) -> DynState;
    /// See [`Domain::apply_into`]: writes the successor into `out`'s inner
    /// box when the concrete types line up, avoiding a fresh allocation.
    fn apply_into_dyn(&self, state: &DynState, op: OpId, out: &mut DynState);
    /// See [`Domain::is_goal`].
    fn is_goal_dyn(&self, state: &DynState) -> bool;
    /// See [`Domain::goal_fitness`].
    fn goal_fitness_dyn(&self, state: &DynState) -> f64;
    /// See [`Domain::op_cost`].
    fn op_cost_dyn(&self, op: OpId) -> f64;
    /// See [`Domain::op_name`].
    fn op_name_dyn(&self, op: OpId) -> String;
    /// See [`Domain::state_signature`].
    fn state_signature_dyn(&self, state: &DynState) -> u64;
}

fn unwrap_state<S: Any>(state: &DynState) -> &S {
    state.downcast_ref::<S>().expect("DynState of foreign type passed to erased domain")
}

impl<D> ErasedDomain for D
where
    D: Domain,
    D::State: Any,
{
    fn initial_state_dyn(&self) -> DynState {
        DynState::new(self.initial_state())
    }
    fn num_operations_dyn(&self) -> usize {
        self.num_operations()
    }
    fn valid_operations_dyn(&self, state: &DynState, out: &mut Vec<OpId>) {
        self.valid_operations(unwrap_state(state), out)
    }
    fn apply_dyn(&self, state: &DynState, op: OpId) -> DynState {
        DynState::new(self.apply(unwrap_state(state), op))
    }
    fn apply_into_dyn(&self, state: &DynState, op: OpId, out: &mut DynState) {
        match out.downcast_mut::<D::State>() {
            Some(slot) => self.apply_into(unwrap_state(state), op, slot),
            None => *out = self.apply_dyn(state, op),
        }
    }
    fn is_goal_dyn(&self, state: &DynState) -> bool {
        self.is_goal(unwrap_state(state))
    }
    fn goal_fitness_dyn(&self, state: &DynState) -> f64 {
        self.goal_fitness(unwrap_state(state))
    }
    fn op_cost_dyn(&self, op: OpId) -> f64 {
        self.op_cost(op)
    }
    fn op_name_dyn(&self, op: OpId) -> String {
        self.op_name(op)
    }
    fn state_signature_dyn(&self, state: &DynState) -> u64 {
        // Delegate to the typed override: injective signatures (and thus
        // successor-cache keys) survive erasure bit-for-bit.
        self.state_signature(unwrap_state(state))
    }
}

/// A borrowed, type-erased [`Domain`]. `DynDomain::new(&hanoi)` and `&hanoi`
/// run the same planner code paths and produce identical plans, generations
/// and signatures; only the state representation is boxed.
#[derive(Clone, Copy)]
pub struct DynDomain<'a> {
    inner: &'a dyn ErasedDomain,
}

impl<'a> DynDomain<'a> {
    /// Erase a concrete domain behind an object-safe wrapper.
    pub fn new<D>(domain: &'a D) -> Self
    where
        D: Domain,
        D::State: Any,
    {
        DynDomain { inner: domain }
    }

    /// Wrap an already-erased domain (e.g. one stored as
    /// `Box<dyn ErasedDomain>` in a runtime problem registry).
    pub fn from_erased(inner: &'a dyn ErasedDomain) -> Self {
        DynDomain { inner }
    }
}

impl Domain for DynDomain<'_> {
    type State = DynState;

    fn initial_state(&self) -> DynState {
        self.inner.initial_state_dyn()
    }
    fn num_operations(&self) -> usize {
        self.inner.num_operations_dyn()
    }
    fn valid_operations(&self, state: &DynState, out: &mut Vec<OpId>) {
        self.inner.valid_operations_dyn(state, out)
    }
    fn apply(&self, state: &DynState, op: OpId) -> DynState {
        self.inner.apply_dyn(state, op)
    }
    fn apply_into(&self, state: &DynState, op: OpId, out: &mut DynState) {
        self.inner.apply_into_dyn(state, op, out)
    }
    fn is_goal(&self, state: &DynState) -> bool {
        self.inner.is_goal_dyn(state)
    }
    fn goal_fitness(&self, state: &DynState) -> f64 {
        self.inner.goal_fitness_dyn(state)
    }
    fn op_cost(&self, op: OpId) -> f64 {
        self.inner.op_cost_dyn(op)
    }
    fn op_name(&self, op: OpId) -> String {
        self.inner.op_name_dyn(op)
    }
    fn state_signature(&self, state: &DynState) -> u64 {
        self.inner.state_signature_dyn(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainExt;
    use crate::sig::hash_one;

    struct Counter {
        target: i64,
    }

    impl Domain for Counter {
        type State = i64;

        fn initial_state(&self) -> i64 {
            0
        }
        fn num_operations(&self) -> usize {
            2
        }
        fn valid_operations(&self, state: &i64, out: &mut Vec<OpId>) {
            out.push(OpId(0));
            if *state > 0 {
                out.push(OpId(1));
            }
        }
        fn apply(&self, state: &i64, op: OpId) -> i64 {
            if op.0 == 0 {
                state + 1
            } else {
                state - 1
            }
        }
        fn goal_fitness(&self, state: &i64) -> f64 {
            let d = (self.target - state).unsigned_abs() as f64;
            1.0 - (d / (self.target.unsigned_abs() as f64 + 1.0)).min(1.0)
        }
        fn state_signature(&self, state: &i64) -> u64 {
            // Deliberately non-default, to prove erasure keeps overrides.
            *state as u64 ^ 0xABCD
        }
    }

    #[test]
    fn erased_domain_mirrors_typed_domain() {
        let d = Counter { target: 3 };
        let dd = DynDomain::new(&d);
        assert_eq!(dd.num_operations(), 2);
        let s0 = dd.initial_state();
        assert_eq!(s0.downcast_ref::<i64>(), Some(&0));
        assert_eq!(dd.valid_ops_vec(&s0), d.valid_ops_vec(&0));
        let s1 = dd.apply(&s0, OpId(0));
        assert_eq!(s1.downcast_ref::<i64>(), Some(&1));
        assert_eq!(dd.goal_fitness(&s1), d.goal_fitness(&1));
        assert_eq!(dd.op_name(OpId(1)), d.op_name(OpId(1)));
        assert_eq!(dd.op_cost(OpId(1)), d.op_cost(OpId(1)));
        assert!(!dd.is_goal(&s1));
    }

    #[test]
    fn apply_into_reuses_erased_slot() {
        let d = Counter { target: 3 };
        let dd = DynDomain::new(&d);
        let s = DynState::new(4i64);
        let mut out = DynState::new(0i64);
        dd.apply_into(&s, OpId(0), &mut out);
        assert_eq!(out.downcast_ref::<i64>(), Some(&5));
        assert_eq!(out, dd.apply(&s, OpId(0)));
    }

    #[test]
    fn signature_override_survives_erasure() {
        let d = Counter { target: 3 };
        let dd = DynDomain::new(&d);
        let s = DynState::new(7i64);
        assert_eq!(dd.state_signature(&s), d.state_signature(&7));
        assert_eq!(dd.state_signature(&s), 7 ^ 0xABCD);
    }

    #[test]
    fn dyn_state_hash_is_transparent() {
        // ValidOpSet/ExactState keys depend on this: hashing the wrapper
        // must equal hashing the wrapped value.
        for v in [0i64, 1, -9, 1 << 40] {
            assert_eq!(hash_one(&DynState::new(v)), hash_one(&v));
        }
        let vec_state = vec![1u8, 2, 0];
        assert_eq!(hash_one(&DynState::new(vec_state.clone())), hash_one(&vec_state));
    }

    #[test]
    fn dyn_state_eq_and_clone() {
        let a = DynState::new(41i64);
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, DynState::new(42i64));
        // Cross-type comparison is false, not a panic.
        assert_ne!(a, DynState::new(41u32));
    }
}
