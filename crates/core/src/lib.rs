#![warn(missing_docs)]

//! # gaplan-core
//!
//! Planning model for the GA planner described in *"A Genetic Approach to
//! Planning in Heterogeneous Computing Environments"* (Yu, Marinescu, Wu,
//! Siegel — IPDPS 2003).
//!
//! The paper defines a planning problem as a four-tuple `⟨C, O, I, G⟩`:
//! a finite set of ground atomic conditions `C`, a finite set of operations
//! `O` (each with preconditions, postconditions and a cost), an initial
//! state `I` and a goal state `G`. A *plan* is a finite sequence of
//! operations; an operation is *valid* in a state iff its preconditions are
//! a subset of that state.
//!
//! This crate provides:
//!
//! * [`Domain`] — the trait every planning domain implements. It exposes the
//!   state space implicitly through [`Domain::valid_operations`] and
//!   [`Domain::apply`], which is exactly the interface the paper's indirect
//!   genome encoding needs (a gene selects among the *valid* operations of
//!   the current state).
//! * [`Plan`] — a sequence of [`OpId`]s plus simulation/validation helpers.
//! * [`strips`] — a runtime-defined ground STRIPS representation with
//!   bitset states, a programmatic builder and a small text-format parser,
//!   so domains can be specified as data rather than code.

pub mod budget;
pub mod domain;
pub mod dyn_domain;
pub mod plan;
pub mod sig;
pub mod strips;
pub mod succ;

pub use budget::{Budget, CancelToken, StopCause};
pub use domain::{Domain, DomainExt, OpId};
pub use dyn_domain::{DynDomain, DynState, ErasedDomain, ErasedState};
pub use plan::{Plan, PlanOutcome, SimError};
pub use sig::{hash_one, SigBuilder};
pub use succ::{CacheStats, SuccessorCache};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while constructing or parsing planning problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A symbol (condition, operator, …) was referenced before definition.
    UnknownSymbol(String),
    /// A symbol was defined twice.
    DuplicateSymbol(String),
    /// The STRIPS text format could not be parsed.
    Parse {
        /// 1-based line number (0 when the error is not line-specific).
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The problem definition is structurally invalid.
    Invalid(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnknownSymbol(s) => write!(f, "unknown symbol `{s}`"),
            Error::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            Error::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            Error::Invalid(msg) => write!(f, "invalid problem: {msg}"),
        }
    }
}

impl std::error::Error for Error {}
