//! State signatures: stable 64-bit hashes used for state matching in
//! state-aware crossover and for duplicate detection diagnostics.

use std::hash::{Hash, Hasher};

use rustc_hash::FxHasher;

/// Hash a single value with the (fast, non-cryptographic) FxHash algorithm.
///
/// FxHash is used rather than SipHash because state signatures are computed
/// once per gene per individual per generation — they are on the decode hot
/// path — and HashDoS resistance is irrelevant for a research planner.
#[inline]
pub fn hash_one<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Combine two signatures order-sensitively (Boost `hash_combine` flavour).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    a ^ (b
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(a << 6)
        .wrapping_add(a >> 2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
    }

    #[test]
    fn hash_distinguishes_values() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let (a, b) = (hash_one(&1u32), hash_one(&2u32));
        assert_ne!(combine(a, b), combine(b, a));
    }

    #[test]
    fn combine_differs_from_inputs() {
        let (a, b) = (hash_one(&1u32), hash_one(&2u32));
        let c = combine(a, b);
        assert_ne!(c, a);
        assert_ne!(c, b);
    }
}
