//! State signatures: stable 64-bit hashes used for state matching in
//! state-aware crossover and for duplicate detection diagnostics, plus
//! [`SigBuilder`] — a streaming hasher for *problem signatures* that key
//! the planning service's plan cache.

use std::hash::{Hash, Hasher};

use rustc_hash::FxHasher;

/// Hash a single value with the (fast, non-cryptographic) FxHash algorithm.
///
/// FxHash is used rather than SipHash because state signatures are computed
/// once per gene per individual per generation — they are on the decode hot
/// path — and HashDoS resistance is irrelevant for a research planner.
#[inline]
pub fn hash_one<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// Combine two signatures order-sensitively (Boost `hash_combine` flavour).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    a ^ (b.wrapping_add(0x9e37_79b9_7f4a_7c15).wrapping_add(a << 6).wrapping_add(a >> 2))
}

/// Streaming builder for stable 64-bit *problem signatures*.
///
/// Unlike [`hash_one`], which hashes whatever `Hash` impl a type happens to
/// have, `SigBuilder` makes the hashed byte stream explicit: callers feed
/// each semantically relevant field in a fixed order, with field tags and
/// lengths, so the signature is (a) stable across runs and processes — it
/// has no per-process randomness — and (b) free of ambiguity between
/// adjacent variable-length fields. The planning service uses these
/// signatures as plan-cache keys, so two problems must collide only if they
/// are semantically identical.
///
/// FNV-1a over the framed byte stream; not cryptographic, which is fine for
/// a cache key (a collision costs a wrong cache hit in a research planner,
/// not a security boundary).
#[derive(Debug, Clone)]
pub struct SigBuilder {
    state: u64,
}

impl Default for SigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SigBuilder {
    /// FNV-1a offset basis.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    /// FNV-1a prime.
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh builder.
    pub fn new() -> Self {
        SigBuilder { state: Self::OFFSET }
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.state = (self.state ^ b as u64).wrapping_mul(Self::PRIME);
    }

    /// Feed raw bytes (length-framed, so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.u64(bytes.len() as u64);
        for &b in bytes {
            self.byte(b);
        }
        self
    }

    /// Feed a UTF-8 string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Feed a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    /// Feed a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.u64(v as u64)
    }

    /// Feed a `usize`.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Feed a `bool`.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.byte(v as u8);
        self
    }

    /// Feed an `f64` by bit pattern, canonicalizing `-0.0` to `0.0` and all
    /// NaNs to one bit pattern so semantically equal configs hash equally.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        let canon = if v == 0.0 {
            0.0f64
        } else if v.is_nan() {
            f64::NAN
        } else {
            v
        };
        self.u64(canon.to_bits())
    }

    /// Feed a field tag: a short static label separating record fields, so
    /// reordered or skipped fields change the signature.
    pub fn tag(&mut self, label: &str) -> &mut Self {
        self.str(label)
    }

    /// Finish, returning the signature.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"abc"), hash_one(&"abc"));
    }

    #[test]
    fn hash_distinguishes_values() {
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
    }

    #[test]
    fn combine_is_order_sensitive() {
        let (a, b) = (hash_one(&1u32), hash_one(&2u32));
        assert_ne!(combine(a, b), combine(b, a));
    }

    #[test]
    fn combine_differs_from_inputs() {
        let (a, b) = (hash_one(&1u32), hash_one(&2u32));
        let c = combine(a, b);
        assert_ne!(c, a);
        assert_ne!(c, b);
    }

    #[test]
    fn sig_builder_is_deterministic() {
        let mut a = SigBuilder::new();
        a.tag("x").str("hello").u64(7);
        let mut b = SigBuilder::new();
        b.tag("x").str("hello").u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn sig_builder_framing_disambiguates_concatenation() {
        let mut a = SigBuilder::new();
        a.str("ab").str("c");
        let mut b = SigBuilder::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn sig_builder_distinguishes_field_order() {
        let mut a = SigBuilder::new();
        a.u64(1).u64(2);
        let mut b = SigBuilder::new();
        b.u64(2).u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn sig_builder_canonicalizes_floats() {
        let mut a = SigBuilder::new();
        a.f64(0.0);
        let mut b = SigBuilder::new();
        b.f64(-0.0);
        assert_eq!(a.finish(), b.finish());
        let mut c = SigBuilder::new();
        c.f64(1.5);
        assert_ne!(a.finish(), c.finish());
    }
}
