//! Plans: finite sequences of operations, plus simulation and validation.

use crate::domain::{Domain, OpId};

/// A plan is a finite sequence of operations (paper §1: "A plan is a finite
/// sequence of operations. An operation may occur more than once in a
/// plan.").
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Plan {
    ops: Vec<OpId>,
}

/// The result of simulating a plan from some state.
#[derive(Debug, Clone)]
pub struct PlanOutcome<S> {
    /// State after executing every operation.
    pub final_state: S,
    /// Goal fitness of the final state.
    pub goal_fitness: f64,
    /// Whether the final state satisfies the goal — the paper's definition
    /// of the plan *solving* the instance (given all ops were valid).
    pub solves: bool,
    /// Total cost of the executed operations.
    pub cost: f64,
}

/// Simulation error: an operation was invalid in the state it was applied to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Index of the offending operation within the plan.
    pub at: usize,
    /// The offending operation.
    pub op: OpId,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid operation {:?} at plan index {}", self.op, self.at)
    }
}

impl std::error::Error for SimError {}

impl Plan {
    /// An empty plan.
    pub fn new() -> Self {
        Plan { ops: Vec::new() }
    }

    /// Build a plan from raw operation ids.
    pub fn from_ops(ops: Vec<OpId>) -> Self {
        Plan { ops }
    }

    /// The operations of the plan, in execution order.
    pub fn ops(&self) -> &[OpId] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Is the plan empty?
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append an operation.
    pub fn push(&mut self, op: OpId) {
        self.ops.push(op);
    }

    /// Concatenate another plan onto this one (used by the multi-phase GA,
    /// paper §3.5 step 3: "Construct the final solution by concatenating the
    /// best solutions from all the phases").
    pub fn extend_from(&mut self, other: &Plan) {
        self.ops.extend_from_slice(&other.ops);
    }

    /// Simulate the plan from `start`, *checking validity of every
    /// operation* (paper §1: a plan solves the instance iff every operation
    /// is valid and the final state satisfies the goal).
    pub fn simulate<D: Domain>(&self, domain: &D, start: &D::State) -> Result<PlanOutcome<D::State>, SimError> {
        let mut state = start.clone();
        let mut cost = 0.0;
        let mut scratch = Vec::new();
        for (i, &op) in self.ops.iter().enumerate() {
            scratch.clear();
            domain.valid_operations(&state, &mut scratch);
            if !scratch.contains(&op) {
                return Err(SimError { at: i, op });
            }
            cost += domain.op_cost(op);
            state = domain.apply(&state, op);
        }
        let goal_fitness = domain.goal_fitness(&state);
        Ok(PlanOutcome { solves: domain.is_goal(&state), final_state: state, goal_fitness, cost })
    }

    /// Simulate without validity checks (callers that constructed the plan
    /// through decode already know every op is valid — the point of the
    /// paper's indirect encoding).
    pub fn simulate_unchecked<D: Domain>(&self, domain: &D, start: &D::State) -> PlanOutcome<D::State> {
        let mut state = start.clone();
        let mut cost = 0.0;
        for &op in &self.ops {
            cost += domain.op_cost(op);
            state = domain.apply(&state, op);
        }
        let goal_fitness = domain.goal_fitness(&state);
        PlanOutcome { solves: domain.is_goal(&state), final_state: state, goal_fitness, cost }
    }

    /// Render the plan as a numbered list of operation names.
    pub fn display<D: Domain>(&self, domain: &D) -> String {
        let mut s = String::new();
        for (i, &op) in self.ops.iter().enumerate() {
            s.push_str(&format!("{:4}. {}\n", i + 1, domain.op_name(op)));
        }
        s
    }
}

impl FromIterator<OpId> for Plan {
    fn from_iter<I: IntoIterator<Item = OpId>>(iter: I) -> Self {
        Plan { ops: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Domain over `u8` states: op 0 doubles (valid when state < 128),
    /// op 1 increments (always valid). Goal: exactly 9.
    struct Arith;

    impl Domain for Arith {
        type State = u8;
        fn initial_state(&self) -> u8 {
            1
        }
        fn num_operations(&self) -> usize {
            2
        }
        fn valid_operations(&self, state: &u8, out: &mut Vec<OpId>) {
            if *state < 128 {
                out.push(OpId(0));
            }
            out.push(OpId(1));
        }
        fn apply(&self, state: &u8, op: OpId) -> u8 {
            match op.0 {
                0 => state * 2,
                _ => state.saturating_add(1),
            }
        }
        fn goal_fitness(&self, state: &u8) -> f64 {
            if *state == 9 {
                1.0
            } else {
                1.0 / (1.0 + f64::from(state.abs_diff(9)))
            }
        }
        fn op_cost(&self, op: OpId) -> f64 {
            if op.0 == 0 {
                2.0
            } else {
                1.0
            }
        }
    }

    #[test]
    fn simulate_valid_plan_solves() {
        // 1 -> 2 -> 4 -> 8 -> 9
        let plan = Plan::from_ops(vec![OpId(0), OpId(0), OpId(0), OpId(1)]);
        let out = plan.simulate(&Arith, &1).unwrap();
        assert!(out.solves);
        assert_eq!(out.final_state, 9);
        assert_eq!(out.cost, 7.0);
        assert_eq!(out.goal_fitness, 1.0);
    }

    #[test]
    fn simulate_detects_invalid_op() {
        let plan = Plan::from_ops(vec![OpId(0)]);
        let err = plan.simulate(&Arith, &200).unwrap_err();
        assert_eq!(err.at, 0);
        assert_eq!(err.op, OpId(0));
    }

    #[test]
    fn simulate_unchecked_matches_checked_on_valid_plans() {
        let plan = Plan::from_ops(vec![OpId(1), OpId(0), OpId(1)]);
        let checked = plan.simulate(&Arith, &1).unwrap();
        let unchecked = plan.simulate_unchecked(&Arith, &1);
        assert_eq!(checked.final_state, unchecked.final_state);
        assert_eq!(checked.cost, unchecked.cost);
        assert_eq!(checked.solves, unchecked.solves);
    }

    #[test]
    fn concatenation_appends_in_order() {
        let mut a = Plan::from_ops(vec![OpId(0)]);
        let b = Plan::from_ops(vec![OpId(1), OpId(1)]);
        a.extend_from(&b);
        assert_eq!(a.ops(), &[OpId(0), OpId(1), OpId(1)]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_plan_outcome_is_start_state() {
        let plan = Plan::new();
        assert!(plan.is_empty());
        let out = plan.simulate(&Arith, &9).unwrap();
        assert!(out.solves);
        assert_eq!(out.cost, 0.0);
    }

    #[test]
    fn display_lists_op_names() {
        let plan = Plan::from_ops(vec![OpId(0), OpId(1)]);
        let text = plan.display(&Arith);
        assert!(text.contains("1. op0"));
        assert!(text.contains("2. op1"));
    }

    #[test]
    fn from_iterator_collects() {
        let plan: Plan = [OpId(3), OpId(4)].into_iter().collect();
        assert_eq!(plan.ops(), &[OpId(3), OpId(4)]);
    }
}
