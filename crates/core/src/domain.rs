//! The [`Domain`] trait: the interface between planning domains and every
//! planner in this workspace (the GA, and the deterministic baselines).

use std::hash::Hash;

use crate::sig::hash_one;

/// Identifier of a *ground* operation within a domain.
///
/// Domains enumerate their ground operations up front (`0..num_operations()`)
/// so planners can store plans as flat `Vec<OpId>` and domains can decode an
/// id without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for OpId {
    #[inline]
    fn from(i: usize) -> Self {
        OpId(i as u32)
    }
}

/// A planning domain in the sense of the paper's four-tuple `⟨C, O, I, G⟩`.
///
/// The state space is implicit: planners only ever see states produced by
/// [`Domain::initial_state`] and [`Domain::apply`]. The contract mirrors the
/// paper's definitions:
///
/// * an operation is **valid** in a state iff its preconditions hold there;
///   [`Domain::valid_operations`] returns exactly the valid set,
/// * [`Domain::apply`] may assume the operation is valid (callers must only
///   pass ids previously returned by `valid_operations` for that state),
/// * [`Domain::goal_fitness`] is the paper's domain-specific `F_goal`
///   (§3.3): a value in `[0, 1]` that is `1.0` exactly on goal states.
pub trait Domain: Send + Sync {
    /// The state type. Hash/Eq are required by the deterministic baselines
    /// (duplicate detection) and by state-aware crossover (state matching).
    type State: Clone + PartialEq + Eq + Hash + Send + Sync;

    /// The initial state `I`.
    fn initial_state(&self) -> Self::State;

    /// Total number of ground operations; valid [`OpId`]s are
    /// `0..num_operations()`.
    fn num_operations(&self) -> usize;

    /// Append every operation valid in `state` to `out` (which the caller
    /// has cleared). Ordering must be deterministic for a given state: the
    /// indirect genome encoding maps a float to a *position* in this list,
    /// so a stable order is what makes decoding reproducible.
    fn valid_operations(&self, state: &Self::State, out: &mut Vec<OpId>);

    /// Apply a valid operation, producing the successor state.
    fn apply(&self, state: &Self::State, op: OpId) -> Self::State;

    /// [`Domain::apply`] into a caller-provided buffer. The default
    /// overwrites `out` with a freshly built successor; domains whose states
    /// own heap storage should override it to reuse `out`'s allocation (the
    /// GA's decode loop ping-pongs two state buffers through this method, so
    /// an override makes stepping allocation-free).
    fn apply_into(&self, state: &Self::State, op: OpId, out: &mut Self::State) {
        *out = self.apply(state, op);
    }

    /// Does `state` satisfy every condition of the goal `G`?
    fn is_goal(&self, state: &Self::State) -> bool {
        self.goal_fitness(state) >= 1.0
    }

    /// Domain-specific goal fitness `F_goal ∈ [0, 1]`, `1.0` iff goal.
    fn goal_fitness(&self, state: &Self::State) -> f64;

    /// Cost of a ground operation (paper: `cost(o)`); defaults to unit cost.
    fn op_cost(&self, _op: OpId) -> f64 {
        1.0
    }

    /// Human-readable name of a ground operation, for plan printing.
    fn op_name(&self, op: OpId) -> String {
        format!("op{}", op.0)
    }

    /// A 64-bit signature of the state, used by state-aware crossover: two
    /// loci "match" when their decode states are identical, which guarantees
    /// the paper's condition that "the same genetic code will be mapped to
    /// the same sequence of operations from these two states".
    fn state_signature(&self, state: &Self::State) -> u64 {
        hash_one(state)
    }
}

std::thread_local! {
    /// Scratch for [`DomainExt::is_valid`]: one per thread, at module scope
    /// so every `Domain` instantiation shares it instead of allocating a
    /// fresh `Vec` per call.
    static IS_VALID_SCRATCH: std::cell::RefCell<Vec<OpId>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Convenience extensions implemented for every [`Domain`].
pub trait DomainExt: Domain {
    /// Collect the valid operations of `state` into a fresh vector.
    fn valid_ops_vec(&self, state: &Self::State) -> Vec<OpId> {
        let mut v = Vec::new();
        self.valid_operations(state, &mut v);
        v
    }

    /// Is `op` valid in `state`?
    fn is_valid(&self, state: &Self::State, op: OpId) -> bool {
        // Take the scratch out rather than holding the borrow across
        // `valid_operations`, so a re-entrant `is_valid` (however unlikely)
        // degrades to an allocation instead of a RefCell panic.
        let mut v = IS_VALID_SCRATCH.with(|scratch| std::mem::take(&mut *scratch.borrow_mut()));
        v.clear();
        self.valid_operations(state, &mut v);
        let found = v.contains(&op);
        IS_VALID_SCRATCH.with(|scratch| *scratch.borrow_mut() = v);
        found
    }

    /// Total cost of a sequence of operations (costs are state-independent
    /// in this model, per the paper's `cost(o)` attribute).
    fn plan_cost(&self, ops: &[OpId]) -> f64 {
        ops.iter().map(|&o| self.op_cost(o)).sum()
    }
}

impl<D: Domain + ?Sized> DomainExt for D {}

/// Blanket access to a domain behind a reference, so planners can be generic
/// over `&D` as well as `D`.
impl<D: Domain + ?Sized> Domain for &D {
    type State = D::State;

    fn initial_state(&self) -> Self::State {
        (**self).initial_state()
    }
    fn num_operations(&self) -> usize {
        (**self).num_operations()
    }
    fn valid_operations(&self, state: &Self::State, out: &mut Vec<OpId>) {
        (**self).valid_operations(state, out)
    }
    fn apply(&self, state: &Self::State, op: OpId) -> Self::State {
        (**self).apply(state, op)
    }
    fn apply_into(&self, state: &Self::State, op: OpId, out: &mut Self::State) {
        (**self).apply_into(state, op, out)
    }
    fn is_goal(&self, state: &Self::State) -> bool {
        (**self).is_goal(state)
    }
    fn goal_fitness(&self, state: &Self::State) -> f64 {
        (**self).goal_fitness(state)
    }
    fn op_cost(&self, op: OpId) -> f64 {
        (**self).op_cost(op)
    }
    fn op_name(&self, op: OpId) -> String {
        (**self).op_name(op)
    }
    fn state_signature(&self, state: &Self::State) -> u64 {
        (**self).state_signature(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial counter domain: state is an integer, ops are +1 (always
    /// valid) and -1 (valid when positive); goal is reaching `target`.
    struct Counter {
        target: i64,
    }

    impl Domain for Counter {
        type State = i64;

        fn initial_state(&self) -> i64 {
            0
        }
        fn num_operations(&self) -> usize {
            2
        }
        fn valid_operations(&self, state: &i64, out: &mut Vec<OpId>) {
            out.push(OpId(0));
            if *state > 0 {
                out.push(OpId(1));
            }
        }
        fn apply(&self, state: &i64, op: OpId) -> i64 {
            match op.0 {
                0 => state + 1,
                1 => state - 1,
                _ => unreachable!(),
            }
        }
        fn goal_fitness(&self, state: &i64) -> f64 {
            let d = (self.target - state).unsigned_abs() as f64;
            1.0 - (d / (self.target.unsigned_abs() as f64 + 1.0)).min(1.0)
        }
    }

    #[test]
    fn valid_ops_depend_on_state() {
        let d = Counter { target: 3 };
        assert_eq!(d.valid_ops_vec(&0), vec![OpId(0)]);
        assert_eq!(d.valid_ops_vec(&2), vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn apply_and_goal() {
        let d = Counter { target: 3 };
        let mut s = d.initial_state();
        for _ in 0..3 {
            s = d.apply(&s, OpId(0));
        }
        assert!(d.is_goal(&s));
        assert_eq!(d.goal_fitness(&s), 1.0);
    }

    #[test]
    fn plan_cost_defaults_to_unit() {
        let d = Counter { target: 3 };
        assert_eq!(d.plan_cost(&[OpId(0), OpId(0), OpId(1)]), 3.0);
    }

    #[test]
    fn reference_blanket_impl_matches() {
        let d = Counter { target: 3 };
        let r: &Counter = &d;
        assert_eq!(r.num_operations(), 2);
        assert_eq!(r.initial_state(), 0);
        assert_eq!(r.valid_ops_vec(&5), vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn apply_into_default_matches_apply() {
        let d = Counter { target: 3 };
        let mut out = 99i64;
        d.apply_into(&5, OpId(1), &mut out);
        assert_eq!(out, d.apply(&5, OpId(1)));
        let r: &Counter = &d;
        r.apply_into(&5, OpId(0), &mut out);
        assert_eq!(out, 6);
    }

    #[test]
    fn state_signature_distinguishes_states() {
        let d = Counter { target: 3 };
        assert_ne!(d.state_signature(&0), d.state_signature(&1));
        assert_eq!(d.state_signature(&7), d.state_signature(&7));
    }

    #[test]
    fn is_valid_helper() {
        let d = Counter { target: 3 };
        assert!(d.is_valid(&0, OpId(0)));
        assert!(!d.is_valid(&0, OpId(1)));
        assert!(d.is_valid(&1, OpId(1)));
    }
}
