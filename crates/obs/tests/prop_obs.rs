//! Property tests for the observability primitives: histogram merge is
//! associative and commutative, counter snapshots are monotone, and the
//! span stack tolerates arbitrary enter/exit interleavings without ever
//! underflowing.

use gaplan_obs::{Counter, Histogram, SpanStack};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// `a ⊕ b == b ⊕ a`: per-worker histograms can be folded in any order.
    #[test]
    fn histogram_merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`, with the empty histogram as identity.
    #[test]
    fn histogram_merge_is_associative_with_identity(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
        c in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        let mut with_identity = left.clone();
        with_identity.merge(&Histogram::new());
        prop_assert_eq!(with_identity, left);
    }

    /// Merging singleton histograms equals recording the concatenation:
    /// merge loses nothing relative to a single-owner histogram.
    #[test]
    fn histogram_merge_equals_bulk_record(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));
        let both: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), both.len() as u64);
        prop_assert_eq!(merged, hist_of(&both));
    }

    /// Quantile bounds are sound (every recorded sample is `<=` the p100
    /// bound) and monotone in `q`.
    #[test]
    fn histogram_quantiles_are_monotone_and_bound_samples(
        values in proptest::collection::vec(any::<u64>(), 1..200),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = hist_of(&values);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile_upper(lo) <= h.quantile_upper(hi));
        let max = *values.iter().max().unwrap();
        prop_assert!(max <= h.quantile_upper(1.0));
    }

    /// Counter snapshots taken across any schedule of increments are
    /// non-decreasing and end at the exact sum.
    #[test]
    fn counter_snapshots_are_monotone(increments in proptest::collection::vec(0u64..1_000, 0..100)) {
        let c = Counter::new();
        let mut last = c.get();
        let mut expected = 0u64;
        for (i, n) in increments.iter().enumerate() {
            if i % 3 == 0 {
                c.inc();
                expected += 1;
            }
            c.add(*n);
            expected += n;
            let now = c.get();
            prop_assert!(now >= last, "snapshot went backwards: {now} < {last}");
            last = now;
        }
        prop_assert_eq!(c.get(), expected);
    }

    /// The span stack survives arbitrary enter/exit interleavings: depth
    /// tracks the running balance clamped at zero, excess exits are counted
    /// as underflows, and names pop in LIFO order.
    #[test]
    fn span_stack_never_underflows(ops in proptest::collection::vec(any::<bool>(), 0..300)) {
        let mut s = SpanStack::new();
        let mut model: Vec<String> = Vec::new();
        let mut underflows = 0u64;
        for (i, &enter) in ops.iter().enumerate() {
            if enter {
                let name = format!("span{i}");
                s.enter(&name);
                model.push(name);
            } else {
                let popped = s.exit();
                match model.pop() {
                    Some(expected) => prop_assert_eq!(popped, Some(expected)),
                    None => {
                        underflows += 1;
                        prop_assert_eq!(&popped, &None);
                    }
                }
            }
            prop_assert_eq!(s.depth(), model.len());
            prop_assert_eq!(s.underflows(), underflows);
            prop_assert!(s.max_depth() >= s.depth());
            prop_assert_eq!(s.current(), model.last().map(String::as_str));
        }
        prop_assert_eq!(s.path(), model.join("/"));
    }
}
