//! Subscribers: where events and span boundaries go.
//!
//! [`JsonlSink`] is the production subscriber (one JSON line per event,
//! behind a mutex so whole lines never interleave even when several
//! worker threads share one sink). [`RecordingSubscriber`] keeps lines in
//! memory for tests; [`NoopSubscriber`] exists to measure dispatch cost.

use std::io::Write;
use std::sync::{Arc, Mutex};

use crate::event::Event;

/// Receives events and span boundaries from instrumented code.
///
/// Span callbacks default to no-ops so metrics-only subscribers can ignore
/// them. `wall_ns` on exit is the measured wall-clock duration — by the
/// crate's determinism contract it must only ever be surfaced through
/// fields whose name contains `wall`.
pub trait Subscriber: Send + Sync {
    fn on_event(&self, event: &Event);
    fn on_span_enter(&self, _name: &'static str) {}
    fn on_span_exit(&self, _name: &'static str, _wall_ns: u64) {}
}

/// Discards everything. Used by the overhead benchmarks to separate
/// "subscriber installed" cost from serialization cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn on_event(&self, _event: &Event) {}
}

/// Writes one JSON line per event / span boundary to any `Write` target.
/// Spans render as `span_enter` / `span_exit` pseudo-events so a trace
/// file is a single uniform JSON-lines stream.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(out: W) -> Self {
        JsonlSink { out: Mutex::new(out) }
    }

    fn write_line(&self, line: &str) {
        let mut out = self.out.lock().expect("trace sink poisoned");
        // Trace output is best-effort: a full disk must not crash planning.
        let _ = writeln!(out, "{line}");
    }

    pub fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl<W: Write + Send> Subscriber for JsonlSink<W> {
    fn on_event(&self, event: &Event) {
        self.write_line(&event.to_json());
    }

    fn on_span_enter(&self, name: &'static str) {
        self.write_line(&Event::new("span_enter").str("span", name).to_json());
    }

    fn on_span_exit(&self, name: &'static str, wall_ns: u64) {
        self.write_line(&Event::new("span_exit").str("span", name).u64("wall_ns", wall_ns).to_json());
    }
}

/// A cloneable in-memory `Write` target, for tests that need to inspect a
/// sink after worker threads wrote to it.
#[derive(Debug, Default, Clone)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("shared buf poisoned").clone()).expect("trace output is utf8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("shared buf poisoned").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Records rendered lines in memory; the assertion workhorse for every
/// instrumentation test in the workspace.
#[derive(Debug, Default)]
pub struct RecordingSubscriber {
    lines: Mutex<Vec<String>>,
}

impl RecordingSubscriber {
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("recorder poisoned").clone()
    }

    /// Lines whose `"ev"` name matches exactly.
    pub fn lines_for(&self, event_name: &str) -> Vec<String> {
        let needle = format!("{{\"ev\":\"{event_name}\"");
        self.lines().into_iter().filter(|l| l.starts_with(&needle)).collect()
    }

    pub fn count(&self, event_name: &str) -> usize {
        self.lines_for(event_name).len()
    }
}

impl Subscriber for RecordingSubscriber {
    fn on_event(&self, event: &Event) {
        self.lines.lock().expect("recorder poisoned").push(event.to_json());
    }

    fn on_span_enter(&self, name: &'static str) {
        self.lines.lock().expect("recorder poisoned").push(Event::new("span_enter").str("span", name).to_json());
    }

    fn on_span_exit(&self, name: &'static str, wall_ns: u64) {
        self.lines
            .lock()
            .expect("recorder poisoned")
            .push(Event::new("span_exit").str("span", name).u64("wall_ns", wall_ns).to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_events_and_span_boundaries_as_lines() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(buf.clone());
        sink.on_event(&Event::new("a").u64("n", 1));
        sink.on_span_enter("s");
        sink.on_span_exit("s", 42);
        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], r#"{"ev":"a","n":1}"#);
        assert_eq!(lines[1], r#"{"ev":"span_enter","span":"s"}"#);
        assert_eq!(lines[2], r#"{"ev":"span_exit","span":"s","wall_ns":42}"#);
    }

    #[test]
    fn recorder_filters_by_event_name() {
        let rec = RecordingSubscriber::default();
        rec.on_event(&Event::new("ga.gen").u64("gen", 0));
        rec.on_event(&Event::new("ga.gen").u64("gen", 1));
        rec.on_event(&Event::new("ga.generic"));
        assert_eq!(rec.count("ga.gen"), 2);
        assert_eq!(rec.count("ga.generic"), 1);
    }
}
