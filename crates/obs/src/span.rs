//! A reusable span bookkeeping structure for trace consumers.
//!
//! `trace-report` and the wire-level tests replay `span_enter` /
//! `span_exit` lines through a [`SpanStack`] to reconstruct nesting and
//! attribute wall time per span name. Real traces can be truncated or
//! interleaved oddly (a killed worker never exits its span), so the stack
//! must tolerate arbitrary enter/exit sequences: an exit with no matching
//! enter is counted, never a panic or a negative depth.

/// Tracks span nesting while replaying a trace.
#[derive(Debug, Default, Clone)]
pub struct SpanStack {
    stack: Vec<String>,
    underflows: u64,
    max_depth: usize,
}

impl SpanStack {
    pub fn new() -> Self {
        SpanStack::default()
    }

    pub fn enter(&mut self, name: &str) {
        self.stack.push(name.to_string());
        self.max_depth = self.max_depth.max(self.stack.len());
    }

    /// Pop the innermost open span, returning its name. An exit with no
    /// open span is recorded in [`SpanStack::underflows`] and returns
    /// `None` — it never underflows the stack.
    pub fn exit(&mut self) -> Option<String> {
        match self.stack.pop() {
            Some(name) => Some(name),
            None => {
                self.underflows += 1;
                None
            }
        }
    }

    /// Current nesting depth; never negative by construction.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of exits seen with no matching enter.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Innermost open span name, if any.
    pub fn current(&self) -> Option<&str> {
        self.stack.last().map(String::as_str)
    }

    /// Dotted path of open spans, outermost first (e.g. `ga.run/ga.phase`).
    pub fn path(&self) -> String {
        self.stack.join("/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_nesting_round_trips() {
        let mut s = SpanStack::new();
        s.enter("run");
        s.enter("phase");
        assert_eq!(s.path(), "run/phase");
        assert_eq!(s.exit().as_deref(), Some("phase"));
        assert_eq!(s.exit().as_deref(), Some("run"));
        assert_eq!(s.depth(), 0);
        assert_eq!(s.max_depth(), 2);
        assert_eq!(s.underflows(), 0);
    }

    #[test]
    fn exit_on_empty_counts_instead_of_panicking() {
        let mut s = SpanStack::new();
        assert_eq!(s.exit(), None);
        assert_eq!(s.exit(), None);
        assert_eq!(s.depth(), 0);
        assert_eq!(s.underflows(), 2);
        s.enter("a");
        assert_eq!(s.current(), Some("a"));
    }
}
