//! Events: named records with ordered fields, rendered as one JSON line.
//!
//! Rendering is hand-rolled (vendor policy: no serde here) and fully
//! deterministic: fields keep insertion order, floats print via Rust's
//! shortest-roundtrip `Display`, and non-finite floats degrade to `null`
//! so the output is always valid JSON.

use std::fmt::Write as _;

/// A field value. The variants cover everything the planner records;
/// nested structures are deliberately unsupported — one event, one line.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Bool(bool),
}

/// A named event with ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    name: &'static str,
    fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    pub fn new(name: &'static str) -> Self {
        Event { name, fields: Vec::new() }
    }

    pub fn u64(mut self, key: &'static str, v: u64) -> Self {
        self.fields.push((key, FieldValue::U64(v)));
        self
    }

    pub fn i64(mut self, key: &'static str, v: i64) -> Self {
        self.fields.push((key, FieldValue::I64(v)));
        self
    }

    pub fn f64(mut self, key: &'static str, v: f64) -> Self {
        self.fields.push((key, FieldValue::F64(v)));
        self
    }

    pub fn str(mut self, key: &'static str, v: impl Into<String>) -> Self {
        self.fields.push((key, FieldValue::Str(v.into())));
        self
    }

    pub fn bool(mut self, key: &'static str, v: bool) -> Self {
        self.fields.push((key, FieldValue::Bool(v)));
        self
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn fields(&self) -> &[(&'static str, FieldValue)] {
        &self.fields
    }

    /// Render as a single JSON object, `{"ev":<name>, <fields...>}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.fields.len() * 16);
        out.push_str("{\"ev\":");
        write_json_str(&mut out, self.name);
        for (key, value) in &self.fields {
            out.push(',');
            write_json_str(&mut out, key);
            out.push(':');
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) if v.is_finite() => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(_) => out.push_str("null"),
                FieldValue::Str(v) => write_json_str(&mut out, v),
                FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }
}

/// Write `s` as a JSON string literal, escaping quotes, backslashes and
/// control characters.
pub(crate) fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_field_kinds_in_insertion_order() {
        let ev = Event::new("ga.gen")
            .u64("gen", 7)
            .i64("delta", -3)
            .f64("best", 0.5)
            .str("phase", "p1")
            .bool("solved", true);
        assert_eq!(ev.to_json(), r#"{"ev":"ga.gen","gen":7,"delta":-3,"best":0.5,"phase":"p1","solved":true}"#);
    }

    #[test]
    fn escapes_strings_and_degrades_non_finite_floats() {
        let ev = Event::new("x").str("msg", "a\"b\\c\nd").f64("nan", f64::NAN).f64("inf", f64::INFINITY);
        assert_eq!(ev.to_json(), r#"{"ev":"x","msg":"a\"b\\c\nd","nan":null,"inf":null}"#);
    }

    #[test]
    fn float_rendering_is_shortest_roundtrip() {
        // `Display` for f64 is the shortest string that round-trips — the
        // property golden traces rely on for cross-run stability.
        assert_eq!(Event::new("x").f64("v", 1.0).to_json(), r#"{"ev":"x","v":1}"#);
        assert_eq!(Event::new("x").f64("v", 0.1 + 0.2).to_json(), r#"{"ev":"x","v":0.30000000000000004}"#);
    }
}
