//! Golden-trace masking.
//!
//! The determinism contract (see crate docs) confines wall-clock readings
//! to fields whose name contains `wall`. These helpers blank exactly those
//! values so two runs of the same seeded command can be compared
//! byte-for-byte. Masking is a small scanner over the JSON line rather
//! than a parse/re-serialize round trip, so everything *outside* the
//! masked values — field order, float formatting, whitespace — stays
//! untouched and still participates in the comparison.

/// True if a field with this key is allowed to carry wall-clock data and
/// must therefore be masked before golden comparison.
pub fn is_wall_field(key: &str) -> bool {
    key.contains("wall")
}

/// True if this key on a `ga.cache` line carries successor-cache telemetry.
/// The cache never changes decode *results*, but which parallel worker wins
/// the race to populate a slot (and therefore the hit/miss/eviction tallies)
/// is scheduling-dependent, so the counters are masked like wall-clock data.
/// `capacity` is masked too: it is a tuning knob, and masking it keeps
/// cache-on and cache-off traces byte-identical. `phase` stays.
pub fn is_cache_counter_field(key: &str) -> bool {
    matches!(key, "hits" | "misses" | "evictions" | "capacity")
}

/// Mask one JSON line: every numeric value whose key contains `wall` — plus,
/// on `ga.cache` event lines, the racy cache counters — is replaced by `0`.
/// Non-JSON lines pass through unchanged.
pub fn mask_line(line: &str) -> String {
    let cache_line = line.contains(r#""ev":"ga.cache""#);
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            // Scan a string token, honoring escapes.
            let start = i;
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => i += 2,
                    b'"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            let token = &line[start..i.min(bytes.len())];
            out.push_str(token);
            // A string followed by ':' is a key; mask its numeric value
            // when the key names a wall-clock field.
            let key = token.trim_matches('"');
            if is_wall_field(key) || (cache_line && is_cache_counter_field(key)) {
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b':' {
                    out.push_str(&line[i..=j]);
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                        out.push(bytes[j] as char);
                        j += 1;
                    }
                    let num_start = j;
                    while j < bytes.len() && matches!(bytes[j], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                        j += 1;
                    }
                    if j > num_start {
                        out.push('0');
                        i = j;
                    } else {
                        i = num_start;
                    }
                }
            }
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Mask a whole JSON-lines trace, preserving line structure.
pub fn mask_trace(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        out.push_str(&mask_line(line));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_only_wall_fields() {
        let line = r#"{"ev":"ga.gen","gen":3,"eval_wall_ns":123456,"best":0.5}"#;
        assert_eq!(mask_line(line), r#"{"ev":"ga.gen","gen":3,"eval_wall_ns":0,"best":0.5}"#);
    }

    #[test]
    fn masks_every_wall_field_on_the_line() {
        let line = r#"{"ev":"svc.reply","wall_ms":88,"queue_wait_wall_ms":12,"id":4}"#;
        assert_eq!(mask_line(line), r#"{"ev":"svc.reply","wall_ms":0,"queue_wait_wall_ms":0,"id":4}"#);
    }

    #[test]
    fn string_values_containing_wall_are_not_touched() {
        let line = r#"{"ev":"x","msg":"wall_ns is a field","n":7}"#;
        assert_eq!(mask_line(line), line);
    }

    #[test]
    fn masks_scientific_and_negative_numbers() {
        let line = r#"{"span_wall_s":1.5e-3,"other":2}"#;
        assert_eq!(mask_line(line), r#"{"span_wall_s":0,"other":2}"#);
    }

    #[test]
    fn migration_wall_ns_is_masked_but_tallies_survive() {
        let line = r#"{"ev":"ga.migration","phase":0,"gen":5,"islands":4,"emigrants":2,"moved":8,"wall_ns":123456}"#;
        assert_eq!(
            mask_line(line),
            r#"{"ev":"ga.migration","phase":0,"gen":5,"islands":4,"emigrants":2,"moved":8,"wall_ns":0}"#
        );
    }

    #[test]
    fn cache_counters_masked_only_on_cache_lines() {
        let line = r#"{"ev":"ga.cache","phase":1,"hits":901,"misses":14,"evictions":2,"capacity":65536}"#;
        assert_eq!(mask_line(line), r#"{"ev":"ga.cache","phase":1,"hits":0,"misses":0,"evictions":0,"capacity":0}"#);
        // The same keys on any other event keep their values.
        let other = r#"{"ev":"svc.stats","hits":3,"misses":1}"#;
        assert_eq!(mask_line(other), other);
    }

    #[test]
    fn mask_trace_is_line_preserving_and_idempotent() {
        let text = "{\"a_wall_ns\":9}\n{\"b\":1}\n";
        let masked = mask_trace(text);
        assert_eq!(masked, "{\"a_wall_ns\":0}\n{\"b\":1}\n");
        assert_eq!(mask_trace(&masked), masked);
    }
}
