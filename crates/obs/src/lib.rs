//! gaplan-obs: a vendored, zero-dependency observability layer.
//!
//! The repo's vendor policy (no network, no registry) rules out `tracing`,
//! so this crate provides the small slice of it the planner actually needs:
//!
//! * [`Event`] — a named record with ordered key/value fields, rendered as
//!   one deterministic JSON line.
//! * [`Subscriber`] — where events and span boundaries go. Installed
//!   per-thread with [`install`]; when no subscriber is installed every
//!   instrumentation site is a branch on a thread-local flag and nothing
//!   else (benchmarked in `crates/bench/tests/obs_guard.rs`).
//! * [`span`] — RAII wall-clock timing around a region, reported to the
//!   subscriber on drop.
//! * [`Counter`] / [`Histogram`] — lock-free monotonic counters and
//!   log2-bucket histograms for metrics aggregation.
//! * [`golden`] — masking helpers that blank wall-clock fields so traces
//!   can be compared byte-for-byte across runs.
//!
//! Determinism contract: every field of every event is derived from seeded
//! computation or sim-time, **except** fields whose name contains `wall`,
//! which are the only place wall-clock durations may appear. Golden tests
//! mask exactly those fields.

use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Instant;

pub mod event;
pub mod golden;
pub mod hist;
pub mod span;
pub mod subscriber;

pub use event::{Event, FieldValue};
pub use hist::{Counter, Histogram};
pub use span::SpanStack;
pub use subscriber::{JsonlSink, NoopSubscriber, RecordingSubscriber, SharedBuf, Subscriber};

thread_local! {
    /// Fast-path flag: number of installed subscribers on this thread.
    /// Kept separate from the stack so `enabled()` is a single `Cell` read.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// The subscriber stack; `install` pushes, guard drop pops. A stack
    /// (rather than a slot) lets tests nest a recording subscriber inside
    /// an outer trace without clobbering it.
    static STACK: RefCell<Vec<Arc<dyn Subscriber>>> = const { RefCell::new(Vec::new()) };
}

/// True when a subscriber is installed on this thread. This is the only
/// cost instrumentation pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    DEPTH.with(|d| d.get() > 0)
}

/// Install `sub` as this thread's active subscriber until the returned
/// guard drops. Guards nest; the innermost installation wins.
#[must_use = "the subscriber is uninstalled when the guard drops"]
pub fn install(sub: Arc<dyn Subscriber>) -> InstallGuard {
    STACK.with(|s| s.borrow_mut().push(sub));
    DEPTH.with(|d| d.set(d.get() + 1));
    InstallGuard { _not_send: PhantomData }
}

/// Uninstalls the matching subscriber on drop. `!Send`: installation is
/// thread-local, so the guard must drop on the thread that created it.
pub struct InstallGuard {
    _not_send: PhantomData<*const ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        STACK.with(|s| s.borrow_mut().pop());
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

fn active() -> Option<Arc<dyn Subscriber>> {
    if !enabled() {
        return None;
    }
    STACK.with(|s| s.borrow().last().cloned())
}

/// Emit an event. The closure only runs when a subscriber is installed,
/// so field formatting costs nothing when tracing is off.
#[inline]
pub fn emit<F: FnOnce() -> Event>(build: F) {
    if let Some(sub) = active() {
        sub.on_event(&build());
    }
}

/// Enter a named span; the subscriber sees enter now and exit (with the
/// measured wall-clock nanoseconds) when the returned guard drops.
/// When tracing is off this neither reads the clock nor allocates.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    match active() {
        Some(sub) => {
            sub.on_span_enter(name);
            SpanGuard { name, start: Some(Instant::now()) }
        }
        None => SpanGuard { name, start: None },
    }
}

/// RAII handle returned by [`span`].
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let wall_ns = start.elapsed().as_nanos() as u64;
            if let Some(sub) = active() {
                sub.on_span_exit(self.name, wall_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_emit_is_a_noop() {
        assert!(!enabled());
        emit(|| unreachable!("closure must not run without a subscriber"));
        let _span = span("quiet");
    }

    #[test]
    fn install_routes_events_and_guard_restores_previous() {
        let outer = Arc::new(RecordingSubscriber::default());
        let inner = Arc::new(RecordingSubscriber::default());
        let _g1 = install(outer.clone());
        emit(|| Event::new("outer.only"));
        {
            let _g2 = install(inner.clone());
            assert!(enabled());
            emit(|| Event::new("inner.only"));
        }
        emit(|| Event::new("outer.again"));
        let outer_lines = outer.lines();
        assert_eq!(outer_lines.len(), 2, "{outer_lines:?}");
        assert!(outer_lines[0].contains("outer.only"));
        assert!(outer_lines[1].contains("outer.again"));
        assert_eq!(inner.lines().len(), 1);
    }

    #[test]
    fn spans_report_enter_exit_with_wall_time() {
        let rec = Arc::new(RecordingSubscriber::default());
        let _g = install(rec.clone());
        {
            let _s = span("work");
            emit(|| Event::new("inside"));
        }
        let lines = rec.lines();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains(r#""ev":"span_enter""#) && lines[0].contains("work"));
        assert!(lines[1].contains("inside"));
        assert!(lines[2].contains(r#""ev":"span_exit""#) && lines[2].contains("wall_ns"));
    }

    #[test]
    fn installation_is_thread_local() {
        let rec = Arc::new(RecordingSubscriber::default());
        let _g = install(rec.clone());
        std::thread::spawn(|| {
            assert!(!enabled(), "subscribers must not leak across threads");
        })
        .join()
        .unwrap();
        assert!(enabled());
    }
}
