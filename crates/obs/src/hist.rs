//! Metrics primitives: monotonic counters and log2-bucket histograms.
//!
//! The histogram trades resolution for mergeability: 64 power-of-two
//! buckets make `merge` a bucket-wise add, which is associative and
//! commutative (property-tested in `tests/prop_obs.rs`) — so per-worker
//! histograms can be folded into a service-wide snapshot in any order.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter. Snapshots taken over time are
/// non-decreasing; there is deliberately no `reset`.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

const BUCKETS: usize = 64;

/// A log2-bucket histogram over `u64` samples. Bucket `b` holds samples
/// whose highest set bit is `b` (with 0 landing in bucket 0), so the
/// bucket's inclusive upper bound is `2^(b+1) - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0 }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `index`.
    pub fn bucket_upper(index: usize) -> u64 {
        if index >= 63 {
            u64::MAX
        } else {
            (2u64 << index) - 1
        }
    }

    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Fold `other` into `self`. Bucket-wise addition: associative,
    /// commutative, with the empty histogram as identity.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`), or 0 for an empty histogram. Returning the
    /// bucket bound keeps the result an exact integer, so it can live in
    /// `Eq`-deriving reports.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(index);
            }
        }
        Self::bucket_upper(BUCKETS - 1)
    }

    /// `(inclusive upper bound, count)` for each non-empty bucket, in
    /// ascending order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| (Self::bucket_upper(index), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        assert_eq!(Histogram::bucket_upper(0), 1);
        assert_eq!(Histogram::bucket_upper(1), 3);
        assert_eq!(Histogram::bucket_upper(2), 7);
        assert_eq!(Histogram::bucket_upper(63), u64::MAX);
    }

    #[test]
    fn record_merge_and_quantiles() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0, 1, 2, 3] {
            a.record(v);
        }
        for v in [100, 200] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 306);
        // Samples by bucket upper bound: 1:{0,1} 3:{2,3} 127:{100} 255:{200}.
        assert_eq!(a.quantile_upper(0.0), 1);
        assert_eq!(a.quantile_upper(0.5), 3);
        assert_eq!(a.quantile_upper(1.0), 255);
        assert_eq!(a.nonzero_buckets(), vec![(1, 2), (3, 2), (127, 1), (255, 1)]);
    }

    #[test]
    fn empty_histogram_is_merge_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        assert_eq!(Histogram::new().quantile_upper(0.99), 0);
        assert_eq!(Histogram::new().mean(), 0.0);
    }
}
