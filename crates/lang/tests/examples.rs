//! Every shipped example domain/problem pair must compile cleanly (no
//! errors, no warnings) and ground to a plausibly-sized problem.

use std::path::PathBuf;

fn repo_path(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join(rel)
}

fn compile_pair(domain: &str, problem: &str) -> gaplan_lang::Compiled {
    let dsrc = std::fs::read_to_string(repo_path(domain)).unwrap_or_else(|e| panic!("read {domain}: {e}"));
    let psrc = std::fs::read_to_string(repo_path(problem)).unwrap_or_else(|e| panic!("read {problem}: {e}"));
    match gaplan_lang::compile(&dsrc, &psrc) {
        Ok(c) => {
            assert!(
                c.warnings.is_empty(),
                "{domain} + {problem} compiled with warnings:\n{}",
                gaplan_lang::render_diagnostics(&c.warnings, domain, &dsrc, problem, &psrc)
            );
            c
        }
        Err(e) => panic!("{domain} + {problem} failed:\n{}", e.render(domain, &dsrc, problem, &psrc)),
    }
}

/// (domain, problem) pairs shipped in the repo.
pub const SHIPPED: &[(&str, &str)] = &[
    ("examples/domains/blocks.gap", "data/blocks-1.gap"),
    ("examples/domains/blocks.gap", "data/blocks-2.gap"),
    ("examples/domains/logistics.gap", "data/logistics-1.gap"),
    ("examples/domains/logistics.gap", "data/logistics-2.gap"),
    ("examples/domains/elevator.gap", "data/elevator-1.gap"),
    ("examples/domains/elevator.gap", "data/elevator-2.gap"),
    ("examples/domains/gridflow.gap", "data/gridflow-1.gap"),
    ("examples/domains/gridflow.gap", "data/gridflow-2.gap"),
];

#[test]
fn all_shipped_examples_compile() {
    for (domain, problem) in SHIPPED {
        let c = compile_pair(domain, problem);
        assert!(c.stats.ops > 0, "{problem}: no ground ops");
        assert!(c.stats.ops < 2_000, "{problem}: unexpectedly large grounding ({} ops)", c.stats.ops);
        assert!(c.stats.conditions < 2_000, "{problem}: unexpectedly many conditions ({})", c.stats.conditions);
    }
}

#[test]
fn shipped_examples_ground_deterministically() {
    for (domain, problem) in SHIPPED {
        let a = compile_pair(domain, problem).strips.signature();
        let b = compile_pair(domain, problem).strips.signature();
        assert_eq!(a, b, "{problem}: signature not deterministic");
    }
}
