//! Property-based tests for the DSL front end: total parsing (diagnostics,
//! never panics), deterministic grounding, and pretty-print/reparse
//! roundtripping.

use gaplan_lang::ast::{DomainAst, ProblemAst};
use gaplan_lang::pretty::{print_domain, print_problem};
use gaplan_lang::{compile, parse_domain, parse_problem};
use proptest::prelude::*;

/// Strip spans so roundtripped ASTs compare structurally: the pretty
/// printer re-lays-out the source, so offsets legitimately move.
fn despan_domain(ast: &DomainAst) -> String {
    // Debug output with every `span:`/`Span {..}` chunk erased is a cheap
    // span-free structural fingerprint.
    erase_spans(&format!("{ast:?}"))
}

fn despan_problem(ast: &ProblemAst) -> String {
    erase_spans(&format!("{ast:?}"))
}

fn erase_spans(debug: &str) -> String {
    let mut out = String::with_capacity(debug.len());
    let mut rest = debug;
    while let Some(idx) = rest.find("Span {") {
        out.push_str(&rest[..idx]);
        let tail = &rest[idx..];
        let end = tail.find('}').map(|e| e + 1).unwrap_or(tail.len());
        out.push_str("Span");
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Tokens that tend to hit interesting parser paths much more often than
/// uniform bytes do.
const TOKENS: &[&str] = &[
    "domain",
    "problem",
    "type",
    "pred",
    "action",
    "objects",
    "init:",
    "goal:",
    "pre:",
    "add:",
    "del:",
    "cost:",
    "(",
    ")",
    ",",
    ":",
    "x",
    "t1",
    "at",
    "7",
    "\n",
    "# comment",
];

fn arb_token() -> impl Strategy<Value = String> {
    (0..TOKENS.len()).prop_map(|i| TOKENS[i].to_string())
}

proptest! {
    /// Arbitrary bytes never panic the front end — every failure is a
    /// rendered diagnostic. (Input goes through `from_utf8_lossy`, matching
    /// what the CLI does with file contents.)
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes);
        match parse_domain(&src) {
            Ok(_) => {}
            Err(d) => { let _ = d.render("fuzz.gap", &src); }
        }
        match parse_problem(&src) {
            Ok(_) => {}
            Err(d) => { let _ = d.render("fuzz.gap", &src); }
        }
    }

    /// Token soup (keyword-dense input) never panics the whole pipeline —
    /// parse, check, ground. Much better at reaching checker/grounder code
    /// than raw bytes.
    #[test]
    fn token_soup_never_panics(dom in proptest::collection::vec(arb_token(), 0..64),
                               prob in proptest::collection::vec(arb_token(), 0..64)) {
        let dsrc = dom.join(" ");
        let psrc = prob.join(" ");
        match compile(&dsrc, &psrc) {
            Ok(_) => {}
            Err(e) => { let _ = e.render("d.gap", &dsrc, "p.gap", &psrc); }
        }
    }

    /// Compiling the same pair twice yields byte-identical ground problems
    /// (witnessed by the signature), even for generated chain domains.
    #[test]
    fn grounding_is_deterministic(n in 1usize..6, cost in 1u32..9) {
        let mut dom = String::from("domain chain\ntype node\npred at(n: node)\n");
        for i in 0..n {
            dom.push_str(&format!(
                "action hop{i}(a: node, b: node)\n  pre: at(a)\n  add: at(b)\n  del: at(a)\n  cost: {cost}\n"
            ));
        }
        let mut prob = String::from("problem p domain chain\nobjects");
        for i in 0..=n {
            prob.push_str(&format!(" n{i}"));
        }
        prob.push_str(": node\ninit: at(n0)\n");
        prob.push_str(&format!("goal: at(n{n})\n"));

        let a = compile(&dom, &prob).unwrap();
        let b = compile(&dom, &prob).unwrap();
        prop_assert_eq!(a.strips.signature(), b.strips.signature());
        prop_assert_eq!(a.stats, b.stats);
    }
}

/// Pretty-printing a parsed AST and reparsing it reproduces the AST
/// (modulo spans), and the printer is a fixpoint on its own output. Run
/// over every shipped example rather than generated input: the examples
/// exercise every syntactic form the printer handles.
#[test]
fn pretty_print_roundtrips_shipped_examples() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for (dom_rel, prob_rel) in [
        ("examples/domains/blocks.gap", "data/blocks-1.gap"),
        ("examples/domains/logistics.gap", "data/logistics-2.gap"),
        ("examples/domains/elevator.gap", "data/elevator-1.gap"),
        ("examples/domains/gridflow.gap", "data/gridflow-2.gap"),
    ] {
        let dsrc = std::fs::read_to_string(root.join(dom_rel)).unwrap();
        let psrc = std::fs::read_to_string(root.join(prob_rel)).unwrap();

        let dom = parse_domain(&dsrc).unwrap();
        let printed = print_domain(&dom);
        let reparsed = parse_domain(&printed).unwrap_or_else(|d| panic!("{}", d.render(dom_rel, &printed)));
        assert_eq!(despan_domain(&dom), despan_domain(&reparsed), "{dom_rel} AST changed across print/reparse");
        assert_eq!(printed, print_domain(&reparsed), "{dom_rel} printer is not a fixpoint");

        let prob = parse_problem(&psrc).unwrap();
        let printed = print_problem(&prob);
        let reparsed = parse_problem(&printed).unwrap_or_else(|d| panic!("{}", d.render(prob_rel, &printed)));
        assert_eq!(despan_problem(&prob), despan_problem(&reparsed), "{prob_rel} AST changed across print/reparse");
        assert_eq!(printed, print_problem(&reparsed), "{prob_rel} printer is not a fixpoint");
    }
}
