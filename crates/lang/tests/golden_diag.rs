//! Golden tests for the DSL's diagnostic rendering: each case compiles a
//! small domain/problem pair and compares the rendered diagnostics (errors
//! or warnings, caret snippets, did-you-mean hints) against a checked-in
//! golden file under `tests/golden/`.
//!
//! Re-bless after an intentional change with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p gaplan-lang --test golden_diag
//! ```

use std::path::PathBuf;

use gaplan_lang::{compile, render_diagnostics, render_legacy_parse};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {path:?} ({e}); run with GOLDEN_BLESS=1 to create it"));
    if expected != actual {
        for (i, (want, got)) in expected.lines().zip(actual.lines()).enumerate() {
            assert_eq!(want, got, "golden {name} first differs at line {}", i + 1);
        }
        panic!(
            "golden {name} length mismatch: expected {} lines, got {}\n--- actual ---\n{actual}",
            expected.lines().count(),
            actual.lines().count()
        );
    }
}

/// Compile the pair and render whatever diagnostics come out — errors on
/// failure, warnings on success. Deterministic by construction, so the
/// double render also guards against nondeterministic hint ordering.
fn diag_case(name: &str, domain: &str, problem: &str) {
    let render = || match compile(domain, problem) {
        Ok(c) => render_diagnostics(&c.warnings, "dom.gap", domain, "prob.gap", problem),
        Err(e) => e.render("dom.gap", domain, "prob.gap", problem),
    };
    let first = render();
    assert_eq!(first, render(), "diagnostics for {name} are nondeterministic");
    assert!(!first.is_empty(), "case {name} produced no diagnostics");
    assert_matches_golden(name, &first);
}

const GOOD_PROBLEM: &str = "\
problem p1
domain d
objects a b: block
init: on-table(a) on-table(b) clear(a) clear(b)
goal: on(a, b)
";

const GOOD_DOMAIN: &str = "\
domain d
type block
pred on(a: block, b: block)
pred on-table(b: block)
pred clear(b: block)
action stack(a: block, b: block)
  pre: on-table(a) clear(a) clear(b)
  add: on(a, b)
  del: on-table(a) clear(b)
";

#[test]
fn unknown_type_with_hint() {
    let dom = "\
domain d
type block
pred on(a: block, b: blokc)
action noop(b: block)
  pre: on(b, b)
  add: on(b, b)
";
    diag_case("unknown_type", dom, GOOD_PROBLEM);
}

#[test]
fn arity_mismatch() {
    let dom = "\
domain d
type block
pred on(a: block, b: block)
action bad(a: block)
  pre: on(a)
  add: on(a, a)
";
    diag_case("arity_mismatch", dom, GOOD_PROBLEM);
}

#[test]
fn wrong_argument_type() {
    let dom = "\
domain d
type truck
type location
pred at(t: truck, l: location)
action bad(t: truck, l: location)
  pre: at(l, t)
  add: at(t, l)
";
    let prob = "\
problem p1
domain d
objects t1: truck
objects depot: location
init: at(t1, depot)
goal: at(t1, depot)
";
    diag_case("wrong_argument_type", dom, prob);
}

#[test]
fn undeclared_object_with_hint() {
    let prob = "\
problem p1
domain d
objects alpha beta: block
init: on-table(alpha) clear(alpha)
goal: on(alpah, beta)
";
    diag_case("undeclared_object", GOOD_DOMAIN, prob);
}

#[test]
fn unknown_predicate_in_init() {
    let prob = "\
problem p1
domain d
objects a b: block
init: ontable(a) clear(a)
goal: on(a, b)
";
    diag_case("unknown_predicate", GOOD_DOMAIN, prob);
}

#[test]
fn duplicate_cost_section() {
    let dom = "\
domain d
type block
pred on(a: block, b: block)
action bad(a: block, b: block)
  pre: on(a, b)
  add: on(b, a)
  cost: 2
  cost: 3
";
    diag_case("duplicate_cost", dom, GOOD_PROBLEM);
}

#[test]
fn malformed_number() {
    let dom = "\
domain d
type block
pred on(a: block, b: block)
action bad(a: block, b: block)
  pre: on(a, b)
  add: on(b, a)
  cost: 12abc
";
    diag_case("malformed_number", dom, GOOD_PROBLEM);
}

#[test]
fn reserved_word_as_name() {
    let dom = "\
domain d
type block
pred goal(b: block)
";
    diag_case("reserved_word", dom, GOOD_PROBLEM);
}

#[test]
fn missing_goal_section() {
    let prob = "\
problem p1
domain d
objects a b: block
init: on-table(a) clear(a)
";
    diag_case("missing_goal", GOOD_DOMAIN, prob);
}

#[test]
fn unreachable_goal_warning() {
    let prob = "\
problem p1
domain d
objects a b c: block
init: on-table(a) on-table(b) clear(a) clear(b)
goal: on(a, c)
";
    diag_case("unreachable_goal", GOOD_DOMAIN, prob);
}

#[test]
fn domain_name_mismatch() {
    let prob = "\
problem p1
domain dd
objects a b: block
init: on-table(a) clear(a) clear(b)
goal: on(a, b)
";
    diag_case("domain_name_mismatch", GOOD_DOMAIN, prob);
}

#[test]
fn legacy_strips_error_rendering() {
    let src = "\
conditions: a b c
init: a
goal: c
op go
  pre: a
  add: b
  frobnicate: c
";
    // The legacy parser reports `(line, msg)`; the renderer locates the
    // backticked token on that line for the caret.
    let err = gaplan_core::strips::parse_strips(src).unwrap_err();
    let gaplan_core::Error::Parse { line, msg } = err else { panic!("expected a parse error, got {err:?}") };
    let rendered = render_legacy_parse("legacy.strips", src, line, &msg);
    assert_matches_golden("legacy_strips", &rendered);
}
