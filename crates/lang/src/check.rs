//! Name resolution and type checking for parsed domain/problem pairs.
//!
//! Produces index-resolved [`CheckedDomain`]/[`CheckedProblem`] structures
//! for the grounder: predicates and types become dense indices, action
//! bodies refer to parameters by position, and init/goal atoms refer to
//! objects by index. All diagnostics carry spans; unknown-name errors get a
//! "did you mean" hint when a declared name is close.

use rustc_hash::FxHashMap;

use crate::ast::*;
use crate::span::{did_you_mean, Diagnostic, FileId, Span};

/// A resolved predicate: name plus parameter type indices.
#[derive(Clone, Debug)]
pub struct CheckedPred {
    pub name: String,
    pub param_types: Vec<usize>,
}

/// An atom in an action body, arguments resolved to parameter positions.
#[derive(Clone, Debug)]
pub struct ParamAtom {
    pub pred: usize,
    pub args: Vec<usize>,
    pub span: Span,
}

/// A resolved action schema.
#[derive(Clone, Debug)]
pub struct CheckedAction {
    pub name: String,
    /// Parameter names (for ground-op naming) and their type indices.
    pub param_names: Vec<String>,
    pub param_types: Vec<usize>,
    pub pre: Vec<ParamAtom>,
    pub add: Vec<ParamAtom>,
    pub del: Vec<ParamAtom>,
    pub cost: u32,
}

#[derive(Clone, Debug)]
pub struct CheckedDomain {
    pub name: String,
    pub types: Vec<String>,
    pub preds: Vec<CheckedPred>,
    pub actions: Vec<CheckedAction>,
}

/// An atom over object indices (init/goal).
#[derive(Clone, Debug)]
pub struct GroundAtom {
    pub pred: usize,
    pub args: Vec<usize>,
    pub span: Span,
}

#[derive(Clone, Debug)]
pub struct CheckedProblem {
    pub name: String,
    /// Object names and their type indices, in declaration order.
    pub objects: Vec<String>,
    pub object_types: Vec<usize>,
    pub init: Vec<GroundAtom>,
    pub goal: Vec<GroundAtom>,
}

struct Ctx<'a> {
    file: FileId,
    diags: &'a mut Vec<Diagnostic>,
}

impl Ctx<'_> {
    fn error(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.push(Diagnostic::error(self.file, span, msg));
    }

    fn unknown<'n>(&mut self, span: Span, what: &str, name: &str, known: impl IntoIterator<Item = &'n str>) {
        let mut d = Diagnostic::error(self.file, span, format!("unknown {what} `{name}`"));
        if let Some(hint) = did_you_mean(name, known) {
            d = d.with_help(format!("did you mean `{hint}`?"));
        }
        self.diags.push(d);
    }
}

/// Check a domain AST. Appends diagnostics; returns `None` if any were
/// errors (warnings alone do not fail the check).
pub fn check_domain(ast: &DomainAst, diags: &mut Vec<Diagnostic>) -> Option<CheckedDomain> {
    let before = diags.len();
    let mut ctx = Ctx { file: FileId::Domain, diags };

    let mut types: Vec<String> = Vec::new();
    let mut type_idx: FxHashMap<&str, usize> = FxHashMap::default();
    for ty in &ast.types {
        if type_idx.contains_key(ty.text.as_str()) {
            ctx.error(ty.span, format!("duplicate type `{}`", ty.text));
            continue;
        }
        type_idx.insert(&ty.text, types.len());
        types.push(ty.text.clone());
    }

    let mut preds: Vec<CheckedPred> = Vec::new();
    let mut pred_idx: FxHashMap<&str, usize> = FxHashMap::default();
    for p in &ast.preds {
        if pred_idx.contains_key(p.name.text.as_str()) {
            ctx.error(p.name.span, format!("duplicate predicate `{}`", p.name.text));
            continue;
        }
        let mut param_types = Vec::new();
        for param in &p.params {
            match type_idx.get(param.ty.text.as_str()) {
                Some(&t) => param_types.push(t),
                None => {
                    ctx.unknown(param.ty.span, "type", &param.ty.text, types.iter().map(|s| s.as_str()));
                    param_types.push(usize::MAX); // placeholder; check already failed
                }
            }
        }
        pred_idx.insert(&p.name.text, preds.len());
        preds.push(CheckedPred { name: p.name.text.clone(), param_types });
    }

    let mut actions: Vec<CheckedAction> = Vec::new();
    let mut action_names: FxHashMap<&str, ()> = FxHashMap::default();
    for a in &ast.actions {
        if action_names.contains_key(a.name.text.as_str()) {
            ctx.error(a.name.span, format!("duplicate action `{}`", a.name.text));
            continue;
        }
        action_names.insert(&a.name.text, ());

        let mut param_names = Vec::new();
        let mut param_types = Vec::new();
        let mut param_pos: FxHashMap<&str, usize> = FxHashMap::default();
        for param in &a.params {
            let Some(name) = &param.name else {
                ctx.error(param.ty.span, format!("action parameter in `{}` must be written `name: type`", a.name.text));
                continue;
            };
            if param_pos.contains_key(name.text.as_str()) {
                ctx.error(name.span, format!("duplicate parameter `{}` in action `{}`", name.text, a.name.text));
                continue;
            }
            let t = match type_idx.get(param.ty.text.as_str()) {
                Some(&t) => t,
                None => {
                    ctx.unknown(param.ty.span, "type", &param.ty.text, types.iter().map(|s| s.as_str()));
                    usize::MAX
                }
            };
            param_pos.insert(&name.text, param_names.len());
            param_names.push(name.text.clone());
            param_types.push(t);
        }

        let resolve_body = |atoms: &[Atom], ctx: &mut Ctx| -> Vec<ParamAtom> {
            let mut out = Vec::new();
            for atom in atoms {
                let Some(&pi) = pred_idx.get(atom.pred.text.as_str()) else {
                    ctx.unknown(atom.pred.span, "predicate", &atom.pred.text, preds.iter().map(|p| p.name.as_str()));
                    continue;
                };
                let pred = &preds[pi];
                if atom.args.len() != pred.param_types.len() {
                    ctx.error(
                        atom.span,
                        format!(
                            "predicate `{}` takes {} argument{}, got {}",
                            pred.name,
                            pred.param_types.len(),
                            if pred.param_types.len() == 1 { "" } else { "s" },
                            atom.args.len()
                        ),
                    );
                    continue;
                }
                let mut args = Vec::new();
                let mut ok = true;
                for (ai, arg) in atom.args.iter().enumerate() {
                    let Some(&pos) = param_pos.get(arg.text.as_str()) else {
                        ctx.unknown(arg.span, "parameter", &arg.text, param_names.iter().map(|s| s.as_str()));
                        ok = false;
                        continue;
                    };
                    let want = pred.param_types[ai];
                    let got = param_types[pos];
                    if want != got && want != usize::MAX && got != usize::MAX {
                        ctx.error(
                            arg.span,
                            format!(
                                "argument {} of `{}` must be of type `{}`, but `{}` is a `{}`",
                                ai + 1,
                                pred.name,
                                types[want],
                                arg.text,
                                types[got]
                            ),
                        );
                        ok = false;
                    }
                    args.push(pos);
                }
                if ok {
                    out.push(ParamAtom { pred: pi, args, span: atom.span });
                }
            }
            out
        };

        let pre = resolve_body(&a.pre, &mut ctx);
        let add = resolve_body(&a.add, &mut ctx);
        let del = resolve_body(&a.del, &mut ctx);
        actions.push(CheckedAction {
            name: a.name.text.clone(),
            param_names,
            param_types,
            pre,
            add,
            del,
            cost: a.cost.map(|(c, _)| c).unwrap_or(1),
        });
    }

    if ast.actions.is_empty() {
        ctx.diags.push(Diagnostic::error(
            FileId::Domain,
            ast.name.span,
            format!("domain `{}` declares no actions", ast.name.text),
        ));
    }

    if diags[before..].iter().any(|d| d.severity == crate::span::Severity::Error) {
        None
    } else {
        Some(CheckedDomain { name: ast.name.text.clone(), types, preds, actions })
    }
}

/// Check a problem AST against a checked domain.
pub fn check_problem(ast: &ProblemAst, dom: &CheckedDomain, diags: &mut Vec<Diagnostic>) -> Option<CheckedProblem> {
    let before = diags.len();
    let mut ctx = Ctx { file: FileId::Problem, diags };

    if ast.domain.text != dom.name {
        ctx.error(
            ast.domain.span,
            format!("problem targets domain `{}`, but the domain file declares `{}`", ast.domain.text, dom.name),
        );
    }

    let type_idx: FxHashMap<&str, usize> = dom.types.iter().enumerate().map(|(i, t)| (t.as_str(), i)).collect();
    let pred_idx: FxHashMap<&str, usize> = dom.preds.iter().enumerate().map(|(i, p)| (p.name.as_str(), i)).collect();

    let mut objects: Vec<String> = Vec::new();
    let mut object_types: Vec<usize> = Vec::new();
    let mut obj_idx: FxHashMap<&str, usize> = FxHashMap::default();
    for decl in &ast.objects {
        let ty = match type_idx.get(decl.ty.text.as_str()) {
            Some(&t) => t,
            None => {
                ctx.unknown(decl.ty.span, "type", &decl.ty.text, dom.types.iter().map(|s| s.as_str()));
                usize::MAX
            }
        };
        for name in &decl.names {
            if obj_idx.contains_key(name.text.as_str()) {
                ctx.error(name.span, format!("duplicate object `{}`", name.text));
                continue;
            }
            obj_idx.insert(&name.text, objects.len());
            objects.push(name.text.clone());
            object_types.push(ty);
        }
    }

    let resolve = |atoms: &[Atom], ctx: &mut Ctx| -> Vec<GroundAtom> {
        let mut out = Vec::new();
        for atom in atoms {
            let Some(&pi) = pred_idx.get(atom.pred.text.as_str()) else {
                ctx.unknown(atom.pred.span, "predicate", &atom.pred.text, dom.preds.iter().map(|p| p.name.as_str()));
                continue;
            };
            let pred = &dom.preds[pi];
            if atom.args.len() != pred.param_types.len() {
                ctx.error(
                    atom.span,
                    format!(
                        "predicate `{}` takes {} argument{}, got {}",
                        pred.name,
                        pred.param_types.len(),
                        if pred.param_types.len() == 1 { "" } else { "s" },
                        atom.args.len()
                    ),
                );
                continue;
            }
            let mut args = Vec::new();
            let mut ok = true;
            for (ai, arg) in atom.args.iter().enumerate() {
                let Some(&oi) = obj_idx.get(arg.text.as_str()) else {
                    ctx.unknown(arg.span, "object", &arg.text, objects.iter().map(|s| s.as_str()));
                    ok = false;
                    continue;
                };
                let want = pred.param_types[ai];
                let got = object_types[oi];
                if want != got && want != usize::MAX && got != usize::MAX {
                    ctx.error(
                        arg.span,
                        format!(
                            "argument {} of `{}` must be of type `{}`, but `{}` is a `{}`",
                            ai + 1,
                            pred.name,
                            dom.types[want],
                            arg.text,
                            dom.types[got]
                        ),
                    );
                    ok = false;
                }
                args.push(oi);
            }
            if ok {
                out.push(GroundAtom { pred: pi, args, span: atom.span });
            }
        }
        out
    };

    let init = resolve(&ast.init, &mut ctx);
    let goal = resolve(&ast.goal, &mut ctx);

    if ast.goal.is_empty() {
        ctx.error(ast.name.span, format!("problem `{}` has an empty goal", ast.name.text));
    }

    if diags[before..].iter().any(|d| d.severity == crate::span::Severity::Error) {
        None
    } else {
        Some(CheckedProblem { name: ast.name.text.clone(), objects, object_types, init, goal })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_domain, parse_problem};

    const DOM: &str = "\
domain log
type location
type truck
pred at(t: truck, l: location)
pred road(location, location)
action drive(t: truck, a: location, b: location)
  pre: at(t, a) road(a, b)
  add: at(t, b)
  del: at(t, a)
";

    fn checked_dom() -> CheckedDomain {
        let ast = parse_domain(DOM).unwrap();
        let mut diags = Vec::new();
        let dom = check_domain(&ast, &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
        dom.unwrap()
    }

    #[test]
    fn checks_clean_domain_and_problem() {
        let dom = checked_dom();
        assert_eq!(dom.actions[0].cost, 1);
        let past = parse_problem(
            "problem p domain log\nobjects t: truck\nobjects a b: location\ninit: at(t, a) road(a, b)\ngoal: at(t, b)\n",
        )
        .unwrap();
        let mut diags = Vec::new();
        let prob = check_problem(&past, &dom, &mut diags).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(prob.objects, vec!["t", "a", "b"]);
        assert_eq!(prob.init.len(), 2);
    }

    #[test]
    fn unknown_type_gets_hint() {
        let ast = parse_domain("domain d\ntype location\npred at(l: locaton)\naction a()\n").unwrap();
        let mut diags = Vec::new();
        assert!(check_domain(&ast, &mut diags).is_none());
        let d = diags.iter().find(|d| d.message.contains("unknown type")).unwrap();
        assert_eq!(d.help.as_deref(), Some("did you mean `location`?"));
    }

    #[test]
    fn arity_mismatch_caught() {
        let src = "domain d\ntype t\npred p(t)\naction a(x: t)\n  pre: p(x, x)\n";
        let ast = parse_domain(src).unwrap();
        let mut diags = Vec::new();
        assert!(check_domain(&ast, &mut diags).is_none());
        assert!(diags.iter().any(|d| d.message.contains("takes 1 argument, got 2")), "{diags:?}");
    }

    #[test]
    fn type_mismatch_caught() {
        let src = "domain d\ntype a\ntype b\npred p(a)\naction act(x: b)\n  pre: p(x)\n";
        let ast = parse_domain(src).unwrap();
        let mut diags = Vec::new();
        assert!(check_domain(&ast, &mut diags).is_none());
        assert!(diags.iter().any(|d| d.message.contains("must be of type `a`")), "{diags:?}");
    }

    #[test]
    fn undeclared_object_caught() {
        let dom = checked_dom();
        let past = parse_problem("problem p domain log\nobjects t: truck\ngoal: at(t, nowhere)\n").unwrap();
        let mut diags = Vec::new();
        assert!(check_problem(&past, &dom, &mut diags).is_none());
        assert!(diags.iter().any(|d| d.message.contains("unknown object `nowhere`")), "{diags:?}");
    }
}
