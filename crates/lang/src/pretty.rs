//! Canonical pretty-printer for DSL ASTs.
//!
//! Printing then reparsing yields a structurally identical AST (modulo
//! spans), which the property tests rely on; it is also what
//! `gaplan check --print` shows so users can see the canonical form.

use crate::ast::*;

fn atom(out: &mut String, a: &Atom) {
    out.push_str(&a.pred.text);
    out.push('(');
    for (i, arg) in a.args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&arg.text);
    }
    out.push(')');
}

fn atoms(out: &mut String, label: &str, list: &[Atom]) {
    if list.is_empty() {
        return;
    }
    out.push_str("  ");
    out.push_str(label);
    out.push(':');
    for a in list {
        out.push(' ');
        atom(out, a);
    }
    out.push('\n');
}

fn params(out: &mut String, list: &[Param]) {
    out.push('(');
    for (i, p) in list.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if let Some(name) = &p.name {
            out.push_str(&name.text);
            out.push_str(": ");
        }
        out.push_str(&p.ty.text);
    }
    out.push(')');
}

/// Canonical text of a domain AST.
pub fn print_domain(d: &DomainAst) -> String {
    let mut out = format!("domain {}\n", d.name.text);
    for ty in &d.types {
        out.push_str(&format!("type {}\n", ty.text));
    }
    for p in &d.preds {
        out.push_str(&format!("pred {}", p.name.text));
        params(&mut out, &p.params);
        out.push('\n');
    }
    for a in &d.actions {
        out.push_str(&format!("action {}", a.name.text));
        params(&mut out, &a.params);
        out.push('\n');
        atoms(&mut out, "pre", &a.pre);
        atoms(&mut out, "add", &a.add);
        atoms(&mut out, "del", &a.del);
        if let Some((c, _)) = a.cost {
            out.push_str(&format!("  cost: {c}\n"));
        }
    }
    out
}

/// Canonical text of a problem AST.
pub fn print_problem(p: &ProblemAst) -> String {
    let mut out = format!("problem {}\ndomain {}\n", p.name.text, p.domain.text);
    for decl in &p.objects {
        out.push_str("objects");
        for n in &decl.names {
            out.push(' ');
            out.push_str(&n.text);
        }
        out.push_str(&format!(": {}\n", decl.ty.text));
    }
    let mut section = |label: &str, list: &[Atom]| {
        out.push_str(label);
        out.push(':');
        for a in list {
            out.push(' ');
            atom(&mut out, a);
        }
        out.push('\n');
    };
    if !p.init.is_empty() {
        section("init", &p.init);
    }
    section("goal", &p.goal);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_domain, parse_problem};

    /// Strip spans so reparse comparison ignores layout.
    fn despan_domain(mut d: DomainAst) -> DomainAst {
        use crate::span::Span;
        let z = Span::new(0, 0);
        d.name.span = z;
        for t in &mut d.types {
            t.span = z;
        }
        for p in &mut d.preds {
            p.name.span = z;
            for param in &mut p.params {
                if let Some(n) = &mut param.name {
                    n.span = z;
                }
                param.ty.span = z;
            }
        }
        for a in &mut d.actions {
            a.name.span = z;
            for param in &mut a.params {
                if let Some(n) = &mut param.name {
                    n.span = z;
                }
                param.ty.span = z;
            }
            for atoms in [&mut a.pre, &mut a.add, &mut a.del] {
                for at in atoms.iter_mut() {
                    at.pred.span = z;
                    at.span = z;
                    for arg in &mut at.args {
                        arg.span = z;
                    }
                }
            }
            if let Some((_, s)) = &mut a.cost {
                *s = z;
            }
        }
        d
    }

    #[test]
    fn domain_roundtrips() {
        let src = "\
domain log
type location
pred road(location, location)
action hop(a: location, b: location)
  pre: road(a, b)
  add: road(b, a)
  cost: 3
";
        let ast = parse_domain(src).unwrap();
        let printed = print_domain(&ast);
        let reparsed = parse_domain(&printed).unwrap();
        assert_eq!(despan_domain(ast), despan_domain(reparsed));
        // Printing is a fixpoint: print(parse(print(x))) == print(x).
        assert_eq!(printed, print_domain(&parse_domain(&printed).unwrap()));
    }

    #[test]
    fn problem_print_parses_back() {
        let src = "problem p domain log\nobjects a b: location\ninit: road(a, b)\ngoal: road(b, a)\n";
        let ast = parse_problem(src).unwrap();
        let printed = print_problem(&ast);
        let reparsed = parse_problem(&printed).unwrap();
        assert_eq!(ast.objects.len(), reparsed.objects.len());
        assert_eq!(printed, print_problem(&reparsed));
    }
}
