//! Grounding: instantiate action schemas over a problem's objects and emit a
//! ground [`StripsProblem`].
//!
//! The grounder runs a delete-relaxed reachability fixpoint: starting from
//! the init facts, it repeatedly enumerates typed parameter bindings for
//! each action (objects in declaration order, parameters varying
//! rightmost-fastest) and fires every binding whose preconditions are all
//! reachable, adding its add-effects. Only ground actions that fired during
//! the fixpoint are emitted, which prunes operators that can never become
//! applicable (e.g. `drive` over disconnected locations). The enumeration
//! order is fully deterministic, so the same two files always produce a
//! byte-identical [`StripsProblem`] (and thus an identical signature).
//!
//! Ground names use call syntax without spaces: condition `at(box1,depot)`,
//! operator `drive(truck1,depot,port)`.

use rustc_hash::{FxHashMap, FxHashSet};

use gaplan_core::strips::{StripsBuilder, StripsProblem};

use crate::check::{CheckedAction, CheckedDomain, CheckedProblem, GroundAtom};
use crate::span::{Diagnostic, FileId, Severity};

/// Safety caps: grounding is user-driven, so refuse to explode rather than
/// OOM the service. Generous for blocks/logistics-scale domains.
const MAX_BINDINGS_PER_ACTION: u64 = 1_000_000;
const MAX_GROUND_OPS: usize = 100_000;
const MAX_CONDITIONS: usize = 8_192;

/// Size accounting from a grounding run, surfaced by `gaplan check`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroundStats {
    /// Objects declared by the problem.
    pub objects: usize,
    /// Distinct ground facts that appeared in init, goal, or a fired effect.
    pub conditions: usize,
    /// Ground operators emitted (fired during reachability).
    pub ops: usize,
    /// Total typed bindings enumerated across all actions.
    pub candidates: u64,
    /// Bindings discarded because their preconditions were unreachable.
    pub pruned: u64,
}

/// Name of a ground fact: `pred(obj,obj)`.
fn fact_name(dom: &CheckedDomain, prob: &CheckedProblem, pred: usize, args: &[usize]) -> String {
    let mut s = dom.preds[pred].name.clone();
    s.push('(');
    for (i, &a) in args.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&prob.objects[a]);
    }
    s.push(')');
    s
}

/// Name of a ground operator: `action(obj,obj)`.
fn op_name(act: &CheckedAction, prob: &CheckedProblem, binding: &[usize]) -> String {
    let mut s = act.name.clone();
    s.push('(');
    for (i, &o) in binding.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&prob.objects[o]);
    }
    s.push(')');
    s
}

/// A fact as (pred, args) — hashable key during the fixpoint.
type Fact = (usize, Vec<usize>);

fn atom_fact(atom: &GroundAtom) -> Fact {
    (atom.pred, atom.args.clone())
}

/// Ground `prob` over `dom`. On success returns the STRIPS problem plus
/// warnings (e.g. goal atoms that are provably unreachable) and stats.
pub fn ground(
    dom: &CheckedDomain,
    prob: &CheckedProblem,
    diags: &mut Vec<Diagnostic>,
) -> Option<(StripsProblem, GroundStats)> {
    let mut stats = GroundStats { objects: prob.objects.len(), ..GroundStats::default() };

    // Objects per type, in declaration order.
    let mut by_type: Vec<Vec<usize>> = vec![Vec::new(); dom.types.len()];
    for (oi, &ty) in prob.object_types.iter().enumerate() {
        by_type[ty].push(oi);
    }

    // Reachable fact set; insertion order is recorded so condition indices
    // are deterministic. Init and goal facts are always declared.
    let mut facts: FxHashSet<Fact> = FxHashSet::default();
    let mut fact_order: Vec<Fact> = Vec::new();
    let declare = |f: Fact, facts: &mut FxHashSet<Fact>, order: &mut Vec<Fact>| {
        if facts.insert(f.clone()) {
            order.push(f);
        }
    };
    for atom in &prob.init {
        declare(atom_fact(atom), &mut facts, &mut fact_order);
    }

    /// One ground operator retained from the fixpoint.
    struct GOp {
        name: String,
        pre: Vec<Fact>,
        add: Vec<Fact>,
        del: Vec<Fact>,
        cost: u32,
    }
    let mut ops: Vec<GOp> = Vec::new();
    let mut fired: FxHashSet<String> = FxHashSet::default();

    // Fixpoint: keep sweeping actions until no new facts appear.
    loop {
        let facts_before = fact_order.len();
        for act in &dom.actions {
            // Typed cartesian product over parameters, rightmost-fastest.
            let domains: Vec<&[usize]> = act.param_types.iter().map(|&t| by_type[t].as_slice()).collect();
            let total = domains.iter().try_fold(1u64, |a, d| a.checked_mul(d.len() as u64));
            if total.is_none_or(|t| t > MAX_BINDINGS_PER_ACTION) {
                diags.push(Diagnostic::bare(
                    Severity::Error,
                    FileId::Problem,
                    format!(
                        "action `{}` has {} possible bindings (limit {MAX_BINDINGS_PER_ACTION}); \
                         reduce object counts",
                        act.name,
                        total.map(|t| t.to_string()).unwrap_or_else(|| "over 2^64".to_string())
                    ),
                ));
                return None;
            }
            if domains.iter().any(|d| d.is_empty()) {
                continue; // some parameter type has no objects
            }
            let mut binding: Vec<usize> = vec![0; domains.len()];
            'enumerate: loop {
                stats.candidates += 1;
                let objs: Vec<usize> = binding.iter().enumerate().map(|(i, &j)| domains[i][j]).collect();
                let pre_ok = act.pre.iter().all(|p| {
                    let f: Fact = (p.pred, p.args.iter().map(|&a| objs[a]).collect());
                    facts.contains(&f)
                });
                if pre_ok {
                    let name = op_name(act, prob, &objs);
                    if fired.insert(name.clone()) {
                        let inst = |atoms: &[crate::check::ParamAtom]| -> Vec<Fact> {
                            atoms.iter().map(|p| (p.pred, p.args.iter().map(|&a| objs[a]).collect())).collect()
                        };
                        let add = inst(&act.add);
                        for f in &add {
                            declare(f.clone(), &mut facts, &mut fact_order);
                        }
                        ops.push(GOp { name, pre: inst(&act.pre), add, del: inst(&act.del), cost: act.cost });
                        if ops.len() > MAX_GROUND_OPS {
                            diags.push(Diagnostic::bare(
                                Severity::Error,
                                FileId::Problem,
                                format!("grounding produced more than {MAX_GROUND_OPS} operators; reduce the problem"),
                            ));
                            return None;
                        }
                    }
                } else {
                    stats.pruned += 1;
                }
                // Advance rightmost-fastest.
                let mut k = binding.len();
                loop {
                    if k == 0 {
                        break 'enumerate;
                    }
                    k -= 1;
                    binding[k] += 1;
                    if binding[k] < domains[k].len() {
                        break;
                    }
                    binding[k] = 0;
                }
            }
        }
        if fact_order.len() == facts_before {
            break;
        }
    }

    // Goal facts are declared as conditions even when unreachable, but the
    // user gets a warning: the GA can never satisfy such a goal.
    for atom in &prob.goal {
        let f = atom_fact(atom);
        if !facts.contains(&f) {
            diags.push(
                Diagnostic::warning(
                    FileId::Problem,
                    atom.span,
                    format!(
                        "goal `{}` is unreachable from init under any action sequence",
                        fact_name(dom, prob, f.0, &f.1)
                    ),
                )
                .with_help("the problem is unsolvable as written; check init facts and action effects"),
            );
            declare(f, &mut facts, &mut fact_order);
        }
    }

    if ops.is_empty() {
        diags.push(Diagnostic::bare(
            Severity::Error,
            FileId::Problem,
            "no ground action is applicable from the initial state (grounding produced zero operators)",
        ));
        return None;
    }
    if fact_order.len() > MAX_CONDITIONS {
        diags.push(Diagnostic::bare(
            Severity::Error,
            FileId::Problem,
            format!("grounding produced {} conditions (limit {MAX_CONDITIONS}); reduce the problem", fact_order.len()),
        ));
        return None;
    }

    // Emit through StripsBuilder in deterministic order. Fact names are
    // unique (fact_order is deduplicated), so none of these calls can fail;
    // any error here is an internal invariant break and is surfaced as such.
    let emit = || -> gaplan_core::Result<StripsProblem> {
        let mut names: FxHashMap<&Fact, String> = FxHashMap::default();
        let mut builder = StripsBuilder::new();
        for f in &fact_order {
            let name = fact_name(dom, prob, f.0, &f.1);
            builder.condition(&name)?;
            names.insert(f, name);
        }
        for op in &ops {
            let pre: Vec<&str> = op.pre.iter().map(|f| names[f].as_str()).collect();
            let add: Vec<&str> = op.add.iter().map(|f| names[f].as_str()).collect();
            // Deletes of facts that never become reachable can't be true at
            // execution time either; drop them rather than declaring dead
            // conditions.
            let del: Vec<&str> = op.del.iter().filter_map(|f| names.get(f).map(|s| s.as_str())).collect();
            builder.op(&op.name, &pre, &add, &del, op.cost as f64)?;
        }
        let init: Vec<String> = prob.init.iter().map(|a| fact_name(dom, prob, a.pred, &a.args)).collect();
        let goal: Vec<String> = prob.goal.iter().map(|a| fact_name(dom, prob, a.pred, &a.args)).collect();
        builder.init(&init.iter().map(|s| s.as_str()).collect::<Vec<_>>())?;
        builder.goal(&goal.iter().map(|s| s.as_str()).collect::<Vec<_>>())?;
        builder.build()
    };

    stats.conditions = fact_order.len();
    stats.ops = ops.len();
    match emit() {
        Ok(p) => Some((p, stats)),
        Err(e) => {
            diags.push(Diagnostic::bare(Severity::Error, FileId::Problem, format!("internal grounding error: {e}")));
            None
        }
    }
}
