//! Abstract syntax for the planning DSL, with spans on every name so the
//! checker can point diagnostics at the exact source token.

use crate::span::Span;

/// An identifier with its source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Name {
    pub text: String,
    pub span: Span,
}

/// A typed parameter in a predicate or action declaration: `p: package`.
/// Predicate declarations may omit the parameter name (`pred at(package)`),
/// in which case `name` is `None` and only the type matters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    pub name: Option<Name>,
    pub ty: Name,
}

/// `pred at(p: package, l: location)`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredDecl {
    pub name: Name,
    pub params: Vec<Param>,
}

/// An applied predicate: `at(box1, depot)` — in action bodies the arguments
/// are parameter names, in `init:`/`goal:` they are object names.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    pub pred: Name,
    pub args: Vec<Name>,
    /// Span of the whole atom, `pred(` through `)`.
    pub span: Span,
}

/// `action drive(t: truck, from: location, to: location)` with its body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ActionDecl {
    pub name: Name,
    pub params: Vec<Param>,
    pub pre: Vec<Atom>,
    pub add: Vec<Atom>,
    pub del: Vec<Atom>,
    /// Cost with the span of its number token; defaults to 1 when absent.
    pub cost: Option<(u32, Span)>,
}

/// A parsed domain file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DomainAst {
    pub name: Name,
    pub types: Vec<Name>,
    pub preds: Vec<PredDecl>,
    pub actions: Vec<ActionDecl>,
}

/// One `objects a b c: type` line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectDecl {
    pub names: Vec<Name>,
    pub ty: Name,
}

/// A parsed problem file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProblemAst {
    pub name: Name,
    /// The `domain NAME` reference this problem targets.
    pub domain: Name,
    pub objects: Vec<ObjectDecl>,
    pub init: Vec<Atom>,
    pub goal: Vec<Atom>,
}
