//! Recursive-descent parser for the planning DSL.
//!
//! Domain grammar:
//!
//! ```text
//! domain    := "domain" IDENT decl*
//! decl      := "type" IDENT
//!            | "pred" IDENT "(" params? ")"
//!            | "action" IDENT "(" params? ")" body*
//! params    := param ("," param)*
//! param     := IDENT (":" IDENT)?          # bare IDENT = unnamed, type-only
//! body      := ("pre" | "add" | "del") ":" atom*
//!            | "cost" ":" NUMBER
//! atom      := IDENT "(" (IDENT ("," IDENT)*)? ")"
//! ```
//!
//! Problem grammar:
//!
//! ```text
//! problem   := "problem" IDENT "domain" IDENT section*
//! section   := "objects" IDENT+ ":" IDENT
//!            | "init" ":" atom*
//!            | "goal" ":" atom*
//! ```
//!
//! Atom lists are delimited by lookahead: an `IDENT` starts a new atom only
//! if the next token is `(`; otherwise it begins the next declaration or
//! section. Keywords (`domain`, `type`, `pred`, `action`, `problem`,
//! `objects`, `init`, `goal`, `pre`, `add`, `del`, `cost`) are reserved and
//! rejected as names.

use crate::ast::*;
use crate::lexer::{describe, lex, TokKind, Token};
use crate::span::{Diagnostic, FileId, Span};

const RESERVED: &[&str] =
    &["domain", "problem", "type", "pred", "action", "objects", "init", "goal", "pre", "add", "del", "cost"];

pub fn is_reserved(word: &str) -> bool {
    RESERVED.contains(&word)
}

struct Parser<'s> {
    src: &'s str,
    file: FileId,
    toks: Vec<Token>,
    pos: usize,
}

type PResult<T> = Result<T, Diagnostic>;

impl<'s> Parser<'s> {
    fn peek(&self) -> Token {
        self.toks[self.pos]
    }

    fn peek2(&self) -> Token {
        self.toks[(self.pos + 1).min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos];
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn text(&self, tok: Token) -> &'s str {
        tok.text(self.src)
    }

    /// Is the upcoming token the keyword `kw`?
    fn at_keyword(&self, kw: &str) -> bool {
        let t = self.peek();
        t.kind == TokKind::Ident && self.text(t) == kw
    }

    fn expect(&mut self, kind: TokKind, what: &str) -> PResult<Token> {
        let t = self.peek();
        if t.kind == kind {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(self.file, t.span, format!("expected {what}, found {}", describe(t, self.src))))
        }
    }

    /// Expect a non-reserved identifier used as a name.
    fn name(&mut self, what: &str) -> PResult<Name> {
        let t = self.expect(TokKind::Ident, what)?;
        let text = self.text(t);
        if is_reserved(text) {
            return Err(Diagnostic::error(
                self.file,
                t.span,
                format!("`{text}` is a reserved word and cannot be used as {what}"),
            ));
        }
        Ok(Name { text: text.to_string(), span: t.span })
    }

    /// Consume the keyword `kw` (already checked via `at_keyword`).
    fn keyword(&mut self, kw: &str) -> PResult<Token> {
        let t = self.peek();
        if t.kind == TokKind::Ident && self.text(t) == kw {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(self.file, t.span, format!("expected `{kw}`, found {}", describe(t, self.src))))
        }
    }

    /// `( param ("," param)* )` — trailing comma not allowed.
    fn params(&mut self) -> PResult<Vec<Param>> {
        self.expect(TokKind::LParen, "`(`")?;
        let mut out = Vec::new();
        if self.peek().kind == TokKind::RParen {
            self.bump();
            return Ok(out);
        }
        loop {
            let first = self.name("a parameter")?;
            if self.peek().kind == TokKind::Colon {
                self.bump();
                let ty = self.name("a type name")?;
                out.push(Param { name: Some(first), ty });
            } else {
                // Bare ident: unnamed, type-only parameter (pred decls).
                out.push(Param { name: None, ty: first });
            }
            match self.peek().kind {
                TokKind::Comma => {
                    self.bump();
                }
                TokKind::RParen => {
                    self.bump();
                    return Ok(out);
                }
                _ => {
                    let t = self.peek();
                    return Err(Diagnostic::error(
                        self.file,
                        t.span,
                        format!("expected `,` or `)`, found {}", describe(t, self.src)),
                    ));
                }
            }
        }
    }

    /// One atom: `IDENT ( args )`. Caller has verified IDENT `(` lookahead.
    fn atom(&mut self) -> PResult<Atom> {
        let pred = self.name("a predicate name")?;
        self.expect(TokKind::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek().kind != TokKind::RParen {
            loop {
                args.push(self.name("an argument")?);
                match self.peek().kind {
                    TokKind::Comma => {
                        self.bump();
                    }
                    TokKind::RParen => break,
                    _ => {
                        let t = self.peek();
                        return Err(Diagnostic::error(
                            self.file,
                            t.span,
                            format!("expected `,` or `)`, found {}", describe(t, self.src)),
                        ));
                    }
                }
            }
        }
        let close = self.bump(); // RParen
        let span = Span::new(pred.span.start, close.span.end);
        Ok(Atom { pred, args, span })
    }

    /// Zero or more atoms: stops when the next token is not `IDENT (`.
    fn atom_list(&mut self) -> PResult<Vec<Atom>> {
        let mut out = Vec::new();
        while self.peek().kind == TokKind::Ident
            && !is_reserved(self.text(self.peek()))
            && self.peek2().kind == TokKind::LParen
        {
            out.push(self.atom()?);
        }
        Ok(out)
    }

    fn parse_domain(&mut self) -> PResult<DomainAst> {
        self.keyword("domain")?;
        let name = self.name("a domain name")?;
        let mut dom = DomainAst { name, types: Vec::new(), preds: Vec::new(), actions: Vec::new() };
        loop {
            let t = self.peek();
            if t.kind == TokKind::Eof {
                break;
            }
            if self.at_keyword("type") {
                self.bump();
                dom.types.push(self.name("a type name")?);
            } else if self.at_keyword("pred") {
                self.bump();
                let name = self.name("a predicate name")?;
                let params = self.params()?;
                dom.preds.push(PredDecl { name, params });
            } else if self.at_keyword("action") {
                self.bump();
                dom.actions.push(self.action()?);
            } else {
                return Err(Diagnostic::error(
                    self.file,
                    t.span,
                    format!("expected `type`, `pred` or `action`, found {}", describe(t, self.src)),
                ));
            }
        }
        Ok(dom)
    }

    fn action(&mut self) -> PResult<ActionDecl> {
        let name = self.name("an action name")?;
        let params = self.params()?;
        let mut act = ActionDecl { name, params, pre: Vec::new(), add: Vec::new(), del: Vec::new(), cost: None };
        loop {
            // A body section is `pre:` / `add:` / `del:` / `cost:`.
            let t = self.peek();
            if t.kind != TokKind::Ident || self.peek2().kind != TokKind::Colon {
                break;
            }
            let kw = self.text(t);
            match kw {
                "pre" | "add" | "del" => {
                    self.bump();
                    self.bump(); // colon
                    let atoms = self.atom_list()?;
                    match kw {
                        "pre" => act.pre.extend(atoms),
                        "add" => act.add.extend(atoms),
                        _ => act.del.extend(atoms),
                    }
                }
                "cost" => {
                    let kw_tok = self.bump();
                    self.bump(); // colon
                    let num = self.expect(TokKind::Number, "a cost number")?;
                    let text = self.text(num);
                    let value: u32 = text.parse().map_err(|_| {
                        Diagnostic::error(self.file, num.span, format!("cost `{text}` does not fit in u32"))
                    })?;
                    if value == 0 {
                        return Err(Diagnostic::error(self.file, num.span, "cost must be at least 1"));
                    }
                    if act.cost.is_some() {
                        return Err(Diagnostic::error(
                            self.file,
                            kw_tok.span,
                            format!("duplicate `cost:` for action `{}`", act.name.text),
                        ));
                    }
                    act.cost = Some((value, num.span));
                }
                _ => break,
            }
        }
        Ok(act)
    }

    fn parse_problem(&mut self) -> PResult<ProblemAst> {
        self.keyword("problem")?;
        let name = self.name("a problem name")?;
        self.keyword("domain")?;
        let domain = self.name("a domain name")?;
        let mut prob = ProblemAst { name, domain, objects: Vec::new(), init: Vec::new(), goal: Vec::new() };
        let mut seen_init: Option<Span> = None;
        let mut seen_goal: Option<Span> = None;
        loop {
            let t = self.peek();
            if t.kind == TokKind::Eof {
                break;
            }
            if self.at_keyword("objects") {
                self.bump();
                let mut names = vec![self.name("an object name")?];
                while self.peek().kind == TokKind::Ident && !is_reserved(self.text(self.peek())) {
                    names.push(self.name("an object name")?);
                }
                self.expect(TokKind::Colon, "`:` and a type name")?;
                let ty = self.name("a type name")?;
                prob.objects.push(ObjectDecl { names, ty });
            } else if self.at_keyword("init") {
                let kw = self.bump();
                if seen_init.is_some() {
                    return Err(Diagnostic::error(self.file, kw.span, "duplicate `init:` section"));
                }
                seen_init = Some(kw.span);
                self.expect(TokKind::Colon, "`:`")?;
                prob.init = self.atom_list()?;
            } else if self.at_keyword("goal") {
                let kw = self.bump();
                if seen_goal.is_some() {
                    return Err(Diagnostic::error(self.file, kw.span, "duplicate `goal:` section"));
                }
                seen_goal = Some(kw.span);
                self.expect(TokKind::Colon, "`:`")?;
                prob.goal = self.atom_list()?;
            } else {
                return Err(Diagnostic::error(
                    self.file,
                    t.span,
                    format!("expected `objects`, `init` or `goal`, found {}", describe(t, self.src)),
                ));
            }
        }
        if seen_goal.is_none() {
            return Err(Diagnostic::error(self.file, self.peek().span, "problem has no `goal:` section"));
        }
        Ok(prob)
    }
}

/// Parse a domain file.
pub fn parse_domain(src: &str) -> Result<DomainAst, Diagnostic> {
    let toks = lex(src, FileId::Domain)?;
    Parser { src, file: FileId::Domain, toks, pos: 0 }.parse_domain()
}

/// Parse a problem file.
pub fn parse_problem(src: &str) -> Result<ProblemAst, Diagnostic> {
    let toks = lex(src, FileId::Problem)?;
    Parser { src, file: FileId::Problem, toks, pos: 0 }.parse_problem()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOM: &str = "\
domain logistics
type location
type truck
pred at(p: truck, l: location)
pred road(location, location)
action drive(t: truck, from: location, to: location)
  pre: at(t, from) road(from, to)
  add: at(t, to)
  del: at(t, from)
  cost: 2
";

    #[test]
    fn parses_domain() {
        let d = parse_domain(DOM).unwrap();
        assert_eq!(d.name.text, "logistics");
        assert_eq!(d.types.len(), 2);
        assert_eq!(d.preds.len(), 2);
        assert_eq!(d.preds[1].params[0].name, None);
        let a = &d.actions[0];
        assert_eq!(a.pre.len(), 2);
        assert_eq!(a.add.len(), 1);
        assert_eq!(a.del.len(), 1);
        assert_eq!(a.cost.map(|(c, _)| c), Some(2));
    }

    #[test]
    fn parses_problem() {
        let p = parse_problem(
            "problem p1 domain logistics\nobjects t1: truck\nobjects a b: location\ninit: at(t1, a) road(a, b)\ngoal: at(t1, b)\n",
        )
        .unwrap();
        assert_eq!(p.objects.len(), 2);
        assert_eq!(p.objects[1].names.len(), 2);
        assert_eq!(p.init.len(), 2);
        assert_eq!(p.goal.len(), 1);
    }

    #[test]
    fn reserved_word_as_name_errors() {
        let err = parse_domain("domain goal").unwrap_err();
        assert!(err.message.contains("reserved"), "{}", err.message);
    }

    #[test]
    fn duplicate_cost_errors() {
        let src = "domain d\naction a()\n  cost: 1\n  cost: 2\n";
        let err = parse_domain(src).unwrap_err();
        assert!(err.message.contains("duplicate `cost:`"), "{}", err.message);
    }

    #[test]
    fn missing_goal_errors() {
        let err = parse_problem("problem p domain d\ninit: \n").unwrap_err();
        assert!(err.message.contains("no `goal:`"), "{}", err.message);
    }
}
