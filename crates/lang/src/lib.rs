//! gaplan-lang: a small typed planning DSL compiled to ground STRIPS.
//!
//! The language is PDDL-flavored but line-light: a *domain* file declares
//! types, predicates over typed parameters, and parameterized actions with
//! `pre:/add:/del:/cost:` sections; a *problem* file declares typed objects,
//! an initial state, and a goal. [`compile`] parses both, type-checks them,
//! grounds the actions over the problem's objects with delete-relaxed
//! reachability pruning, and returns a [`gaplan_core::strips::StripsProblem`]
//! that plugs into every existing layer (decode caches, signatures,
//! checkpoints, islands, the TCP service) unchanged.
//!
//! ```text
//! domain logistics                          problem logistics-1
//! type location                             domain logistics
//! type truck                                objects depot port: location
//! pred at(t: truck, l: location)            objects t1: truck
//! pred road(location, location)             init: at(t1, depot) road(depot, port)
//! action drive(t: truck, a: location,       goal: at(t1, port)
//!              b: location)
//!   pre: at(t, a) road(a, b)
//!   add: at(t, b)
//!   del: at(t, a)
//!   cost: 2
//! ```
//!
//! All failures are reported as span-carrying [`Diagnostic`]s with caret
//! snippets and "did you mean" hints; [`CompileError::render`] formats the
//! whole batch against the two sources.

pub mod ast;
pub mod check;
pub mod ground;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;

pub use check::{CheckedDomain, CheckedProblem};
pub use ground::GroundStats;
pub use parser::{parse_domain, parse_problem};
pub use span::{render_legacy_parse, Diagnostic, FileId, Severity, Span};

use gaplan_core::strips::StripsProblem;

/// A successful compilation: the ground problem plus any warnings.
#[derive(Debug)]
pub struct Compiled {
    pub strips: StripsProblem,
    pub warnings: Vec<Diagnostic>,
    pub stats: GroundStats,
}

/// A failed compilation: every diagnostic gathered before the failing stage
/// stopped (errors and warnings, in source order per stage).
#[derive(Debug)]
pub struct CompileError {
    pub diagnostics: Vec<Diagnostic>,
}

impl CompileError {
    /// Render all diagnostics against their sources, separated by blank
    /// lines. `domain_name`/`problem_name` are display names (paths).
    pub fn render(&self, domain_name: &str, domain_src: &str, problem_name: &str, problem_src: &str) -> String {
        render_diagnostics(&self.diagnostics, domain_name, domain_src, problem_name, problem_src)
    }

    /// Single-line summary (first error message), for wire errors.
    pub fn summary(&self) -> String {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .or(self.diagnostics.first())
            .map(|d| d.message.clone())
            .unwrap_or_else(|| "compilation failed".to_string())
    }
}

/// Render a batch of diagnostics against the two compilation sources.
pub fn render_diagnostics(
    diags: &[Diagnostic],
    domain_name: &str,
    domain_src: &str,
    problem_name: &str,
    problem_src: &str,
) -> String {
    let mut out = String::new();
    for d in diags {
        if !out.is_empty() {
            out.push('\n');
        }
        match d.file {
            FileId::Domain => out.push_str(&d.render(domain_name, domain_src)),
            FileId::Problem => out.push_str(&d.render(problem_name, problem_src)),
        }
    }
    out
}

/// Parse, check, and ground a domain/problem pair.
pub fn compile(domain_src: &str, problem_src: &str) -> Result<Compiled, CompileError> {
    let mut diags: Vec<Diagnostic> = Vec::new();

    let dom_ast = match parse_domain(domain_src) {
        Ok(a) => Some(a),
        Err(d) => {
            diags.push(d);
            None
        }
    };
    let prob_ast = match parse_problem(problem_src) {
        Ok(a) => Some(a),
        Err(d) => {
            diags.push(d);
            None
        }
    };
    let (Some(dom_ast), Some(prob_ast)) = (dom_ast, prob_ast) else {
        return Err(CompileError { diagnostics: diags });
    };

    let Some(dom) = check::check_domain(&dom_ast, &mut diags) else {
        return Err(CompileError { diagnostics: diags });
    };
    let Some(prob) = check::check_problem(&prob_ast, &dom, &mut diags) else {
        return Err(CompileError { diagnostics: diags });
    };

    let Some((strips, stats)) = ground::ground(&dom, &prob, &mut diags) else {
        return Err(CompileError { diagnostics: diags });
    };
    // Anything left at this point is warnings (errors would have bailed).
    Ok(Compiled { strips, warnings: diags, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::domain::{Domain, DomainExt};

    const DOM: &str = "\
domain log
type location
type truck
pred at(t: truck, l: location)
pred road(location, location)
action drive(t: truck, a: location, b: location)
  pre: at(t, a) road(a, b)
  add: at(t, b)
  del: at(t, a)
  cost: 2
";
    const PROB: &str = "\
problem p1
domain log
objects depot port: location
objects t1: truck
init: at(t1, depot) road(depot, port) road(port, depot)
goal: at(t1, port)
";

    #[test]
    fn compiles_and_grounds() {
        let c = compile(DOM, PROB).unwrap();
        assert!(c.warnings.is_empty(), "{:?}", c.warnings);
        assert_eq!(c.stats.objects, 3);
        // drive fires for (t1, depot, port) and (t1, port, depot); identity
        // moves like (t1, depot, depot) are pruned (no road(depot, depot)).
        assert_eq!(c.stats.ops, 2);
        let ops: Vec<&str> = c.strips.operators().iter().map(|o| o.name.as_str()).collect();
        assert!(ops.contains(&"drive(t1,depot,port)"), "{ops:?}");
        // The one-step plan reaches the goal.
        let init = c.strips.initial_state();
        assert!(!c.strips.valid_ops_vec(&init).is_empty());
    }

    #[test]
    fn compile_is_deterministic() {
        let a = compile(DOM, PROB).unwrap().strips.signature();
        let b = compile(DOM, PROB).unwrap().strips.signature();
        assert_eq!(a, b);
    }

    #[test]
    fn unreachable_goal_warns() {
        let prob = "\
problem p2
domain log
objects depot port island: location
objects t1: truck
init: at(t1, depot) road(depot, port)
goal: at(t1, island)
";
        let c = compile(DOM, prob).unwrap();
        assert_eq!(c.warnings.len(), 1);
        assert!(c.warnings[0].message.contains("unreachable"), "{:?}", c.warnings);
    }

    #[test]
    fn errors_accumulate_across_files() {
        let err = compile("domain d\n!", "problem p domain d\n!").unwrap_err();
        assert_eq!(err.diagnostics.len(), 2);
        assert!(!err.summary().is_empty());
    }
}
