//! Hand-written lexer for the planning DSL.
//!
//! Tokens are identifiers (letters, digits, `-`, `_`; must start with a
//! letter or `_`), non-negative integers, and the punctuation `( ) , :`.
//! `#` starts a comment running to end of line. Whitespace is insignificant.

use crate::span::{Diagnostic, FileId, Span};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    LParen,
    RParen,
    Comma,
    Colon,
    Eof,
}

#[derive(Clone, Copy, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub span: Span,
}

impl Token {
    /// The source text of this token.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.span.start..self.span.end]
    }
}

/// Human-readable token description for error messages.
pub fn describe(tok: Token, src: &str) -> String {
    match tok.kind {
        TokKind::Eof => "end of file".to_string(),
        _ => format!("`{}`", tok.text(src)),
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'-' || b == b'_'
}

/// Tokenize `src`, returning the token stream (always Eof-terminated) or a
/// diagnostic for the first unexpected byte.
pub fn lex(src: &str, file: FileId) -> Result<Vec<Token>, Diagnostic> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                toks.push(Token { kind: TokKind::LParen, span: Span::new(i, i + 1) });
                i += 1;
            }
            b')' => {
                toks.push(Token { kind: TokKind::RParen, span: Span::new(i, i + 1) });
                i += 1;
            }
            b',' => {
                toks.push(Token { kind: TokKind::Comma, span: Span::new(i, i + 1) });
                i += 1;
            }
            b':' => {
                toks.push(Token { kind: TokKind::Colon, span: Span::new(i, i + 1) });
                i += 1;
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // `12abc` is one bad token, not a number then an ident.
                if i < bytes.len() && is_ident_start(bytes[i]) {
                    while i < bytes.len() && is_ident_continue(bytes[i]) {
                        i += 1;
                    }
                    return Err(Diagnostic::error(
                        file,
                        Span::new(start, i),
                        format!("malformed number `{}`", &src[start..i]),
                    )
                    .with_help("identifiers must start with a letter or `_`"));
                }
                toks.push(Token { kind: TokKind::Number, span: Span::new(start, i) });
            }
            _ if is_ident_start(b) => {
                let start = i;
                while i < bytes.len() && is_ident_continue(bytes[i]) {
                    i += 1;
                }
                toks.push(Token { kind: TokKind::Ident, span: Span::new(start, i) });
            }
            _ => {
                // Show printable bytes literally, others as \xNN.
                let shown = if b.is_ascii_graphic() { format!("`{}`", b as char) } else { format!("byte 0x{b:02x}") };
                return Err(Diagnostic::error(file, Span::new(i, i + 1), format!("unexpected character {shown}")));
            }
        }
    }
    toks.push(Token { kind: TokKind::Eof, span: Span::point(src.len()) });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_mixed_tokens() {
        let src = "action drive(t: truck) # comment\n  cost: 2\n";
        let toks = lex(src, FileId::Domain).unwrap();
        let kinds: Vec<TokKind> = toks.iter().map(|t| t.kind).collect();
        use TokKind::*;
        assert_eq!(kinds, vec![Ident, Ident, LParen, Ident, Colon, Ident, RParen, Ident, Colon, Number, Eof]);
        assert_eq!(toks[1].text(src), "drive");
        assert_eq!(toks[9].text(src), "2");
    }

    #[test]
    fn rejects_stray_bytes() {
        let err = lex("type a$b", FileId::Domain).unwrap_err();
        assert!(err.message.contains('$'), "{}", err.message);
    }

    #[test]
    fn rejects_malformed_number() {
        let err = lex("cost: 12abc", FileId::Domain).unwrap_err();
        assert!(err.message.contains("12abc"), "{}", err.message);
    }
}
