//! Source spans and rustc-style diagnostics for the planning DSL.
//!
//! A [`Span`] is a half-open byte range into one of the two source files of a
//! compilation (domain or problem). [`Diagnostic`] carries a severity, the
//! file it points at, an optional span, a message, and an optional `help`
//! line ("did you mean ...?"). Rendering produces a caret snippet:
//!
//! ```text
//! error: unknown type `locaton`
//!   --> logistics.gap:4:12
//!    |
//!  4 | pred at(p: locaton)
//!    |            ^^^^^^^
//!    = help: did you mean `location`?
//! ```

/// Half-open byte range `[start, end)` into a source string.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Zero-width span at a byte offset (end-of-file errors).
    pub fn point(at: usize) -> Self {
        Span { start: at, end: at }
    }
}

/// Which of the two compilation inputs a diagnostic points at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileId {
    Domain,
    Problem,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// One diagnostic message, optionally anchored to a source span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub file: FileId,
    pub span: Option<Span>,
    pub message: String,
    pub help: Option<String>,
}

impl Diagnostic {
    pub fn error(file: FileId, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Error, file, span: Some(span), message: message.into(), help: None }
    }

    pub fn warning(file: FileId, span: Span, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, file, span: Some(span), message: message.into(), help: None }
    }

    /// Diagnostic with no source anchor (e.g. grounding blow-up).
    pub fn bare(severity: Severity, file: FileId, message: impl Into<String>) -> Self {
        Diagnostic { severity, file, span: None, message: message.into(), help: None }
    }

    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Render this diagnostic against its source text.
    ///
    /// `name` is the display name of the file (path or synthetic like
    /// `<domain>`), `src` its full contents.
    pub fn render(&self, name: &str, src: &str) -> String {
        let label = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut out = format!("{label}: {}\n", self.message);
        if let Some(span) = self.span {
            let (line, col) = line_col(src, span.start);
            out.push_str(&format!("  --> {name}:{line}:{col}\n"));
            out.push_str(&snippet(src, span));
        } else {
            out.push_str(&format!("  --> {name}\n"));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("   = help: {help}\n"));
        }
        out
    }
}

/// 1-based (line, column) of a byte offset. Columns count bytes (the DSL is
/// effectively ASCII); offsets past the end clamp to the last position.
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let mut line = 1usize;
    let mut line_start = 0usize;
    for (i, b) in src.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    (line, offset - line_start + 1)
}

/// The full text of the line containing `offset` (without trailing newline).
fn line_text(src: &str, offset: usize) -> &str {
    let offset = offset.min(src.len());
    let start = src[..offset].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let end = src[offset..].find('\n').map(|i| offset + i).unwrap_or(src.len());
    &src[start..end]
}

/// Caret snippet for a span: gutter, source line, underline.
fn snippet(src: &str, span: Span) -> String {
    let (line, col) = line_col(src, span.start);
    let text = line_text(src, span.start);
    // Underline width: span bytes on this line, at least 1, never past EOL.
    let on_line = span.end.saturating_sub(span.start).max(1);
    let avail = text.len().saturating_sub(col - 1).max(1);
    let width = on_line.min(avail);
    let gut = line.to_string();
    let pad = " ".repeat(gut.len());
    let mut out = String::new();
    out.push_str(&format!(" {pad} |\n"));
    out.push_str(&format!(" {gut} | {text}\n"));
    out.push_str(&format!(" {pad} | {}{}\n", " ".repeat(col - 1), "^".repeat(width)));
    out
}

/// Closest declared name to `unknown` within an edit-distance budget of
/// `max(1, len/3)`, for "did you mean" hints. Ties break toward the earliest
/// candidate so output is deterministic.
pub fn did_you_mean<'a>(unknown: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    let budget = (unknown.len() / 3).max(1);
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        if cand == unknown {
            continue;
        }
        let d = edit_distance(unknown, cand);
        if d <= budget && best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, c)| c)
}

/// Restricted Damerau-Levenshtein (optimal string alignment) distance:
/// Levenshtein plus adjacent transposition at cost 1, so `blokc → block`
/// counts as one edit — typos swap letters far more often than they need
/// two independent substitutions. O(len(a)·len(b)) with three rolling rows.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<u8> = a.bytes().collect();
    let b: Vec<u8> = b.bytes().collect();
    let mut prev2: Vec<usize> = vec![0; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { 0 } else { 1 };
            let mut d = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                d = d.min(prev2[j - 1] + 1);
            }
            cur.push(d);
        }
        prev2 = std::mem::replace(&mut prev, cur);
    }
    prev[b.len()]
}

/// Render a legacy ground-STRIPS `Error::Parse { line, msg }` with a caret
/// snippet, for the CLI. The legacy parser reports 1-based lines and often
/// backticks the offending token in `msg`; when that token occurs on the
/// line we underline it, otherwise the whole line.
pub fn render_legacy_parse(name: &str, src: &str, line: usize, msg: &str) -> String {
    let mut out = format!("error: {msg}\n");
    if line == 0 || line > src.lines().count() {
        out.push_str(&format!("  --> {name}:{line}\n"));
        return out;
    }
    let line_start: usize = src.lines().take(line - 1).map(|l| l.len() + 1).sum();
    let text = src.lines().nth(line - 1).unwrap_or("");
    // Pull `token` out of the message, if present, and find it on the line.
    let token = msg.split('`').nth(1).filter(|t| !t.is_empty());
    let (col, width) = match token.and_then(|t| text.find(t).map(|i| (i, t.len()))) {
        Some((i, w)) => (i + 1, w),
        None => (1, text.len().max(1)),
    };
    out.push_str(&format!("  --> {name}:{line}:{col}\n"));
    out.push_str(&snippet(src, Span::new(line_start + col - 1, line_start + col - 1 + width)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basics() {
        let src = "abc\ndef\n";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 2), (1, 3));
        assert_eq!(line_col(src, 4), (2, 1));
        assert_eq!(line_col(src, 6), (2, 3));
        // past-the-end clamps
        assert_eq!(line_col(src, 999), (3, 1));
    }

    #[test]
    fn render_has_caret_and_location() {
        let src = "type truck\npred at(p: pkg)\n";
        let d = Diagnostic::error(FileId::Domain, Span::new(22, 25), "unknown type `pkg`")
            .with_help("did you mean `package`?");
        let r = d.render("d.gap", src);
        assert!(r.contains("error: unknown type `pkg`"), "{r}");
        assert!(r.contains("--> d.gap:2:12"), "{r}");
        assert!(r.contains("^^^"), "{r}");
        assert!(r.contains("help: did you mean"), "{r}");
    }

    #[test]
    fn did_you_mean_picks_close_name() {
        assert_eq!(did_you_mean("locaton", ["truck", "location", "package"]), Some("location"));
        assert_eq!(did_you_mean("zzz", ["truck", "location"]), None);
    }

    #[test]
    fn legacy_render_underlines_token() {
        let src = "conditions: a b\nop mv\n  cost: x\n";
        let r = render_legacy_parse("p.strips", src, 3, "bad cost `x`");
        assert!(r.contains("--> p.strips:3:9"), "{r}");
        assert!(r.contains("  cost: x"), "{r}");
    }
}
