//! The Sliding-tile puzzle (paper §4.2).
//!
//! An `n×n` board holds `n²−1` numbered tiles and one blank. A move slides a
//! tile adjacent to the blank into the blank. The paper evaluates `n = 3`
//! (8-puzzle, "9 tiles") and `n = 4` (15-puzzle, "16 tiles"); Figure 3 shows
//! the reversed 15-puzzle instance.
//!
//! Goal fitness (Eq. 6): `1 − MD(state, goal) / upper`, where `MD` is the
//! summed Manhattan distance of all tiles from their goal positions and
//! `upper = (n²−1)·2(n−1)` (every tile at the longest possible single-tile
//! distance).
//!
//! Solvability follows Johnson & Story (1879): a configuration is reachable
//! from another iff the permutation parity between them equals the parity of
//! the blank's Manhattan displacement.

use gaplan_core::{Domain, OpId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Board state in row-major order; `0` is the blank.
pub type TileState = Vec<u8>;

/// Blank movement directions, in ground-operation order. "Up" means the
/// blank moves up (the tile above slides down).
const DIRS: [(i32, i32, &str); 4] = [(-1, 0, "up"), (1, 0, "down"), (0, -1, "left"), (0, 1, "right")];

/// The Sliding-tile planning domain.
#[derive(Debug, Clone)]
pub struct SlidingTile {
    n: usize,
    init: TileState,
    goal: TileState,
    /// goal_pos[v] = (row, col) of value `v` in the goal board.
    goal_pos: Vec<(i32, i32)>,
    upper: f64,
}

impl SlidingTile {
    /// Instance with the standard goal (tiles `1..n²−1` in order, blank in
    /// the bottom-right corner — the paper's Figure 3(b)).
    ///
    /// # Panics
    /// If `init` is not a permutation of `0..n²` or is unsolvable.
    pub fn new(n: usize, init: TileState) -> Self {
        Self::with_goal(n, init, Self::standard_goal(n))
    }

    /// Instance with an explicit goal board.
    pub fn with_goal(n: usize, init: TileState, goal: TileState) -> Self {
        assert!(n >= 2, "board must be at least 2x2");
        validate_board(n, &init);
        validate_board(n, &goal);
        assert!(is_reachable(n, &init, &goal), "initial board is not reachable from the goal (Johnson & Story parity)");
        let mut goal_pos = vec![(0, 0); n * n];
        for (i, &v) in goal.iter().enumerate() {
            goal_pos[v as usize] = ((i / n) as i32, (i % n) as i32);
        }
        let upper = ((n * n - 1) * 2 * (n - 1)) as f64;
        SlidingTile { n, init, goal, goal_pos, upper }
    }

    /// The standard goal board: `1, 2, …, n²−1, blank`.
    pub fn standard_goal(n: usize) -> TileState {
        let mut g: TileState = (1..(n * n) as u8).collect();
        g.push(0);
        g
    }

    /// The paper's Figure 3(a) board: tiles in descending order with the
    /// blank in the bottom-right corner. By the Johnson & Story criterion
    /// this is solvable for odd `n` (e.g. the 8-puzzle) but **not** for
    /// even `n`: reversing the 15 tiles of the 15-puzzle is an odd
    /// permutation while the blank does not move — exactly the kind of
    /// configuration the paper notes has no solution.
    pub fn reversed_board(n: usize) -> TileState {
        let mut b: TileState = ((1..(n * n) as u8).rev()).collect();
        b.push(0);
        b
    }

    /// A uniformly random solvable instance (random permutation; parity
    /// fixed, if needed, by swapping two non-blank tiles — a standard
    /// construction that preserves uniformity over the solvable class).
    pub fn random_solvable<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let goal = Self::standard_goal(n);
        let mut init: TileState = (0..(n * n) as u8).collect();
        init.shuffle(rng);
        if !is_reachable(n, &init, &goal) {
            // swap the first two non-blank entries to flip permutation parity
            let mut idx = init.iter().enumerate().filter(|&(_, &v)| v != 0).map(|(i, _)| i);
            let (a, b) = (idx.next().unwrap(), idx.next().unwrap());
            init.swap(a, b);
        }
        Self::new(n, init)
    }

    /// Board side length.
    pub fn side(&self) -> usize {
        self.n
    }

    /// Number of board cells (`n²`; the paper's "number of tiles": 9, 16).
    pub fn tiles(&self) -> usize {
        self.n * self.n
    }

    /// The goal board.
    pub fn goal(&self) -> &TileState {
        &self.goal
    }

    /// Summed Manhattan distance of all tiles (blank excluded) from their
    /// goal positions — the paper's distance measure (citing Russell &
    /// Norvig) and the classic admissible heuristic.
    pub fn manhattan(&self, state: &TileState) -> u32 {
        let mut d = 0u32;
        for (i, &v) in state.iter().enumerate() {
            if v == 0 {
                continue;
            }
            let (gr, gc) = self.goal_pos[v as usize];
            let (r, c) = ((i / self.n) as i32, (i % self.n) as i32);
            d += (r - gr).unsigned_abs() + (c - gc).unsigned_abs();
        }
        d
    }

    /// Eq. 6's normalization constant: `(n²−1)·2(n−1)`.
    pub fn distance_upper_bound(&self) -> f64 {
        self.upper
    }

    /// Position of the blank.
    #[inline]
    pub fn blank_pos(state: &TileState) -> usize {
        state.iter().position(|&v| v == 0).expect("board always has a blank")
    }

    /// Render a board in the style of the paper's Figure 3.
    pub fn render(&self, state: &TileState) -> String {
        render_board(self.n, state)
    }
}

/// Render any `n×n` board (including unsolvable illustration boards such as
/// the paper's Figure 3(a)) in the style of the paper's Figure 3.
pub fn render_board(n: usize, state: &TileState) -> String {
    assert_eq!(state.len(), n * n, "board must have n*n cells");
    let mut out = String::new();
    let sep = format!("+{}\n", "----+".repeat(n));
    for r in 0..n {
        out.push_str(&sep);
        for c in 0..n {
            let v = state[r * n + c];
            if v == 0 {
                out.push_str("|    ");
            } else {
                out.push_str(&format!("| {v:2} "));
            }
        }
        out.push_str("|\n");
    }
    out.push_str(&sep);
    out
}

fn validate_board(n: usize, board: &TileState) {
    assert_eq!(board.len(), n * n, "board must have n*n cells");
    let mut seen = vec![false; n * n];
    for &v in board {
        let v = v as usize;
        assert!(v < n * n, "tile value {v} out of range");
        assert!(!seen[v], "duplicate tile value {v}");
        seen[v] = true;
    }
}

/// Johnson & Story reachability: `a` and `b` are mutually reachable iff the
/// permutation parity between them equals the parity of the blank's
/// Manhattan displacement (each move is one transposition and one blank
/// step).
pub fn is_reachable(n: usize, a: &TileState, b: &TileState) -> bool {
    // permutation p with b[i] = a[p(i)]; count parity via cycle
    // decomposition over positions.
    let mut pos_in_a = vec![0usize; n * n];
    for (i, &v) in a.iter().enumerate() {
        pos_in_a[v as usize] = i;
    }
    let perm: Vec<usize> = b.iter().map(|&v| pos_in_a[v as usize]).collect();
    let mut visited = vec![false; perm.len()];
    let mut transpositions = 0usize;
    for start in 0..perm.len() {
        if visited[start] {
            continue;
        }
        let mut len = 0;
        let mut i = start;
        while !visited[i] {
            visited[i] = true;
            i = perm[i];
            len += 1;
        }
        transpositions += len - 1;
    }
    let blank_a = SlidingTile::blank_pos(a);
    let blank_b = SlidingTile::blank_pos(b);
    let (ra, ca) = (blank_a / n, blank_a % n);
    let (rb, cb) = (blank_b / n, blank_b % n);
    let blank_dist = ra.abs_diff(rb) + ca.abs_diff(cb);
    transpositions % 2 == blank_dist % 2
}

impl Domain for SlidingTile {
    type State = TileState;

    fn initial_state(&self) -> TileState {
        self.init.clone()
    }

    fn num_operations(&self) -> usize {
        DIRS.len()
    }

    fn valid_operations(&self, state: &TileState, out: &mut Vec<OpId>) {
        let blank = Self::blank_pos(state);
        let (r, c) = ((blank / self.n) as i32, (blank % self.n) as i32);
        for (i, &(dr, dc, _)) in DIRS.iter().enumerate() {
            let (nr, nc) = (r + dr, c + dc);
            if nr >= 0 && nr < self.n as i32 && nc >= 0 && nc < self.n as i32 {
                out.push(OpId(i as u32));
            }
        }
    }

    fn apply(&self, state: &TileState, op: OpId) -> TileState {
        let blank = Self::blank_pos(state);
        let (r, c) = ((blank / self.n) as i32, (blank % self.n) as i32);
        let (dr, dc, _) = DIRS[op.index()];
        let (nr, nc) = (r + dr, c + dc);
        debug_assert!(nr >= 0 && nr < self.n as i32 && nc >= 0 && nc < self.n as i32, "apply() requires a valid move");
        let target = (nr as usize) * self.n + nc as usize;
        let mut next = state.clone();
        next.swap(blank, target);
        next
    }

    fn apply_into(&self, state: &TileState, op: OpId, out: &mut TileState) {
        let blank = Self::blank_pos(state);
        let (r, c) = ((blank / self.n) as i32, (blank % self.n) as i32);
        let (dr, dc, _) = DIRS[op.index()];
        let (nr, nc) = (r + dr, c + dc);
        debug_assert!(
            nr >= 0 && nr < self.n as i32 && nc >= 0 && nc < self.n as i32,
            "apply_into() requires a valid move"
        );
        let target = (nr as usize) * self.n + nc as usize;
        out.clone_from(state);
        out.swap(blank, target);
    }

    fn goal_fitness(&self, state: &TileState) -> f64 {
        // paper Eq. 6
        1.0 - f64::from(self.manhattan(state)) / self.upper
    }

    fn op_cost(&self, _op: OpId) -> f64 {
        1.0
    }

    fn op_name(&self, op: OpId) -> String {
        format!("slide blank {}", DIRS[op.index()].2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::{DomainExt, Plan};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_goal_layout() {
        assert_eq!(SlidingTile::standard_goal(3), vec![1, 2, 3, 4, 5, 6, 7, 8, 0]);
    }

    #[test]
    fn goal_state_has_fitness_one() {
        let p = SlidingTile::new(3, SlidingTile::standard_goal(3));
        assert_eq!(p.goal_fitness(&p.initial_state()), 1.0);
        assert!(p.is_goal(&p.initial_state()));
        assert_eq!(p.manhattan(&p.initial_state()), 0);
    }

    #[test]
    fn corner_blank_has_two_moves_center_has_four() {
        let p = SlidingTile::new(3, SlidingTile::standard_goal(3));
        // goal: blank bottom-right corner
        assert_eq!(p.valid_ops_vec(&p.initial_state()).len(), 2);
        // blank in the center
        let center = vec![1, 2, 3, 4, 0, 5, 6, 7, 8];
        if is_reachable(3, &center, p.goal()) {
            assert_eq!(p.valid_ops_vec(&center).len(), 4);
        } else {
            // validity of moves doesn't depend on solvability
            let mut ops = Vec::new();
            p.valid_operations(&center, &mut ops);
            assert_eq!(ops.len(), 4);
        }
    }

    #[test]
    fn apply_slides_tile_into_blank() {
        let p = SlidingTile::new(2, vec![1, 2, 3, 0]);
        // blank bottom-right; "up" moves blank up: swap with tile above (2)
        let up = p.apply(&vec![1, 2, 3, 0], OpId(0));
        assert_eq!(up, vec![1, 0, 3, 2]);
        // "left": swap with tile to the left (3)
        let left = p.apply(&vec![1, 2, 3, 0], OpId(2));
        assert_eq!(left, vec![1, 2, 0, 3]);
    }

    #[test]
    fn apply_into_matches_apply() {
        let p = SlidingTile::new(3, SlidingTile::standard_goal(3));
        let mut state = p.initial_state();
        let mut out = p.initial_state();
        for pick in 0..20 {
            let ops = p.valid_ops_vec(&state);
            let op = ops[pick % ops.len()];
            p.apply_into(&state, op, &mut out);
            assert_eq!(out, p.apply(&state, op));
            state = out.clone();
        }
    }

    #[test]
    fn moves_are_involutions() {
        let p = SlidingTile::new(3, SlidingTile::standard_goal(3));
        let s = p.initial_state();
        // up then down restores
        let s2 = p.apply(&p.apply(&s, OpId(0)), OpId(1));
        assert_eq!(s, s2);
        // left then right restores
        let s3 = p.apply(&p.apply(&s, OpId(2)), OpId(3));
        assert_eq!(s, s3);
    }

    #[test]
    fn manhattan_matches_hand_computation() {
        let p = SlidingTile::new(3, SlidingTile::standard_goal(3));
        // swap tiles 1 and 2 (adjacent): each 1 away
        let s = vec![2, 1, 3, 4, 5, 6, 7, 8, 0];
        assert_eq!(p.manhattan(&s), 2);
        // tile 1 in bottom-right area
        let s = vec![0, 2, 3, 4, 5, 6, 7, 8, 1];
        assert_eq!(p.manhattan(&s), 4); // tile 1 from (2,2) to (0,0)
    }

    #[test]
    fn eq6_normalization() {
        let p = SlidingTile::new(4, SlidingTile::standard_goal(4));
        assert_eq!(p.distance_upper_bound(), (15 * 6) as f64);
        let p3 = SlidingTile::new(3, SlidingTile::standard_goal(3));
        assert_eq!(p3.distance_upper_bound(), (8 * 4) as f64);
    }

    #[test]
    fn reversed_8_puzzle_is_solvable_but_reversed_15_puzzle_is_not() {
        // reversing an even number of tiles (8-puzzle: 8 tiles) is an even
        // permutation; reversing an odd number (15-puzzle: 15 tiles) is odd
        // while the blank stays put — Johnson & Story says unreachable.
        let goal3 = SlidingTile::standard_goal(3);
        assert!(is_reachable(3, &SlidingTile::reversed_board(3), &goal3));
        let goal4 = SlidingTile::standard_goal(4);
        assert!(!is_reachable(4, &SlidingTile::reversed_board(4), &goal4));
    }

    #[test]
    #[should_panic(expected = "not reachable")]
    fn unsolvable_instance_rejected() {
        // classic: swap two tiles of the goal -> unsolvable
        SlidingTile::new(3, vec![2, 1, 3, 4, 5, 6, 7, 8, 0]);
    }

    #[test]
    fn reachability_is_exact_on_2x2() {
        // BFS the full 2x2 state space from the goal and compare with the
        // parity predicate on all 24 permutations.
        let goal = SlidingTile::standard_goal(2);
        let dom = SlidingTile::new(2, goal.clone());
        let mut reached = std::collections::HashSet::new();
        let mut queue = std::collections::VecDeque::from([goal.clone()]);
        reached.insert(goal.clone());
        while let Some(s) = queue.pop_front() {
            for op in dom.valid_ops_vec(&s) {
                let t = dom.apply(&s, op);
                if reached.insert(t.clone()) {
                    queue.push_back(t);
                }
            }
        }
        // enumerate all permutations of [0,1,2,3]
        let mut all = Vec::new();
        let mut vals = [0u8, 1, 2, 3];
        permute(&mut vals, 0, &mut all);
        let mut reachable_count = 0;
        for p in all {
            let pred = is_reachable(2, &p, &goal);
            let actual = reached.contains(&p);
            assert_eq!(pred, actual, "board {p:?}");
            if actual {
                reachable_count += 1;
            }
        }
        assert_eq!(reachable_count, 12); // half of 24
    }

    fn permute(vals: &mut [u8; 4], k: usize, out: &mut Vec<TileState>) {
        if k == 4 {
            out.push(vals.to_vec());
            return;
        }
        for i in k..4 {
            vals.swap(k, i);
            permute(vals, k + 1, out);
            vals.swap(k, i);
        }
    }

    #[test]
    fn random_solvable_instances_are_solvable_and_varied() {
        let mut rng = StdRng::seed_from_u64(42);
        let goal = SlidingTile::standard_goal(4);
        let mut boards = std::collections::HashSet::new();
        for _ in 0..50 {
            let p = SlidingTile::random_solvable(4, &mut rng);
            assert!(is_reachable(4, &p.initial_state(), &goal));
            boards.insert(p.initial_state());
        }
        assert!(boards.len() > 45, "instances should be diverse: {}", boards.len());
    }

    #[test]
    fn decoded_random_walk_stays_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = SlidingTile::random_solvable(3, &mut rng);
        let mut s = p.initial_state();
        let mut ops = Vec::new();
        for i in 0..200 {
            let valid = p.valid_ops_vec(&s);
            let op = valid[i % valid.len()];
            ops.push(op);
            s = p.apply(&s, op);
        }
        Plan::from_ops(ops).simulate(&p, &p.initial_state()).expect("walk is valid");
    }

    #[test]
    fn goal_fitness_decreases_with_distance() {
        let p = SlidingTile::new(3, SlidingTile::standard_goal(3));
        let g = p.initial_state();
        let s1 = p.apply(&g, OpId(0)); // one move away
        assert!(p.goal_fitness(&s1) < 1.0);
        assert!(p.goal_fitness(&s1) > 0.9);
    }

    #[test]
    fn render_contains_all_tiles() {
        // render_board works even for the unsolvable Figure 3(a) board
        let art = render_board(4, &SlidingTile::reversed_board(4));
        for v in 1..=15 {
            assert!(art.contains(&format!("{v:2}")), "missing tile {v}");
        }
        let p = SlidingTile::new(3, SlidingTile::reversed_board(3));
        let art3 = p.render(&p.initial_state());
        assert!(art3.contains(" 8 "));
    }

    #[test]
    #[should_panic(expected = "duplicate tile")]
    fn duplicate_tiles_rejected() {
        SlidingTile::new(2, vec![1, 1, 2, 0]);
    }
}
