//! Towers of Hanoi (paper §4.1).
//!
//! Three stakes A, B, C and `n` disks of increasing size, all initially on
//! stake A (Figure 1); the goal is to move every disk to stake B (Figure 2).
//! Only a stake's top disk may move, and never onto a smaller disk. The
//! optimal solution takes `2^n − 1` moves.
//!
//! Goal fitness (Eq. 5): disk `i` (1-based, 1 = smallest) has weight `2^i`;
//! `F_goal` = (total weight of disks on the goal stake) / (total weight of
//! all disks). The paper notes the trap this creates: a state with every
//! disk *except the largest* on B scores just under 0.5 yet is farther from
//! the goal than the initial state.

use gaplan_core::{Domain, OpId};

/// Number of stakes (fixed by the puzzle).
pub const PEGS: usize = 3;

/// Stake labels used in rendering and operation names.
pub const PEG_NAMES: [char; PEGS] = ['A', 'B', 'C'];

/// State: `disks[i]` is the stake (0 = A, 1 = B, 2 = C) holding disk `i`,
/// where disk 0 is the smallest. The stacking order within a stake is
/// implied: smaller disks are always above larger ones.
pub type HanoiState = Vec<u8>;

/// The Towers of Hanoi planning domain.
#[derive(Debug, Clone)]
pub struct Hanoi {
    n: usize,
    init: HanoiState,
    goal_peg: u8,
    /// Precomputed per-disk weights `2^(i+1)` (Eq. 5, disk index 0-based).
    weights: Vec<f64>,
    total_weight: f64,
}

/// The six directed stake pairs, in ground-operation order.
const MOVES: [(u8, u8); 6] = [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)];

impl Hanoi {
    /// Standard instance: `n` disks on stake A, goal stake B.
    pub fn new(n: usize) -> Self {
        Self::with_init(n, vec![0; n], 1)
    }

    /// Custom instance (used by tests and the dynamic-replanning example).
    ///
    /// # Panics
    /// If `init` length differs from `n`, any entry or `goal_peg` is not a
    /// valid stake, or `n == 0`.
    pub fn with_init(n: usize, init: HanoiState, goal_peg: u8) -> Self {
        assert!(n > 0, "need at least one disk");
        assert_eq!(init.len(), n, "init must assign every disk a stake");
        assert!(init.iter().all(|&p| (p as usize) < PEGS), "invalid stake in init");
        assert!((goal_peg as usize) < PEGS, "invalid goal stake");
        // paper Eq. 5: disk i (1-based) weighs 2^i
        let weights: Vec<f64> = (0..n).map(|i| f64::powi(2.0, i as i32 + 1)).collect();
        let total_weight = weights.iter().sum();
        Hanoi { n, init, goal_peg, weights, total_weight }
    }

    /// Number of disks.
    pub fn disks(&self) -> usize {
        self.n
    }

    /// The goal stake.
    pub fn goal_peg(&self) -> u8 {
        self.goal_peg
    }

    /// Minimum number of moves for the standard instance: `2^n − 1`.
    pub fn optimal_len(&self) -> usize {
        (1usize << self.n) - 1
    }

    /// Index of the top (smallest) disk on `peg`, if any.
    #[inline]
    pub fn top_disk(state: &HanoiState, peg: u8) -> Option<usize> {
        state.iter().position(|&p| p == peg)
    }

    /// The provably optimal plan for moving all disks from stake A to the
    /// goal stake (classic recursive construction). Used as ground truth in
    /// tests and baseline comparisons.
    pub fn optimal_plan(&self) -> Vec<OpId> {
        fn solve(n: usize, from: u8, to: u8, via: u8, out: &mut Vec<OpId>) {
            if n == 0 {
                return;
            }
            solve(n - 1, from, via, to, out);
            let mv = MOVES.iter().position(|&(f, t)| f == from && t == to).expect("every directed pair is in MOVES");
            out.push(OpId(mv as u32));
            solve(n - 1, via, to, from, out);
        }
        let mut out = Vec::with_capacity(self.optimal_len());
        let aux =
            (0..PEGS as u8).find(|&p| p != 0 && p != self.goal_peg).expect("three stakes always leave one auxiliary");
        solve(self.n, 0, self.goal_peg, aux, &mut out);
        out
    }

    /// Render a state as ASCII art in the style of the paper's Figures 1–2.
    pub fn render(&self, state: &HanoiState) -> String {
        let mut pegs: Vec<Vec<usize>> = vec![Vec::new(); PEGS];
        // push large disks first so the stack prints bottom-up correctly
        for disk in (0..self.n).rev() {
            pegs[state[disk] as usize].push(disk);
        }
        let height = self.n;
        let width = 2 * self.n + 1; // widest disk rendering
        let mut out = String::new();
        for level in (0..height).rev() {
            for peg in &pegs {
                let cell = if level < peg.len() {
                    let disk = peg[peg.len() - 1 - level];
                    // disk d has printed width 2d+3 ("=" runs around the pole)
                    let w = 2 * disk + 3;
                    format!("{:^width$}", "=".repeat(w), width = width + 2)
                } else {
                    format!("{:^width$}", "|", width = width + 2)
                };
                out.push_str(&cell);
            }
            out.push('\n');
        }
        for &name in &PEG_NAMES {
            out.push_str(&format!("{:^width$}", name, width = width + 2));
        }
        out.push('\n');
        out
    }
}

impl Domain for Hanoi {
    type State = HanoiState;

    fn initial_state(&self) -> HanoiState {
        self.init.clone()
    }

    fn num_operations(&self) -> usize {
        MOVES.len()
    }

    fn valid_operations(&self, state: &HanoiState, out: &mut Vec<OpId>) {
        let tops: [Option<usize>; PEGS] =
            [Self::top_disk(state, 0), Self::top_disk(state, 1), Self::top_disk(state, 2)];
        for (i, &(from, to)) in MOVES.iter().enumerate() {
            if let Some(d) = tops[from as usize] {
                if tops[to as usize].is_none_or(|t| d < t) {
                    out.push(OpId(i as u32));
                }
            }
        }
    }

    fn apply(&self, state: &HanoiState, op: OpId) -> HanoiState {
        let (from, to) = MOVES[op.index()];
        let disk = Self::top_disk(state, from).expect("apply() requires a valid move");
        debug_assert!(Self::top_disk(state, to).is_none_or(|t| disk < t), "cannot place disk {disk} on a smaller disk");
        let mut next = state.clone();
        next[disk] = to;
        next
    }

    fn apply_into(&self, state: &HanoiState, op: OpId, out: &mut HanoiState) {
        let (from, to) = MOVES[op.index()];
        let disk = Self::top_disk(state, from).expect("apply_into() requires a valid move");
        debug_assert!(Self::top_disk(state, to).is_none_or(|t| disk < t), "cannot place disk {disk} on a smaller disk");
        out.clone_from(state);
        out[disk] = to;
    }

    fn goal_fitness(&self, state: &HanoiState) -> f64 {
        let on_goal: f64 =
            state.iter().enumerate().filter(|&(_, &p)| p == self.goal_peg).map(|(i, _)| self.weights[i]).sum();
        on_goal / self.total_weight
    }

    fn op_cost(&self, _op: OpId) -> f64 {
        1.0 // paper: all Hanoi moves have the same cost
    }

    fn op_name(&self, op: OpId) -> String {
        let (from, to) = MOVES[op.index()];
        format!("move {}->{}", PEG_NAMES[from as usize], PEG_NAMES[to as usize])
    }

    /// Base-3 packing of the disk→peg vector: injective (collision-free) for
    /// up to 40 disks (`3^40 < 2^64`), and cheaper than hashing the `Vec`.
    /// Falls back to the default hash for absurdly tall towers.
    fn state_signature(&self, state: &HanoiState) -> u64 {
        if state.len() <= 40 {
            state.iter().rev().fold(0u64, |acc, &peg| acc * 3 + u64::from(peg))
        } else {
            gaplan_core::sig::hash_one(state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::{DomainExt, Plan};

    #[test]
    fn initial_state_all_on_a() {
        let h = Hanoi::new(5);
        assert_eq!(h.initial_state(), vec![0; 5]);
        assert_eq!(h.disks(), 5);
    }

    #[test]
    fn initial_valid_moves_are_smallest_disk_only() {
        let h = Hanoi::new(3);
        let ops = h.valid_ops_vec(&h.initial_state());
        let names: Vec<String> = ops.iter().map(|&o| h.op_name(o)).collect();
        assert_eq!(names, vec!["move A->B", "move A->C"]);
    }

    #[test]
    fn cannot_place_large_on_small() {
        let h = Hanoi::new(3);
        // disk 0 on B, disks 1,2 on A: top of A is disk 1; A->B invalid
        let state = vec![1, 0, 0];
        let names: Vec<String> = h.valid_ops_vec(&state).iter().map(|&o| h.op_name(o)).collect();
        assert_eq!(names, vec!["move A->C", "move B->A", "move B->C"]);
    }

    #[test]
    fn optimal_plan_has_length_2n_minus_1_and_solves() {
        for n in 1..=7 {
            let h = Hanoi::new(n);
            let ops = h.optimal_plan();
            assert_eq!(ops.len(), (1 << n) - 1);
            let plan = Plan::from_ops(ops);
            let out = plan.simulate(&h, &h.initial_state()).expect("optimal plan is valid");
            assert!(out.solves, "n = {n}");
        }
    }

    #[test]
    fn goal_fitness_matches_eq5() {
        let h = Hanoi::new(3);
        // weights: disk0=2, disk1=4, disk2=8; total 14
        assert_eq!(h.goal_fitness(&vec![0, 0, 0]), 0.0);
        assert!((h.goal_fitness(&vec![1, 0, 0]) - 2.0 / 14.0).abs() < 1e-12);
        assert!((h.goal_fitness(&vec![1, 1, 0]) - 6.0 / 14.0).abs() < 1e-12);
        assert_eq!(h.goal_fitness(&vec![1, 1, 1]), 1.0);
        assert!(h.is_goal(&vec![1, 1, 1]));
    }

    #[test]
    fn paper_fitness_trap_state_scores_just_under_half() {
        // paper §4.1: "all disks except the largest one are on stake B …
        // will receive a goal fitness slightly less than 0.5"
        let n = 7;
        let h = Hanoi::new(n);
        let mut state = vec![1; n];
        state[n - 1] = 0; // largest disk still on A
        let f = h.goal_fitness(&state);
        assert!(f < 0.5, "f = {f}");
        assert!(f > 0.49, "f = {f}");
    }

    #[test]
    fn largest_disk_alone_scores_just_over_half() {
        let n = 7;
        let h = Hanoi::new(n);
        let mut state = vec![0; n];
        state[n - 1] = 1;
        let f = h.goal_fitness(&state);
        assert!(f > 0.5, "f = {f}");
    }

    #[test]
    fn apply_into_matches_apply() {
        let h = Hanoi::new(4);
        let mut state = h.initial_state();
        let mut out = h.initial_state();
        // walk a deterministic trajectory, checking every step both ways
        for pick in 0..20 {
            let ops = h.valid_ops_vec(&state);
            let op = ops[pick % ops.len()];
            h.apply_into(&state, op, &mut out);
            assert_eq!(out, h.apply(&state, op));
            state = out.clone();
        }
    }

    #[test]
    fn apply_moves_only_the_top_disk() {
        let h = Hanoi::new(4);
        let s = h.initial_state();
        let next = h.apply(&s, OpId(0)); // A->B
        assert_eq!(next, vec![1, 0, 0, 0]);
    }

    #[test]
    fn custom_goal_peg() {
        let h = Hanoi::with_init(3, vec![0, 0, 0], 2);
        let ops = h.optimal_plan();
        let out = Plan::from_ops(ops).simulate(&h, &h.initial_state()).unwrap();
        assert!(out.solves);
        assert_eq!(out.final_state, vec![2, 2, 2]);
    }

    #[test]
    fn every_state_has_at_least_two_valid_moves() {
        // Hanoi never dead-ends: the smallest disk can always move to two
        // other stakes.
        let h = Hanoi::new(4);
        let mut stack = vec![h.initial_state()];
        let mut seen = std::collections::HashSet::new();
        while let Some(s) = stack.pop() {
            if !seen.insert(s.clone()) {
                continue;
            }
            let ops = h.valid_ops_vec(&s);
            assert!(ops.len() >= 2, "state {s:?} has {} moves", ops.len());
            for op in ops {
                stack.push(h.apply(&s, op));
            }
        }
        assert_eq!(seen.len(), 81); // 3^4 reachable states
    }

    #[test]
    fn render_shows_all_disks_and_labels() {
        let h = Hanoi::new(5);
        let art = h.render(&h.initial_state());
        assert!(art.contains('A') && art.contains('B') && art.contains('C'));
        // widest disk: 2*4+3 = 11 '=' characters
        assert!(art.contains(&"=".repeat(11)));
        // empty stakes show their pole
        assert!(art.contains('|'));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        Hanoi::new(0);
    }

    #[test]
    #[should_panic(expected = "invalid stake")]
    fn bad_init_rejected() {
        Hanoi::with_init(2, vec![0, 3], 1);
    }

    #[test]
    fn state_signature_is_injective_over_all_states() {
        // 5 disks -> 3^5 = 243 reachable placements; enumerate them all and
        // demand pairwise-distinct signatures (the base-3 packing is exact).
        let h = Hanoi::new(5);
        let mut seen = std::collections::HashSet::new();
        for code in 0..243u32 {
            let mut c = code;
            let state: HanoiState = (0..5)
                .map(|_| {
                    let peg = (c % 3) as u8;
                    c /= 3;
                    peg
                })
                .collect();
            assert!(seen.insert(h.state_signature(&state)), "collision for {state:?}");
        }
    }
}
