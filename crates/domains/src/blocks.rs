//! Blocks World, generated as a ground STRIPS problem.
//!
//! The domain used by GenPlan's seeding-strategy study (paper §2). Blocks
//! are stacked on a table; a block can move when clear, either onto another
//! clear block or onto the table. Generating it through [`StripsBuilder`]
//! exercises the data-driven substrate end-to-end: the GA and every
//! baseline plan over the exact same bitset representation.

use gaplan_core::strips::{StripsBuilder, StripsProblem};
use gaplan_core::Result;

/// A tower layout: each inner vector is one tower listed bottom-up; blocks
/// are identified by index `0..k`.
pub type Towers = Vec<Vec<usize>>;

fn on(a: usize, b: usize) -> String {
    format!("on-{a}-{b}")
}
fn on_table(a: usize) -> String {
    format!("table-{a}")
}
fn clear(a: usize) -> String {
    format!("clear-{a}")
}

/// Conditions describing a tower layout of `k` blocks.
fn layout_conditions(k: usize, towers: &Towers) -> Vec<String> {
    let mut conds = Vec::new();
    let mut placed = vec![false; k];
    for tower in towers {
        for (i, &b) in tower.iter().enumerate() {
            assert!(b < k, "block {b} out of range");
            assert!(!placed[b], "block {b} appears twice");
            placed[b] = true;
            if i == 0 {
                conds.push(on_table(b));
            } else {
                conds.push(on(b, tower[i - 1]));
            }
            if i == tower.len() - 1 {
                conds.push(clear(b));
            }
        }
    }
    assert!(placed.iter().all(|&p| p), "every block must be placed");
    conds
}

/// Build a ground Blocks World STRIPS problem with `k` blocks, an initial
/// tower layout, and a goal tower layout.
///
/// Ground operators:
/// * `move-A-from-B-to-C` — unstack `A` from `B` onto `C`,
/// * `move-A-from-B-to-table`,
/// * `move-A-from-table-to-C`.
///
/// # Errors
/// Propagates builder errors (duplicate/unknown symbols) — none occur for
/// well-formed layouts.
pub fn blocks_world(k: usize, init: &Towers, goal: &Towers) -> Result<StripsProblem> {
    assert!(k >= 2, "need at least two blocks");
    let mut b = StripsBuilder::new();
    for x in 0..k {
        b.condition(&on_table(x))?;
        b.condition(&clear(x))?;
        for y in 0..k {
            if x != y {
                b.condition(&on(x, y))?;
            }
        }
    }
    // move x from y to z
    for x in 0..k {
        for y in 0..k {
            if y == x {
                continue;
            }
            for z in 0..k {
                if z == x || z == y {
                    continue;
                }
                b.op(
                    &format!("move-{x}-from-{y}-to-{z}"),
                    &[&clear(x), &on(x, y), &clear(z)],
                    &[&on(x, z), &clear(y)],
                    &[&on(x, y), &clear(z)],
                    1.0,
                )?;
            }
            // move x from y to table
            b.op(
                &format!("move-{x}-from-{y}-to-table"),
                &[&clear(x), &on(x, y)],
                &[&on_table(x), &clear(y)],
                &[&on(x, y)],
                1.0,
            )?;
        }
        // move x from table to z
        for z in 0..k {
            if z == x {
                continue;
            }
            b.op(
                &format!("move-{x}-from-table-to-{z}"),
                &[&clear(x), &on_table(x), &clear(z)],
                &[&on(x, z)],
                &[&on_table(x), &clear(z)],
                1.0,
            )?;
        }
    }
    let init_conds = layout_conditions(k, init);
    let goal_conds = layout_conditions(k, goal);
    fn refs(v: &[String]) -> Vec<&str> {
        v.iter().map(String::as_str).collect()
    }
    b.init(&refs(&init_conds))?;
    b.goal(&refs(&goal_conds))?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::{Domain, DomainExt, OpId, Plan};

    /// 3 blocks: init A(0) on B(1) on table, C(2) on table; goal the
    /// classic stack 2-1-0 bottom-up (tower [2,1,0] = 0 on 1 on 2).
    fn small() -> StripsProblem {
        blocks_world(3, &vec![vec![1, 0], vec![2]], &vec![vec![2, 1, 0]]).unwrap()
    }

    #[test]
    fn initial_state_validity() {
        let p = small();
        let s = p.initial_state();
        // clear blocks: 0 (top of tower) and 2
        let ops = p.valid_ops_vec(&s);
        let names: Vec<String> = ops.iter().map(|&o| p.op_name(o)).collect();
        // block 0 can move from 1 to 2 or to table; block 2 can move from
        // table onto 0.
        assert!(names.contains(&"move-0-from-1-to-2".to_string()));
        assert!(names.contains(&"move-0-from-1-to-table".to_string()));
        assert!(names.contains(&"move-2-from-table-to-0".to_string()));
        assert_eq!(names.len(), 3, "{names:?}");
    }

    #[test]
    fn solvable_by_hand() {
        let p = small();
        let find = |name: &str| {
            (0..p.num_operations())
                .map(|i| OpId(i as u32))
                .find(|&o| p.op_name(o) == name)
                .unwrap_or_else(|| panic!("missing op {name}"))
        };
        // 0 off 1; 1 onto 2; 0 onto 1
        let plan = Plan::from_ops(vec![
            find("move-0-from-1-to-table"),
            find("move-1-from-table-to-2"),
            find("move-0-from-table-to-1"),
        ]);
        let out = plan.simulate(&p, &p.initial_state()).unwrap();
        assert!(out.solves);
    }

    #[test]
    fn goal_fitness_grades_partial_stacks() {
        let p = small();
        let s = p.initial_state();
        // goal conditions: table-2, on-1-2, on-0-1, clear-0; init satisfies
        // all but on-1-2 -> 3/4.
        let f0 = p.goal_fitness(&s);
        assert!((f0 - 0.75).abs() < 1e-12, "f0 = {f0}");
        let find =
            |name: &str| (0..p.num_operations()).map(|i| OpId(i as u32)).find(|&o| p.op_name(o) == name).unwrap();
        // unstacking 0 temporarily loses on-0-1 -> 2/4
        let s1 = p.apply(&s, find("move-0-from-1-to-table"));
        assert!((p.goal_fitness(&s1) - 0.5).abs() < 1e-12);
        let s2 = p.apply(&s1, find("move-1-from-table-to-2"));
        assert!((p.goal_fitness(&s2) - 0.75).abs() < 1e-12);
        let s3 = p.apply(&s2, find("move-0-from-table-to-1"));
        assert_eq!(p.goal_fitness(&s3), 1.0);
        assert!(p.is_goal(&s3));
    }

    #[test]
    fn operator_count_matches_formula() {
        // per block x: (k-1)(k-2) block-to-block + (k-1) to-table + (k-1)
        // from-table = (k-1)k total per block -> k^2(k-1) overall? compute
        // for k = 3: per x: 2*1 + 2 + 2 = 6; total 18.
        let p = small();
        assert_eq!(p.num_operations(), 18);
    }

    #[test]
    fn four_block_instance_builds() {
        let p = blocks_world(4, &vec![vec![0, 1, 2, 3]], &vec![vec![3, 2, 1, 0]]).unwrap();
        assert!(p.num_operations() > 0);
        assert!(!p.is_goal(&p.initial_state()));
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_block_in_layout_rejected() {
        let _ = blocks_world(3, &vec![vec![0, 0], vec![1, 2]], &vec![vec![0, 1, 2]]);
    }

    #[test]
    #[should_panic(expected = "must be placed")]
    fn missing_block_in_layout_rejected() {
        let _ = blocks_world(3, &vec![vec![0, 1]], &vec![vec![0, 1, 2]]);
    }
}
