//! Gripper — the classic STRIPS benchmark (a robot with two grippers
//! ferries balls between rooms), generated as a ground STRIPS problem.
//! A staple of the planning-competition era the paper's related work
//! belongs to, and a good stress case for the GA: solutions require long
//! repetitive pick–move–drop cycles.

use gaplan_core::strips::{StripsBuilder, StripsProblem};
use gaplan_core::Result;

fn robot_at(r: usize) -> String {
    format!("robot-at-{r}")
}
fn ball_at(b: usize, r: usize) -> String {
    format!("ball{b}-at-{r}")
}
fn holding(g: usize, b: usize) -> String {
    format!("grip{g}-holding-ball{b}")
}
fn free(g: usize) -> String {
    format!("grip{g}-free")
}

/// Build a Gripper instance: `rooms` rooms (≥ 2), `balls` balls starting in
/// room 0, `grippers` grippers (≥ 1); the goal is every ball in the last
/// room.
///
/// Ground operators: `move-R1-R2`, `pick-B-in-R-with-G`,
/// `drop-B-in-R-from-G`.
pub fn gripper(rooms: usize, balls: usize, grippers: usize) -> Result<StripsProblem> {
    assert!(rooms >= 2, "need at least two rooms");
    assert!(balls >= 1, "need at least one ball");
    assert!(grippers >= 1, "need at least one gripper");

    let mut builder = StripsBuilder::new();
    for r in 0..rooms {
        builder.condition(&robot_at(r))?;
    }
    for b in 0..balls {
        for r in 0..rooms {
            builder.condition(&ball_at(b, r))?;
        }
    }
    for g in 0..grippers {
        builder.condition(&free(g))?;
        for b in 0..balls {
            builder.condition(&holding(g, b))?;
        }
    }

    for r1 in 0..rooms {
        for r2 in 0..rooms {
            if r1 != r2 {
                builder.op(&format!("move-{r1}-{r2}"), &[&robot_at(r1)], &[&robot_at(r2)], &[&robot_at(r1)], 1.0)?;
            }
        }
    }
    for b in 0..balls {
        for r in 0..rooms {
            for g in 0..grippers {
                builder.op(
                    &format!("pick-{b}-in-{r}-with-{g}"),
                    &[&robot_at(r), &ball_at(b, r), &free(g)],
                    &[&holding(g, b)],
                    &[&ball_at(b, r), &free(g)],
                    1.0,
                )?;
                builder.op(
                    &format!("drop-{b}-in-{r}-from-{g}"),
                    &[&robot_at(r), &holding(g, b)],
                    &[&ball_at(b, r), &free(g)],
                    &[&holding(g, b)],
                    1.0,
                )?;
            }
        }
    }

    let mut init: Vec<String> = vec![robot_at(0)];
    for b in 0..balls {
        init.push(ball_at(b, 0));
    }
    for g in 0..grippers {
        init.push(free(g));
    }
    let goal: Vec<String> = (0..balls).map(|b| ball_at(b, rooms - 1)).collect();
    let init_refs: Vec<&str> = init.iter().map(String::as_str).collect();
    let goal_refs: Vec<&str> = goal.iter().map(String::as_str).collect();
    builder.init(&init_refs)?;
    builder.goal(&goal_refs)?;
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::{Domain, DomainExt, OpId, Plan};

    fn find(p: &StripsProblem, name: &str) -> OpId {
        (0..p.num_operations())
            .map(|i| OpId(i as u32))
            .find(|&o| p.op_name(o) == name)
            .unwrap_or_else(|| panic!("missing op {name}"))
    }

    #[test]
    fn one_ball_two_rooms_solved_by_hand() {
        let p = gripper(2, 1, 1).unwrap();
        let plan =
            Plan::from_ops(vec![find(&p, "pick-0-in-0-with-0"), find(&p, "move-0-1"), find(&p, "drop-0-in-1-from-0")]);
        let out = plan.simulate(&p, &p.initial_state()).unwrap();
        assert!(out.solves);
    }

    #[test]
    fn two_grippers_carry_two_balls_per_trip() {
        let p = gripper(2, 2, 2).unwrap();
        let plan = Plan::from_ops(vec![
            find(&p, "pick-0-in-0-with-0"),
            find(&p, "pick-1-in-0-with-1"),
            find(&p, "move-0-1"),
            find(&p, "drop-0-in-1-from-0"),
            find(&p, "drop-1-in-1-from-1"),
        ]);
        let out = plan.simulate(&p, &p.initial_state()).unwrap();
        assert!(out.solves);
        assert_eq!(out.cost, 5.0);
    }

    #[test]
    fn gripper_must_be_free_to_pick() {
        let p = gripper(2, 2, 1).unwrap();
        let s = p.apply(&p.initial_state(), find(&p, "pick-0-in-0-with-0"));
        let names: Vec<String> = p.valid_ops_vec(&s).iter().map(|&o| p.op_name(o)).collect();
        assert!(!names.contains(&"pick-1-in-0-with-0".to_string()), "occupied gripper must not pick: {names:?}");
    }

    #[test]
    fn goal_fitness_counts_delivered_balls() {
        let p = gripper(2, 2, 2).unwrap();
        let mut s = p.initial_state();
        assert_eq!(p.goal_fitness(&s), 0.0);
        for name in ["pick-0-in-0-with-0", "move-0-1", "drop-0-in-1-from-0"] {
            s = p.apply(&s, find(&p, name));
        }
        assert_eq!(p.goal_fitness(&s), 0.5);
    }

    #[test]
    fn operator_count_matches_formula() {
        // moves: rooms*(rooms-1); pick+drop: 2 * balls*rooms*grippers
        let p = gripper(3, 2, 2).unwrap();
        assert_eq!(p.num_operations(), 3 * 2 + 2 * 2 * 3 * 2);
    }

    #[test]
    #[should_panic(expected = "two rooms")]
    fn one_room_rejected() {
        let _ = gripper(1, 1, 1);
    }
}
