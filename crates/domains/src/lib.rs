#![warn(missing_docs)]

//! # gaplan-domains
//!
//! Planning domains used in the paper's evaluation (§4) and in the related
//! work it compares against (§2):
//!
//! * [`hanoi`] — Towers of Hanoi (§4.1, Tables 1–2, Figures 1–2), with the
//!   paper's disk-weighted goal fitness (Eq. 5).
//! * [`sliding_tile`] — the Sliding-tile puzzle (§4.2, Tables 3–5,
//!   Figure 3), with the Manhattan-distance goal fitness (Eq. 6) and the
//!   Johnson & Story (1879) solvability test.
//! * [`blocks`] — Blocks World (the GenPlan seeding-strategy domain),
//!   generated as a ground STRIPS problem to exercise the data-driven
//!   substrate.
//! * [`navigation`] — multi-robot grid navigation (the Sinergy evaluation
//!   domain).
//! * [`briefcase`] — the Briefcase domain (also from the Sinergy paper),
//!   generated as a ground STRIPS problem.
//! * [`gripper`] — the classic Gripper benchmark (robot with grippers
//!   ferrying balls), generated as a ground STRIPS problem.

pub mod blocks;
pub mod briefcase;
pub mod gripper;
pub mod hanoi;
pub mod navigation;
pub mod sliding_tile;

pub use blocks::blocks_world;
pub use briefcase::briefcase;
pub use gripper::gripper;
pub use hanoi::Hanoi;
pub use navigation::Navigation;
pub use sliding_tile::SlidingTile;
