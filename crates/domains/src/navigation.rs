//! Multi-robot grid navigation — the domain Sinergy (Muslea 1997, cited in
//! paper §2) evaluates on ("single and 2-Robot Navigation problem").
//!
//! `k` robots move on an `w×h` grid with wall cells; a robot may step into a
//! free cell not occupied by another robot. The goal assigns each robot a
//! target cell. Goal fitness is `1 − Σ manhattan(robot, target) / upper`,
//! the natural analogue of the paper's Eq. 6.

use gaplan_core::{Domain, OpId};

/// State: robot positions as `(row, col)` cells, indexed by robot.
pub type NavState = Vec<(u8, u8)>;

const DIRS: [(i32, i32, &str); 4] = [(-1, 0, "north"), (1, 0, "south"), (0, -1, "west"), (0, 1, "east")];

/// The navigation planning domain.
#[derive(Debug, Clone)]
pub struct Navigation {
    width: usize,
    height: usize,
    /// `walls[r * width + c]` — blocked cells.
    walls: Vec<bool>,
    init: NavState,
    targets: NavState,
    upper: f64,
}

impl Navigation {
    /// Build an instance.
    ///
    /// * `map`: rows of `.` (free) and `#` (wall); all rows equal length.
    /// * `init` / `targets`: one (row, col) per robot, on free cells.
    ///
    /// # Panics
    /// On malformed maps, out-of-range or colliding robot placements.
    pub fn new(map: &[&str], init: NavState, targets: NavState) -> Self {
        assert!(!map.is_empty(), "empty map");
        let height = map.len();
        let width = map[0].len();
        assert!(map.iter().all(|r| r.len() == width), "ragged map rows");
        let mut walls = vec![false; width * height];
        for (r, row) in map.iter().enumerate() {
            for (c, ch) in row.chars().enumerate() {
                match ch {
                    '.' => {}
                    '#' => walls[r * width + c] = true,
                    other => panic!("bad map character {other:?}"),
                }
            }
        }
        assert_eq!(init.len(), targets.len(), "one target per robot");
        assert!(!init.is_empty(), "need at least one robot");
        let check = |positions: &NavState, what: &str| {
            for (i, &(r, c)) in positions.iter().enumerate() {
                assert!((r as usize) < height && (c as usize) < width, "{what} robot {i} off-map");
                assert!(!walls[(r as usize) * width + c as usize], "{what} robot {i} in a wall");
                for &(r2, c2) in &positions[..i] {
                    assert!((r, c) != (r2, c2), "{what} robots collide at ({r},{c})");
                }
            }
        };
        check(&init, "initial");
        check(&targets, "target");
        let upper = (init.len() * (width - 1 + height - 1)) as f64;
        Navigation { width, height, walls, init, targets, upper }
    }

    /// Number of robots.
    pub fn robots(&self) -> usize {
        self.init.len()
    }

    /// Summed Manhattan distance of every robot to its target.
    pub fn distance(&self, state: &NavState) -> u32 {
        state
            .iter()
            .zip(&self.targets)
            .map(|(&(r, c), &(tr, tc))| u32::from(r.abs_diff(tr)) + u32::from(c.abs_diff(tc)))
            .sum()
    }

    #[inline]
    fn free(&self, r: i32, c: i32, state: &NavState) -> bool {
        r >= 0
            && c >= 0
            && (r as usize) < self.height
            && (c as usize) < self.width
            && !self.walls[(r as usize) * self.width + c as usize]
            && !state.iter().any(|&(sr, sc)| (sr as i32, sc as i32) == (r, c))
    }

    fn decode_op(&self, op: OpId) -> (usize, usize) {
        let robot = op.index() / DIRS.len();
        let dir = op.index() % DIRS.len();
        (robot, dir)
    }
}

impl Domain for Navigation {
    type State = NavState;

    fn initial_state(&self) -> NavState {
        self.init.clone()
    }

    fn num_operations(&self) -> usize {
        self.robots() * DIRS.len()
    }

    fn valid_operations(&self, state: &NavState, out: &mut Vec<OpId>) {
        for robot in 0..state.len() {
            let (r, c) = (i32::from(state[robot].0), i32::from(state[robot].1));
            for (d, &(dr, dc, _)) in DIRS.iter().enumerate() {
                if self.free(r + dr, c + dc, state) {
                    out.push(OpId((robot * DIRS.len() + d) as u32));
                }
            }
        }
    }

    fn apply(&self, state: &NavState, op: OpId) -> NavState {
        let (robot, dir) = self.decode_op(op);
        let (dr, dc, _) = DIRS[dir];
        let (r, c) = (i32::from(state[robot].0) + dr, i32::from(state[robot].1) + dc);
        debug_assert!(self.free(r, c, state), "apply() requires a valid move");
        let mut next = state.clone();
        next[robot] = (r as u8, c as u8);
        next
    }

    fn goal_fitness(&self, state: &NavState) -> f64 {
        1.0 - f64::from(self.distance(state)) / self.upper
    }

    fn op_name(&self, op: OpId) -> String {
        let (robot, dir) = self.decode_op(op);
        format!("robot{robot} {}", DIRS[dir].2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::{DomainExt, Plan};

    fn open3() -> Navigation {
        Navigation::new(&["...", "...", "..."], vec![(0, 0)], vec![(2, 2)])
    }

    #[test]
    fn corner_robot_has_two_moves() {
        let n = open3();
        assert_eq!(n.valid_ops_vec(&n.initial_state()).len(), 2);
    }

    #[test]
    fn walls_block_movement() {
        let n = Navigation::new(&[".#.", ".#.", "..."], vec![(0, 0)], vec![(0, 2)]);
        let ops = n.valid_ops_vec(&n.initial_state());
        let names: Vec<String> = ops.iter().map(|&o| n.op_name(o)).collect();
        assert_eq!(names, vec!["robot0 south"]); // east is a wall, north/west off-map
    }

    #[test]
    fn robots_block_each_other() {
        let n = Navigation::new(&["..."], vec![(0, 0), (0, 1)], vec![(0, 2), (0, 0)]);
        let ops = n.valid_ops_vec(&n.initial_state());
        let names: Vec<String> = ops.iter().map(|&o| n.op_name(o)).collect();
        // robot0 can't move east (robot1 there); robot1 can move east
        assert_eq!(names, vec!["robot1 east"]);
    }

    #[test]
    fn manual_plan_reaches_goal() {
        let n = open3();
        let find =
            |name: &str| (0..n.num_operations()).map(|i| OpId(i as u32)).find(|&o| n.op_name(o) == name).unwrap();
        let plan =
            Plan::from_ops(vec![find("robot0 south"), find("robot0 south"), find("robot0 east"), find("robot0 east")]);
        let out = plan.simulate(&n, &n.initial_state()).unwrap();
        assert!(out.solves);
        assert_eq!(out.final_state, vec![(2, 2)]);
    }

    #[test]
    fn goal_fitness_tracks_distance() {
        let n = open3();
        assert_eq!(n.distance(&n.initial_state()), 4);
        let f0 = n.goal_fitness(&n.initial_state());
        let closer = vec![(1, 1)];
        assert!(n.goal_fitness(&closer) > f0);
        assert_eq!(n.goal_fitness(&vec![(2, 2)]), 1.0);
        assert!(n.is_goal(&vec![(2, 2)]));
    }

    #[test]
    fn two_robot_swap_requires_side_step() {
        // corridor with a bulge: robots must pass each other
        let n = Navigation::new(&["....", ".#.."], vec![(0, 0), (0, 3)], vec![(0, 3), (0, 0)]);
        assert_eq!(n.robots(), 2);
        assert_eq!(n.num_operations(), 8);
        // simple sanity: initial fitness is low but positive structure holds
        assert!(n.goal_fitness(&n.initial_state()) < 1.0);
    }

    #[test]
    #[should_panic(expected = "in a wall")]
    fn robot_in_wall_rejected() {
        Navigation::new(&["#."], vec![(0, 0)], vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "collide")]
    fn colliding_robots_rejected() {
        Navigation::new(&["..."], vec![(0, 0), (0, 0)], vec![(0, 1), (0, 2)]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_map_rejected() {
        Navigation::new(&["...", ".."], vec![(0, 0)], vec![(0, 1)]);
    }
}
