//! The Briefcase domain (Sinergy's second evaluation domain, paper §2),
//! generated as a ground STRIPS problem.
//!
//! A briefcase and `k` objects live among `m` locations. Objects at the
//! briefcase's location can be put in or taken out; moving the briefcase
//! carries its contents. The goal places each object at a target location.
//!
//! The classic subtlety: moving with an object inside changes that object's
//! location, which the ground encoding captures with one move operator per
//! (origin, destination, carried-subset) — exponential in `k`, so instead we
//! use the standard ground trick: `in-case` objects have no `at` condition;
//! their location is resolved on `take-out`.

use gaplan_core::strips::{StripsBuilder, StripsProblem};
use gaplan_core::Result;

fn at_obj(o: usize, l: usize) -> String {
    format!("obj{o}-at-{l}")
}
fn in_case(o: usize) -> String {
    format!("obj{o}-in-case")
}
fn case_at(l: usize) -> String {
    format!("case-at-{l}")
}

/// Build a ground Briefcase STRIPS problem.
///
/// * `locations` — number of locations `m` (≥ 2).
/// * `obj_init[o]` — initial location of object `o`.
/// * `obj_goal[o]` — goal location of object `o`.
/// * `case_init` — initial briefcase location.
///
/// Ground operators: `move-L1-L2`, `put-in-O-at-L`, `take-out-O-at-L`.
pub fn briefcase(locations: usize, obj_init: &[usize], obj_goal: &[usize], case_init: usize) -> Result<StripsProblem> {
    assert!(locations >= 2, "need at least two locations");
    assert_eq!(obj_init.len(), obj_goal.len(), "one goal per object");
    assert!(!obj_init.is_empty(), "need at least one object");
    assert!(case_init < locations, "briefcase location out of range");
    let k = obj_init.len();
    for &l in obj_init.iter().chain(obj_goal) {
        assert!(l < locations, "object location out of range");
    }

    let mut b = StripsBuilder::new();
    for l in 0..locations {
        b.condition(&case_at(l))?;
    }
    for o in 0..k {
        b.condition(&in_case(o))?;
        for l in 0..locations {
            b.condition(&at_obj(o, l))?;
        }
    }
    // move the briefcase (contents implicitly travel: their only location
    // fact is `in-case`)
    for l1 in 0..locations {
        for l2 in 0..locations {
            if l1 != l2 {
                b.op(&format!("move-{l1}-{l2}"), &[&case_at(l1)], &[&case_at(l2)], &[&case_at(l1)], 1.0)?;
            }
        }
    }
    for o in 0..k {
        for l in 0..locations {
            b.op(&format!("put-in-{o}-at-{l}"), &[&case_at(l), &at_obj(o, l)], &[&in_case(o)], &[&at_obj(o, l)], 1.0)?;
            b.op(&format!("take-out-{o}-at-{l}"), &[&case_at(l), &in_case(o)], &[&at_obj(o, l)], &[&in_case(o)], 1.0)?;
        }
    }

    let mut init = vec![case_at(case_init)];
    for (o, &l) in obj_init.iter().enumerate() {
        init.push(at_obj(o, l));
    }
    let goal: Vec<String> = obj_goal.iter().enumerate().map(|(o, &l)| at_obj(o, l)).collect();
    let init_refs: Vec<&str> = init.iter().map(String::as_str).collect();
    let goal_refs: Vec<&str> = goal.iter().map(String::as_str).collect();
    b.init(&init_refs)?;
    b.goal(&goal_refs)?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::{Domain, DomainExt, OpId, Plan};

    fn find(p: &StripsProblem, name: &str) -> OpId {
        (0..p.num_operations())
            .map(|i| OpId(i as u32))
            .find(|&o| p.op_name(o) == name)
            .unwrap_or_else(|| panic!("missing op {name}"))
    }

    #[test]
    fn carry_one_object_between_locations() {
        // object 0 at loc 0, goal loc 1; case at loc 0
        let p = briefcase(2, &[0], &[1], 0).unwrap();
        let plan = Plan::from_ops(vec![find(&p, "put-in-0-at-0"), find(&p, "move-0-1"), find(&p, "take-out-0-at-1")]);
        let out = plan.simulate(&p, &p.initial_state()).unwrap();
        assert!(out.solves);
        assert_eq!(out.cost, 3.0);
    }

    #[test]
    fn cannot_take_out_what_is_not_inside() {
        let p = briefcase(2, &[0], &[1], 0).unwrap();
        let s = p.initial_state();
        let ops = p.valid_ops_vec(&s);
        let names: Vec<String> = ops.iter().map(|&o| p.op_name(o)).collect();
        assert!(names.contains(&"put-in-0-at-0".to_string()));
        assert!(!names.iter().any(|n| n.starts_with("take-out")));
    }

    #[test]
    fn object_inside_travels_with_case() {
        let p = briefcase(3, &[0], &[2], 0).unwrap();
        let mut s = p.initial_state();
        for name in ["put-in-0-at-0", "move-0-1", "move-1-2", "take-out-0-at-2"] {
            let op = find(&p, name);
            assert!(p.valid_ops_vec(&s).contains(&op), "{name} should be valid");
            s = p.apply(&s, op);
        }
        assert!(p.is_goal(&s));
    }

    #[test]
    fn two_objects_opposite_directions() {
        // obj0: 0 -> 1, obj1: 1 -> 0; case starts at 0
        let p = briefcase(2, &[0, 1], &[1, 0], 0).unwrap();
        let plan = Plan::from_ops(vec![
            find(&p, "put-in-0-at-0"),
            find(&p, "move-0-1"),
            find(&p, "take-out-0-at-1"),
            find(&p, "put-in-1-at-1"),
            find(&p, "move-1-0"),
            find(&p, "take-out-1-at-0"),
        ]);
        let out = plan.simulate(&p, &p.initial_state()).unwrap();
        assert!(out.solves);
    }

    #[test]
    fn goal_fitness_counts_delivered_objects() {
        let p = briefcase(2, &[0, 0], &[1, 1], 0).unwrap();
        let s = p.initial_state();
        assert_eq!(p.goal_fitness(&s), 0.0);
        // deliver the first object only
        let mut s1 = s.clone();
        for name in ["put-in-0-at-0", "move-0-1", "take-out-0-at-1"] {
            s1 = p.apply(&s1, find(&p, name));
        }
        assert_eq!(p.goal_fitness(&s1), 0.5);
    }

    #[test]
    fn operator_count() {
        let p = briefcase(3, &[0, 1], &[2, 2], 0).unwrap();
        // moves: 3*2 = 6; per object per location: put + take = 2 -> 2*3*2 = 12
        assert_eq!(p.num_operations(), 18);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_location_rejected() {
        let _ = briefcase(2, &[5], &[1], 0);
    }
}
