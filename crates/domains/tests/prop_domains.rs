//! Property-based tests for the puzzle domains.

use gaplan_core::{Domain, DomainExt};
use gaplan_domains::sliding_tile::is_reachable;
use gaplan_domains::{Hanoi, Navigation, SlidingTile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    /// Hanoi goal fitness (Eq. 5) is normalized, 1 exactly on the goal, and
    /// monotone in the weighted disk mass on the goal stake.
    #[test]
    fn hanoi_goal_fitness_normalized(n in 1usize..9, state_seed in any::<u64>()) {
        let h = Hanoi::new(n);
        let mut rng = StdRng::seed_from_u64(state_seed);
        let state: Vec<u8> = (0..n).map(|_| rng.gen_range(0..3u8)).collect();
        let f = h.goal_fitness(&state);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert_eq!(f >= 1.0, state.iter().all(|&p| p == 1));
    }

    /// Hanoi: every state (reachable or not as a stacking, all peg
    /// assignments are legal states) has between 2 and 3 valid moves.
    #[test]
    fn hanoi_branching_factor(n in 1usize..9, state_seed in any::<u64>()) {
        let h = Hanoi::new(n);
        let mut rng = StdRng::seed_from_u64(state_seed);
        let state: Vec<u8> = (0..n).map(|_| rng.gen_range(0..3u8)).collect();
        let ops = h.valid_ops_vec(&state);
        let expected_max = if n == 1 { 2 } else { 3 };
        prop_assert!((2..=expected_max).contains(&ops.len()), "ops = {}", ops.len());
    }

    /// Optimal Hanoi plan length for custom goal stakes.
    #[test]
    fn hanoi_optimal_plan_any_goal(n in 1usize..8, goal in 1u8..3) {
        let h = Hanoi::with_init(n, vec![0; n], goal);
        let plan = gaplan_core::Plan::from_ops(h.optimal_plan());
        let out = plan.simulate(&h, &h.initial_state()).unwrap();
        prop_assert!(out.solves);
        prop_assert_eq!(plan.len(), (1 << n) - 1);
    }

    /// Tile: random solvable instances really are reachable from the goal,
    /// and blank moves are inverses of each other.
    #[test]
    fn tile_random_instances_solvable(n in 2usize..5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = SlidingTile::random_solvable(n, &mut rng);
        prop_assert!(is_reachable(n, &p.initial_state(), p.goal()));
        // up/down and left/right are mutual inverses wherever both valid
        let s = p.initial_state();
        for (a, b) in [(0u32, 1u32), (2, 3)] {
            let ops = p.valid_ops_vec(&s);
            if ops.contains(&gaplan_core::OpId(a)) {
                let mid = p.apply(&s, gaplan_core::OpId(a));
                let back = p.apply(&mid, gaplan_core::OpId(b));
                prop_assert_eq!(&back, &s);
            }
        }
    }

    /// Tile: Manhattan distance changes by exactly ±1 per move.
    #[test]
    fn tile_manhattan_steps_by_one(seed in any::<u64>(), moves in 1usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = SlidingTile::random_solvable(3, &mut rng);
        let mut s = p.initial_state();
        let mut d = p.manhattan(&s);
        for _ in 0..moves {
            let ops = p.valid_ops_vec(&s);
            let op = ops[rng.gen_range(0..ops.len())];
            s = p.apply(&s, op);
            let nd = p.manhattan(&s);
            prop_assert_eq!(nd.abs_diff(d), 1, "MD must step by one");
            d = nd;
        }
    }

    /// Navigation: robots never leave the map, enter walls, or collide
    /// along random valid walks.
    #[test]
    fn navigation_safety_invariants(seed in any::<u64>(), moves in 1usize..60) {
        let nav = Navigation::new(
            &["....#", ".##..", ".....", "..#.."],
            vec![(0, 0), (3, 4)],
            vec![(3, 4), (0, 0)],
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = nav.initial_state();
        for _ in 0..moves {
            let ops = nav.valid_ops_vec(&s);
            prop_assert!(!ops.is_empty());
            let op = ops[rng.gen_range(0..ops.len())];
            s = nav.apply(&s, op);
            // no collisions
            prop_assert!(s[0] != s[1]);
            // in bounds (u8 coordinates; map is 4x5)
            for &(r, c) in &s {
                prop_assert!(r < 4 && c < 5);
            }
        }
    }
}
