//! Job model for the planning service: wire-level requests/responses and the
//! in-process problem they build into.
//!
//! A [`PlanRequest`] names a problem ([`ProblemSpec`]) plus optional GA
//! overrides and a deadline. Workers build the spec into a [`BuiltProblem`]
//! (the concrete `Domain` value), resolve the effective [`GaConfig`] by
//! mirroring the `gaplan` CLI's per-domain defaults, and run the multi-phase
//! GA under a [`Budget`]. The pair (problem signature, config signature)
//! keys the plan cache.

use std::sync::Arc;

use gaplan_core::strips::{parse_strips, StripsProblem};
use gaplan_core::{Budget, Domain, DynDomain, DynState, SigBuilder, StopCause, SuccessorCache};
use gaplan_domains::{Hanoi, SlidingTile};
use gaplan_ga::{CostFitnessMode, CrossoverKind, GaConfig, MultiPhase};
use gaplan_grid::{parse_grid, GridWorld};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A problem the service knows how to build, as it appears on the wire.
///
/// Externally tagged JSON, e.g. `{"Hanoi":{"disks":4}}` or
/// `{"Strips":{"text":"..."}}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProblemSpec {
    /// Towers of Hanoi with `disks` disks (three pegs).
    Hanoi {
        /// Number of disks.
        disks: usize,
    },
    /// A `side`×`side` sliding-tile puzzle, shuffled into a random solvable
    /// configuration derived deterministically from `shuffle_seed`.
    Tile {
        /// Board side length (3 → the 8-puzzle).
        side: usize,
        /// Seed for the solvable-instance shuffle.
        shuffle_seed: u64,
    },
    /// A STRIPS problem in the `gaplan-core` text format.
    Strips {
        /// Problem source text.
        text: String,
    },
    /// A grid workflow-planning problem in the `gaplan-grid` text format.
    Grid {
        /// World source text.
        text: String,
    },
    /// A typed `gaplan-lang` DSL pair: domain and problem source texts,
    /// compiled (parse → type check → ground) into a STRIPS problem. The
    /// service memoizes grounding per source-text signature (see
    /// [`crate::ground`]), so resubmitting a hot domain skips the compile.
    Dsl {
        /// Domain file source text.
        domain: String,
        /// Problem file source text.
        problem: String,
    },
    /// Fault-injection job for chaos testing the service itself: panics on
    /// the first `fail_attempts` execution attempts, then succeeds
    /// trivially. With `kill_worker` the panic is raised *outside* the
    /// worker's `catch_unwind`, killing the worker thread — exercising the
    /// supervisor's respawn path.
    Chaos {
        /// Attempts (0-based) that panic before one succeeds.
        fail_attempts: u32,
        /// Panic outside the catch, taking the whole worker thread down.
        kill_worker: bool,
    },
}

impl ProblemSpec {
    /// Build the concrete domain value. Errors are parse/validation
    /// messages suitable for an [`super::JobStatus::Error`] response.
    pub fn build(&self) -> Result<BuiltProblem, String> {
        self.build_with(None)
    }

    /// [`ProblemSpec::build`], counting `Dsl` ground-cache traffic on
    /// `metrics` when provided. Workers pass the service metrics; probe
    /// paths (cache-key computation on the session thread) pass `None` so
    /// one request is not counted twice.
    pub fn build_with(&self, metrics: Option<&crate::metrics::Metrics>) -> Result<BuiltProblem, String> {
        match self {
            ProblemSpec::Hanoi { disks } => {
                if *disks == 0 || *disks > 20 {
                    return Err(format!("hanoi disks must be in 1..=20, got {disks}"));
                }
                Ok(BuiltProblem::Hanoi { domain: Hanoi::new(*disks), disks: *disks })
            }
            ProblemSpec::Tile { side, shuffle_seed } => {
                if *side < 2 || *side > 6 {
                    return Err(format!("tile side must be in 2..=6, got {side}"));
                }
                let mut rng = StdRng::seed_from_u64(*shuffle_seed);
                Ok(BuiltProblem::Tile {
                    domain: SlidingTile::random_solvable(*side, &mut rng),
                    side: *side,
                    shuffle_seed: *shuffle_seed,
                })
            }
            ProblemSpec::Strips { text } => {
                let problem = parse_strips(text).map_err(|e| e.to_string())?;
                Ok(BuiltProblem::Strips(Box::new(problem)))
            }
            ProblemSpec::Grid { text } => {
                let world = parse_grid(text).map_err(|e| e.to_string())?;
                Ok(BuiltProblem::Grid(Box::new(world)))
            }
            ProblemSpec::Dsl { domain, problem } => {
                Ok(BuiltProblem::Dsl(crate::ground::ground_cached(domain, problem, metrics)?))
            }
            ProblemSpec::Chaos { fail_attempts, kill_worker } => {
                Ok(BuiltProblem::Chaos { fail_attempts: *fail_attempts, kill_worker: *kill_worker })
            }
        }
    }
}

/// A spec built into the concrete domain the GA runs against.
#[derive(Debug, Clone)]
pub enum BuiltProblem {
    /// Towers of Hanoi.
    Hanoi {
        /// The domain.
        domain: Hanoi,
        /// Disk count, retained for the signature.
        disks: usize,
    },
    /// Sliding-tile puzzle.
    Tile {
        /// The domain.
        domain: SlidingTile,
        /// Side length, retained for the signature.
        side: usize,
        /// Shuffle seed, retained for the signature.
        shuffle_seed: u64,
    },
    /// Parsed STRIPS problem.
    Strips(Box<StripsProblem>),
    /// Parsed (or in-process) grid world.
    Grid(Box<GridWorld>),
    /// A DSL pair compiled to ground STRIPS; the `Arc` is shared with the
    /// process-wide ground cache, so cloning a built problem is cheap.
    Dsl(Arc<StripsProblem>),
    /// Fault-injection job (see [`ProblemSpec::Chaos`]); handled specially
    /// by the worker, never cached.
    Chaos {
        /// Attempts (0-based) that panic before one succeeds.
        fail_attempts: u32,
        /// Panic outside the catch, killing the worker thread.
        kill_worker: bool,
    },
}

impl BuiltProblem {
    /// Stable signature of the *problem* (independent of GA config). For
    /// parameterised domains this hashes the generating parameters; for
    /// parsed domains it hashes the canonical problem structure, so two
    /// textually different but structurally identical files collide — which
    /// is exactly what the plan cache wants.
    pub fn signature(&self) -> u64 {
        match self {
            BuiltProblem::Hanoi { disks, .. } => {
                let mut s = SigBuilder::new();
                s.tag("hanoi-v1").usize(*disks);
                s.finish()
            }
            BuiltProblem::Tile { side, shuffle_seed, .. } => {
                let mut s = SigBuilder::new();
                s.tag("tile-v1").usize(*side).u64(*shuffle_seed);
                s.finish()
            }
            BuiltProblem::Strips(p) => p.signature(),
            BuiltProblem::Grid(w) => w.signature(),
            // Structural, like Strips: a DSL pair and a ground text file
            // that produce the same problem share one plan-cache slot.
            BuiltProblem::Dsl(p) => p.signature(),
            BuiltProblem::Chaos { fail_attempts, kill_worker } => {
                let mut s = SigBuilder::new();
                s.tag("chaos-v1").u32(*fail_attempts).bool(*kill_worker);
                s.finish()
            }
        }
    }

    /// The GA configuration the `gaplan` CLI would use for this problem
    /// when no flags are given. Overrides from the request are applied on
    /// top of this by [`GaOverrides::apply`].
    pub fn default_config(&self) -> GaConfig {
        match self {
            BuiltProblem::Hanoi { domain, .. } => base_config(domain.optimal_len()).multi_phase(),
            BuiltProblem::Tile { side, .. } => {
                let cells = (side * side) as f64;
                let mut cfg = base_config((cells * cells.log2()).ceil() as usize);
                cfg.crossover = CrossoverKind::Mixed;
                cfg
            }
            BuiltProblem::Strips(p) => base_config(16.max(Domain::num_operations(p.as_ref()))),
            BuiltProblem::Dsl(p) => base_config(16.max(Domain::num_operations(p.as_ref()))),
            BuiltProblem::Grid(_) => {
                let mut cfg = base_config(12);
                cfg.max_len = 32;
                cfg.cost_fitness = CostFitnessMode::InverseCost;
                cfg
            }
            BuiltProblem::Chaos { .. } => base_config(1),
        }
    }

    /// The planning domain behind an object-safe wrapper, or `None` for the
    /// [`BuiltProblem::Chaos`] pseudo-problem (which never plans).
    pub fn as_dyn(&self) -> Option<DynDomain<'_>> {
        match self {
            BuiltProblem::Hanoi { domain, .. } => Some(DynDomain::new(domain)),
            BuiltProblem::Tile { domain, .. } => Some(DynDomain::new(domain)),
            BuiltProblem::Strips(p) => Some(DynDomain::new(p.as_ref())),
            BuiltProblem::Grid(w) => Some(DynDomain::new(w.as_ref())),
            BuiltProblem::Dsl(p) => Some(DynDomain::new(p.as_ref())),
            BuiltProblem::Chaos { .. } => None,
        }
    }

    /// Run the multi-phase GA under `budget` and flatten the result into a
    /// domain-erased [`SolveOutcome`]. Equivalent to
    /// [`BuiltProblem::solve_with`] without a shared successor cache.
    pub fn solve(&self, cfg: &GaConfig, budget: Budget) -> SolveOutcome {
        self.solve_with(cfg, budget, None)
    }

    /// [`BuiltProblem::solve`], probing (and warming) `succ` — a successor
    /// cache shared across jobs and replans for the same problem. Every
    /// variant runs through one [`DynDomain`]-instantiated engine instead of
    /// a per-variant monomorphized copy.
    pub fn solve_with(
        &self,
        cfg: &GaConfig,
        budget: Budget,
        succ: Option<Arc<SuccessorCache<DynState>>>,
    ) -> SolveOutcome {
        match self.as_dyn() {
            Some(domain) => run_on(&domain, cfg, budget, succ),
            // Attempt accounting lives in the worker (`run_job`); reaching
            // the generic path means the injected fault budget is spent.
            None => SolveOutcome {
                solved: true,
                goal_fitness: 1.0,
                plan_names: Vec::new(),
                plan_ops: Vec::new(),
                total_generations: 0,
                stopped: None,
            },
        }
    }
}

/// Shared per-domain defaults mirroring the CLI's `ga_config_from_flags`.
fn base_config(initial_len: usize) -> GaConfig {
    GaConfig {
        population_size: 200,
        generations_per_phase: 100,
        max_phases: 5,
        initial_len,
        max_len: 5 * initial_len,
        seed: 2003,
        ..GaConfig::default()
    }
}

fn run_on(
    domain: &DynDomain<'_>,
    cfg: &GaConfig,
    budget: Budget,
    succ: Option<Arc<SuccessorCache<DynState>>>,
) -> SolveOutcome {
    let mut mp = MultiPhase::new(domain, cfg.clone()).with_budget(budget);
    if let Some(cache) = succ {
        mp = mp.with_cache(cache);
    }
    let r = mp.run();
    SolveOutcome {
        solved: r.solved,
        goal_fitness: r.goal_fitness,
        plan_names: r.plan.ops().iter().map(|&op| domain.op_name(op)).collect(),
        plan_ops: r.plan.ops().iter().map(|op| op.0).collect(),
        total_generations: r.total_generations,
        stopped: r.stopped,
    }
}

/// Domain-erased summary of a finished (or budget-stopped) GA run.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Did the best plan reach the goal?
    pub solved: bool,
    /// Goal fitness of the best plan's final state.
    pub goal_fitness: f64,
    /// Human-readable operation names of the best plan.
    pub plan_names: Vec<String>,
    /// Raw operation ids of the best plan (for in-process callers that
    /// rebuild a [`gaplan_core::Plan`]).
    pub plan_ops: Vec<u32>,
    /// Generations evolved across all phases.
    pub total_generations: u32,
    /// Why the run stopped early, if it did.
    pub stopped: Option<StopCause>,
}

/// Per-request GA overrides. Every field is optional; missing fields keep
/// the domain's default (see [`BuiltProblem::default_config`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaOverrides {
    /// Population size per phase.
    pub population: Option<usize>,
    /// Generations per phase.
    pub generations: Option<u32>,
    /// Maximum number of phases.
    pub phases: Option<u32>,
    /// Initial genome length.
    pub initial_len: Option<usize>,
    /// Maximum genome length.
    pub max_len: Option<usize>,
    /// RNG seed.
    pub seed: Option<u64>,
}

impl GaOverrides {
    /// Apply the overrides on top of `cfg`. When `initial_len` is
    /// overridden but `max_len` is not, `max_len` is re-derived as
    /// `5 * initial_len` to keep the CLI's invariant.
    pub fn apply(&self, mut cfg: GaConfig) -> GaConfig {
        if let Some(p) = self.population {
            cfg.population_size = p.max(2);
        }
        if let Some(g) = self.generations {
            cfg.generations_per_phase = g.max(1);
        }
        if let Some(p) = self.phases {
            cfg.max_phases = p.max(1);
        }
        if let Some(l) = self.initial_len {
            cfg.initial_len = l.max(1);
            if self.max_len.is_none() {
                cfg.max_len = 5 * cfg.initial_len;
            }
        }
        if let Some(l) = self.max_len {
            cfg.max_len = l.max(cfg.initial_len);
        }
        if let Some(s) = self.seed {
            cfg.seed = s;
        }
        cfg
    }
}

/// A planning job as submitted over the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanRequest {
    /// Client-chosen id; echoed in the response. Ids must be unique among
    /// in-flight jobs.
    pub id: u64,
    /// What to plan.
    pub problem: ProblemSpec,
    /// Soft wall-clock budget in milliseconds, measured from submission.
    /// Expiry stops the GA between generations; the job still returns its
    /// best-so-far plan with status [`JobStatus::Timeout`].
    pub deadline_ms: Option<u64>,
    /// GA knobs to override on top of the domain defaults.
    pub ga: Option<GaOverrides>,
}

impl PlanRequest {
    /// The plan-cache key this request's run would be stored under,
    /// mirroring the worker's `PlanCache::key(built.signature(),
    /// cfg.signature())`. `None` when the request can never be cached
    /// (chaos jobs, unbuildable specs).
    pub fn cache_key(&self) -> Option<u64> {
        if matches!(self.problem, ProblemSpec::Chaos { .. }) {
            return None;
        }
        let built = self.problem.build().ok()?;
        let cfg = match &self.ga {
            Some(overrides) => overrides.apply(built.default_config()),
            None => built.default_config(),
        };
        Some(crate::cache::PlanCache::key(built.signature(), cfg.signature()))
    }

    /// The singleflight-coalescing key: two in-flight requests with the
    /// same key are guaranteed to run the identical computation, so the
    /// second can join the first instead of burning a worker. The key is
    /// the cache key extended with the deadline — a joiner inherits the
    /// leader's budget, so only requests with the *same* deadline may
    /// share a run. `None` means "never coalesce".
    pub fn coalesce_key(&self) -> Option<u64> {
        let cache_key = self.cache_key()?;
        let mut s = SigBuilder::new();
        s.tag("coalesce-v1").u64(cache_key).bool(self.deadline_ms.is_some()).u64(self.deadline_ms.unwrap_or(0));
        Some(s.finish())
    }
}

/// Terminal status of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Ran to completion (solved or exhausted its generation budget).
    Done,
    /// Deadline expired; the response carries the best-so-far plan.
    Timeout,
    /// Cancelled via the cancel command; best-so-far plan included when the
    /// job had already started.
    Cancelled,
    /// Never ran: queue full or duplicate id.
    Rejected,
    /// Never ran: shed because the queue stayed full past the admission
    /// timeout (the load-shedding path).
    Shed,
    /// The problem failed to build (parse/validation error), or the job
    /// panicked past its retry budget.
    Error,
    /// Never ran: the deadline had already passed when a worker dequeued
    /// the job, so running the GA could only produce a dead answer. The
    /// fast-fail path that replies this way is what keeps workers off
    /// already-dead jobs under overload.
    DeadlineExpired,
}

impl JobStatus {
    /// Stable wire name of the status, matching its JSON serialization —
    /// used by `svc.reply` trace events so tests can correlate every
    /// response line with a span-covered reply.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Done => "Done",
            JobStatus::Timeout => "Timeout",
            JobStatus::Cancelled => "Cancelled",
            JobStatus::Rejected => "Rejected",
            JobStatus::Shed => "Shed",
            JobStatus::Error => "Error",
            JobStatus::DeadlineExpired => "DeadlineExpired",
        }
    }
}

/// Result of a job, as written back over the wire.
///
/// Serde impls are hand-written (not derived) for one wire-compat reason:
/// the `degraded` field is emitted only when `true`, so responses from a
/// service with brownout disabled are byte-identical to earlier releases,
/// and journals written before the field existed still replay (a missing
/// `degraded` reads as `false`).
#[derive(Debug, Clone)]
pub struct PlanResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// Did the plan reach the goal?
    pub solved: bool,
    /// Goal fitness of the plan's final state.
    pub goal_fitness: f64,
    /// Operation names of the best plan found.
    pub plan: Vec<String>,
    /// Raw operation ids (same order as `plan`).
    pub plan_ops: Vec<u32>,
    /// Length of the plan.
    pub plan_len: usize,
    /// Generations evolved (0 for cache hits and rejected jobs).
    pub total_generations: u32,
    /// Wall-clock time from submission to completion, in milliseconds.
    pub wall_ms: u64,
    /// Was this answered from the plan cache?
    pub cache_hit: bool,
    /// Error message for `Rejected`/`Error` statuses.
    pub error: Option<String>,
    /// Was the GA budget scaled down by the brownout controller? A
    /// degraded plan is best-effort quality and is never inserted into the
    /// plan cache.
    pub degraded: bool,
}

impl Serialize for PlanResponse {
    fn serialize_json(&self, out: &mut String) {
        // Field order matches what the derive would emit; `degraded` is
        // appended only when set (see the struct-level doc).
        out.push_str("{\"id\":");
        self.id.serialize_json(out);
        out.push_str(",\"status\":");
        self.status.serialize_json(out);
        out.push_str(",\"solved\":");
        self.solved.serialize_json(out);
        out.push_str(",\"goal_fitness\":");
        self.goal_fitness.serialize_json(out);
        out.push_str(",\"plan\":");
        self.plan.serialize_json(out);
        out.push_str(",\"plan_ops\":");
        self.plan_ops.serialize_json(out);
        out.push_str(",\"plan_len\":");
        self.plan_len.serialize_json(out);
        out.push_str(",\"total_generations\":");
        self.total_generations.serialize_json(out);
        out.push_str(",\"wall_ms\":");
        self.wall_ms.serialize_json(out);
        out.push_str(",\"cache_hit\":");
        self.cache_hit.serialize_json(out);
        out.push_str(",\"error\":");
        self.error.serialize_json(out);
        if self.degraded {
            out.push_str(",\"degraded\":true");
        }
        out.push('}');
    }
}

impl Deserialize for PlanResponse {
    fn deserialize_json(v: &serde::json::Value) -> Result<Self, serde::json::DeError> {
        let obj = v.as_object().ok_or_else(|| {
            serde::json::DeError::new(format!("expected object for PlanResponse, found {}", v.kind()))
        })?;
        Ok(PlanResponse {
            id: serde::de::field(obj, "id")?,
            status: serde::de::field(obj, "status")?,
            solved: serde::de::field(obj, "solved")?,
            goal_fitness: serde::de::field(obj, "goal_fitness")?,
            plan: serde::de::field(obj, "plan")?,
            plan_ops: serde::de::field(obj, "plan_ops")?,
            plan_len: serde::de::field(obj, "plan_len")?,
            total_generations: serde::de::field(obj, "total_generations")?,
            wall_ms: serde::de::field(obj, "wall_ms")?,
            cache_hit: serde::de::field(obj, "cache_hit")?,
            error: serde::de::field(obj, "error")?,
            degraded: serde::de::field::<Option<bool>>(obj, "degraded")?.unwrap_or(false),
        })
    }
}

impl PlanResponse {
    /// An empty failure response carrying only id, status and a message.
    pub fn failure(id: u64, status: JobStatus, error: impl Into<String>) -> Self {
        PlanResponse {
            id,
            status,
            solved: false,
            goal_fitness: 0.0,
            plan: Vec::new(),
            plan_ops: Vec::new(),
            plan_len: 0,
            total_generations: 0,
            wall_ms: 0,
            cache_hit: false,
            error: Some(error.into()),
            degraded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let req = PlanRequest {
            id: 7,
            problem: ProblemSpec::Hanoi { disks: 4 },
            deadline_ms: Some(250),
            ga: Some(GaOverrides { generations: Some(10), ..GaOverrides::default() }),
        };
        let json = serde_json::to_string(&req).unwrap();
        let back: PlanRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.deadline_ms, Some(250));
        assert!(matches!(back.problem, ProblemSpec::Hanoi { disks: 4 }));
        assert_eq!(back.ga.unwrap().generations, Some(10));
    }

    #[test]
    fn missing_optional_fields_default_to_none() {
        let back: PlanRequest = serde_json::from_str(r#"{"id":1,"problem":{"Hanoi":{"disks":3}}}"#).unwrap();
        assert_eq!(back.deadline_ms, None);
        assert!(back.ga.is_none());
    }

    #[test]
    fn degraded_flag_is_omitted_when_false_and_roundtrips_when_set() {
        let mut resp = PlanResponse::failure(3, JobStatus::Done, "x");
        resp.error = None;
        let plain = serde_json::to_string(&resp).unwrap();
        assert!(!plain.contains("degraded"), "unset flag must not appear on the wire: {plain}");

        resp.degraded = true;
        let flagged = serde_json::to_string(&resp).unwrap();
        assert!(flagged.contains("\"degraded\":true"), "missing flag in {flagged}");
        let back: PlanResponse = serde_json::from_str(&flagged).unwrap();
        assert!(back.degraded);
        // Pre-brownout journal entries (no field at all) read as false.
        let old: PlanResponse = serde_json::from_str(&plain).unwrap();
        assert!(!old.degraded);
    }

    #[test]
    fn built_signature_distinguishes_parameters() {
        let h3 = ProblemSpec::Hanoi { disks: 3 }.build().unwrap();
        let h4 = ProblemSpec::Hanoi { disks: 4 }.build().unwrap();
        assert_ne!(h3.signature(), h4.signature());
        let t1 = ProblemSpec::Tile { side: 3, shuffle_seed: 1 }.build().unwrap();
        let t2 = ProblemSpec::Tile { side: 3, shuffle_seed: 2 }.build().unwrap();
        assert_ne!(t1.signature(), t2.signature());
        // Stable across builds.
        assert_eq!(h3.signature(), ProblemSpec::Hanoi { disks: 3 }.build().unwrap().signature());
    }

    #[test]
    fn overrides_rederive_max_len() {
        let cfg = GaOverrides { initial_len: Some(7), ..GaOverrides::default() }.apply(base_config(10));
        assert_eq!(cfg.initial_len, 7);
        assert_eq!(cfg.max_len, 35);
    }

    #[test]
    fn bad_problem_reports_error() {
        assert!(ProblemSpec::Hanoi { disks: 0 }.build().is_err());
        assert!(ProblemSpec::Strips { text: "not a problem".into() }.build().is_err());
    }

    fn quick_cfg(built: &BuiltProblem) -> GaConfig {
        let mut cfg = built.default_config();
        cfg.population_size = 40;
        cfg.generations_per_phase = 30;
        cfg.max_phases = 2;
        cfg
    }

    #[test]
    fn dyn_dispatch_matches_typed_run() {
        // The service's single erased engine must reproduce the typed
        // engine's run exactly: same plan, same generation count.
        let built = ProblemSpec::Hanoi { disks: 3 }.build().unwrap();
        let cfg = quick_cfg(&built);
        let erased = built.solve(&cfg, Budget::unlimited());

        let typed = gaplan_domains::Hanoi::new(3);
        let r = MultiPhase::new(&typed, cfg).run();
        assert_eq!(erased.solved, r.solved);
        assert_eq!(erased.plan_ops, r.plan.ops().iter().map(|op| op.0).collect::<Vec<_>>());
        assert_eq!(erased.total_generations, r.total_generations);
        assert_eq!(erased.goal_fitness.to_bits(), r.goal_fitness.to_bits());
    }

    #[test]
    fn shared_succ_cache_preserves_results_across_jobs() {
        let built = ProblemSpec::Tile { side: 3, shuffle_seed: 4 }.build().unwrap();
        let cfg = quick_cfg(&built);
        let plain = built.solve(&cfg, Budget::unlimited());

        let cache = Arc::new(SuccessorCache::new(1 << 12));
        let cold = built.solve_with(&cfg, Budget::unlimited(), Some(Arc::clone(&cache)));
        let warm = built.solve_with(&cfg, Budget::unlimited(), Some(Arc::clone(&cache)));
        for run in [&cold, &warm] {
            assert_eq!(plain.plan_ops, run.plan_ops);
            assert_eq!(plain.total_generations, run.total_generations);
            assert_eq!(plain.goal_fitness.to_bits(), run.goal_fitness.to_bits());
        }
        assert!(cache.stats().hits > 0, "second job over the same problem must reuse successors");
    }

    #[test]
    fn dsl_spec_builds_and_roundtrips() {
        let dom = "domain d\ntype t\npred p(x: t)\npred q(x: t)\naction go(x: t)\n  pre: p(x)\n  add: q(x)\n";
        let prob = "problem pr domain d\nobjects a: t\ninit: p(a)\ngoal: q(a)\n";
        let spec = ProblemSpec::Dsl { domain: dom.into(), problem: prob.into() };
        let json = serde_json::to_string(&spec).unwrap();
        let back: ProblemSpec = serde_json::from_str(&json).unwrap();
        let built = back.build().unwrap();
        assert!(built.as_dyn().is_some(), "Dsl problems must plan");
        assert_eq!(built.signature(), spec.build().unwrap().signature());
        let req = PlanRequest { id: 1, problem: spec, deadline_ms: None, ga: None };
        assert!(req.cache_key().is_some(), "Dsl requests are cacheable");
    }

    #[test]
    fn dsl_compile_error_reports_as_build_error() {
        let spec = ProblemSpec::Dsl { domain: "domain d\ntype t\naction a()".into(), problem: "nope".into() };
        let err = spec.build().unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn chaos_has_no_domain() {
        assert!(ProblemSpec::Chaos { fail_attempts: 0, kill_worker: false }.build().unwrap().as_dyn().is_none());
        assert!(ProblemSpec::Hanoi { disks: 2 }.build().unwrap().as_dyn().is_some());
    }
}
