//! Adaptive overload control: deadline-aware admission, a CoDel-style
//! controlled-delay queue, and anytime GA brownout.
//!
//! The fixed admission timeout from the original service answers only one
//! question — "has the queue been full for too long?" — which under
//! sustained over-capacity traffic degenerates into timeout storms: every
//! queued job waits the maximum, workers burn full GA runs on jobs whose
//! callers have given up, and goodput collapses. This module adds three
//! complementary controls, all driven by cheap EWMAs maintained in
//! [`Metrics`]:
//!
//! 1. **Deadline-aware admission** ([`OverloadControl::would_miss_deadline`]):
//!    a job whose remaining deadline is smaller than the estimated queue
//!    wait is rejected *at submit time* with
//!    `SubmitError::WouldMissDeadline`, before it can displace feasible
//!    work. The wait estimate is
//!    `max(queue_wait_ewma, queue_depth × exec_ewma / workers)` — the
//!    observed wait covers steady state, the backlog product covers a
//!    sudden burst the EWMA has not caught up with.
//! 2. **CoDel head shedding** ([`OverloadControl::codel_on_dequeue`]): when
//!    the sojourn (queue wait) of dequeued jobs stays above `target` for a
//!    full `interval`, the controller enters a dropping state and sheds
//!    jobs *from the head of the queue* at `interval / √count` spacing —
//!    the classic controlled-delay law. Head drops bound the wait of the
//!    jobs that remain; a fixed admission timeout (tail control) bounds
//!    nothing once the queue is saturated.
//! 3. **Anytime brownout** ([`OverloadControl::brownout_factor`]): the GA
//!    is an anytime algorithm, so under pressure the service can degrade
//!    *quality* instead of availability — scale generations and population
//!    down toward a floor and mark the response `degraded`. Entry and exit
//!    use distinct thresholds on the wait EWMA (hysteresis), so the
//!    controller does not flap around a single boundary.
//!
//! Everything here defaults *off* ([`OverloadConfig::default`]), keeping
//! the service byte-for-byte compatible with the pre-overload releases
//! until `--target-ms` / `--brownout` opt in.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use gaplan_obs::{self as obs, Event};
use parking_lot::Mutex;

use crate::metrics::Metrics;

/// Tuning for the overload-control layer. The default disables every
/// control, reproducing the fixed-admission-timeout service exactly.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// CoDel sojourn target, milliseconds; 0 disables head shedding.
    pub codel_target_ms: u64,
    /// CoDel control interval, milliseconds (how long sojourn must stay
    /// above target before the first head drop, and the base spacing of
    /// subsequent drops).
    pub codel_interval_ms: u64,
    /// Reject jobs at admission when their deadline is provably unmeetable
    /// given the estimated queue wait.
    pub deadline_admission: bool,
    /// Brownout floor for the GA budget factor, in (0, 1); 0 or ≥ 1
    /// disables brownout.
    pub brownout_floor: f64,
    /// Queue-wait EWMA above which brownout engages, milliseconds.
    pub brownout_enter_ms: u64,
    /// Queue-wait EWMA below which brownout disengages, milliseconds
    /// (should be below `brownout_enter_ms` for hysteresis).
    pub brownout_exit_ms: u64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            codel_target_ms: 0,
            codel_interval_ms: 100,
            deadline_admission: false,
            brownout_floor: 1.0,
            brownout_enter_ms: 50,
            brownout_exit_ms: 12,
        }
    }
}

impl OverloadConfig {
    /// Is CoDel head shedding on?
    pub fn codel_enabled(&self) -> bool {
        self.codel_target_ms > 0
    }

    /// Is anytime brownout on?
    pub fn brownout_enabled(&self) -> bool {
        self.brownout_floor > 0.0 && self.brownout_floor < 1.0
    }
}

/// CoDel controller state (guarded by a mutex; touched once per dequeue).
#[derive(Debug, Default)]
struct CodelState {
    /// When sojourn first crossed the target; a drop is armed once it has
    /// stayed above for a full interval.
    first_above: Option<Instant>,
    /// In the dropping state?
    dropping: bool,
    /// Drops since entering the dropping state (sets the √count spacing).
    count: u32,
    /// Next scheduled drop while dropping.
    drop_next: Option<Instant>,
}

/// Shared overload controller, one per [`crate::PlanService`].
#[derive(Debug)]
pub struct OverloadControl {
    cfg: OverloadConfig,
    workers: usize,
    codel: Mutex<CodelState>,
    brownout_on: AtomicBool,
}

impl OverloadControl {
    /// Controller for a pool of `workers` workers.
    pub fn new(cfg: OverloadConfig, workers: usize) -> Self {
        OverloadControl {
            cfg,
            workers: workers.max(1),
            codel: Mutex::new(CodelState::default()),
            brownout_on: AtomicBool::new(false),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &OverloadConfig {
        &self.cfg
    }

    /// Estimated queue wait for a job admitted now, milliseconds: the
    /// larger of the observed wait EWMA and the backlog estimate
    /// `queue_depth × exec_ewma / workers`.
    pub fn estimated_wait_ms(&self, metrics: &Metrics) -> u64 {
        let backlog = metrics.queue_depth().saturating_mul(metrics.exec_ewma_ms()) / self.workers as u64;
        metrics.queue_wait_ewma_ms().max(backlog)
    }

    /// Would a job with this absolute deadline provably miss it just from
    /// queueing? Always false with deadline admission off or before any
    /// wait/exec samples exist (est = 0 ⇒ no evidence to reject on).
    pub fn would_miss_deadline(&self, metrics: &Metrics, deadline: Instant, now: Instant) -> bool {
        if !self.cfg.deadline_admission {
            return false;
        }
        let est = self.estimated_wait_ms(metrics);
        if est == 0 {
            return false;
        }
        let remaining = deadline.saturating_duration_since(now).as_millis() as u64;
        est > remaining
    }

    /// Feed one dequeue sojourn to the CoDel controller; `true` means the
    /// just-dequeued job should be shed (head drop). Call once per
    /// dequeue, *before* deciding to run the job.
    pub fn codel_on_dequeue(&self, sojourn_ms: u64) -> bool {
        if !self.cfg.codel_enabled() {
            return false;
        }
        let interval = Duration::from_millis(self.cfg.codel_interval_ms.max(1));
        let now = Instant::now();
        let mut st = self.codel.lock();
        if sojourn_ms < self.cfg.codel_target_ms {
            // Sojourn back under target: leave the dropping state entirely.
            st.first_above = None;
            st.dropping = false;
            st.count = 0;
            st.drop_next = None;
            return false;
        }
        if st.dropping {
            match st.drop_next {
                Some(t) if now >= t => {
                    st.count = st.count.saturating_add(1);
                    st.drop_next = Some(now + interval.div_f64((st.count as f64).sqrt()));
                    true
                }
                _ => false,
            }
        } else {
            match st.first_above {
                None => {
                    st.first_above = Some(now + interval);
                    false
                }
                Some(t) if now >= t => {
                    // Above target for a full interval: enter dropping and
                    // shed this head job.
                    st.dropping = true;
                    st.count = 1;
                    st.drop_next = Some(now + interval);
                    true
                }
                Some(_) => false,
            }
        }
    }

    /// GA budget factor for the next job: 1.0 when healthy, clamped to
    /// `[brownout_floor, 1]` while browned out. Emits a `svc.brownout`
    /// trace event on every state transition.
    pub fn brownout_factor(&self, metrics: &Metrics) -> f64 {
        if !self.cfg.brownout_enabled() {
            return 1.0;
        }
        let wait = metrics.queue_wait_ewma_ms();
        let enter = self.cfg.brownout_enter_ms.max(1);
        let on = self.brownout_on.load(Ordering::Relaxed);
        let next = if on { wait > self.cfg.brownout_exit_ms } else { wait >= enter };
        if next != on && self.brownout_on.compare_exchange(on, next, Ordering::Relaxed, Ordering::Relaxed).is_ok() {
            obs::emit(|| Event::new("svc.brownout").bool("on", next).u64("queue_wait_ewma_ms", wait));
        }
        if !next {
            return 1.0;
        }
        // Deeper queues → smaller budgets, proportionally to how far the
        // wait has run past the engage threshold.
        (enter as f64 / wait.max(1) as f64).clamp(self.cfg.brownout_floor, 1.0)
    }

    /// Is the brownout controller currently engaged?
    pub fn brownout_active(&self) -> bool {
        self.brownout_on.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn control(cfg: OverloadConfig, workers: usize) -> OverloadControl {
        OverloadControl::new(cfg, workers)
    }

    #[test]
    fn defaults_disable_every_control() {
        let cfg = OverloadConfig::default();
        assert!(!cfg.codel_enabled());
        assert!(!cfg.brownout_enabled());
        assert!(!cfg.deadline_admission);
        let ctl = control(cfg, 2);
        let m = Metrics::new();
        assert!(!ctl.codel_on_dequeue(10_000));
        assert_eq!(ctl.brownout_factor(&m), 1.0);
        assert!(!ctl.would_miss_deadline(&m, Instant::now(), Instant::now()));
    }

    #[test]
    fn codel_drops_only_after_a_sustained_interval_then_paces() {
        let cfg = OverloadConfig { codel_target_ms: 1, codel_interval_ms: 20, ..OverloadConfig::default() };
        let ctl = control(cfg, 1);
        // First above-target sojourn only arms the controller.
        assert!(!ctl.codel_on_dequeue(50));
        // Still within the interval: no drop yet.
        assert!(!ctl.codel_on_dequeue(50));
        std::thread::sleep(Duration::from_millis(25));
        // Above target for a full interval: head drop.
        assert!(ctl.codel_on_dequeue(50), "expected the first head drop");
        // Immediately after a drop the next one is paced out.
        assert!(!ctl.codel_on_dequeue(50));
        std::thread::sleep(Duration::from_millis(25));
        assert!(ctl.codel_on_dequeue(50), "expected a paced follow-up drop");
        // A below-target sojourn resets the controller completely.
        assert!(!ctl.codel_on_dequeue(0));
        assert!(!ctl.codel_on_dequeue(50));
    }

    #[test]
    fn brownout_engages_with_hysteresis_and_recovers() {
        let cfg = OverloadConfig {
            brownout_floor: 0.25,
            brownout_enter_ms: 20,
            brownout_exit_ms: 5,
            ..OverloadConfig::default()
        };
        let ctl = control(cfg, 1);
        let m = Metrics::new();
        assert_eq!(ctl.brownout_factor(&m), 1.0);
        // Push the wait EWMA to 100 ms → engaged at the floor (20/100 < 0.25).
        m.on_submit();
        m.on_dequeue(100);
        let f = ctl.brownout_factor(&m);
        assert!(ctl.brownout_active());
        assert!((f - 0.25).abs() < 1e-9, "expected the floor, got {f}");
        // Decay the EWMA with idle samples; between exit (5) and enter (20)
        // the controller must stay engaged (hysteresis)...
        while m.queue_wait_ewma_ms() > 5 {
            m.on_submit();
            m.on_dequeue(0);
            if (6..20).contains(&m.queue_wait_ewma_ms()) {
                ctl.brownout_factor(&m);
                assert!(ctl.brownout_active(), "must not disengage above the exit threshold");
            }
        }
        // ...and disengage only once the wait drops below exit.
        assert_eq!(ctl.brownout_factor(&m), 1.0);
        assert!(!ctl.brownout_active());
    }

    #[test]
    fn admission_rejects_unmeetable_deadlines_only_with_evidence() {
        let cfg = OverloadConfig { deadline_admission: true, ..OverloadConfig::default() };
        let ctl = control(cfg, 1);
        let m = Metrics::new();
        let now = Instant::now();
        // No samples yet: estimate is 0, nothing is rejected.
        assert!(!ctl.would_miss_deadline(&m, now + Duration::from_millis(1), now));
        // Backlog estimate: 3 queued × 50 ms exec / 1 worker = 150 ms.
        m.on_exec(50);
        m.on_submit();
        m.on_submit();
        m.on_submit();
        assert_eq!(ctl.estimated_wait_ms(&m), 150);
        assert!(ctl.would_miss_deadline(&m, now + Duration::from_millis(10), now));
        assert!(!ctl.would_miss_deadline(&m, now + Duration::from_secs(1), now));
        // A two-worker pool halves the backlog estimate.
        let ctl2 = control(OverloadConfig { deadline_admission: true, ..OverloadConfig::default() }, 2);
        assert_eq!(ctl2.estimated_wait_ms(&m), 75);
    }
}
