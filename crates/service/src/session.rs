//! Transport-agnostic serving: a [`SessionHost`] wraps one [`PlanService`]
//! plus its journal and coalescing dispatcher, and each client — the stdin
//! loop or one TCP connection — drives a [`Session`] against it.
//!
//! The host owns everything transport-independent: the worker pool, the
//! write-ahead journal, the response-dispatcher thread and the singleflight
//! table. A session owns everything per-client: the output sink, the write
//! backlog gauge that feeds admission shedding, and (in coalescing mode)
//! the connection scope for cancel and disconnect handling.
//!
//! Two modes, chosen at host construction via [`SessionMode`]:
//!
//! * **[`SessionMode::Direct`]** (the stdin transport): client ids are
//!   service ids, submissions go straight to the queue, and responses reach
//!   the single session through the dispatcher's fallback sink — the
//!   historical `serve` behavior, byte for byte.
//! * **[`SessionMode::Routed`]** (the TCP transport): submissions are
//!   re-keyed onto internal ids so replies route back to the submitting
//!   connection, and — when `coalesce` is on — identical in-flight requests
//!   share one computation (singleflight; see the `coalesce` module).

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gaplan_obs::{self as obs, Event};

use crate::coalesce::{error_line, response_line, Dispatch};
use crate::journal::JobJournal;
use crate::metrics::Metrics;
use crate::proto::{parse_command, Command};
use crate::request::{JobStatus, PlanRequest, PlanResponse};
use crate::service::{ObsHandle, PlanService, ServiceConfig, SubmitError};

/// How a [`SessionHost`] serves its sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionMode {
    /// Single-client stdin mode: client ids are service ids, responses go
    /// to the dispatcher's fallback sink.
    Direct,
    /// Multi-connection (TCP) mode: per-connection reply routing, cancel
    /// scoping and disconnect cleanup. `coalesce` turns on singleflight
    /// joining of identical in-flight requests.
    Routed {
        /// Coalesce identical in-flight requests into one computation.
        coalesce: bool,
    },
}

/// What a handled line asks the transport to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// Keep reading.
    Continue,
    /// A `shutdown` command: stop the whole host (drain and exit).
    Shutdown,
}

/// One planning service plus its transport-independent serving machinery:
/// journal, response dispatcher and singleflight table. Shared by every
/// concurrent [`Session`].
pub struct SessionHost {
    service: PlanService,
    journal: Option<Arc<JobJournal>>,
    metrics: Arc<Metrics>,
    dispatch: Arc<Dispatch>,
    obs: Option<ObsHandle>,
    admission_timeout: Duration,
    routed: bool,
    dispatcher: Option<JoinHandle<()>>,
}

impl SessionHost {
    /// Start the service and its response-dispatcher thread. `mode`
    /// selects the serving mode for every session of this host.
    pub fn start(cfg: ServiceConfig, journal: Option<JobJournal>, mode: SessionMode) -> io::Result<SessionHost> {
        let obs_handle = cfg.obs.clone();
        let admission_timeout = cfg.admission_timeout;
        let (service, responses) = PlanService::start(cfg).map_err(io::Error::from)?;
        let journal = journal.map(Arc::new);
        let metrics = service.metrics_arc();
        let join = matches!(mode, SessionMode::Routed { coalesce: true });
        let dispatch = Arc::new(Dispatch::new(Arc::clone(&metrics), journal.clone(), join));
        let dispatcher = {
            let dispatch = Arc::clone(&dispatch);
            std::thread::Builder::new().name("gaplan-dispatcher".to_string()).spawn(move || {
                for resp in responses {
                    dispatch.complete(&resp);
                }
            })?
        };
        Ok(SessionHost {
            service,
            journal,
            metrics,
            dispatch,
            obs: obs_handle,
            admission_timeout,
            routed: !matches!(mode, SessionMode::Direct),
            dispatcher: Some(dispatcher),
        })
    }

    /// Replay the journal (when one is configured): reseed the plan cache,
    /// re-emit journaled replies to `sink` (when given), and re-enqueue
    /// unfinished jobs. In coalescing mode recovered jobs re-register their
    /// coalesce keys, so reconnecting clients resubmitting the identical
    /// request join the recovered run instead of duplicating it.
    pub fn recover(&self, sink: Option<&Sender<String>>) -> io::Result<()> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        let recovery = journal.recover()?;
        self.metrics.on_journal_replayed(recovery.records_replayed);
        self.metrics.on_journal_truncated(recovery.truncated_bytes);
        obs::emit(|| {
            Event::new("durable.replay")
                .u64("records", recovery.records_replayed)
                .u64("pending", recovery.pending.len() as u64)
                .u64("completed", recovery.completed.len() as u64)
                .u64("truncated_bytes", recovery.truncated_bytes)
                .u64("malformed", recovery.malformed_records)
        });
        for (key, entry) in recovery.cache_entries {
            self.service.seed_cache(key, entry);
        }
        if self.routed {
            // Fresh internal ids must never collide with replayed ones.
            let max_seen =
                recovery.pending.iter().map(|r| r.id).chain(recovery.completed.iter().map(|r| r.id)).max().unwrap_or(0);
            self.dispatch.reserve_internal(max_seen);
        }
        for resp in recovery.completed {
            if let Some(sink) = sink {
                let _ = sink.send(response_line(&resp));
            }
        }
        for request in recovery.pending {
            if self.routed {
                self.dispatch.register_recovered(&request);
            }
            let id = request.id;
            loop {
                match self.service.submit(request.clone()) {
                    Ok(token) => {
                        if self.routed {
                            self.dispatch.store_token(id, token);
                        }
                        break;
                    }
                    Err(SubmitError::QueueFull | SubmitError::Shed) => {
                        // Accepted jobs must not be shed by their own
                        // recovery: wait out transient queue pressure.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(err) => {
                        let resp = PlanResponse::failure(id, JobStatus::Rejected, err.to_string());
                        if journal.record_done(&resp).is_ok() {
                            self.metrics.on_journal_append();
                        }
                        if let Some(sink) = sink {
                            let _ = sink.send(response_line(&resp));
                        }
                        break;
                    }
                }
            }
        }
        Ok(())
    }

    /// Drain the queue, stop the workers, join the dispatcher and sync the
    /// journal — every accepted job's reply is durable before this returns.
    pub fn shutdown(self) -> io::Result<()> {
        let SessionHost { service, journal, dispatcher, .. } = self;
        service.shutdown(); // joins workers → response senders drop
        if let Some(handle) = dispatcher {
            let _ = handle.join(); // drains remaining responses
        }
        if let Some(journal) = &journal {
            journal.sync()?;
        }
        Ok(())
    }

    /// The underlying service, for metrics/health snapshots.
    pub fn service(&self) -> &PlanService {
        &self.service
    }

    /// The live metric counters (connection/frame counters are bumped by
    /// the transport, which is the only layer that sees those events).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The observability handle sessions should install on their threads,
    /// when the host was configured with one.
    pub fn obs(&self) -> Option<&ObsHandle> {
        self.obs.as_ref()
    }

    /// Is this host serving in routed (multi-connection) mode?
    pub fn routed(&self) -> bool {
        self.routed
    }

    /// Route responses with no registered waiter to `sink` — the direct
    /// (stdin) transport, which never registers entries.
    pub(crate) fn set_fallback(&self, sink: Sender<String>) {
        self.dispatch.set_fallback(sink);
    }
}

/// One client's view of a [`SessionHost`]: parses protocol lines and turns
/// them into submissions, cancellations and snapshot queries, pushing every
/// reply line onto the session's output sink.
pub struct Session<'h> {
    host: &'h SessionHost,
    /// Connection scope in coalescing mode; `None` in direct mode.
    conn: Option<u64>,
    out: Sender<String>,
    /// Reply lines queued but not yet written to the peer.
    depth: Arc<AtomicUsize>,
    /// Queue-depth bound above which new `plan` commands are shed (after
    /// waiting out the admission timeout). `None` disables backpressure.
    backlog_limit: Option<usize>,
}

impl<'h> Session<'h> {
    /// Open a session. `out` receives one wire line per reply; the
    /// transport is responsible for writing them to the peer and calling
    /// [`Session::written`] as lines drain (only meaningful with a
    /// `backlog_limit`).
    pub fn open(host: &'h SessionHost, out: Sender<String>, backlog_limit: Option<usize>) -> Session<'h> {
        let conn = host.routed.then(|| host.dispatch.register_conn());
        Session { host, conn, out, depth: Arc::new(AtomicUsize::new(0)), backlog_limit }
    }

    /// The write-backlog gauge: incremented when a reply line is queued,
    /// decremented by the transport (via [`Session::written`]) once the
    /// line reaches the peer.
    pub fn backlog(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.depth)
    }

    /// Tell the session one queued line was written to the peer.
    pub fn written(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Handle one protocol line, queuing any replies it produces.
    pub fn handle_line(&self, line: &str) -> LineOutcome {
        if line.trim().is_empty() {
            return LineOutcome::Continue;
        }
        match parse_command(line) {
            Ok(Command::Plan(request)) => {
                self.submit_plan(request);
                LineOutcome::Continue
            }
            Ok(Command::Cancel { id }) => {
                let found = match self.conn {
                    Some(conn) => self.host.dispatch.cancel(conn, id),
                    None => self.host.service.cancel(id),
                };
                self.send(format!(r#"{{"ack":"cancel","id":{id},"found":{found}}}"#));
                LineOutcome::Continue
            }
            Ok(Command::Metrics) => {
                let snapshot = self.host.service.metrics();
                let body = serde_json::to_string(&snapshot).unwrap_or_else(|_| "null".to_string());
                self.send(format!(r#"{{"metrics":{body}}}"#));
                LineOutcome::Continue
            }
            Ok(Command::Health) => {
                let report = self.host.service.health();
                let body = serde_json::to_string(&report).unwrap_or_else(|_| "null".to_string());
                self.send(format!(r#"{{"health":{body}}}"#));
                LineOutcome::Continue
            }
            Ok(Command::Shutdown) => LineOutcome::Shutdown,
            Err(err) => {
                self.send(error_line(err.id, &err.message));
                LineOutcome::Continue
            }
        }
    }

    /// Queue a transport-detected error reply (e.g. a rejected frame) so
    /// the failure still reaches the peer as a protocol line.
    pub fn report_error(&self, id: Option<u64>, message: &str) {
        self.send(error_line(id, message));
    }

    /// End the session, detaching any in-flight waiters it owns; the last
    /// waiter of a job abandons it (fires its cancel token). Returns how
    /// many in-flight jobs this session abandoned.
    pub fn disconnect(mut self) -> usize {
        self.teardown()
    }

    fn teardown(&mut self) -> usize {
        match self.conn.take() {
            Some(conn) => self.host.dispatch.drop_conn(conn),
            None => 0,
        }
    }

    fn submit_plan(&self, request: Box<PlanRequest>) {
        match self.conn {
            Some(conn) => {
                // Per-connection write backpressure: a peer that stops
                // reading its replies is shed before admission instead of
                // queuing unbounded output.
                if let Some(limit) = self.backlog_limit {
                    if !self.wait_backlog(limit) {
                        self.host.metrics.on_shed();
                        let resp = PlanResponse::failure(
                            request.id,
                            JobStatus::Shed,
                            "connection write backlog full past the admission timeout",
                        );
                        obs::emit(|| {
                            Event::new("svc.reply")
                                .u64("id", resp.id)
                                .str("status", resp.status.name())
                                .bool("cache_hit", false)
                                .u64("wall_ms", resp.wall_ms)
                        });
                        self.send(response_line(&resp));
                        return;
                    }
                }
                self.host.dispatch.submit(&self.host.service, *request, conn, &self.out, &self.depth);
            }
            None => self.submit_direct(request),
        }
    }

    /// The direct (stdin) submission path — the historical serve-loop
    /// behavior: journal write-ahead, submit under the client id, answer
    /// admission failures inline.
    fn submit_direct(&self, request: Box<PlanRequest>) {
        let id = request.id;
        if let Some(journal) = &self.host.journal {
            // Write-ahead: the job is durable before it can run. A failed
            // append refuses the job — running it unjournaled would make a
            // crash silently drop an "accepted" job.
            if let Err(e) = journal.record_submit(&request) {
                let resp = PlanResponse::failure(id, JobStatus::Error, format!("journal write failed: {e}"));
                self.send(response_line(&resp));
                return;
            }
            self.host.metrics.on_journal_append();
        }
        if let Err(err) = self.host.service.submit(*request) {
            let status = match err {
                SubmitError::Shed => JobStatus::Shed,
                // WouldMissDeadline rejects at admission; the error string
                // carries `would_miss_deadline` so clients can tell it from
                // a full queue.
                _ => JobStatus::Rejected,
            };
            let resp = PlanResponse::failure(id, status, err.to_string());
            obs::emit(|| {
                Event::new("svc.reply")
                    .u64("id", resp.id)
                    .str("status", resp.status.name())
                    .bool("cache_hit", false)
                    .u64("wall_ms", resp.wall_ms)
            });
            if let Some(journal) = &self.host.journal {
                // Terminal record for the journaled submit, so a restart
                // does not resurrect a shed job.
                if journal.record_done(&resp).is_ok() {
                    self.host.metrics.on_journal_append();
                }
            }
            self.send(response_line(&resp));
        }
    }

    fn wait_backlog(&self, limit: usize) -> bool {
        if self.depth.load(Ordering::Relaxed) < limit {
            return true;
        }
        let deadline = Instant::now() + self.host.admission_timeout;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
            if self.depth.load(Ordering::Relaxed) < limit {
                return true;
            }
        }
        false
    }

    fn send(&self, line: String) {
        self.depth.fetch_add(1, Ordering::Relaxed);
        if self.out.send(line).is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        // Safety net for transports that forget to call `disconnect`.
        self.teardown();
    }
}
