//! Signature-keyed plan cache with an LRU bound.
//!
//! Keys combine the problem signature with the GA-config signature (both
//! stable across processes — see `gaplan_core::SigBuilder`), so a cache hit
//! means "same problem, same knobs, same seed": the cached plan is exactly
//! what a fresh run would produce. Only runs that completed under their own
//! steam are cached; budget-stopped (timeout/cancel) results are not, since
//! they depend on wall-clock luck.

use rustc_hash::FxHashMap;

use gaplan_core::SigBuilder;

/// A cached run-to-completion result.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// Did the plan reach the goal?
    pub solved: bool,
    /// Goal fitness of the plan's final state.
    pub goal_fitness: f64,
    /// Operation names of the plan.
    pub plan_names: Vec<String>,
    /// Raw operation ids of the plan.
    pub plan_ops: Vec<u32>,
    /// Generations the original run evolved.
    pub total_generations: u32,
}

struct Entry {
    stamp: u64,
    value: CachedPlan,
}

/// Bounded LRU map from `(problem, config)` signature to plan.
///
/// Recency is tracked with a monotonic stamp; eviction scans for the
/// minimum. That is O(capacity), which is fine for the small capacities a
/// planning service wants (plans are expensive, entries are few).
pub struct PlanCache {
    capacity: usize,
    next_stamp: u64,
    map: FxHashMap<u64, Entry>,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` plans. A capacity of 0
    /// disables caching.
    pub fn new(capacity: usize) -> Self {
        PlanCache { capacity, next_stamp: 0, map: FxHashMap::default() }
    }

    /// Combine a problem signature and a config signature into a cache key.
    pub fn key(problem_sig: u64, config_sig: u64) -> u64 {
        let mut s = SigBuilder::new();
        s.tag("plan-cache-key-v1").u64(problem_sig).u64(config_sig);
        s.finish()
    }

    /// Look up a plan, refreshing its recency on a hit.
    pub fn get(&mut self, key: u64) -> Option<CachedPlan> {
        let entry = self.map.get_mut(&key)?;
        self.next_stamp += 1;
        entry.stamp = self.next_stamp;
        Some(entry.value.clone())
    }

    /// Insert a plan, evicting the least-recently-used entry when full.
    /// Returns whether an entry was evicted to make room.
    pub fn insert(&mut self, key: u64, value: CachedPlan) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        if let Some(entry) = self.map.get_mut(&key) {
            *entry = Entry { stamp, value };
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            if let Some(&oldest) = self.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k) {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(key, Entry { stamp, value });
        evicted
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(tag: u32) -> CachedPlan {
        CachedPlan {
            solved: true,
            goal_fitness: 1.0,
            plan_names: vec![format!("op{tag}")],
            plan_ops: vec![tag],
            total_generations: tag,
        }
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = PlanCache::new(2);
        assert!(!c.insert(1, plan(1)));
        assert!(!c.insert(2, plan(2)));
        assert!(c.get(1).is_some()); // refresh 1 → 2 is now LRU
        assert!(c.insert(3, plan(3)), "insert into a full cache must report the eviction");
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PlanCache::new(0);
        c.insert(1, plan(1));
        assert!(c.get(1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut c = PlanCache::new(2);
        c.insert(1, plan(1));
        c.insert(1, plan(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1).unwrap().plan_ops, vec![9]);
    }

    #[test]
    fn key_mixes_both_signatures() {
        assert_ne!(PlanCache::key(1, 2), PlanCache::key(2, 1));
        assert_ne!(PlanCache::key(1, 2), PlanCache::key(1, 3));
        assert_eq!(PlanCache::key(1, 2), PlanCache::key(1, 2));
    }
}
