//! Service metrics: lock-free counters updated by workers and the submit
//! path, snapshotted into a serializable [`MetricsSnapshot`].
//!
//! Besides the counters, two log2-bucket [`Histogram`]s track latency
//! distributions — per-job wall time and queue wait — rolled up into
//! [`HistogramSummary`] values in the snapshot and into percentile fields
//! of the `health` wire command.

use std::sync::atomic::{AtomicU64, Ordering};

use gaplan_obs::Histogram;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Live counters. All updates use relaxed ordering — the snapshot is a
/// statistical view, not a synchronization point.
#[derive(Debug, Default)]
pub struct Metrics {
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_solved: AtomicU64,
    jobs_timed_out: AtomicU64,
    jobs_cancelled: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_errored: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    ground_cache_hits: AtomicU64,
    ground_cache_misses: AtomicU64,
    journal_appends: AtomicU64,
    journal_replayed: AtomicU64,
    journal_truncated_bytes: AtomicU64,
    queue_depth: AtomicU64,
    total_wall_ms: AtomicU64,
    max_wall_ms: AtomicU64,
    faults_injected: AtomicU64,
    panics_caught: AtomicU64,
    jobs_retried: AtomicU64,
    workers_respawned: AtomicU64,
    jobs_shed: AtomicU64,
    replans_failed: AtomicU64,
    workers_alive: AtomicU64,
    coalesced_jobs: AtomicU64,
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    conns_dropped: AtomicU64,
    conns_reaped: AtomicU64,
    frames_oversize: AtomicU64,
    frames_malformed: AtomicU64,
    jobs_rejected_deadline: AtomicU64,
    jobs_expired_in_queue: AtomicU64,
    jobs_degraded: AtomicU64,
    codel_drops: AtomicU64,
    retries_joined: AtomicU64,
    retries_conflict: AtomicU64,
    accepts_retried: AtomicU64,
    /// EWMA of queue wait, microseconds (α = 1/4); 0 until the first
    /// nonzero sample. Stored as plain bits — the racy read-modify-write
    /// is fine for a statistical signal.
    queue_wait_ewma_us: AtomicU64,
    /// EWMA of on-worker execution time, microseconds (α = 1/4).
    exec_ewma_us: AtomicU64,
    /// Per-job submission-to-completion wall time, milliseconds.
    wall_ms_hist: Mutex<Histogram>,
    /// Per-job submission-to-dequeue wait, milliseconds.
    queue_wait_ms_hist: Mutex<Histogram>,
}

impl Metrics {
    /// Fresh all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// A job was accepted onto the queue.
    pub fn on_submit(&self) {
        self.jobs_submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker dequeued a job after it waited `wait_ms` on the queue.
    pub fn on_dequeue(&self, wait_ms: u64) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.queue_wait_ms_hist.lock().record(wait_ms);
        ewma_update(&self.queue_wait_ewma_us, wait_ms.saturating_mul(1000));
    }

    /// A worker spent `exec_ms` actually running a job (dequeue to reply,
    /// excluding queue wait). Feeds the execution-time EWMA the admission
    /// controller uses to translate queue depth into an expected wait.
    pub fn on_exec(&self, exec_ms: u64) {
        ewma_update(&self.exec_ewma_us, exec_ms.saturating_mul(1000));
    }

    /// Queue-wait EWMA, milliseconds (rounded down; α = 1/4).
    pub fn queue_wait_ewma_ms(&self) -> u64 {
        self.queue_wait_ewma_us.load(Ordering::Relaxed) / 1000
    }

    /// Execution-time EWMA, milliseconds (rounded down; α = 1/4).
    pub fn exec_ewma_ms(&self) -> u64 {
        self.exec_ewma_us.load(Ordering::Relaxed) / 1000
    }

    /// A submission was rejected (queue full or duplicate id).
    pub fn on_reject(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A job finished; `wall_ms` is submission-to-completion time.
    pub fn on_complete(&self, wall_ms: u64, solved: bool) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
        if solved {
            self.jobs_solved.fetch_add(1, Ordering::Relaxed);
        }
        self.total_wall_ms.fetch_add(wall_ms, Ordering::Relaxed);
        self.max_wall_ms.fetch_max(wall_ms, Ordering::Relaxed);
        self.wall_ms_hist.lock().record(wall_ms);
    }

    /// Bucket upper bound of the `q`-quantile per-job wall time so far.
    pub fn wall_ms_quantile(&self, q: f64) -> u64 {
        self.wall_ms_hist.lock().quantile_upper(q)
    }

    /// Bucket upper bound of the `q`-quantile queue wait so far.
    pub fn queue_wait_ms_quantile(&self, q: f64) -> u64 {
        self.queue_wait_ms_hist.lock().quantile_upper(q)
    }

    /// A job hit its deadline.
    pub fn on_timeout(&self) {
        self.jobs_timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was cancelled.
    pub fn on_cancel(&self) {
        self.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// A job failed to build its problem.
    pub fn on_error(&self) {
        self.jobs_errored.fetch_add(1, Ordering::Relaxed);
    }

    /// The plan cache answered a job.
    pub fn on_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// The plan cache missed and the GA ran.
    pub fn on_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// The plan cache evicted its least-recently-used entry to make room.
    pub fn on_cache_eviction(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// A `Dsl` job reused an already-grounded domain from the ground cache.
    pub fn on_ground_cache_hit(&self) {
        self.ground_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A `Dsl` job parsed, checked and grounded its domain from scratch.
    pub fn on_ground_cache_miss(&self) {
        self.ground_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One record was appended (and flushed) to the job journal.
    pub fn on_journal_append(&self) {
        self.journal_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// `records` intact journal records were decoded during startup replay.
    pub fn on_journal_replayed(&self, records: u64) {
        self.journal_replayed.fetch_add(records, Ordering::Relaxed);
    }

    /// `bytes` of corrupt journal tail were truncated during recovery.
    pub fn on_journal_truncated(&self, bytes: u64) {
        self.journal_truncated_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A chaos job deliberately injected a fault (panic) into a worker.
    pub fn on_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker caught (or died to) a panicking job.
    pub fn on_panic(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// A panicked job was re-attempted under the retry policy.
    pub fn on_retry(&self) {
        self.jobs_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// The supervisor replaced a dead worker thread.
    pub fn on_respawn(&self) {
        self.workers_respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission was shed: the queue stayed full past the admission
    /// timeout.
    pub fn on_shed(&self) {
        self.jobs_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A submission was rejected at admission because its deadline was
    /// provably unmeetable given the estimated queue wait. Also counts
    /// toward `jobs_rejected` (it is a pre-queue rejection).
    pub fn on_rejected_deadline(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        self.jobs_rejected_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker dequeued a job whose deadline had already passed and
    /// fast-failed it without running the GA.
    pub fn on_expired_in_queue(&self) {
        self.jobs_expired_in_queue.fetch_add(1, Ordering::Relaxed);
    }

    /// A job ran with a brownout-scaled (degraded) GA budget.
    pub fn on_degraded(&self) {
        self.jobs_degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// The CoDel controller shed a job from the head of the queue.
    pub fn on_codel_drop(&self) {
        self.codel_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// An idle (or stalled half-open) connection was reaped by the
    /// per-connection read timeout.
    pub fn on_conn_reaped(&self) {
        self.conns_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// A service-backed replan got no answer (service dead or rejecting),
    /// as opposed to answering "no repair".
    pub fn on_replan_failed(&self) {
        self.replans_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A job joined an identical in-flight computation instead of running.
    pub fn on_coalesced(&self) {
        self.coalesced_jobs.fetch_add(1, Ordering::Relaxed);
    }

    /// A resubmission of an in-flight request id with an identical payload
    /// was folded into the existing computation (idempotent client retry).
    pub fn on_retry_joined(&self) {
        self.retries_joined.fetch_add(1, Ordering::Relaxed);
    }

    /// A resubmission reused an in-flight request id with a *different*
    /// payload and was rejected. Also counts toward `jobs_rejected`.
    pub fn on_retry_conflict(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        self.retries_conflict.fetch_add(1, Ordering::Relaxed);
    }

    /// The accept loop hit a transient error (EINTR/EMFILE/...) and
    /// retried with backoff instead of exiting.
    pub fn on_accept_retried(&self) {
        self.accepts_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// A TCP connection was accepted.
    pub fn on_conn_accept(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
        self.conns_open.fetch_add(1, Ordering::Relaxed);
    }

    /// A TCP connection closed; `dropped` means the peer vanished with
    /// jobs still in flight (as opposed to a clean quit/EOF).
    pub fn on_conn_close(&self, dropped: bool) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
        if dropped {
            self.conns_dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// An inbound frame exceeded the per-frame size cap and was rejected.
    pub fn on_frame_oversize(&self) {
        self.frames_oversize.fetch_add(1, Ordering::Relaxed);
    }

    /// An inbound frame was not valid UTF-8 / parseable JSON.
    pub fn on_frame_malformed(&self) {
        self.frames_malformed.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker thread came up.
    pub fn on_worker_start(&self) {
        self.workers_alive.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker thread exited (normally or by panic).
    pub fn on_worker_exit(&self) {
        self.workers_alive.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current live-worker gauge.
    pub fn workers_alive(&self) -> u64 {
        self.workers_alive.load(Ordering::Relaxed)
    }

    /// Current queue-depth gauge.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let completed = self.jobs_completed.load(Ordering::Relaxed);
        let total_wall_ms = self.total_wall_ms.load(Ordering::Relaxed);
        MetricsSnapshot {
            jobs_submitted: self.jobs_submitted.load(Ordering::Relaxed),
            jobs_completed: completed,
            jobs_solved: self.jobs_solved.load(Ordering::Relaxed),
            jobs_timed_out: self.jobs_timed_out.load(Ordering::Relaxed),
            jobs_cancelled: self.jobs_cancelled.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_errored: self.jobs_errored.load(Ordering::Relaxed),
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if hits + misses > 0 { hits as f64 / (hits + misses) as f64 } else { 0.0 },
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            ground_cache_hits: self.ground_cache_hits.load(Ordering::Relaxed),
            ground_cache_misses: self.ground_cache_misses.load(Ordering::Relaxed),
            journal_appends: self.journal_appends.load(Ordering::Relaxed),
            journal_replayed: self.journal_replayed.load(Ordering::Relaxed),
            journal_truncated_bytes: self.journal_truncated_bytes.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            total_wall_ms,
            max_wall_ms: self.max_wall_ms.load(Ordering::Relaxed),
            mean_wall_ms: if completed > 0 { total_wall_ms as f64 / completed as f64 } else { 0.0 },
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            jobs_retried: self.jobs_retried.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            replans_failed: self.replans_failed.load(Ordering::Relaxed),
            workers_alive: self.workers_alive.load(Ordering::Relaxed),
            coalesced_jobs: self.coalesced_jobs.load(Ordering::Relaxed),
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_open: self.conns_open.load(Ordering::Relaxed),
            conns_dropped: self.conns_dropped.load(Ordering::Relaxed),
            conns_reaped: self.conns_reaped.load(Ordering::Relaxed),
            frames_oversize: self.frames_oversize.load(Ordering::Relaxed),
            frames_malformed: self.frames_malformed.load(Ordering::Relaxed),
            jobs_rejected_deadline: self.jobs_rejected_deadline.load(Ordering::Relaxed),
            jobs_expired_in_queue: self.jobs_expired_in_queue.load(Ordering::Relaxed),
            jobs_degraded: self.jobs_degraded.load(Ordering::Relaxed),
            codel_drops: self.codel_drops.load(Ordering::Relaxed),
            retries_joined: self.retries_joined.load(Ordering::Relaxed),
            retries_conflict: self.retries_conflict.load(Ordering::Relaxed),
            accepts_retried: self.accepts_retried.load(Ordering::Relaxed),
            queue_wait_ewma_ms: self.queue_wait_ewma_ms(),
            exec_ewma_ms: self.exec_ewma_ms(),
            wall_ms_hist: HistogramSummary::of(&self.wall_ms_hist.lock()),
            queue_wait_ms_hist: HistogramSummary::of(&self.queue_wait_ms_hist.lock()),
        }
    }
}

/// Racy-but-fine EWMA step: `cell ← (3·cell + sample) / 4`, with the
/// first nonzero sample adopted outright so the average doesn't have to
/// climb from zero. Lost updates under contention only soften the signal.
fn ewma_update(cell: &AtomicU64, sample_us: u64) {
    let old = cell.load(Ordering::Relaxed);
    let new = if old == 0 { sample_us } else { (old.saturating_mul(3).saturating_add(sample_us)) / 4 };
    cell.store(new, Ordering::Relaxed);
}

/// One non-empty log2 bucket of a [`HistogramSummary`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub upper: u64,
    /// Samples that landed in it.
    pub count: u64,
}

/// Serializable roll-up of a [`Histogram`]. Percentiles are bucket upper
/// bounds, so every field is an exact integer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Bucket upper bound of the median sample.
    pub p50: u64,
    /// Bucket upper bound of the 90th-percentile sample.
    pub p90: u64,
    /// Bucket upper bound of the 99th-percentile sample.
    pub p99: u64,
    /// Non-empty buckets in ascending order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSummary {
    /// Roll up a live histogram.
    pub fn of(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            sum: h.sum(),
            p50: h.quantile_upper(0.5),
            p90: h.quantile_upper(0.9),
            p99: h.quantile_upper(0.99),
            buckets: h.nonzero_buckets().into_iter().map(|(upper, count)| BucketCount { upper, count }).collect(),
        }
    }
}

/// Serializable point-in-time view of [`Metrics`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Jobs accepted onto the queue.
    pub jobs_submitted: u64,
    /// Jobs that produced a response (including timeouts/cancellations).
    pub jobs_completed: u64,
    /// Completed jobs whose plan reached the goal.
    pub jobs_solved: u64,
    /// Jobs stopped by their deadline.
    pub jobs_timed_out: u64,
    /// Jobs stopped by cancellation.
    pub jobs_cancelled: u64,
    /// Submissions rejected before queueing.
    pub jobs_rejected: u64,
    /// Jobs whose problem failed to build.
    pub jobs_errored: u64,
    /// Jobs answered from the plan cache.
    pub cache_hits: u64,
    /// Jobs that ran the GA.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when no lookups yet.
    pub cache_hit_rate: f64,
    /// Plan-cache entries evicted (LRU) to make room for new plans.
    pub cache_evictions: u64,
    /// `Dsl` jobs that reused an already-grounded domain.
    pub ground_cache_hits: u64,
    /// `Dsl` jobs that parsed, checked and grounded from scratch.
    pub ground_cache_misses: u64,
    /// Records appended to the job journal (submits + terminal replies).
    pub journal_appends: u64,
    /// Intact journal records decoded during startup replay.
    pub journal_replayed: u64,
    /// Bytes of corrupt journal tail truncated during recovery.
    pub journal_truncated_bytes: u64,
    /// Jobs currently queued (submitted, not yet dequeued by a worker).
    pub queue_depth: u64,
    /// Sum of per-job wall times, milliseconds.
    pub total_wall_ms: u64,
    /// Largest single-job wall time, milliseconds.
    pub max_wall_ms: u64,
    /// `total_wall_ms / jobs_completed`, 0 before the first completion.
    pub mean_wall_ms: f64,
    /// Faults deliberately injected by chaos jobs.
    pub faults_injected: u64,
    /// Job panics a worker caught (or died to).
    pub panics_caught: u64,
    /// Panicked jobs re-attempted under the retry policy.
    pub jobs_retried: u64,
    /// Dead worker threads the supervisor replaced.
    pub workers_respawned: u64,
    /// Submissions shed after the admission timeout.
    pub jobs_shed: u64,
    /// Service-backed replans that got no answer (dead/rejecting service).
    pub replans_failed: u64,
    /// Worker threads currently alive (gauge).
    pub workers_alive: u64,
    /// Jobs that joined an identical in-flight computation (singleflight).
    pub coalesced_jobs: u64,
    /// TCP connections accepted since startup.
    pub conns_accepted: u64,
    /// TCP connections currently open (gauge).
    pub conns_open: u64,
    /// TCP connections that vanished with jobs still in flight.
    pub conns_dropped: u64,
    /// Idle/stalled connections reaped by the per-connection read timeout.
    pub conns_reaped: u64,
    /// Inbound frames rejected for exceeding the per-frame size cap.
    pub frames_oversize: u64,
    /// Inbound frames rejected as malformed (bad UTF-8 / unparseable).
    pub frames_malformed: u64,
    /// Submissions rejected at admission as deadline-unmeetable (subset of
    /// `jobs_rejected`).
    pub jobs_rejected_deadline: u64,
    /// Jobs fast-failed at dequeue because their deadline had passed.
    pub jobs_expired_in_queue: u64,
    /// Jobs run with a brownout-scaled (degraded) GA budget.
    pub jobs_degraded: u64,
    /// Jobs shed from the queue head by the CoDel controller.
    pub codel_drops: u64,
    /// In-flight request-id resubmissions with an identical payload folded
    /// into the existing computation (idempotent client retries).
    pub retries_joined: u64,
    /// In-flight request-id resubmissions rejected because the payload
    /// differed (subset of `jobs_rejected`).
    pub retries_conflict: u64,
    /// Transient accept-loop errors retried with backoff.
    pub accepts_retried: u64,
    /// Queue-wait EWMA at snapshot time, milliseconds (gauge).
    pub queue_wait_ewma_ms: u64,
    /// Execution-time EWMA at snapshot time, milliseconds (gauge).
    pub exec_ewma_ms: u64,
    /// Distribution of per-job wall times, milliseconds.
    pub wall_ms_hist: HistogramSummary,
    /// Distribution of submission-to-dequeue queue waits, milliseconds.
    pub queue_wait_ms_hist: HistogramSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_roll_up_into_snapshot() {
        let m = Metrics::new();
        m.on_submit();
        m.on_submit();
        m.on_dequeue(3);
        m.on_cache_miss();
        m.on_complete(40, true);
        m.on_dequeue(7);
        m.on_cache_hit();
        m.on_complete(10, false);
        m.on_reject();
        m.on_cache_eviction();
        m.on_ground_cache_miss();
        m.on_ground_cache_hit();
        m.on_ground_cache_hit();
        m.on_journal_append();
        m.on_journal_append();
        m.on_journal_replayed(5);
        m.on_journal_truncated(17);
        m.on_coalesced();
        m.on_conn_accept();
        m.on_conn_accept();
        m.on_conn_close(true);
        m.on_frame_oversize();
        m.on_frame_malformed();
        m.on_rejected_deadline();
        m.on_expired_in_queue();
        m.on_degraded();
        m.on_codel_drop();
        m.on_conn_reaped();
        m.on_retry_joined();
        m.on_retry_conflict();
        m.on_accept_retried();
        m.on_exec(20);
        let s = m.snapshot();
        assert_eq!(s.jobs_submitted, 2);
        assert_eq!(s.jobs_completed, 2);
        assert_eq!(s.jobs_solved, 1);
        // on_reject + on_rejected_deadline + on_retry_conflict (the latter
        // two also count as rejects).
        assert_eq!(s.jobs_rejected, 3);
        assert_eq!(s.jobs_rejected_deadline, 1);
        assert_eq!(s.jobs_expired_in_queue, 1);
        assert_eq!(s.jobs_degraded, 1);
        assert_eq!(s.codel_drops, 1);
        assert_eq!(s.conns_reaped, 1);
        assert_eq!(s.retries_joined, 1);
        assert_eq!(s.retries_conflict, 1);
        assert_eq!(s.accepts_retried, 1);
        // EWMA (α = 1/4): waits 3 then 7 → 3 then (3·3+7)/4 = 4 ms.
        assert_eq!(s.queue_wait_ewma_ms, 4);
        assert_eq!(s.exec_ewma_ms, 20);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert!((s.cache_hit_rate - 0.5).abs() < 1e-12);
        assert_eq!(s.cache_evictions, 1);
        assert_eq!(s.ground_cache_hits, 2);
        assert_eq!(s.ground_cache_misses, 1);
        assert_eq!(s.journal_appends, 2);
        assert_eq!(s.journal_replayed, 5);
        assert_eq!(s.journal_truncated_bytes, 17);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.coalesced_jobs, 1);
        assert_eq!(s.conns_accepted, 2);
        assert_eq!(s.conns_open, 1);
        assert_eq!(s.conns_dropped, 1);
        assert_eq!(s.frames_oversize, 1);
        assert_eq!(s.frames_malformed, 1);
        assert_eq!(s.total_wall_ms, 50);
        assert_eq!(s.max_wall_ms, 40);
        assert!((s.mean_wall_ms - 25.0).abs() < 1e-12);
        // Histograms roll up alongside the counters: wall times 40 and 10
        // land in buckets [32,63] and [8,15]; waits 3 and 7 in [2,3], [4,7].
        assert_eq!(s.wall_ms_hist.count, 2);
        assert_eq!(s.wall_ms_hist.sum, 50);
        assert_eq!(s.wall_ms_hist.p99, 63);
        assert_eq!(
            s.wall_ms_hist.buckets,
            vec![BucketCount { upper: 15, count: 1 }, BucketCount { upper: 63, count: 1 }]
        );
        assert_eq!(s.queue_wait_ms_hist.count, 2);
        assert_eq!(s.queue_wait_ms_hist.sum, 10);
        assert_eq!(m.wall_ms_quantile(0.5), 15);
        assert_eq!(m.queue_wait_ms_quantile(0.99), 7);
    }

    #[test]
    fn snapshot_serializes() {
        let s = Metrics::new().snapshot();
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
