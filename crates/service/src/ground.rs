//! Process-wide cache of grounded DSL domains.
//!
//! Building a [`crate::ProblemSpec::Dsl`] means lexing, parsing, type
//! checking and grounding two source files — work that is identical for
//! every request carrying the same `(domain, problem)` text, and which the
//! session thread repeats via [`crate::PlanRequest::cache_key`] before a
//! worker ever sees the job. This module memoizes `compile` keyed by a
//! signature of the two texts, so a hot domain is ground once and then
//! served as a cheap `Arc` clone. Compile *failures* are cached too: a
//! malformed domain resubmitted in a tight loop costs one hash lookup, not
//! a re-parse.
//!
//! The cache is a plain bounded map with clear-on-full (the same policy as
//! the worker succ-cache pool): grounded domains are a few hundred KB at
//! most and `CAPACITY` distinct texts per process is already far beyond any
//! realistic working set, so LRU bookkeeping isn't worth its locking.

use std::sync::{Arc, Mutex, OnceLock};

use gaplan_core::strips::StripsProblem;
use gaplan_core::SigBuilder;
use rustc_hash::FxHashMap;

use crate::metrics::Metrics;

/// Distinct (domain, problem) texts cached per process.
const CAPACITY: usize = 128;

type CacheMap = FxHashMap<u64, Result<Arc<StripsProblem>, String>>;

fn cache() -> &'static Mutex<CacheMap> {
    static CACHE: OnceLock<Mutex<CacheMap>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(FxHashMap::default()))
}

/// Stable signature of the raw source pair — the ground-cache key. Note
/// this is *textual*: two formattings of the same domain ground twice (and
/// then collide in the plan cache via the structural problem signature).
pub fn text_signature(domain: &str, problem: &str) -> u64 {
    let mut s = SigBuilder::new();
    s.tag("dsl-text-v1").str(domain).str(problem);
    s.finish()
}

/// Compile (or fetch) the grounded domain for a source pair. Counts a
/// ground-cache hit/miss on `metrics` when provided; probe-only callers
/// (the session thread computing cache keys) pass `None` so the same
/// request is not double-counted.
pub fn ground_cached(domain: &str, problem: &str, metrics: Option<&Metrics>) -> Result<Arc<StripsProblem>, String> {
    let key = text_signature(domain, problem);
    if let Some(cached) = cache().lock().unwrap().get(&key) {
        if let Some(m) = metrics {
            m.on_ground_cache_hit();
        }
        return cached.clone();
    }
    // Compile outside the lock: grounding can take milliseconds and other
    // (domain, problem) pairs shouldn't serialize behind it. A racing
    // duplicate insert is deterministic, so last-write-wins is harmless.
    let result = match gaplan_lang::compile(domain, problem) {
        Ok(c) => Ok(Arc::new(c.strips)),
        Err(e) => Err(e.summary()),
    };
    if let Some(m) = metrics {
        m.on_ground_cache_miss();
    }
    let mut map = cache().lock().unwrap();
    if map.len() >= CAPACITY {
        map.clear();
    }
    map.insert(key, result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOM: &str = "domain d\ntype t\npred p(x: t)\naction go(x: t)\n  pre: p(x)\n  del: p(x)\n";
    const PROB: &str = "problem q domain d\nobjects a: t\ninit: p(a)\ngoal: p(a)\n";

    #[test]
    fn hit_counts_and_identity() {
        let m = Metrics::new();
        let first = ground_cached(DOM, PROB, Some(&m)).unwrap();
        let second = ground_cached(DOM, PROB, Some(&m)).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second build must be served from the cache");
        let s = m.snapshot();
        assert_eq!(s.ground_cache_misses, 1);
        assert_eq!(s.ground_cache_hits, 1);
    }

    #[test]
    fn failures_are_cached() {
        let m = Metrics::new();
        let bad = "domain broken\n!";
        assert!(ground_cached(bad, PROB, Some(&m)).is_err());
        assert!(ground_cached(bad, PROB, Some(&m)).is_err());
        assert_eq!(m.snapshot().ground_cache_hits, 1);
    }

    #[test]
    fn uncounted_probe_leaves_metrics_alone() {
        let m = Metrics::new();
        let _ = ground_cached(DOM, "problem q2 domain d\nobjects b: t\ninit: p(b)\ngoal: p(b)\n", None);
        assert_eq!(m.snapshot().ground_cache_misses, 0);
    }
}
