//! `gaplan-service` — a concurrent planning service over the workspace's
//! genetic planner.
//!
//! The GA engine in `gaplan-ga` answers one question at a time; a grid
//! coordinator (or any client) wants to ask many, with deadlines, and drop
//! questions that stopped mattering. This crate adds that operational
//! layer:
//!
//! * **Job model** ([`PlanRequest`]/[`PlanResponse`]): a problem spec plus
//!   optional GA overrides and a deadline in, a status + best plan out.
//! * **Bounded queue + worker pool** ([`PlanService`]): plain std threads
//!   and channels; a full queue rejects instead of blocking. Rayon
//!   parallelism stays *inside* a job's GA phases.
//! * **Deadlines & cancellation**: each job runs under a
//!   [`gaplan_core::Budget`]; the engine checks it between generations, so
//!   a timed-out or cancelled job still returns its best-so-far plan.
//! * **Plan cache** ([`PlanCache`]): keyed by stable problem + config
//!   signatures, LRU-bounded; identical resubmissions are answered without
//!   rerunning the GA.
//! * **Metrics** ([`Metrics`]): submission/completion/cancel counts, queue
//!   depth, wall times and cache hit rate as a serializable snapshot.
//! * **Wire protocol** ([`serve`]): newline-delimited JSON over any
//!   reader/writer pair, used by `gaplan serve`; responses stream back as
//!   jobs finish, out of order.
//! * **Simulator integration** ([`ServiceReplanner`]): adapts the service
//!   to the grid coordinator's replanner hook, so mid-execution replans go
//!   through the queue, cache and metrics.
//! * **Durability** ([`JobJournal`]): [`serve_with_journal`] write-ahead
//!   journals every accepted request before it runs and every terminal
//!   reply before it is written, over a fault-injectable
//!   [`gaplan_durable::Storage`]; on restart the journal replays — the plan
//!   cache is reseeded, journaled replies re-emitted, and unfinished jobs
//!   re-enqueued — so `kill -9` loses no accepted job.
//! * **Self-healing** ([`PlanService`]): jobs run under `catch_unwind`
//!   with a bounded panic-retry policy, a supervisor respawns worker
//!   threads that die anyway, a full queue sheds load after an admission
//!   timeout, and `{"cmd":"health"}` reports live workers and queue depth.
//!   [`ProblemSpec::Chaos`] injects panics on purpose to test all of it.

#![warn(missing_docs)]

pub mod cache;
pub(crate) mod coalesce;
pub mod ground;
pub mod journal;
pub mod metrics;
pub mod overload;
pub mod proto;
pub mod replan;
pub mod request;
pub mod service;
pub mod session;

pub use cache::{CachedPlan, PlanCache};
pub use journal::{CacheEntrySer, JobJournal, JournalRecord, Recovery};
pub use metrics::{BucketCount, HistogramSummary, Metrics, MetricsSnapshot};
pub use overload::{OverloadConfig, OverloadControl};
pub use proto::{parse_command, serve, serve_with_journal, Command, ProtoError};
pub use replan::ServiceReplanner;
pub use request::{BuiltProblem, GaOverrides, JobStatus, PlanRequest, PlanResponse, ProblemSpec, SolveOutcome};
pub use service::{HealthReport, ObsHandle, PlanService, ServiceConfig, ServiceError, SubmitError};
pub use session::{LineOutcome, Session, SessionHost, SessionMode};
