//! Newline-delimited JSON protocol for `gaplan serve`.
//!
//! One JSON object per input line, dispatched on its `"cmd"` field:
//!
//! ```text
//! {"cmd":"plan","id":1,"problem":{"Hanoi":{"disks":4}},"deadline_ms":2000,
//!  "ga":{"generations":40}}
//! {"cmd":"cancel","id":1}
//! {"cmd":"metrics"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Each output line is one JSON object: a [`PlanResponse`] for a finished
//! job, `{"ack":"cancel","id":N,"found":bool}` for a cancel,
//! `{"metrics":{...}}` for a metrics query, `{"health":{...}}` for a
//! health probe, or `{"status":"Error","error":"..."}` (with the request
//! `id` whenever one was readable) for an unparseable line. Responses are
//! written as jobs finish — generally out of submission order; match them
//! up by `id`.

use std::io::{BufRead, Write};
use std::sync::mpsc::channel;

use serde::de::Deserialize;
use serde::json::{parse, Value};

use crate::journal::JobJournal;
use crate::request::PlanRequest;
use crate::service::{ObsHandle, ServiceConfig};
use crate::session::{LineOutcome, Session, SessionHost, SessionMode};

/// A parsed input line.
#[derive(Debug, Clone)]
pub enum Command {
    /// Submit a planning job.
    Plan(Box<PlanRequest>),
    /// Cancel a queued or running job by id.
    Cancel {
        /// Id of the job to cancel.
        id: u64,
    },
    /// Ask for a metrics snapshot.
    Metrics,
    /// Ask for a liveness report (workers alive, queue depth).
    Health,
    /// Drain and stop the service, then exit the serve loop.
    Shutdown,
}

/// A protocol parse failure: the human-readable message plus the request
/// `id` whenever the line carried a readable one, so clients can correlate
/// the error with their request even when the command itself was malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// `id` field of the offending line, when present and numeric.
    pub id: Option<u64>,
    /// What went wrong.
    pub message: String,
}

impl ProtoError {
    fn new(id: Option<u64>, message: impl Into<String>) -> Self {
        ProtoError { id, message: message.into() }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ProtoError {}

/// Parse one protocol line. Errors carry the request id when one was
/// readable; the serve loop reports them as
/// `{"id":N,"status":"Error","error":"..."}`.
pub fn parse_command(line: &str) -> Result<Command, ProtoError> {
    let value = parse(line).map_err(|e| ProtoError::new(None, e.to_string()))?;
    // Best-effort id extraction up front, so even a bad command still gets
    // a correlatable error response.
    let id = value.get("id").and_then(|v| u64::deserialize_json(v).ok());
    let Some(cmd) = value.get("cmd").and_then(Value::as_str) else {
        return Err(ProtoError::new(id, "missing string field `cmd`"));
    };
    match cmd {
        "plan" => {
            let request = PlanRequest::deserialize_json(&value).map_err(|e| ProtoError::new(id, e.to_string()))?;
            Ok(Command::Plan(Box::new(request)))
        }
        "cancel" => match id {
            Some(id) => Ok(Command::Cancel { id }),
            None => Err(ProtoError::new(None, "cancel: missing field `id`")),
        },
        "metrics" => Ok(Command::Metrics),
        "health" => Ok(Command::Health),
        "shutdown" => Ok(Command::Shutdown),
        other => Err(ProtoError::new(id, format!("unknown cmd `{other}`"))),
    }
}

/// Run the service over `reader`/`writer` until EOF or a `shutdown`
/// command. Responses are written by a dedicated thread as they arrive, so
/// slow jobs never block fast ones — out-of-order by design.
pub fn serve<R, W>(cfg: ServiceConfig, reader: R, writer: W) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    serve_with_journal(cfg, None, reader, writer)
}

/// [`serve`] with an optional crash-safe job journal.
///
/// With a journal, startup first replays it: the plan cache is reseeded
/// from completed runs, terminal replies journaled since the last
/// compaction are re-emitted, and accepted-but-unanswered jobs are
/// re-enqueued. During the session every accepted request is journaled
/// *before* it is enqueued and every terminal reply *before* it is written,
/// so a `kill -9` at any point loses no accepted job. On EOF the queue is
/// drained and the journal synced before the loop returns.
pub fn serve_with_journal<R, W>(
    cfg: ServiceConfig,
    journal: Option<JobJournal>,
    reader: R,
    writer: W,
) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    // Workers install the subscriber themselves; the serve loop also
    // installs it so admission failures (shed/rejected) are traced too.
    let obs_handle = cfg.obs.clone();
    let host = SessionHost::start(cfg, journal, SessionMode::Direct)?;
    let _obs = obs_handle.as_ref().map(ObsHandle::install);
    let (out_tx, out_rx) = channel::<String>();

    let writer_thread = std::thread::Builder::new().name("gaplan-serve-writer".to_string()).spawn(move || {
        let mut writer = writer;
        for line in out_rx {
            if writeln!(writer, "{line}").and_then(|()| writer.flush()).is_err() {
                break; // reader side of the pipe went away
            }
        }
    })?;

    // Worker responses reach stdout through the dispatcher's fallback sink
    // (direct mode registers no per-job waiters), journaled on the way.
    host.set_fallback(out_tx.clone());
    // Journal recovery: reseed the cache, re-emit journaled replies, then
    // re-enqueue unfinished jobs.
    host.recover(Some(&out_tx))?;

    let session = Session::open(&host, out_tx.clone(), None);
    for line in reader.lines() {
        let line = line?;
        if session.handle_line(&line) == LineOutcome::Shutdown {
            break;
        }
    }

    // Drain: stop accepting, let queued jobs finish, flush their responses.
    // `shutdown` emits the final `svc.shutdown` event with the drain count.
    drop(session);
    host.shutdown()?; // drains workers + dispatcher, syncs the journal
    drop(out_tx); // closes the writer's channel
    let _ = writer_thread.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::error_line;

    #[test]
    fn parses_all_commands() {
        let plan = parse_command(r#"{"cmd":"plan","id":3,"problem":{"Hanoi":{"disks":3}},"deadline_ms":100}"#).unwrap();
        match plan {
            Command::Plan(req) => {
                assert_eq!(req.id, 3);
                assert_eq!(req.deadline_ms, Some(100));
            }
            other => panic!("expected plan, got {other:?}"),
        }
        assert!(matches!(parse_command(r#"{"cmd":"cancel","id":9}"#), Ok(Command::Cancel { id: 9 })));
        assert!(matches!(parse_command(r#"{"cmd":"metrics"}"#), Ok(Command::Metrics)));
        assert!(matches!(parse_command(r#"{"cmd":"health"}"#), Ok(Command::Health)));
        assert!(matches!(parse_command(r#"{"cmd":"shutdown"}"#), Ok(Command::Shutdown)));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_command("not json").is_err());
        assert!(parse_command(r#"{"id":1}"#).is_err());
        assert!(parse_command(r#"{"cmd":"frobnicate"}"#).is_err());
        assert!(parse_command(r#"{"cmd":"cancel"}"#).is_err());
    }

    #[test]
    fn parse_errors_carry_the_request_id_when_readable() {
        // every fault path that can know the id must preserve it
        assert_eq!(parse_command(r#"{"id":7}"#).unwrap_err().id, Some(7));
        assert_eq!(parse_command(r#"{"cmd":"frobnicate","id":9}"#).unwrap_err().id, Some(9));
        assert_eq!(parse_command(r#"{"cmd":"plan","id":3}"#).unwrap_err().id, Some(3));
        assert_eq!(parse_command("not json").unwrap_err().id, None);
        // and the rendered line includes both id and an Error status
        let err = parse_command(r#"{"cmd":"frobnicate","id":9}"#).unwrap_err();
        let line = error_line(err.id, &err.message);
        assert!(line.contains(r#""id":9"#), "{line}");
        assert!(line.contains(r#""status":"Error""#), "{line}");
    }

    #[test]
    fn serve_handles_a_session_end_to_end() {
        let input = concat!(
            r#"{"cmd":"plan","id":1,"problem":{"Hanoi":{"disks":3}},"ga":{"population":40,"generations":30,"phases":3}}"#,
            "\n",
            "garbage line\n",
            r#"{"cmd":"frobnicate","id":42}"#,
            "\n",
            r#"{"cmd":"metrics"}"#,
            "\n",
            r#"{"cmd":"health"}"#,
            "\n",
            r#"{"cmd":"shutdown"}"#,
            "\n",
        );
        let out: std::sync::Arc<parking_lot::Mutex<Vec<u8>>> = Default::default();
        struct SharedWriter(std::sync::Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        serve(
            ServiceConfig { workers: 1, queue_capacity: 4, cache_capacity: 4, ..ServiceConfig::default() },
            input.as_bytes(),
            SharedWriter(out.clone()),
        )
        .unwrap();
        let text = String::from_utf8(out.lock().clone()).unwrap();
        assert!(text.contains(r#""error":"#), "garbage line should yield an error: {text}");
        assert!(text.contains(r#""id":42,"status":"Error""#), "bad command must echo its id: {text}");
        assert!(text.contains(r#""metrics":"#), "metrics line missing: {text}");
        assert!(text.contains(r#""health":"#), "health line missing: {text}");
        assert!(text.contains(r#""workers_alive":"#), "health must report live workers: {text}");
        assert!(text.contains(r#""id":1"#), "job response missing: {text}");
        assert!(text.contains(r#""status":"Done""#), "job should finish: {text}");
    }
}
