//! Newline-delimited JSON protocol for `gaplan serve`.
//!
//! One JSON object per input line, dispatched on its `"cmd"` field:
//!
//! ```text
//! {"cmd":"plan","id":1,"problem":{"Hanoi":{"disks":4}},"deadline_ms":2000,
//!  "ga":{"generations":40}}
//! {"cmd":"cancel","id":1}
//! {"cmd":"metrics"}
//! {"cmd":"shutdown"}
//! ```
//!
//! Each output line is one JSON object: a [`PlanResponse`] for a finished
//! job, `{"ack":"cancel","id":N,"found":bool}` for a cancel,
//! `{"metrics":{...}}` for a metrics query, or `{"error":"..."}` for an
//! unparseable line. Responses are written as jobs finish — generally out
//! of submission order; match them up by `id`.

use std::io::{BufRead, Write};
use std::sync::mpsc::channel;

use serde::de::Deserialize;
use serde::json::{parse, Value};

use crate::request::{JobStatus, PlanRequest, PlanResponse};
use crate::service::{PlanService, ServiceConfig};

/// A parsed input line.
#[derive(Debug, Clone)]
pub enum Command {
    /// Submit a planning job.
    Plan(Box<PlanRequest>),
    /// Cancel a queued or running job by id.
    Cancel {
        /// Id of the job to cancel.
        id: u64,
    },
    /// Ask for a metrics snapshot.
    Metrics,
    /// Drain and stop the service, then exit the serve loop.
    Shutdown,
}

/// Parse one protocol line. Errors are human-readable messages that the
/// serve loop reports as `{"error":"..."}`.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let value = parse(line).map_err(|e| e.to_string())?;
    let Some(cmd) = value.get("cmd").and_then(Value::as_str) else {
        return Err("missing string field `cmd`".to_string());
    };
    match cmd {
        "plan" => {
            let request = PlanRequest::deserialize_json(&value).map_err(|e| e.to_string())?;
            Ok(Command::Plan(Box::new(request)))
        }
        "cancel" => {
            let id = match value.get("id") {
                Some(v) => u64::deserialize_json(v).map_err(|e| e.to_string())?,
                None => return Err("cancel: missing field `id`".to_string()),
            };
            Ok(Command::Cancel { id })
        }
        "metrics" => Ok(Command::Metrics),
        "shutdown" => Ok(Command::Shutdown),
        other => Err(format!("unknown cmd `{other}`")),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::new();
    serde::ser::Serialize::serialize_json(s, &mut out);
    out
}

fn response_line(resp: &PlanResponse) -> String {
    serde_json::to_string(resp)
        .unwrap_or_else(|e| format!(r#"{{"error":{}}}"#, json_escape(&format!("serialize response: {e}"))))
}

/// Run the service over `reader`/`writer` until EOF or a `shutdown`
/// command. Responses are written by a dedicated thread as they arrive, so
/// slow jobs never block fast ones — out-of-order by design.
pub fn serve<R, W>(cfg: ServiceConfig, reader: R, writer: W) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let (service, responses) = PlanService::start(cfg);
    let (out_tx, out_rx) = channel::<String>();

    let writer_thread = std::thread::Builder::new()
        .name("gaplan-serve-writer".to_string())
        .spawn(move || {
            let mut writer = writer;
            for line in out_rx {
                if writeln!(writer, "{line}").and_then(|()| writer.flush()).is_err() {
                    break; // reader side of the pipe went away
                }
            }
        })
        .expect("spawn writer thread");

    // Forward worker responses into the output stream.
    let forwarder = {
        let out_tx = out_tx.clone();
        std::thread::Builder::new()
            .name("gaplan-serve-forwarder".to_string())
            .spawn(move || {
                for resp in responses {
                    if out_tx.send(response_line(&resp)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn forwarder thread")
    };

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_command(&line) {
            Ok(Command::Plan(request)) => {
                let id = request.id;
                if let Err(err) = service.submit(*request) {
                    let resp = PlanResponse::failure(id, JobStatus::Rejected, err.to_string());
                    let _ = out_tx.send(response_line(&resp));
                }
            }
            Ok(Command::Cancel { id }) => {
                let found = service.cancel(id);
                let _ = out_tx.send(format!(r#"{{"ack":"cancel","id":{id},"found":{found}}}"#));
            }
            Ok(Command::Metrics) => {
                let snapshot = service.metrics();
                let body = serde_json::to_string(&snapshot).unwrap_or_else(|_| "null".to_string());
                let _ = out_tx.send(format!(r#"{{"metrics":{body}}}"#));
            }
            Ok(Command::Shutdown) => break,
            Err(msg) => {
                let _ = out_tx.send(format!(r#"{{"error":{}}}"#, json_escape(&msg)));
            }
        }
    }

    // Drain: stop accepting, let queued jobs finish, flush their responses.
    service.shutdown(); // joins workers → response senders drop
    let _ = forwarder.join(); // drains remaining responses into out_tx
    drop(out_tx); // closes the writer's channel
    let _ = writer_thread.join();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_commands() {
        let plan = parse_command(r#"{"cmd":"plan","id":3,"problem":{"Hanoi":{"disks":3}},"deadline_ms":100}"#).unwrap();
        match plan {
            Command::Plan(req) => {
                assert_eq!(req.id, 3);
                assert_eq!(req.deadline_ms, Some(100));
            }
            other => panic!("expected plan, got {other:?}"),
        }
        assert!(matches!(parse_command(r#"{"cmd":"cancel","id":9}"#), Ok(Command::Cancel { id: 9 })));
        assert!(matches!(parse_command(r#"{"cmd":"metrics"}"#), Ok(Command::Metrics)));
        assert!(matches!(parse_command(r#"{"cmd":"shutdown"}"#), Ok(Command::Shutdown)));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_command("not json").is_err());
        assert!(parse_command(r#"{"id":1}"#).is_err());
        assert!(parse_command(r#"{"cmd":"frobnicate"}"#).is_err());
        assert!(parse_command(r#"{"cmd":"cancel"}"#).is_err());
    }

    #[test]
    fn serve_handles_a_session_end_to_end() {
        let input = concat!(
            r#"{"cmd":"plan","id":1,"problem":{"Hanoi":{"disks":3}},"ga":{"population":40,"generations":30,"phases":3}}"#,
            "\n",
            "garbage line\n",
            r#"{"cmd":"metrics"}"#,
            "\n",
            r#"{"cmd":"shutdown"}"#,
            "\n",
        );
        let out: std::sync::Arc<parking_lot::Mutex<Vec<u8>>> = Default::default();
        struct SharedWriter(std::sync::Arc<parking_lot::Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        serve(
            ServiceConfig { workers: 1, queue_capacity: 4, cache_capacity: 4 },
            input.as_bytes(),
            SharedWriter(out.clone()),
        )
        .unwrap();
        let text = String::from_utf8(out.lock().clone()).unwrap();
        assert!(text.contains(r#""error":"#), "garbage line should yield an error: {text}");
        assert!(text.contains(r#""metrics":"#), "metrics line missing: {text}");
        assert!(text.contains(r#""id":1"#), "job response missing: {text}");
        assert!(text.contains(r#""status":"Done""#), "job should finish: {text}");
    }
}
