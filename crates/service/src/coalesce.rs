//! Singleflight request coalescing and response fan-out.
//!
//! The [`Dispatch`] table sits between transport sessions and the
//! [`crate::PlanService`]: every submission in coalescing mode is re-keyed
//! onto a private, monotonically allocated *internal* job id, and
//! concurrent requests whose [`PlanRequest::coalesce_key`] matches an
//! in-flight job join that job as extra *waiters* instead of burning
//! another worker. When the shared response channel delivers the internal
//! job's terminal reply, the dispatcher journals it once and then fans it
//! out to every waiter with the waiter's own client id patched in.
//!
//! Id spaces: the journal and the service queue always speak *internal*
//! ids (one durable record per computation); client-visible ids exist only
//! at the session edge. The stdin transport runs with coalescing disabled
//! and never touches this table — its client ids double as service ids and
//! responses reach the client through the dispatcher's fallback sink, which
//! preserves the historical wire behavior byte for byte.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;

use gaplan_core::CancelToken;
use gaplan_obs::{self as obs, Event};
use parking_lot::Mutex;

use crate::journal::JobJournal;
use crate::metrics::Metrics;
use crate::request::{JobStatus, PlanRequest, PlanResponse};
use crate::service::{PlanService, SubmitError};

/// Render a response as its wire line, falling back to an error line when
/// serialization itself fails.
pub(crate) fn response_line(resp: &PlanResponse) -> String {
    serde_json::to_string(resp).unwrap_or_else(|e| error_line(Some(resp.id), &format!("serialize response: {e}")))
}

fn json_escape(s: &str) -> String {
    let mut out = String::new();
    serde::ser::Serialize::serialize_json(s, &mut out);
    out
}

/// An error line that always carries a `status` and, when known, the `id`
/// the client needs to correlate the failure.
pub(crate) fn error_line(id: Option<u64>, message: &str) -> String {
    match id {
        Some(id) => format!(r#"{{"id":{id},"status":"Error","error":{}}}"#, json_escape(message)),
        None => format!(r#"{{"status":"Error","error":{}}}"#, json_escape(message)),
    }
}

/// One client waiting on an in-flight internal job.
struct Waiter {
    ticket: u64,
    conn: u64,
    client_id: u64,
    sink: Sender<String>,
    depth: Arc<AtomicUsize>,
}

impl Waiter {
    /// Queue `line` on the waiter's connection, keeping its write-backlog
    /// gauge honest even when the connection is already gone.
    fn send(&self, line: String) {
        self.depth.fetch_add(1, Ordering::Relaxed);
        if self.sink.send(line).is_err() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// An in-flight internal job: its coalesce key (when coalescable), the
/// cancel token once the submit call has returned it, and every waiter.
struct Inflight {
    key: Option<u64>,
    token: Option<CancelToken>,
    /// Set when cancellation was requested before the token was stored
    /// (submit still in flight) — the submitter fires it on arrival.
    cancel_requested: bool,
    waiters: Vec<Waiter>,
}

#[derive(Default)]
struct Inner {
    /// Internal job id → in-flight entry.
    inflight: HashMap<u64, Inflight>,
    /// Coalesce key → internal id of the live leader for that key.
    by_key: HashMap<u64, u64>,
    /// Connection → client id → (waiter ticket, internal id); drives
    /// per-connection cancel and disconnect abandonment.
    conns: HashMap<u64, HashMap<u64, (u64, u64)>>,
    next_internal: u64,
    next_ticket: u64,
    next_conn: u64,
}

impl Inner {
    /// Drop the key → leader mapping when it still points at `internal`.
    fn unmap_key(&mut self, key: Option<u64>, internal: u64) {
        if let Some(k) = key {
            if self.by_key.get(&k) == Some(&internal) {
                self.by_key.remove(&k);
            }
        }
    }
}

/// What a coalescing submission turned into under the lock.
enum Submitted {
    /// The connection already has this client id in flight with the same
    /// coalesce key: an idempotent retry. The original waiter entry stands
    /// and will deliver exactly one answer when the job completes.
    Rejoined {
        /// Internal id of the in-flight job the retry folded into.
        leader: u64,
        /// The shared coalesce key.
        key: u64,
    },
    /// The connection already has this client id in flight but the payload
    /// provably differs (both keys known, unequal).
    Conflict,
    /// The connection already has this client id in flight and identity
    /// cannot be verified (coalescing off, uncoalescable problem, or the
    /// connection vanished mid-submit).
    Duplicate,
    /// Joined an existing in-flight job as an extra waiter.
    Joined {
        /// Internal id of the job joined.
        leader: u64,
        /// The shared coalesce key.
        key: u64,
    },
    /// Became the leader of a fresh internal job.
    Leader(u64),
}

/// The coalescing/fan-out table shared by every session of a host.
pub(crate) struct Dispatch {
    inner: Mutex<Inner>,
    metrics: Arc<Metrics>,
    journal: Option<Arc<JobJournal>>,
    /// Singleflight joining on. Off, every submission leads its own job —
    /// per-connection routing and cancellation still work, identical
    /// requests just no longer share a computation.
    join: bool,
    /// Sink for responses with no in-flight entry — the stdin transport,
    /// where service ids are client ids and no entries are registered.
    fallback: Mutex<Option<Sender<String>>>,
}

impl Dispatch {
    pub(crate) fn new(metrics: Arc<Metrics>, journal: Option<Arc<JobJournal>>, join: bool) -> Self {
        Dispatch {
            inner: Mutex::new(Inner { next_internal: 1, next_ticket: 1, next_conn: 1, ..Inner::default() }),
            metrics,
            journal,
            join,
            fallback: Mutex::new(None),
        }
    }

    /// Route entry-less responses (the stdin transport) to `sink`.
    pub(crate) fn set_fallback(&self, sink: Sender<String>) {
        *self.fallback.lock() = Some(sink);
    }

    /// Reserve internal ids so fresh allocations never collide with ids
    /// replayed from the journal.
    pub(crate) fn reserve_internal(&self, min_exclusive: u64) {
        let mut guard = self.inner.lock();
        if guard.next_internal <= min_exclusive {
            guard.next_internal = min_exclusive + 1;
        }
    }

    /// Register a new connection; the returned id scopes cancel and
    /// disconnect handling.
    pub(crate) fn register_conn(&self) -> u64 {
        let mut guard = self.inner.lock();
        let conn = guard.next_conn;
        guard.next_conn += 1;
        guard.conns.insert(conn, HashMap::new());
        conn
    }

    /// Register a journal-recovered job that is about to be resubmitted
    /// under its original internal id. It has no live waiters (its clients
    /// vanished with the crashed process), but it keeps its coalesce-key
    /// mapping so reconnecting clients resubmitting the identical request
    /// join the recovered run instead of duplicating it.
    pub(crate) fn register_recovered(&self, request: &PlanRequest) {
        let key = self.join.then(|| request.coalesce_key()).flatten();
        let mut guard = self.inner.lock();
        guard.inflight.insert(request.id, Inflight { key, token: None, cancel_requested: false, waiters: Vec::new() });
        if let Some(k) = key {
            guard.by_key.entry(k).or_insert(request.id);
        }
    }

    /// Store the cancel token a submit call returned for `internal`,
    /// firing it immediately when cancellation raced the submission.
    pub(crate) fn store_token(&self, internal: u64, token: CancelToken) {
        let mut guard = self.inner.lock();
        if let Some(entry) = guard.inflight.get_mut(&internal) {
            if entry.cancel_requested {
                token.cancel();
            }
            entry.token = Some(token);
        }
    }

    /// Submit `request` in coalescing mode for connection `conn`: join an
    /// identical in-flight job when one exists, otherwise become the leader
    /// of a new internal job (journaled write-ahead, then enqueued).
    /// Failure replies are delivered through `sink` with the client id.
    pub(crate) fn submit(
        &self,
        service: &PlanService,
        request: PlanRequest,
        conn: u64,
        sink: &Sender<String>,
        depth: &Arc<AtomicUsize>,
    ) {
        let client_id = request.id;
        let key = self.join.then(|| request.coalesce_key()).flatten();

        let outcome = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let already = match inner.conns.get(&conn) {
                Some(m) => m.get(&client_id).copied().map(Some),
                None => Some(None), // disconnect raced the submission
            };
            if let Some(existing) = already {
                // Same id + same coalesce key is an idempotent client
                // retry: the registered waiter already covers it, so the
                // retry folds into the in-flight job without a new waiter
                // (exactly one answer will fan out). Anything else is a
                // genuine duplicate and gets a typed rejection.
                let in_flight_key =
                    existing.and_then(|(_, internal)| inner.inflight.get(&internal)).and_then(|e| e.key);
                match (existing, key, in_flight_key) {
                    (Some((_, internal)), Some(k), Some(ik)) if k == ik => {
                        Submitted::Rejoined { leader: internal, key: k }
                    }
                    (Some(_), Some(_), Some(_)) => Submitted::Conflict,
                    _ => Submitted::Duplicate,
                }
            } else {
                let ticket = inner.next_ticket;
                inner.next_ticket += 1;
                let waiter = Waiter { ticket, conn, client_id, sink: sink.clone(), depth: Arc::clone(depth) };
                let live_leader = key
                    .and_then(|k| inner.by_key.get(&k).copied().map(|leader| (k, leader)))
                    .filter(|(_, leader)| inner.inflight.contains_key(leader));
                match live_leader {
                    Some((k, leader)) => {
                        if let Some(entry) = inner.inflight.get_mut(&leader) {
                            entry.waiters.push(waiter);
                        }
                        if let Some(m) = inner.conns.get_mut(&conn) {
                            m.insert(client_id, (ticket, leader));
                        }
                        Submitted::Joined { leader, key: k }
                    }
                    None => {
                        let internal = inner.next_internal;
                        inner.next_internal += 1;
                        inner.inflight.insert(
                            internal,
                            Inflight { key, token: None, cancel_requested: false, waiters: vec![waiter] },
                        );
                        if let Some(k) = key {
                            inner.by_key.insert(k, internal);
                        }
                        if let Some(m) = inner.conns.get_mut(&conn) {
                            m.insert(client_id, (ticket, internal));
                        }
                        Submitted::Leader(internal)
                    }
                }
            }
        };

        let internal = match outcome {
            Submitted::Rejoined { leader, key } => {
                self.metrics.on_retry_joined();
                obs::emit(|| {
                    Event::new("svc.idem").str("op", "join").u64("id", client_id).u64("leader", leader).u64("key", key)
                });
                return;
            }
            Submitted::Conflict => {
                self.metrics.on_retry_conflict();
                obs::emit(|| Event::new("svc.idem").str("op", "conflict").u64("id", client_id));
                let resp = PlanResponse::failure(
                    client_id,
                    JobStatus::Rejected,
                    "duplicate id: payload differs from the in-flight request with this id",
                );
                emit_reply(&resp);
                send_line(sink, depth, response_line(&resp));
                return;
            }
            Submitted::Duplicate => {
                let resp = PlanResponse::failure(
                    client_id,
                    JobStatus::Rejected,
                    "duplicate id: a job with this id is already in flight on this connection",
                );
                emit_reply(&resp);
                send_line(sink, depth, response_line(&resp));
                return;
            }
            Submitted::Joined { leader, key } => {
                self.metrics.on_coalesced();
                obs::emit(|| Event::new("svc.coalesced").u64("id", client_id).u64("leader", leader).u64("key", key));
                return;
            }
            Submitted::Leader(internal) => internal,
        };

        // Leader path: the marker entry is visible (joiners may arrive from
        // here on), so failures must fan out to every waiter present at
        // removal time, not just this client.
        let mut internal_req = request;
        internal_req.id = internal;
        if let Some(journal) = &self.journal {
            // Write-ahead: the internal job is durable before it can run.
            if let Err(e) = journal.record_submit(&internal_req) {
                self.fail_entry(internal, JobStatus::Error, &format!("journal write failed: {e}"), false);
                return;
            }
            self.metrics.on_journal_append();
        }
        match service.submit(internal_req) {
            Ok(token) => self.store_token(internal, token),
            Err(err) => {
                let status = match err {
                    SubmitError::Shed => JobStatus::Shed,
                    _ => JobStatus::Rejected,
                };
                self.fail_entry(internal, status, &err.to_string(), true);
            }
        }
    }

    /// Cancel connection `conn`'s job with client id `id`. A sole waiter
    /// cancels the underlying computation (the `Cancelled` response fans
    /// back normally); a waiter coalesced with live peers detaches alone
    /// and is answered `Cancelled` immediately, leaving the shared job
    /// running. Returns whether the id named an in-flight job.
    pub(crate) fn cancel(&self, conn: u64, id: u64) -> bool {
        enum Act {
            Fire(Option<CancelToken>),
            Detached(Option<Waiter>),
        }
        let act = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let Some(&(ticket, internal)) = inner.conns.get(&conn).and_then(|m| m.get(&id)) else {
                return false;
            };
            let Some(entry) = inner.inflight.get_mut(&internal) else {
                return false;
            };
            if entry.waiters.len() <= 1 {
                entry.cancel_requested = true;
                let key = entry.key;
                let token = entry.token.clone();
                // Nobody should join a job that is being cancelled.
                inner.unmap_key(key, internal);
                Act::Fire(token)
            } else {
                let detached =
                    entry.waiters.iter().position(|w| w.ticket == ticket).map(|pos| entry.waiters.remove(pos));
                if let Some(m) = inner.conns.get_mut(&conn) {
                    m.remove(&id);
                }
                Act::Detached(detached)
            }
        };
        match act {
            Act::Fire(token) => {
                if let Some(token) = token {
                    token.cancel();
                }
            }
            Act::Detached(w) => {
                if let Some(w) = w {
                    let resp = PlanResponse::failure(
                        w.client_id,
                        JobStatus::Cancelled,
                        "detached from coalesced job by cancel",
                    );
                    emit_reply(&resp);
                    w.send(response_line(&resp));
                }
            }
        }
        true
    }

    /// Tear down a disappeared connection: detach all its waiters and fire
    /// the cancel token of any job left with no waiters at all, so
    /// abandoned work stops burning a worker. Returns how many in-flight
    /// jobs the connection abandoned.
    pub(crate) fn drop_conn(&self, conn: u64) -> usize {
        let mut to_cancel = Vec::new();
        let mut abandoned = 0usize;
        {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let Some(map) = inner.conns.remove(&conn) else {
                return 0;
            };
            for (_client_id, (ticket, internal)) in map {
                let Some(entry) = inner.inflight.get_mut(&internal) else {
                    continue;
                };
                if let Some(pos) = entry.waiters.iter().position(|w| w.ticket == ticket) {
                    entry.waiters.remove(pos);
                    abandoned += 1;
                }
                if entry.waiters.is_empty() {
                    entry.cancel_requested = true;
                    if let Some(token) = entry.token.clone() {
                        to_cancel.push(token);
                    }
                    let key = entry.key;
                    inner.unmap_key(key, internal);
                }
            }
        }
        for token in to_cancel {
            token.cancel();
        }
        abandoned
    }

    /// Fail a leader entry before its job produced a response: remove it,
    /// optionally journal a terminal record for the already-journaled
    /// submit, and fan a failure reply to every waiter that had joined.
    fn fail_entry(&self, internal: u64, status: JobStatus, message: &str, journal_done: bool) {
        let waiters = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            let Some(entry) = inner.inflight.remove(&internal) else {
                return;
            };
            inner.unmap_key(entry.key, internal);
            for w in &entry.waiters {
                if let Some(m) = inner.conns.get_mut(&w.conn) {
                    m.remove(&w.client_id);
                }
            }
            entry.waiters
        };
        if journal_done {
            if let Some(journal) = &self.journal {
                if journal.record_done(&PlanResponse::failure(internal, status, message)).is_ok() {
                    self.metrics.on_journal_append();
                }
            }
        }
        for w in waiters {
            let resp = PlanResponse::failure(w.client_id, status, message);
            emit_reply(&resp);
            w.send(response_line(&resp));
        }
    }

    /// Handle one terminal response from the shared channel: journal it
    /// durably, then fan it out to every waiter of its entry with the
    /// waiter's client id patched in. Entry-less responses (the stdin
    /// transport, or recovered jobs whose clients never returned) go to the
    /// fallback sink when one is set.
    pub(crate) fn complete(&self, resp: &PlanResponse) {
        if let Some(journal) = &self.journal {
            // A failed append still answers the client: availability over
            // durability (the job may re-run after a crash).
            if journal.record_done(resp).is_ok() {
                self.metrics.on_journal_append();
            }
        }
        let waiters = {
            let mut guard = self.inner.lock();
            let inner = &mut *guard;
            match inner.inflight.remove(&resp.id) {
                Some(entry) => {
                    inner.unmap_key(entry.key, resp.id);
                    for w in &entry.waiters {
                        if let Some(m) = inner.conns.get_mut(&w.conn) {
                            m.remove(&w.client_id);
                        }
                    }
                    Some(entry.waiters)
                }
                None => None,
            }
        };
        match waiters {
            Some(waiters) => {
                for w in waiters {
                    let mut patched = resp.clone();
                    patched.id = w.client_id;
                    w.send(response_line(&patched));
                }
            }
            None => {
                let fallback = self.fallback.lock().clone();
                if let Some(sink) = fallback {
                    let _ = sink.send(response_line(resp));
                }
            }
        }
    }
}

/// Trace a session-synthesized terminal reply, mirroring the worker-side
/// `svc.reply` events so every response line stays correlatable.
fn emit_reply(resp: &PlanResponse) {
    obs::emit(|| {
        Event::new("svc.reply")
            .u64("id", resp.id)
            .str("status", resp.status.name())
            .bool("cache_hit", false)
            .u64("wall_ms", resp.wall_ms)
    });
}

/// Queue one wire line on a connection sink, tracking its backlog gauge.
fn send_line(sink: &Sender<String>, depth: &Arc<AtomicUsize>, line: String) {
    depth.fetch_add(1, Ordering::Relaxed);
    if sink.send(line).is_err() {
        depth.fetch_sub(1, Ordering::Relaxed);
    }
}
