//! The planning service: a bounded submission queue feeding a fixed pool of
//! worker threads, with cooperative cancellation, per-job deadlines, a
//! signature-keyed plan cache and live metrics.
//!
//! Concurrency model: `submit` pushes a job onto a bounded
//! [`std::sync::mpsc::sync_channel`] (never blocking past the admission
//! timeout — a full queue rejects or sheds the job so callers get
//! backpressure instead of a hang). Workers share the receiving end behind
//! a mutex, run one job at a time to completion, and send the
//! [`PlanResponse`] to the job's reply channel. Inside a job the GA is free
//! to use rayon; the service itself uses only std threads and channels.
//!
//! Self-healing: each job runs under `catch_unwind`, so a panicking
//! decode/domain yields an `Error` response (after the configured number of
//! retries) instead of a dead worker. If a panic does escape — e.g. a
//! worker-killing chaos job — a reply guard still answers the client while
//! the thread dies, and a supervisor thread respawns the worker. Every
//! fault is counted in [`Metrics`] and visible via [`PlanService::health`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use parking_lot::Mutex;
use rustc_hash::FxHashMap;

use gaplan_core::{Budget, CancelToken, DynState, StopCause, SuccessorCache};
use gaplan_ga::GaConfig;
use gaplan_grid::GridWorld;
use gaplan_obs::{self as obs, Event};

use crate::cache::{CachedPlan, PlanCache};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::overload::{OverloadConfig, OverloadControl};
use crate::request::{GaOverrides, JobStatus, PlanRequest, PlanResponse, ProblemSpec};

/// A cloneable handle to a trace [`Subscriber`](obs::Subscriber) the
/// service installs on every thread it owns (each worker, plus the
/// `serve` loop), so per-request events from any worker land in one sink.
#[derive(Clone)]
pub struct ObsHandle(Arc<dyn obs::Subscriber>);

impl ObsHandle {
    /// Wrap a subscriber for distribution to service threads.
    pub fn new(sub: Arc<dyn obs::Subscriber>) -> Self {
        ObsHandle(sub)
    }

    /// Install the subscriber on the current thread until the guard drops.
    pub fn install(&self) -> obs::InstallGuard {
        obs::install(Arc::clone(&self.0))
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ObsHandle(..)")
    }
}

/// Sizing knobs for a [`PlanService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. Each runs one job at a time.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Plan-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// How long a submission may wait for queue space before it is *shed*
    /// ([`SubmitError::Shed`]). Zero (the default) keeps the historical
    /// behavior: a full queue rejects immediately with
    /// [`SubmitError::QueueFull`].
    pub admission_timeout: Duration,
    /// How many times a *panicking* job is re-attempted before it is
    /// answered with an `Error` response. Retrying is cheap insurance
    /// against transient poisoning; deterministic panics just fail
    /// `max_job_retries + 1` times.
    pub max_job_retries: u32,
    /// Trace subscriber installed on every worker thread (and the serve
    /// loop). `None` (the default) disables tracing entirely: every
    /// instrumentation site reduces to one thread-local flag check.
    pub obs: Option<ObsHandle>,
    /// Adaptive overload control (deadline-aware admission, CoDel head
    /// shedding, anytime brownout). The default disables all of it,
    /// preserving the fixed-admission-timeout behavior exactly.
    pub overload: OverloadConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            admission_timeout: Duration::ZERO,
            max_job_retries: 1,
            obs: None,
            overload: OverloadConfig::default(),
        }
    }
}

/// Why a submission was turned away without running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity (no admission timeout configured).
    QueueFull,
    /// The queue stayed full past the admission timeout — load shedding.
    Shed,
    /// Another in-flight job already uses this id.
    DuplicateId,
    /// The service has shut down.
    ShutDown,
    /// Deadline-aware admission turned the job away: the estimated queue
    /// wait already exceeds the job's deadline, so accepting it could only
    /// waste a worker on a provably dead answer.
    WouldMissDeadline,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue full"),
            SubmitError::Shed => write!(f, "shed: queue full past admission timeout"),
            SubmitError::DuplicateId => write!(f, "duplicate job id"),
            SubmitError::ShutDown => write!(f, "service shut down"),
            SubmitError::WouldMissDeadline => {
                write!(f, "would_miss_deadline: estimated queue wait exceeds the request deadline")
            }
        }
    }
}

/// Fatal service-level failures (as opposed to per-job outcomes).
#[derive(Debug)]
pub enum ServiceError {
    /// The OS refused to spawn a service thread.
    Spawn(std::io::Error),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Spawn(e) => write!(f, "spawn service thread: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Spawn(e) => Some(e),
        }
    }
}

impl From<ServiceError> for std::io::Error {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Spawn(io) => io,
        }
    }
}

/// Point-in-time liveness report (the `{"cmd":"health"}` answer).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Worker threads currently alive.
    pub workers_alive: u64,
    /// Worker threads the service was configured with.
    pub workers_configured: usize,
    /// Jobs queued but not yet dequeued by a worker.
    pub queue_depth: u64,
    /// Jobs queued or running (cancellable ids).
    pub active_jobs: usize,
    /// Dead workers replaced by the supervisor so far.
    pub workers_respawned: u64,
    /// Median per-job wall time so far (log2-bucket upper bound, ms).
    pub wall_ms_p50: u64,
    /// 99th-percentile per-job wall time so far (bucket upper bound, ms).
    pub wall_ms_p99: u64,
    /// 99th-percentile queue wait so far (bucket upper bound, ms).
    pub queue_wait_ms_p99: u64,
    /// Jobs answered from the plan cache.
    pub cache_hits: u64,
    /// Jobs that ran the GA.
    pub cache_misses: u64,
    /// Plan-cache entries evicted (LRU) to make room.
    pub cache_evictions: u64,
    /// `Dsl` jobs that reused an already-grounded domain.
    pub ground_cache_hits: u64,
    /// `Dsl` jobs that parsed, checked and grounded from scratch.
    pub ground_cache_misses: u64,
    /// Records appended to the job journal (0 when serving unjournaled).
    pub journal_appends: u64,
    /// Intact journal records decoded during startup replay.
    pub journal_replayed: u64,
    /// Bytes of corrupt journal tail truncated during recovery.
    pub journal_truncated_bytes: u64,
    /// Jobs that joined an identical in-flight computation (singleflight).
    pub coalesced_jobs: u64,
    /// TCP connections accepted since startup (0 when serving over stdin).
    pub conns_accepted: u64,
    /// TCP connections currently open.
    pub conns_open: u64,
    /// TCP connections that vanished with jobs still in flight.
    pub conns_dropped: u64,
    /// Inbound frames rejected for exceeding the per-frame size cap.
    pub frames_oversize: u64,
    /// Inbound frames rejected as malformed (bad UTF-8 / unparseable).
    pub frames_malformed: u64,
    /// Idle/stalled connections reaped by the per-connection read timeout.
    pub conns_reaped: u64,
    /// Submissions rejected at admission as deadline-unmeetable.
    pub jobs_rejected_deadline: u64,
    /// Jobs fast-failed at dequeue because their deadline had passed.
    pub jobs_expired_in_queue: u64,
    /// Jobs run with a brownout-scaled (degraded) GA budget.
    pub jobs_degraded: u64,
    /// Jobs shed from the queue head by the CoDel controller.
    pub codel_drops: u64,
    /// In-flight request-id resubmissions folded into the existing
    /// computation (idempotent client retries).
    pub retries_joined: u64,
    /// In-flight request-id resubmissions rejected for a differing payload.
    pub retries_conflict: u64,
    /// Queue-wait EWMA, milliseconds (the overload controllers' pressure
    /// signal).
    pub queue_wait_ewma_ms: u64,
}

/// What a worker plans: a wire-level spec, or an in-process grid world with
/// a fully resolved config (the replanning path).
enum JobProblem {
    Spec(ProblemSpec),
    Grid(Box<GridWorld>, Box<GaConfig>),
}

struct Job {
    id: u64,
    problem: JobProblem,
    overrides: Option<GaOverrides>,
    deadline: Option<Instant>,
    submitted_at: Instant,
    token: CancelToken,
    reply: Sender<PlanResponse>,
}

impl Job {
    /// Wall-clock milliseconds since submission — the single source of
    /// truth for `PlanResponse::wall_ms`, so queue wait is included no
    /// matter which path produces the response.
    fn wall_ms(&self) -> u64 {
        self.submitted_at.elapsed().as_millis() as u64
    }
}

/// State shared between the service handle, its workers and the supervisor.
/// Upper bound on distinct problems with pooled successor caches. Beyond
/// it the pool drops the whole map — crude, but the caches are pure
/// optimization and rebuild in one run.
const SUCC_POOL_LIMIT: usize = 32;

struct Shared {
    cache: Mutex<PlanCache>,
    /// Successor caches shared across jobs (and grid replans) that plan the
    /// same problem, keyed by [`BuiltProblem::signature`]. Separate from the
    /// *plan* cache: a plan-cache hit skips the GA outright, while a
    /// successor-cache hit accelerates a GA that still has to run — e.g.
    /// same problem, different seed/config, or a replan after a fault.
    ///
    /// [`BuiltProblem::signature`]: crate::request::BuiltProblem::signature
    succ_pool: Mutex<FxHashMap<u64, Arc<SuccessorCache<DynState>>>>,
    /// Behind an `Arc` so long-lived helper threads (e.g. the serve loop's
    /// journal forwarder) can count events without borrowing the service.
    metrics: Arc<Metrics>,
    /// Cancel tokens of queued + running jobs, keyed by job id. Populated
    /// at submit time so a job can be cancelled while still queued.
    active: Mutex<FxHashMap<u64, CancelToken>>,
    /// Set (before the queue closes) when the service is shutting down, so
    /// the supervisor stops respawning workers that exit on purpose.
    shutting_down: AtomicBool,
    /// Panic retries per job.
    max_job_retries: u32,
    /// Trace subscriber workers install on their threads.
    obs: Option<ObsHandle>,
    /// Overload controllers (deadline admission, CoDel, brownout).
    overload: OverloadControl,
}

impl Shared {
    /// The pooled successor cache for a problem signature, creating it on
    /// first use; `None` when the job's config disables the cache. Keyed by
    /// problem (not config), so reruns with different seeds, overrides or
    /// replan worlds of the same problem all warm one cache.
    fn succ_cache_for(&self, sig: u64, cfg: &GaConfig) -> Option<Arc<SuccessorCache<DynState>>> {
        if !cfg.succ_cache {
            return None;
        }
        let mut pool = self.succ_pool.lock();
        if pool.len() >= SUCC_POOL_LIMIT && !pool.contains_key(&sig) {
            pool.clear();
        }
        Some(Arc::clone(pool.entry(sig).or_insert_with(|| Arc::new(SuccessorCache::new(cfg.succ_cache_capacity)))))
    }
}

/// Handle to a running planning service. Dropping it (or calling
/// [`PlanService::shutdown`]) closes the queue and joins the workers.
pub struct PlanService {
    tx: Option<SyncSender<Job>>,
    supervisor: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
    workers_configured: usize,
    admission_timeout: Duration,
    /// Default reply channel: responses for [`PlanService::submit`] jobs.
    responses: Sender<PlanResponse>,
}

impl PlanService {
    /// Start the worker pool and its supervisor. Returns the service handle
    /// plus the receiver on which responses to [`PlanService::submit`] jobs
    /// arrive — generally *not* in submission order.
    pub fn start(cfg: ServiceConfig) -> Result<(PlanService, Receiver<PlanResponse>), ServiceError> {
        let workers = cfg.workers.max(1);
        let (tx, rx) = sync_channel::<Job>(cfg.queue_capacity.max(1));
        let (responses, response_rx) = std::sync::mpsc::channel();
        let shared = Arc::new(Shared {
            cache: Mutex::new(PlanCache::new(cfg.cache_capacity)),
            succ_pool: Mutex::new(FxHashMap::default()),
            metrics: Arc::new(Metrics::new()),
            active: Mutex::new(FxHashMap::default()),
            shutting_down: AtomicBool::new(false),
            max_job_retries: cfg.max_job_retries,
            obs: cfg.obs.clone(),
            overload: OverloadControl::new(cfg.overload.clone(), workers),
        });
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| spawn_worker(i, &rx, &shared))
            .collect::<Result<Vec<_>, _>>()
            .map_err(ServiceError::Spawn)?;
        let supervisor = {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gaplan-supervisor".to_string())
                .spawn(move || supervisor_loop(handles, &rx, &shared))
                .map_err(ServiceError::Spawn)?
        };
        let service = PlanService {
            tx: Some(tx),
            supervisor: Some(supervisor),
            shared,
            workers_configured: workers,
            admission_timeout: cfg.admission_timeout,
            responses,
        };
        Ok((service, response_rx))
    }

    /// Submit a wire-level request; its response arrives on the receiver
    /// returned by [`PlanService::start`]. Returns the job's cancel token.
    pub fn submit(&self, request: PlanRequest) -> Result<CancelToken, SubmitError> {
        self.submit_with_reply(request, self.responses.clone())
    }

    /// Submit a wire-level request whose response goes to `reply` instead
    /// of the shared response channel.
    pub fn submit_with_reply(
        &self,
        request: PlanRequest,
        reply: Sender<PlanResponse>,
    ) -> Result<CancelToken, SubmitError> {
        let PlanRequest { id, problem, deadline_ms, ga } = request;
        self.enqueue(Job {
            id,
            problem: JobProblem::Spec(problem),
            overrides: ga,
            deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
            submitted_at: Instant::now(),
            token: CancelToken::new(),
            reply,
        })
    }

    /// Submit an in-process grid world with a fully resolved GA config —
    /// the replanning path used by [`crate::ServiceReplanner`]. The caller
    /// supplies its own reply channel.
    pub fn submit_grid(
        &self,
        id: u64,
        world: GridWorld,
        cfg: GaConfig,
        deadline: Option<Duration>,
        reply: Sender<PlanResponse>,
    ) -> Result<CancelToken, SubmitError> {
        self.enqueue(Job {
            id,
            problem: JobProblem::Grid(Box::new(world), Box::new(cfg)),
            overrides: None,
            deadline: deadline.map(|d| Instant::now() + d),
            submitted_at: Instant::now(),
            token: CancelToken::new(),
            reply,
        })
    }

    fn enqueue(&self, job: Job) -> Result<CancelToken, SubmitError> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(SubmitError::ShutDown);
        };
        if let Some(job_deadline) = job.deadline {
            // Deadline-aware admission (off by default): if the estimated
            // queue wait alone already blows the deadline, reject now —
            // cheaper for the caller than a dead answer later, and the
            // queue slot goes to a job that can still make it.
            if self.shared.overload.would_miss_deadline(&self.shared.metrics, job_deadline, Instant::now()) {
                self.shared.metrics.on_rejected_deadline();
                return Err(SubmitError::WouldMissDeadline);
            }
        }
        let token = job.token.clone();
        {
            let mut active = self.shared.active.lock();
            if active.contains_key(&job.id) {
                self.shared.metrics.on_reject();
                return Err(SubmitError::DuplicateId);
            }
            active.insert(job.id, token.clone());
        }
        let id = job.id;
        let mut job = job;
        let deadline = Instant::now() + self.admission_timeout;
        loop {
            match tx.try_send(job) {
                Ok(()) => {
                    self.shared.metrics.on_submit();
                    return Ok(token);
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.shared.active.lock().remove(&id);
                    self.shared.metrics.on_reject();
                    return Err(SubmitError::ShutDown);
                }
                Err(TrySendError::Full(returned)) => {
                    if self.admission_timeout.is_zero() {
                        self.shared.active.lock().remove(&id);
                        self.shared.metrics.on_reject();
                        return Err(SubmitError::QueueFull);
                    }
                    if Instant::now() >= deadline {
                        // Load shedding: the queue stayed full for the whole
                        // admission window, so turn the job away rather than
                        // letting latency grow without bound.
                        self.shared.active.lock().remove(&id);
                        self.shared.metrics.on_shed();
                        return Err(SubmitError::Shed);
                    }
                    job = returned;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    /// Cancel a queued or running job. Returns whether the id was found.
    /// The job still produces a response (status `Cancelled`, with the
    /// best-so-far plan if it had started running).
    pub fn cancel(&self, id: u64) -> bool {
        match self.shared.active.lock().get(&id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Point-in-time liveness report: workers alive vs configured, queue
    /// depth, in-flight job count, respawn count, plus the durability
    /// counters (cache hit/miss/eviction, journal append/replay/truncation).
    pub fn health(&self) -> HealthReport {
        let snapshot = self.shared.metrics.snapshot();
        HealthReport {
            workers_alive: self.shared.metrics.workers_alive(),
            workers_configured: self.workers_configured,
            queue_depth: self.shared.metrics.queue_depth(),
            active_jobs: self.shared.active.lock().len(),
            workers_respawned: snapshot.workers_respawned,
            wall_ms_p50: self.shared.metrics.wall_ms_quantile(0.5),
            wall_ms_p99: self.shared.metrics.wall_ms_quantile(0.99),
            queue_wait_ms_p99: self.shared.metrics.queue_wait_ms_quantile(0.99),
            cache_hits: snapshot.cache_hits,
            cache_misses: snapshot.cache_misses,
            cache_evictions: snapshot.cache_evictions,
            ground_cache_hits: snapshot.ground_cache_hits,
            ground_cache_misses: snapshot.ground_cache_misses,
            journal_appends: snapshot.journal_appends,
            journal_replayed: snapshot.journal_replayed,
            journal_truncated_bytes: snapshot.journal_truncated_bytes,
            coalesced_jobs: snapshot.coalesced_jobs,
            conns_accepted: snapshot.conns_accepted,
            conns_open: snapshot.conns_open,
            conns_dropped: snapshot.conns_dropped,
            frames_oversize: snapshot.frames_oversize,
            frames_malformed: snapshot.frames_malformed,
            conns_reaped: snapshot.conns_reaped,
            jobs_rejected_deadline: snapshot.jobs_rejected_deadline,
            jobs_expired_in_queue: snapshot.jobs_expired_in_queue,
            jobs_degraded: snapshot.jobs_degraded,
            codel_drops: snapshot.codel_drops,
            retries_joined: snapshot.retries_joined,
            retries_conflict: snapshot.retries_conflict,
            queue_wait_ewma_ms: snapshot.queue_wait_ewma_ms,
        }
    }

    /// Shared metrics hook for in-crate adapters (e.g. the service-backed
    /// replanner reporting a dead service).
    pub(crate) fn metrics_ref(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The metrics behind their `Arc`, for helper threads that outlive any
    /// borrow of the service handle (e.g. the serve loop's forwarder).
    pub(crate) fn metrics_arc(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Pre-populate the plan cache — the journal-recovery path, so plans
    /// computed before a crash keep answering identical resubmissions.
    pub fn seed_cache(&self, key: u64, value: CachedPlan) {
        if self.shared.cache.lock().insert(key, value) {
            self.shared.metrics.on_cache_eviction();
        }
    }

    /// Number of plans currently cached.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.lock().len()
    }

    /// Close the queue and wait for workers to drain and exit. Queued jobs
    /// still run (cancel them first for a fast stop). Returns the number of
    /// jobs that were still in flight at shutdown and were drained, and
    /// emits one `svc.shutdown` trace event carrying that count.
    pub fn shutdown(mut self) -> u64 {
        self.shutdown_in_place()
    }

    fn shutdown_in_place(&mut self) -> u64 {
        // Order matters: mark intent first so the supervisor does not
        // mistake draining workers for crashed ones and respawn them.
        self.shared.shutting_down.store(true, Ordering::Release);
        drop(self.tx.take());
        // The supervisor handle doubles as the "already shut down" guard:
        // `shutdown` followed by `Drop` drains (and reports) only once.
        let Some(supervisor) = self.supervisor.take() else {
            return 0;
        };
        let drained = self.shared.active.lock().len() as u64;
        let _ = supervisor.join();
        obs::emit(|| Event::new("svc.shutdown").u64("jobs_drained", drained));
        drained
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn spawn_worker(index: usize, rx: &Arc<Mutex<Receiver<Job>>>, shared: &Arc<Shared>) -> std::io::Result<JoinHandle<()>> {
    let rx = Arc::clone(rx);
    let shared = Arc::clone(shared);
    // Count the worker from spawn time, not from when the OS first
    // schedules the thread, so an immediate health() sees the full pool.
    // A failed spawn drops the guard and the gauge rolls back.
    let alive = AliveGuard::new(Arc::clone(&shared));
    std::thread::Builder::new().name(format!("gaplan-worker-{index}")).spawn(move || {
        let _alive = alive;
        let _obs = shared.obs.as_ref().map(ObsHandle::install);
        worker_loop(&rx, &shared);
    })
}

/// Keeps the live-worker gauge honest: decrements on *any* thread exit,
/// including an unwinding panic.
struct AliveGuard(Arc<Shared>);

impl AliveGuard {
    fn new(shared: Arc<Shared>) -> Self {
        shared.metrics.on_worker_start();
        AliveGuard(shared)
    }
}

impl Drop for AliveGuard {
    fn drop(&mut self) {
        self.0.metrics.on_worker_exit();
    }
}

/// Answers the client and clears the active entry if a panic escapes the
/// worker loop (e.g. a worker-killing chaos job): the thread dies, the
/// request does not hang.
struct ReplyGuard<'s> {
    id: u64,
    submitted_at: Instant,
    reply: Sender<PlanResponse>,
    shared: &'s Shared,
}

impl Drop for ReplyGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.shared.metrics.on_panic();
            self.shared.active.lock().remove(&self.id);
            let mut resp = PlanResponse::failure(
                self.id,
                JobStatus::Error,
                "worker thread killed by panic while executing this job",
            );
            resp.wall_ms = self.submitted_at.elapsed().as_millis() as u64;
            obs::emit(|| {
                Event::new("svc.reply")
                    .u64("id", resp.id)
                    .str("status", resp.status.name())
                    .bool("cache_hit", false)
                    .u64("wall_ms", resp.wall_ms)
            });
            let _ = self.reply.send(resp);
        }
    }
}

/// Watches the worker pool, reaping and respawning any thread that died
/// outside an orderly shutdown. Joins the pool when the service drains.
fn supervisor_loop(mut handles: Vec<JoinHandle<()>>, rx: &Arc<Mutex<Receiver<Job>>>, shared: &Arc<Shared>) {
    let mut next_index = handles.len();
    while !shared.shutting_down.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(5));
        for slot in handles.iter_mut() {
            if !slot.is_finished() || shared.shutting_down.load(Ordering::Acquire) {
                continue;
            }
            // A worker exited while the queue is still open: it panicked.
            // Replace it so capacity recovers (respawn failures leave the
            // dead handle in place to be retried next round).
            if let Ok(fresh) = spawn_worker(next_index, rx, shared) {
                next_index += 1;
                let dead = std::mem::replace(slot, fresh);
                let _ = dead.join();
                shared.metrics.on_respawn();
            }
        }
    }
    // Drain phase: the submit side is gone, so a fresh worker exits as soon
    // as the queue is empty. A worker that died panicking may leave queued
    // jobs stranded; replace it so every accepted job is still answered.
    for handle in handles {
        if handle.join().is_err() {
            if let Ok(drainer) = spawn_worker(next_index, rx, shared) {
                next_index += 1;
                shared.metrics.on_respawn();
                let _ = drainer.join();
            }
        }
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Take the lock only to dequeue, never while planning.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed and drained
        };
        let queue_wait_ms = job.wall_ms();
        shared.metrics.on_dequeue(queue_wait_ms);
        // The span covers admission-to-reply; it must outlive the reply
        // guard so a worker-killing panic still exits the span last.
        let _span = obs::span("svc.request");
        obs::emit(|| Event::new("svc.dequeue").u64("id", job.id).u64("queue_wait_wall_ms", queue_wait_ms));
        let _guard = ReplyGuard { id: job.id, submitted_at: job.submitted_at, reply: job.reply.clone(), shared };
        if let JobProblem::Spec(ProblemSpec::Chaos { kill_worker: true, .. }) = &job.problem {
            shared.metrics.on_fault_injected();
            panic!("chaos job {} killed this worker on request", job.id);
        }
        // Feed every sojourn to the CoDel controller, whether or not the
        // job runs — its state machine needs the below-target samples too.
        let codel_drop = shared.overload.codel_on_dequeue(queue_wait_ms);
        let expired = job.deadline.is_some_and(|d| Instant::now() >= d);
        let mut response = PlanResponse::failure(job.id, JobStatus::Error, "job never produced a response");
        if expired {
            // Fast-fail: the deadline passed while the job sat queued, so
            // a GA run could only produce a dead answer. Reply immediately
            // and give the worker to a job that can still make it.
            shared.metrics.on_expired_in_queue();
            response =
                PlanResponse::failure(job.id, JobStatus::DeadlineExpired, "deadline expired while queued; job not run");
            response.wall_ms = job.wall_ms();
            shared.metrics.on_complete(response.wall_ms, false);
        } else if codel_drop {
            // Controlled-delay head shedding: sojourn has been above target
            // for a full interval, so drop from the head (oldest first) to
            // pull the standing queue back under target.
            shared.metrics.on_codel_drop();
            shared.metrics.on_shed();
            obs::emit(|| Event::new("svc.codel").u64("id", job.id).u64("sojourn_ms", queue_wait_ms));
            response = PlanResponse::failure(
                job.id,
                JobStatus::Shed,
                "shed from the queue head: sojourn above the controlled-delay target",
            );
            response.wall_ms = job.wall_ms();
            shared.metrics.on_complete(response.wall_ms, false);
        } else {
            for attempt in 0..=shared.max_job_retries {
                match catch_unwind(AssertUnwindSafe(|| run_job(&job, shared, attempt))) {
                    Ok(resp) => {
                        response = resp;
                        break;
                    }
                    Err(payload) => {
                        shared.metrics.on_panic();
                        if attempt < shared.max_job_retries {
                            shared.metrics.on_retry();
                            continue;
                        }
                        shared.metrics.on_error();
                        response = PlanResponse::failure(
                            job.id,
                            JobStatus::Error,
                            format!(
                                "job panicked on all {} attempts: {}",
                                attempt + 1,
                                panic_message(payload.as_ref())
                            ),
                        );
                    }
                }
            }
            // On-worker execution time (reply minus queue wait) feeds the
            // EWMA the admission estimate scales queue depth by. Shed and
            // expired jobs cost no worker time, so only run paths sample.
            shared.metrics.on_exec(job.wall_ms().saturating_sub(queue_wait_ms));
        }
        if response.wall_ms == 0 {
            // The fallback and panic-exhausted responses are built without
            // timing; every path must still report submission-to-reply
            // latency with queue wait included.
            response.wall_ms = job.wall_ms();
        }
        shared.active.lock().remove(&job.id);
        obs::emit(|| {
            Event::new("svc.reply")
                .u64("id", response.id)
                .str("status", response.status.name())
                .bool("cache_hit", response.cache_hit)
                .u64("wall_ms", response.wall_ms)
        });
        // A dropped reply receiver just discards the response.
        let _ = job.reply.send(response);
    }
}

/// Human-readable panic payload (panics carry `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

fn run_job(job: &Job, shared: &Shared, attempt: u32) -> PlanResponse {
    let (built, cfg) = match &job.problem {
        JobProblem::Spec(spec) => match spec.build_with(Some(&shared.metrics)) {
            Ok(built) => {
                let defaults = built.default_config();
                let cfg = match &job.overrides {
                    Some(ov) => ov.apply(defaults),
                    None => defaults,
                };
                (built, cfg)
            }
            Err(msg) => {
                shared.metrics.on_error();
                let mut resp = PlanResponse::failure(job.id, JobStatus::Error, msg);
                resp.wall_ms = job.wall_ms();
                return resp;
            }
        },
        JobProblem::Grid(world, cfg) => (crate::request::BuiltProblem::Grid(world.clone()), cfg.as_ref().clone()),
    };

    if let crate::request::BuiltProblem::Chaos { fail_attempts, .. } = &built {
        // Injected fault: panic until the configured attempt, then succeed
        // trivially. Handled before the cache so a cached success can never
        // swallow a scheduled fault.
        if attempt < *fail_attempts {
            shared.metrics.on_fault_injected();
            panic!("chaos job {}: injected panic on attempt {attempt}", job.id);
        }
        let wall_ms = job.wall_ms();
        shared.metrics.on_complete(wall_ms, true);
        return PlanResponse {
            id: job.id,
            status: JobStatus::Done,
            solved: true,
            goal_fitness: 1.0,
            plan: Vec::new(),
            plan_ops: Vec::new(),
            plan_len: 0,
            total_generations: 0,
            wall_ms,
            cache_hit: false,
            error: None,
            degraded: false,
        };
    }

    let key = PlanCache::key(built.signature(), cfg.signature());
    let cached = shared.cache.lock().get(key);
    obs::emit(|| Event::new("svc.cache").u64("id", job.id).bool("hit", cached.is_some()));
    if let Some(hit) = cached {
        shared.metrics.on_cache_hit();
        let wall_ms = job.wall_ms();
        shared.metrics.on_complete(wall_ms, hit.solved);
        return PlanResponse {
            id: job.id,
            status: JobStatus::Done,
            solved: hit.solved,
            goal_fitness: hit.goal_fitness,
            plan_len: hit.plan_names.len(),
            plan: hit.plan_names,
            plan_ops: hit.plan_ops,
            total_generations: hit.total_generations,
            wall_ms,
            cache_hit: true,
            error: None,
            degraded: false,
        };
    }
    shared.metrics.on_cache_miss();

    // Anytime brownout: under queue pressure, run a scaled-down GA budget
    // and mark the response degraded. Cache lookups above still use the
    // *unscaled* config key, so a full-quality cached plan keeps answering
    // during a brownout; conversely a degraded run is never cached under
    // that key (it would poison identical full-budget requests).
    let factor = shared.overload.brownout_factor(&shared.metrics);
    let degraded = factor < 1.0;
    let run_cfg = if degraded {
        shared.metrics.on_degraded();
        cfg.scale_budget(factor)
    } else {
        cfg
    };

    let mut budget = Budget::unlimited().with_token(job.token.clone());
    if let Some(deadline) = job.deadline {
        budget = budget.with_deadline(deadline);
    }
    let succ = shared.succ_cache_for(built.signature(), &run_cfg);
    let outcome = built.solve_with(&run_cfg, budget, succ);

    let status = match outcome.stopped {
        None => JobStatus::Done,
        Some(StopCause::Deadline) => {
            shared.metrics.on_timeout();
            JobStatus::Timeout
        }
        Some(StopCause::Cancelled) => {
            shared.metrics.on_cancel();
            JobStatus::Cancelled
        }
    };
    if outcome.stopped.is_none() && !degraded {
        let evicted = shared.cache.lock().insert(
            key,
            CachedPlan {
                solved: outcome.solved,
                goal_fitness: outcome.goal_fitness,
                plan_names: outcome.plan_names.clone(),
                plan_ops: outcome.plan_ops.clone(),
                total_generations: outcome.total_generations,
            },
        );
        if evicted {
            shared.metrics.on_cache_eviction();
        }
    }
    let wall_ms = job.wall_ms();
    shared.metrics.on_complete(wall_ms, outcome.solved);
    PlanResponse {
        id: job.id,
        status,
        solved: outcome.solved,
        goal_fitness: outcome.goal_fitness,
        plan_len: outcome.plan_names.len(),
        plan: outcome.plan_names,
        plan_ops: outcome.plan_ops,
        total_generations: outcome.total_generations,
        wall_ms,
        cache_hit: false,
        error: None,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ProblemSpec;

    fn tiny_request(id: u64) -> PlanRequest {
        PlanRequest {
            id,
            problem: ProblemSpec::Hanoi { disks: 3 },
            deadline_ms: None,
            ga: Some(GaOverrides {
                population: Some(40),
                generations: Some(30),
                phases: Some(3),
                ..GaOverrides::default()
            }),
        }
    }

    /// Spin until `cond` holds, up to `ms` milliseconds.
    fn wait_until(ms: u64, cond: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_millis(ms);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        cond()
    }

    #[test]
    fn submit_runs_and_responds() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 2,
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServiceConfig::default()
        })
        .unwrap();
        service.submit(tiny_request(1)).unwrap();
        let resp = responses.recv().unwrap();
        assert_eq!(resp.id, 1);
        assert_eq!(resp.status, JobStatus::Done);
        assert!(resp.solved, "hanoi-3 should solve: {resp:?}");
        assert!(!resp.cache_hit);
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_completed, 1);
        assert_eq!(metrics.cache_misses, 1);
        service.shutdown();
    }

    #[test]
    fn identical_resubmission_hits_cache() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServiceConfig::default()
        })
        .unwrap();
        service.submit(tiny_request(1)).unwrap();
        let first = responses.recv().unwrap();
        assert!(!first.cache_hit);
        service.submit(tiny_request(2)).unwrap();
        let second = responses.recv().unwrap();
        assert!(second.cache_hit, "identical problem+config should hit: {second:?}");
        assert_eq!(second.plan, first.plan);
        assert_eq!(service.metrics().cache_hits, 1);
        service.shutdown();
    }

    #[test]
    fn duplicate_inflight_id_is_rejected() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .unwrap();
        // Stall the single worker with a long job so id 1 stays active.
        let mut big = tiny_request(1);
        big.problem = ProblemSpec::Hanoi { disks: 10 };
        big.ga = None;
        service.submit(big).unwrap();
        assert_eq!(service.submit(tiny_request(1)).err(), Some(SubmitError::DuplicateId));
        assert!(service.cancel(1));
        let resp = responses.recv().unwrap();
        assert_eq!(resp.id, 1);
        service.shutdown();
    }

    #[test]
    fn full_queue_rejects() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .unwrap();
        // One slow job occupies the worker; the queue holds at most one
        // more, so repeated submission must eventually bounce.
        let mut first = tiny_request(1);
        first.problem = ProblemSpec::Hanoi { disks: 9 };
        first.ga = None;
        service.submit(first).unwrap();
        let mut saw_full = false;
        for id in 2..=6 {
            match service.submit(tiny_request(id)) {
                Err(SubmitError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Ok(_) => {}
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(saw_full, "bounded queue never reported full");
        for id in 1..=6 {
            service.cancel(id);
        }
        drop(responses);
        service.shutdown();
    }

    #[test]
    fn cancelling_a_running_job_returns_cancelled_with_plan() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 4,
            ..ServiceConfig::default()
        })
        .unwrap();
        let mut req = tiny_request(1);
        req.problem = ProblemSpec::Hanoi { disks: 12 };
        req.ga = None;
        let token = service.submit(req).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
        let resp = responses.recv().unwrap();
        assert_eq!(resp.status, JobStatus::Cancelled);
        assert!(!resp.plan.is_empty(), "best-so-far plan should be non-empty");
        assert_eq!(service.cache_len(), 0, "cancelled runs must not be cached");
        service.shutdown();
    }

    #[test]
    fn unknown_cancel_id_reports_not_found() {
        let (service, _responses) = PlanService::start(ServiceConfig::default()).unwrap();
        assert!(!service.cancel(999));
        service.shutdown();
    }

    fn chaos_request(id: u64, fail_attempts: u32, kill_worker: bool) -> PlanRequest {
        PlanRequest { id, problem: ProblemSpec::Chaos { fail_attempts, kill_worker }, deadline_ms: None, ga: None }
    }

    #[test]
    fn chaos_panicking_job_yields_error_and_service_survives() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            max_job_retries: 1,
            ..ServiceConfig::default()
        })
        .unwrap();
        // fails every attempt: retry budget exhausts, response is an error
        service.submit(chaos_request(1, u32::MAX, false)).unwrap();
        let resp = responses.recv().unwrap();
        assert_eq!(resp.id, 1);
        assert_eq!(resp.status, JobStatus::Error);
        assert!(resp.error.as_deref().unwrap_or("").contains("panicked"), "{resp:?}");
        // the worker survived the catch; ordinary jobs still run
        service.submit(tiny_request(2)).unwrap();
        let resp = responses.recv().unwrap();
        assert_eq!(resp.id, 2);
        assert_eq!(resp.status, JobStatus::Done);
        let m = service.metrics();
        assert_eq!(m.panics_caught, 2, "both attempts panicked: {m:?}");
        assert_eq!(m.jobs_retried, 1);
        assert_eq!(m.faults_injected, 2);
        assert_eq!(m.workers_respawned, 0, "caught panics must not kill the worker");
        service.shutdown();
    }

    #[test]
    fn chaos_transient_panic_recovers_on_retry() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            max_job_retries: 2,
            ..ServiceConfig::default()
        })
        .unwrap();
        // fails only attempt 0; the first retry succeeds
        service.submit(chaos_request(5, 1, false)).unwrap();
        let resp = responses.recv().unwrap();
        assert_eq!(resp.status, JobStatus::Done, "{resp:?}");
        assert!(resp.solved);
        let m = service.metrics();
        assert_eq!(m.panics_caught, 1);
        assert_eq!(m.jobs_retried, 1);
        service.shutdown();
    }

    #[test]
    fn chaos_killed_worker_is_respawned_and_service_answers() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServiceConfig::default()
        })
        .unwrap();
        assert!(wait_until(2000, || service.health().workers_alive == 1), "worker never came up");
        service.submit(chaos_request(1, 0, true)).unwrap();
        // the dying worker's reply guard still answers the client
        let resp = responses.recv().unwrap();
        assert_eq!(resp.id, 1);
        assert_eq!(resp.status, JobStatus::Error);
        // the supervisor replaces the dead thread
        assert!(
            wait_until(2000, || service.metrics().workers_respawned >= 1 && service.health().workers_alive == 1),
            "supervisor never respawned the worker: {:?}",
            service.metrics()
        );
        // and the service keeps answering new jobs
        service.submit(tiny_request(2)).unwrap();
        let resp = responses.recv().unwrap();
        assert_eq!(resp.id, 2);
        assert_eq!(resp.status, JobStatus::Done);
        let m = service.metrics();
        assert!(m.panics_caught >= 1, "{m:?}");
        assert!(m.workers_respawned >= 1, "{m:?}");
        assert!(m.faults_injected >= 1, "{m:?}");
        service.shutdown();
    }

    #[test]
    fn chaos_admission_timeout_sheds_instead_of_rejecting() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
            admission_timeout: Duration::from_millis(40),
            ..ServiceConfig::default()
        })
        .unwrap();
        // a slow job pins the worker; another fills the one queue slot
        let mut slow = tiny_request(1);
        slow.problem = ProblemSpec::Hanoi { disks: 10 };
        slow.ga = None;
        service.submit(slow).unwrap();
        let mut queued_one = false;
        let mut shed = None;
        for id in 2..=6 {
            match service.submit(tiny_request(id)) {
                Ok(_) => queued_one = true,
                Err(err) => {
                    shed = Some(err);
                    break;
                }
            }
        }
        assert!(queued_one, "one job should fit in the queue");
        assert_eq!(shed, Some(SubmitError::Shed), "full queue past the timeout must shed");
        assert!(service.metrics().jobs_shed >= 1);
        for id in 1..=6 {
            service.cancel(id);
        }
        drop(responses);
        service.shutdown();
    }

    #[test]
    fn health_reports_live_workers_and_queue() {
        let (service, _responses) = PlanService::start(ServiceConfig::default()).unwrap();
        assert!(wait_until(2000, || service.health().workers_alive == 2), "{:?}", service.health());
        let h = service.health();
        assert_eq!(h.workers_configured, 2);
        assert_eq!(h.queue_depth, 0);
        assert_eq!(h.active_jobs, 0);
        assert_eq!(h.workers_respawned, 0);
        assert_eq!(h.jobs_expired_in_queue, 0);
        assert_eq!(h.codel_drops, 0);
        service.shutdown();
    }

    /// A slow-ish request with a unique cache key per id (distinct seed).
    fn slow_request(id: u64) -> PlanRequest {
        PlanRequest {
            id,
            problem: ProblemSpec::Hanoi { disks: 6 },
            deadline_ms: None,
            ga: Some(GaOverrides {
                population: Some(120),
                generations: Some(80),
                phases: Some(2),
                seed: Some(id),
                ..GaOverrides::default()
            }),
        }
    }

    #[test]
    fn expired_in_queue_jobs_fast_fail_without_running() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            ..ServiceConfig::default()
        })
        .unwrap();
        // Pin the single worker, then queue a job whose deadline expires
        // while it waits.
        service.submit(slow_request(1)).unwrap();
        let mut doomed = tiny_request(2);
        doomed.deadline_ms = Some(1);
        service.submit(doomed).unwrap();
        let mut statuses = std::collections::HashMap::new();
        for _ in 0..2 {
            let resp = responses.recv().unwrap();
            statuses.insert(resp.id, (resp.status, resp.total_generations));
        }
        let (status, gens) = statuses[&2];
        assert_eq!(status, JobStatus::DeadlineExpired, "{statuses:?}");
        assert_eq!(gens, 0, "the GA must never run for an expired job");
        let m = service.metrics();
        assert_eq!(m.jobs_expired_in_queue, 1);
        assert_eq!(m.jobs_completed, 2, "expired jobs still count as completed");
        service.shutdown();
    }

    #[test]
    fn deadline_admission_rejects_provably_unmeetable_jobs() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 0,
            overload: OverloadConfig { deadline_admission: true, ..OverloadConfig::default() },
            ..ServiceConfig::default()
        })
        .unwrap();
        // Warm the exec EWMA with a couple of completed slow jobs.
        for id in 1..=2 {
            service.submit(slow_request(id)).unwrap();
            responses.recv().unwrap();
        }
        assert!(service.metrics().exec_ewma_ms > 0, "exec EWMA never warmed: {:?}", service.metrics());
        // Pin the worker and keep one job queued so the backlog estimate is
        // nonzero, then ask for a deadline the queue alone already blows.
        service.submit(slow_request(3)).unwrap();
        service.submit(slow_request(4)).unwrap();
        assert!(wait_until(2000, || service.metrics().queue_depth >= 1), "{:?}", service.metrics());
        let mut hopeless = tiny_request(5);
        hopeless.deadline_ms = Some(1);
        assert_eq!(service.submit(hopeless).err(), Some(SubmitError::WouldMissDeadline));
        let m = service.metrics();
        assert_eq!(m.jobs_rejected_deadline, 1);
        assert_eq!(m.jobs_rejected, 1, "deadline rejections count as rejections");
        // A feasible deadline is still admitted.
        let mut fine = tiny_request(6);
        fine.deadline_ms = Some(60_000);
        service.submit(fine).unwrap();
        for _ in 0..3 {
            responses.recv().unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn codel_sheds_from_the_queue_head_under_sustained_overload() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 0,
            overload: OverloadConfig { codel_target_ms: 1, codel_interval_ms: 10, ..OverloadConfig::default() },
            ..ServiceConfig::default()
        })
        .unwrap();
        // Far more queued work than one worker can clear under target:
        // sojourns rise past the target and stay there, so the controller
        // must enter its dropping state and shed from the head.
        let jobs = 24;
        for id in 1..=jobs {
            service.submit(slow_request(id)).unwrap();
        }
        let mut shed = 0;
        let mut replies = 0;
        for _ in 0..jobs {
            let resp = responses.recv().unwrap();
            replies += 1;
            if resp.status == JobStatus::Shed {
                shed += 1;
                assert_eq!(resp.total_generations, 0, "shed jobs must not run the GA: {resp:?}");
            }
        }
        assert_eq!(replies, jobs, "every accepted job must be answered");
        let m = service.metrics();
        assert!(m.codel_drops >= 1, "sustained overload never triggered a head drop: {m:?}");
        assert_eq!(m.codel_drops, shed as u64);
        assert_eq!(m.jobs_completed, jobs);
        service.shutdown();
    }

    #[test]
    fn brownout_degrades_under_pressure_and_degraded_runs_are_not_cached() {
        let (service, responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 64,
            overload: OverloadConfig {
                brownout_floor: 0.25,
                brownout_enter_ms: 5,
                brownout_exit_ms: 1,
                ..OverloadConfig::default()
            },
            ..ServiceConfig::default()
        })
        .unwrap();
        let jobs = 12;
        for id in 1..=jobs {
            service.submit(slow_request(id)).unwrap();
        }
        let mut degraded = 0;
        for _ in 0..jobs {
            let resp = responses.recv().unwrap();
            assert_eq!(resp.status, JobStatus::Done);
            if resp.degraded {
                degraded += 1;
            }
        }
        assert!(degraded >= 1, "queue pressure never engaged the brownout: {:?}", service.metrics());
        let m = service.metrics();
        assert_eq!(m.jobs_degraded, degraded as u64);
        // Every id has a distinct seed (distinct cache key); only the
        // full-budget runs may populate the cache.
        assert_eq!(service.cache_len(), jobs as usize - degraded, "degraded plans must never be cached");
        service.shutdown();
    }
}
