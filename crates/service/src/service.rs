//! The planning service: a bounded submission queue feeding a fixed pool of
//! worker threads, with cooperative cancellation, per-job deadlines, a
//! signature-keyed plan cache and live metrics.
//!
//! Concurrency model: `submit` pushes a job onto a bounded
//! [`std::sync::mpsc::sync_channel`] (never blocking — a full queue rejects
//! the job so callers get backpressure instead of a hang). Workers share
//! the receiving end behind a mutex, run one job at a time to completion,
//! and send the [`PlanResponse`] to the job's reply channel. Inside a job
//! the GA is free to use rayon; the service itself uses only std threads
//! and channels.

use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rustc_hash::FxHashMap;

use gaplan_core::{Budget, CancelToken, StopCause};
use gaplan_ga::GaConfig;
use gaplan_grid::GridWorld;

use crate::cache::{CachedPlan, PlanCache};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::request::{GaOverrides, JobStatus, PlanRequest, PlanResponse, ProblemSpec};

/// Sizing knobs for a [`PlanService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. Each runs one job at a time.
    pub workers: usize,
    /// Bounded queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Plan-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { workers: 2, queue_capacity: 64, cache_capacity: 128 }
    }
}

/// Why a submission was turned away without running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    QueueFull,
    /// Another in-flight job already uses this id.
    DuplicateId,
    /// The service has shut down.
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "queue full"),
            SubmitError::DuplicateId => write!(f, "duplicate job id"),
            SubmitError::ShutDown => write!(f, "service shut down"),
        }
    }
}

/// What a worker plans: a wire-level spec, or an in-process grid world with
/// a fully resolved config (the replanning path).
enum JobProblem {
    Spec(ProblemSpec),
    Grid(Box<GridWorld>, Box<GaConfig>),
}

struct Job {
    id: u64,
    problem: JobProblem,
    overrides: Option<GaOverrides>,
    deadline: Option<Instant>,
    submitted_at: Instant,
    token: CancelToken,
    reply: Sender<PlanResponse>,
}

/// State shared between the service handle and its workers.
struct Shared {
    cache: Mutex<PlanCache>,
    metrics: Metrics,
    /// Cancel tokens of queued + running jobs, keyed by job id. Populated
    /// at submit time so a job can be cancelled while still queued.
    active: Mutex<FxHashMap<u64, CancelToken>>,
}

/// Handle to a running planning service. Dropping it (or calling
/// [`PlanService::shutdown`]) closes the queue and joins the workers.
pub struct PlanService {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
    /// Default reply channel: responses for [`PlanService::submit`] jobs.
    responses: Sender<PlanResponse>,
}

impl PlanService {
    /// Start the worker pool. Returns the service handle plus the receiver
    /// on which responses to [`PlanService::submit`] jobs arrive —
    /// generally *not* in submission order.
    pub fn start(cfg: ServiceConfig) -> (PlanService, Receiver<PlanResponse>) {
        let workers = cfg.workers.max(1);
        let (tx, rx) = sync_channel::<Job>(cfg.queue_capacity.max(1));
        let (responses, response_rx) = std::sync::mpsc::channel();
        let shared = Arc::new(Shared {
            cache: Mutex::new(PlanCache::new(cfg.cache_capacity)),
            metrics: Metrics::new(),
            active: Mutex::new(FxHashMap::default()),
        });
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gaplan-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn worker thread")
            })
            .collect();
        (PlanService { tx: Some(tx), workers: handles, shared, responses }, response_rx)
    }

    /// Submit a wire-level request; its response arrives on the receiver
    /// returned by [`PlanService::start`]. Returns the job's cancel token.
    pub fn submit(&self, request: PlanRequest) -> Result<CancelToken, SubmitError> {
        self.submit_with_reply(request, self.responses.clone())
    }

    /// Submit a wire-level request whose response goes to `reply` instead
    /// of the shared response channel.
    pub fn submit_with_reply(
        &self,
        request: PlanRequest,
        reply: Sender<PlanResponse>,
    ) -> Result<CancelToken, SubmitError> {
        let PlanRequest { id, problem, deadline_ms, ga } = request;
        self.enqueue(Job {
            id,
            problem: JobProblem::Spec(problem),
            overrides: ga,
            deadline: deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms)),
            submitted_at: Instant::now(),
            token: CancelToken::new(),
            reply,
        })
    }

    /// Submit an in-process grid world with a fully resolved GA config —
    /// the replanning path used by [`crate::ServiceReplanner`]. The caller
    /// supplies its own reply channel.
    pub fn submit_grid(
        &self,
        id: u64,
        world: GridWorld,
        cfg: GaConfig,
        deadline: Option<Duration>,
        reply: Sender<PlanResponse>,
    ) -> Result<CancelToken, SubmitError> {
        self.enqueue(Job {
            id,
            problem: JobProblem::Grid(Box::new(world), Box::new(cfg)),
            overrides: None,
            deadline: deadline.map(|d| Instant::now() + d),
            submitted_at: Instant::now(),
            token: CancelToken::new(),
            reply,
        })
    }

    fn enqueue(&self, job: Job) -> Result<CancelToken, SubmitError> {
        let Some(tx) = self.tx.as_ref() else {
            return Err(SubmitError::ShutDown);
        };
        let token = job.token.clone();
        {
            let mut active = self.shared.active.lock();
            if active.contains_key(&job.id) {
                self.shared.metrics.on_reject();
                return Err(SubmitError::DuplicateId);
            }
            active.insert(job.id, token.clone());
        }
        let id = job.id;
        match tx.try_send(job) {
            Ok(()) => {
                self.shared.metrics.on_submit();
                Ok(token)
            }
            Err(err) => {
                self.shared.active.lock().remove(&id);
                self.shared.metrics.on_reject();
                Err(match err {
                    TrySendError::Full(_) => SubmitError::QueueFull,
                    TrySendError::Disconnected(_) => SubmitError::ShutDown,
                })
            }
        }
    }

    /// Cancel a queued or running job. Returns whether the id was found.
    /// The job still produces a response (status `Cancelled`, with the
    /// best-so-far plan if it had started running).
    pub fn cancel(&self, id: u64) -> bool {
        match self.shared.active.lock().get(&id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    /// Point-in-time metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Number of plans currently cached.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.lock().len()
    }

    /// Close the queue and wait for workers to drain and exit. Queued jobs
    /// still run (cancel them first for a fast stop).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for PlanService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Shared) {
    loop {
        // Take the lock only to dequeue, never while planning.
        let job = match rx.lock().recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed and drained
        };
        shared.metrics.on_dequeue();
        let id = job.id;
        let reply = job.reply.clone();
        let response = run_job(job, shared);
        shared.active.lock().remove(&id);
        // A dropped reply receiver just discards the response.
        let _ = reply.send(response);
    }
}

fn run_job(job: Job, shared: &Shared) -> PlanResponse {
    let (built, cfg) = match &job.problem {
        JobProblem::Spec(spec) => match spec.build() {
            Ok(built) => {
                let defaults = built.default_config();
                let cfg = match &job.overrides {
                    Some(ov) => ov.apply(defaults),
                    None => defaults,
                };
                (built, cfg)
            }
            Err(msg) => {
                shared.metrics.on_error();
                let mut resp = PlanResponse::failure(job.id, JobStatus::Error, msg);
                resp.wall_ms = job.submitted_at.elapsed().as_millis() as u64;
                return resp;
            }
        },
        JobProblem::Grid(world, cfg) => (crate::request::BuiltProblem::Grid(world.clone()), cfg.as_ref().clone()),
    };

    let key = PlanCache::key(built.signature(), cfg.signature());
    if let Some(hit) = shared.cache.lock().get(key) {
        shared.metrics.on_cache_hit();
        let wall_ms = job.submitted_at.elapsed().as_millis() as u64;
        shared.metrics.on_complete(wall_ms, hit.solved);
        return PlanResponse {
            id: job.id,
            status: JobStatus::Done,
            solved: hit.solved,
            goal_fitness: hit.goal_fitness,
            plan_len: hit.plan_names.len(),
            plan: hit.plan_names,
            plan_ops: hit.plan_ops,
            total_generations: hit.total_generations,
            wall_ms,
            cache_hit: true,
            error: None,
        };
    }
    shared.metrics.on_cache_miss();

    let mut budget = Budget::unlimited().with_token(job.token.clone());
    if let Some(deadline) = job.deadline {
        budget = budget.with_deadline(deadline);
    }
    let outcome = built.solve(&cfg, budget);

    let status = match outcome.stopped {
        None => JobStatus::Done,
        Some(StopCause::Deadline) => {
            shared.metrics.on_timeout();
            JobStatus::Timeout
        }
        Some(StopCause::Cancelled) => {
            shared.metrics.on_cancel();
            JobStatus::Cancelled
        }
    };
    if outcome.stopped.is_none() {
        shared.cache.lock().insert(
            key,
            CachedPlan {
                solved: outcome.solved,
                goal_fitness: outcome.goal_fitness,
                plan_names: outcome.plan_names.clone(),
                plan_ops: outcome.plan_ops.clone(),
                total_generations: outcome.total_generations,
            },
        );
    }
    let wall_ms = job.submitted_at.elapsed().as_millis() as u64;
    shared.metrics.on_complete(wall_ms, outcome.solved);
    PlanResponse {
        id: job.id,
        status,
        solved: outcome.solved,
        goal_fitness: outcome.goal_fitness,
        plan_len: outcome.plan_names.len(),
        plan: outcome.plan_names,
        plan_ops: outcome.plan_ops,
        total_generations: outcome.total_generations,
        wall_ms,
        cache_hit: false,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ProblemSpec;

    fn tiny_request(id: u64) -> PlanRequest {
        PlanRequest {
            id,
            problem: ProblemSpec::Hanoi { disks: 3 },
            deadline_ms: None,
            ga: Some(GaOverrides {
                population: Some(40),
                generations: Some(30),
                phases: Some(3),
                ..GaOverrides::default()
            }),
        }
    }

    #[test]
    fn submit_runs_and_responds() {
        let (service, responses) =
            PlanService::start(ServiceConfig { workers: 2, queue_capacity: 8, cache_capacity: 8 });
        service.submit(tiny_request(1)).unwrap();
        let resp = responses.recv().unwrap();
        assert_eq!(resp.id, 1);
        assert_eq!(resp.status, JobStatus::Done);
        assert!(resp.solved, "hanoi-3 should solve: {resp:?}");
        assert!(!resp.cache_hit);
        let metrics = service.metrics();
        assert_eq!(metrics.jobs_completed, 1);
        assert_eq!(metrics.cache_misses, 1);
        service.shutdown();
    }

    #[test]
    fn identical_resubmission_hits_cache() {
        let (service, responses) =
            PlanService::start(ServiceConfig { workers: 1, queue_capacity: 8, cache_capacity: 8 });
        service.submit(tiny_request(1)).unwrap();
        let first = responses.recv().unwrap();
        assert!(!first.cache_hit);
        service.submit(tiny_request(2)).unwrap();
        let second = responses.recv().unwrap();
        assert!(second.cache_hit, "identical problem+config should hit: {second:?}");
        assert_eq!(second.plan, first.plan);
        assert_eq!(service.metrics().cache_hits, 1);
        service.shutdown();
    }

    #[test]
    fn duplicate_inflight_id_is_rejected() {
        let (service, responses) =
            PlanService::start(ServiceConfig { workers: 1, queue_capacity: 8, cache_capacity: 0 });
        // Stall the single worker with a long job so id 1 stays active.
        let mut big = tiny_request(1);
        big.problem = ProblemSpec::Hanoi { disks: 10 };
        big.ga = None;
        service.submit(big).unwrap();
        assert_eq!(service.submit(tiny_request(1)).err(), Some(SubmitError::DuplicateId));
        assert!(service.cancel(1));
        let resp = responses.recv().unwrap();
        assert_eq!(resp.id, 1);
        service.shutdown();
    }

    #[test]
    fn full_queue_rejects() {
        let (service, responses) =
            PlanService::start(ServiceConfig { workers: 1, queue_capacity: 1, cache_capacity: 0 });
        // One slow job occupies the worker; the queue holds at most one
        // more, so repeated submission must eventually bounce.
        let mut first = tiny_request(1);
        first.problem = ProblemSpec::Hanoi { disks: 9 };
        first.ga = None;
        service.submit(first).unwrap();
        let mut saw_full = false;
        for id in 2..=6 {
            match service.submit(tiny_request(id)) {
                Err(SubmitError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Ok(_) => {}
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert!(saw_full, "bounded queue never reported full");
        for id in 1..=6 {
            service.cancel(id);
        }
        drop(responses);
        service.shutdown();
    }

    #[test]
    fn cancelling_a_running_job_returns_cancelled_with_plan() {
        let (service, responses) =
            PlanService::start(ServiceConfig { workers: 1, queue_capacity: 4, cache_capacity: 4 });
        let mut req = tiny_request(1);
        req.problem = ProblemSpec::Hanoi { disks: 12 };
        req.ga = None;
        let token = service.submit(req).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        token.cancel();
        let resp = responses.recv().unwrap();
        assert_eq!(resp.status, JobStatus::Cancelled);
        assert!(!resp.plan.is_empty(), "best-so-far plan should be non-empty");
        assert_eq!(service.cache_len(), 0, "cancelled runs must not be cached");
        service.shutdown();
    }

    #[test]
    fn unknown_cancel_id_reports_not_found() {
        let (service, _responses) = PlanService::start(ServiceConfig::default());
        assert!(!service.cancel(999));
        service.shutdown();
    }
}
