//! Crash-safe write-ahead job journal for `gaplan serve`.
//!
//! Two files on a [`Storage`] backend:
//!
//! * `journal.wal` — the write-ahead log. Every accepted [`PlanRequest`] is
//!   appended (and flushed) as a [`JournalRecord::Submit`] *before* it is
//!   enqueued; every terminal [`PlanResponse`] is appended as a
//!   [`JournalRecord::Done`] *before* the reply line is written. A crash at
//!   any point therefore loses no accepted job: on restart, submits without
//!   a matching done are re-enqueued, and dones without a delivered reply
//!   are re-emitted.
//! * `cache.snap` — a checksummed snapshot of the plan cache, rewritten
//!   atomically at recovery time with every completed run folded in, so the
//!   cache survives restarts without replaying the full history.
//!
//! Recovery semantics are *at-least-once*: a reply that was both journaled
//! and delivered just before a crash is re-emitted once on the next
//! startup. Exactly-once holds whenever the crash precedes reply delivery —
//! which is the only window in which a reply could otherwise be lost.
//!
//! Corruption never panics and never blocks startup: the WAL is truncated
//! at the first bad checksum (counted in [`Recovery::truncated_bytes`]), a
//! corrupt snapshot is discarded, and a record whose checksum passes but
//! whose JSON does not parse is skipped and counted.

use std::io;
use std::sync::Arc;

use gaplan_durable::{load_snapshot, save_snapshot, Journal, Storage};
use serde::{Deserialize, Serialize};

use crate::cache::CachedPlan;
use crate::request::{JobStatus, PlanRequest, PlanResponse};

/// WAL file name within the journal's storage root.
pub const WAL_NAME: &str = "journal.wal";
/// Plan-cache snapshot file name within the journal's storage root.
pub const SNAP_NAME: &str = "cache.snap";

/// One record in the write-ahead job journal (externally tagged JSON,
/// framed and checksummed by [`gaplan_durable::Journal`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A request accepted for execution, written before enqueue.
    Submit(PlanRequest),
    /// A terminal reply, written before it is sent to the client.
    Done(PlanResponse),
}

/// Serializable plan-cache entry persisted in `cache.snap`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheEntrySer {
    /// Cache key ([`crate::PlanCache::key`] of the problem + config
    /// signatures).
    pub key: u64,
    /// Did the cached plan reach the goal?
    pub solved: bool,
    /// Goal fitness of the plan's final state.
    pub goal_fitness: f64,
    /// Operation names of the plan.
    pub plan_names: Vec<String>,
    /// Raw operation ids of the plan.
    pub plan_ops: Vec<u32>,
    /// Generations the original run evolved.
    pub total_generations: u32,
}

impl CacheEntrySer {
    fn into_cached(self) -> (u64, CachedPlan) {
        (
            self.key,
            CachedPlan {
                solved: self.solved,
                goal_fitness: self.goal_fitness,
                plan_names: self.plan_names,
                plan_ops: self.plan_ops,
                total_generations: self.total_generations,
            },
        )
    }
}

/// Everything [`JobJournal::recover`] reconstructs from disk.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Accepted jobs with no terminal reply yet, in submission order; the
    /// serve loop re-enqueues these.
    pub pending: Vec<PlanRequest>,
    /// Terminal replies journaled since the last compaction; re-emitted so
    /// a reply that raced the crash is never lost.
    pub completed: Vec<PlanResponse>,
    /// Plan-cache contents (snapshot merged with completed runs), ready to
    /// seed a fresh [`crate::PlanCache`].
    pub cache_entries: Vec<(u64, CachedPlan)>,
    /// Intact WAL records decoded during replay.
    pub records_replayed: u64,
    /// Bytes of corrupt WAL tail discarded (truncated at the first bad
    /// checksum).
    pub truncated_bytes: u64,
    /// Records whose checksum passed but whose JSON did not parse, plus a
    /// corrupt cache snapshot if one was discarded.
    pub malformed_records: u64,
}

/// The service's write-ahead job journal over a pluggable [`Storage`].
pub struct JobJournal {
    wal: Journal,
    storage: Arc<dyn Storage>,
}

impl JobJournal {
    /// Open (or create) the journal files on `storage`.
    pub fn new(storage: Arc<dyn Storage>) -> Self {
        JobJournal { wal: Journal::new(Arc::clone(&storage), WAL_NAME), storage }
    }

    /// The backing storage.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// Append (and flush) a submit record. Called before the job is
    /// enqueued; on error the job must be refused, not run unjournaled.
    pub fn record_submit(&self, request: &PlanRequest) -> io::Result<()> {
        self.append(&JournalRecord::Submit(request.clone()))
    }

    /// Append (and flush) a terminal-reply record. Called before the reply
    /// line is written to the client.
    pub fn record_done(&self, response: &PlanResponse) -> io::Result<()> {
        self.append(&JournalRecord::Done(response.clone()))
    }

    fn append(&self, record: &JournalRecord) -> io::Result<()> {
        let json = serde_json::to_string(record)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("serialize journal record: {e}")))?;
        self.wal.append(json.as_bytes())
    }

    /// Force journal contents to durable media.
    pub fn sync(&self) -> io::Result<()> {
        self.wal.sync()
    }

    /// Replay the WAL and cache snapshot, then compact: completed runs are
    /// folded into a freshly written `cache.snap`, and the WAL is rewritten
    /// to contain only still-pending submits. Corruption is truncated or
    /// skipped (and counted), never fatal.
    pub fn recover(&self) -> io::Result<Recovery> {
        let mut recovery = Recovery::default();

        let mut entries: Vec<CacheEntrySer> = match load_snapshot(&self.storage, SNAP_NAME) {
            Ok(Some(bytes)) => match std::str::from_utf8(&bytes).ok().and_then(|s| serde_json::from_str(s).ok()) {
                Some(entries) => entries,
                None => {
                    recovery.malformed_records += 1;
                    Vec::new()
                }
            },
            Ok(None) => Vec::new(),
            Err(_) => {
                recovery.malformed_records += 1;
                Vec::new()
            }
        };

        let replay = self.wal.replay()?;
        recovery.truncated_bytes = replay.truncated_bytes;
        recovery.records_replayed = replay.records.len() as u64;

        let mut pending: Vec<PlanRequest> = Vec::new();
        for raw in &replay.records {
            let parsed = std::str::from_utf8(raw).ok().and_then(|s| serde_json::from_str::<JournalRecord>(s).ok());
            let Some(record) = parsed else {
                recovery.malformed_records += 1;
                continue;
            };
            match record {
                JournalRecord::Submit(request) => pending.push(request),
                JournalRecord::Done(response) => {
                    // Match the earliest unanswered submit with this id (ids
                    // are unique among in-flight jobs but may be reused
                    // after completion). A done with no matching submit was
                    // compacted away already; drop it.
                    if let Some(i) = pending.iter().position(|r| r.id == response.id) {
                        let request = pending.remove(i);
                        merge_entry(&mut entries, &request, &response);
                        recovery.completed.push(response);
                    }
                }
            }
        }

        // Compact: snapshot first (atomic), then shrink the WAL to the
        // pending submits. If the WAL rewrite faults, the old WAL survives
        // intact and the next recovery redoes this merge idempotently.
        let snap = serde_json::to_string(&entries)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("serialize cache snapshot: {e}")))?;
        save_snapshot(&self.storage, SNAP_NAME, snap.as_bytes())?;
        let payloads: Vec<Vec<u8>> = pending
            .iter()
            .map(|r| {
                serde_json::to_string(&JournalRecord::Submit(r.clone()))
                    .map(String::into_bytes)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("serialize journal record: {e}")))
            })
            .collect::<io::Result<_>>()?;
        self.wal.rewrite(payloads.iter().map(Vec::as_slice))?;
        self.wal.sync()?;

        recovery.cache_entries = entries.into_iter().map(CacheEntrySer::into_cached).collect();
        recovery.pending = pending;
        Ok(recovery)
    }
}

/// Fold a completed run into the snapshot entries, mirroring the worker's
/// cache policy: only `Done` runs are cached (timeouts and cancellations
/// depend on wall-clock luck; errors carry no plan; degraded runs used a
/// brownout-scaled budget and must not poison the cache with a
/// lower-quality plan).
fn merge_entry(entries: &mut Vec<CacheEntrySer>, request: &PlanRequest, response: &PlanResponse) {
    if response.status != JobStatus::Done || response.error.is_some() || response.degraded {
        return;
    }
    let Some(key) = request.cache_key() else { return };
    let entry = CacheEntrySer {
        key,
        solved: response.solved,
        goal_fitness: response.goal_fitness,
        plan_names: response.plan.clone(),
        plan_ops: response.plan_ops.clone(),
        total_generations: response.total_generations,
    };
    match entries.iter_mut().find(|e| e.key == key) {
        Some(existing) => *existing = entry,
        None => entries.push(entry),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{GaOverrides, ProblemSpec};
    use gaplan_durable::{FaultPlan, MemStorage};

    fn mem_journal() -> (Arc<MemStorage>, JobJournal) {
        let storage = Arc::new(MemStorage::new());
        let journal = JobJournal::new(storage.clone() as Arc<dyn Storage>);
        (storage, journal)
    }

    fn request(id: u64) -> PlanRequest {
        PlanRequest {
            id,
            problem: ProblemSpec::Hanoi { disks: 3 },
            deadline_ms: None,
            ga: Some(GaOverrides { generations: Some(10), ..GaOverrides::default() }),
        }
    }

    fn done(id: u64) -> PlanResponse {
        PlanResponse {
            id,
            status: JobStatus::Done,
            solved: true,
            goal_fitness: 1.0,
            plan: vec!["a->b".into()],
            plan_ops: vec![0],
            plan_len: 1,
            total_generations: 7,
            wall_ms: 12,
            cache_hit: false,
            error: None,
            degraded: false,
        }
    }

    #[test]
    fn submits_without_done_recover_as_pending_in_order() {
        let (_, journal) = mem_journal();
        for id in [1, 2, 3] {
            journal.record_submit(&request(id)).unwrap();
        }
        journal.record_done(&done(2)).unwrap();
        let rec = journal.recover().unwrap();
        assert_eq!(rec.pending.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(rec.completed.iter().map(|r| r.id).collect::<Vec<_>>(), vec![2]);
        assert_eq!(rec.records_replayed, 4);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.malformed_records, 0);
    }

    #[test]
    fn recovery_compacts_and_is_idempotent() {
        let (storage, journal) = mem_journal();
        journal.record_submit(&request(1)).unwrap();
        journal.record_done(&done(1)).unwrap();
        journal.record_submit(&request(9)).unwrap();
        let first = journal.recover().unwrap();
        assert_eq!(first.completed.len(), 1);
        assert_eq!(first.pending.len(), 1);
        assert_eq!(first.cache_entries.len(), 1, "done run must enter the cache snapshot");

        // After compaction the done record is gone from the WAL; a second
        // recovery re-emits nothing but keeps the cache and the pending job.
        let journal = JobJournal::new(storage as Arc<dyn Storage>);
        let second = journal.recover().unwrap();
        assert!(second.completed.is_empty(), "compacted replies must not re-emit");
        assert_eq!(second.pending.iter().map(|r| r.id).collect::<Vec<_>>(), vec![9]);
        assert_eq!(second.cache_entries.len(), 1, "cache snapshot must survive compaction");
        assert_eq!(second.records_replayed, 1);
    }

    #[test]
    fn completed_runs_rebuild_the_plan_cache_under_the_worker_key() {
        let (_, journal) = mem_journal();
        let req = request(1);
        journal.record_submit(&req).unwrap();
        journal.record_done(&done(1)).unwrap();
        let rec = journal.recover().unwrap();
        let expected = req.cache_key().unwrap();
        assert_eq!(rec.cache_entries.len(), 1);
        assert_eq!(rec.cache_entries[0].0, expected);
        assert_eq!(rec.cache_entries[0].1.plan_ops, vec![0]);
        assert_eq!(rec.cache_entries[0].1.goal_fitness.to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn non_done_and_chaos_replies_never_enter_the_cache() {
        let (_, journal) = mem_journal();
        journal.record_submit(&request(1)).unwrap();
        let mut timeout = done(1);
        timeout.status = JobStatus::Timeout;
        journal.record_done(&timeout).unwrap();
        let mut chaos = request(2);
        chaos.problem = ProblemSpec::Chaos { fail_attempts: 0, kill_worker: false };
        journal.record_submit(&chaos).unwrap();
        journal.record_done(&done(2)).unwrap();
        let rec = journal.recover().unwrap();
        assert_eq!(rec.completed.len(), 2, "both replies still re-emit");
        assert!(rec.cache_entries.is_empty(), "neither run may be cached: {:?}", rec.cache_entries);
    }

    #[test]
    fn torn_wal_tail_is_truncated_not_fatal() {
        let (storage, journal) = mem_journal();
        journal.record_submit(&request(1)).unwrap();
        // Torn write: half a frame of a second record.
        let frame =
            gaplan_durable::frame(serde_json::to_string(&JournalRecord::Submit(request(2))).unwrap().as_bytes());
        storage.append(WAL_NAME, &frame[..frame.len() / 2]).unwrap();
        let rec = journal.recover().unwrap();
        assert_eq!(rec.pending.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1]);
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn corrupt_snapshot_is_discarded_and_counted() {
        let (storage, journal) = mem_journal();
        journal.record_submit(&request(1)).unwrap();
        storage.set_raw(SNAP_NAME, b"not a snapshot".to_vec());
        let rec = journal.recover().unwrap();
        assert_eq!(rec.pending.len(), 1);
        assert!(rec.cache_entries.is_empty());
        assert_eq!(rec.malformed_records, 1);
    }

    #[test]
    fn chaos_storage_recovery_never_panics_and_pending_is_a_subsequence() {
        for seed in 0..60u64 {
            let storage = Arc::new(MemStorage::with_faults(FaultPlan::new(seed, 35)));
            let journal = JobJournal::new(storage.clone() as Arc<dyn Storage>);
            let mut acked = Vec::new();
            for id in 1..=12u64 {
                if journal.record_submit(&request(id)).is_ok() {
                    acked.push(id);
                }
            }
            let Ok(rec) = journal.recover() else { continue };
            // Every recovered pending job was acked, in order (silent short
            // writes may drop acked records; nothing may be fabricated).
            let mut acked_it = acked.iter();
            for req in &rec.pending {
                assert!(acked_it.any(|&a| a == req.id), "seed {seed}: pending job {} never acked in order", req.id);
            }
        }
    }
}
