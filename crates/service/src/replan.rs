//! Adapter that lets the grid simulator replan through the service.
//!
//! `gaplan_grid::sim::Coordinator` takes a `Fn(&GridWorld) -> Plan`
//! replanner; [`ServiceReplanner::replan`] has that shape, so the
//! coordinator's mid-execution replans flow through the service's queue,
//! deadline handling, plan cache and metrics instead of calling the GA
//! directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::time::Duration;

use gaplan_core::{OpId, Plan};
use gaplan_ga::GaConfig;
use gaplan_grid::GridWorld;

use crate::service::PlanService;

/// Synchronous, service-backed replanner for the grid simulator.
pub struct ServiceReplanner<'s> {
    service: &'s PlanService,
    cfg: GaConfig,
    deadline: Option<Duration>,
    /// Ids for replan jobs; start high so they never collide with
    /// client-chosen wire ids in a shared service.
    next_id: AtomicU64,
}

impl<'s> ServiceReplanner<'s> {
    /// A replanner submitting to `service` with the given GA config.
    pub fn new(service: &'s PlanService, cfg: GaConfig) -> Self {
        ServiceReplanner { service, cfg, deadline: None, next_id: AtomicU64::new(1 << 48) }
    }

    /// Bound each replan by a wall-clock deadline; on expiry the
    /// best-so-far plan is used.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Plan for a world snapshot, blocking until the service answers.
    ///
    /// An empty plan can mean two very different things, and the metrics
    /// tell them apart: a *healthy* service that found no repair returns an
    /// empty plan quietly, while a dead or rejecting service (submit
    /// refused, or the reply channel dropped without an answer — the worker
    /// died and the service with it) also bumps the `replans_failed`
    /// counter so the simulator can surface service loss rather than
    /// mistake it for "no repair exists".
    pub fn replan(&self, snapshot: &GridWorld) -> Plan {
        let (reply_tx, reply_rx) = channel();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if self.service.submit_grid(id, snapshot.clone(), self.cfg.clone(), self.deadline, reply_tx).is_err() {
            self.service.metrics_ref().on_replan_failed();
            return Plan::default();
        }
        match reply_rx.recv() {
            Ok(resp) => Plan::from_ops(resp.plan_ops.into_iter().map(OpId).collect()),
            Err(_) => {
                // The service dropped the reply sender without answering:
                // it is gone, not merely out of ideas.
                self.service.metrics_ref().on_replan_failed();
                Plan::default()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use gaplan_core::Domain;
    use gaplan_ga::CostFitnessMode;
    use gaplan_grid::scenario::image_pipeline;

    fn replan_config(seed: u64) -> GaConfig {
        let mut cfg = GaConfig {
            population_size: 60,
            generations_per_phase: 30,
            max_phases: 2,
            initial_len: 10,
            max_len: 24,
            cost_fitness: CostFitnessMode::InverseCost,
            seed,
            ..GaConfig::default()
        };
        cfg.truncate_at_goal = true;
        cfg
    }

    #[test]
    fn replans_a_world_snapshot_through_the_service() {
        let world = image_pipeline().world;
        let (service, _responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 8,
            ..ServiceConfig::default()
        })
        .unwrap();
        let replanner = ServiceReplanner::new(&service, replan_config(11));
        let plan = replanner.replan(&world);
        assert!(!plan.is_empty(), "replanner should find some plan");
        assert!(plan.simulate(&world, &world.initial_state()).is_ok());
        // Same snapshot again → answered from the cache.
        let again = replanner.replan(&world);
        assert_eq!(again.ops(), plan.ops());
        assert_eq!(service.metrics().cache_hits, 1);
        assert_eq!(service.metrics().replans_failed, 0, "a healthy service is not a failed replan");
        service.shutdown();
    }

    #[test]
    fn chaos_dead_service_is_counted_as_failed_replan() {
        let world = image_pipeline().world;
        // Queue of 1 with no workers draining fast enough doesn't model
        // death; instead, shut the intake down by saturating with a
        // zero-capacity trick: submit against a service whose queue is
        // full of uncancellable work.
        let (service, _responses) = PlanService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 0,
            ..ServiceConfig::default()
        })
        .unwrap();
        // Pin the worker and fill the queue so the replan submit is refused.
        let slow = |id| crate::request::PlanRequest {
            id,
            problem: crate::request::ProblemSpec::Hanoi { disks: 10 },
            deadline_ms: None,
            ga: None,
        };
        service.submit(slow(1)).unwrap();
        // The worker may not have dequeued job 1 yet; retry until job 2
        // occupies the queue slot while job 1 pins the worker.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.submit(slow(2)).is_err() {
            assert!(std::time::Instant::now() < deadline, "worker never dequeued the pinning job");
            std::thread::sleep(Duration::from_millis(1));
        }
        let replanner = ServiceReplanner::new(&service, replan_config(11));
        let plan = replanner.replan(&world);
        assert!(plan.is_empty(), "refused replan degrades to an empty plan");
        assert_eq!(
            service.metrics().replans_failed,
            1,
            "service loss must be distinguishable: {:?}",
            service.metrics()
        );
        service.cancel(1);
        service.cancel(2);
        service.shutdown();
    }
}
