//! End-to-end durability tests over `serve_with_journal` with an in-memory
//! storage backend: crash recovery (pending jobs re-run on restart),
//! at-least-once re-emission of journaled replies, compaction across
//! sessions, cache reseeding, and the journal counters in metrics/health.

use std::io::Write;
use std::sync::Arc;

use gaplan_durable::{MemStorage, Storage};
use gaplan_service::{serve_with_journal, JobJournal, PlanRequest, ProblemSpec, ServiceConfig};

#[derive(Clone, Default)]
struct SharedWriter(Arc<parking_lot::Mutex<Vec<u8>>>);

impl Write for SharedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn cfg() -> ServiceConfig {
    ServiceConfig { workers: 2, queue_capacity: 16, cache_capacity: 16, ..ServiceConfig::default() }
}

/// One serve session over `storage`: feed `input`, return the output lines.
fn session(storage: &Arc<dyn Storage>, input: &str) -> Vec<String> {
    let out = SharedWriter::default();
    serve_with_journal(cfg(), Some(JobJournal::new(storage.clone())), input.as_bytes(), out.clone())
        .expect("serve session completes");
    let text = String::from_utf8(out.0.lock().clone()).expect("utf8 output");
    text.lines().map(str::to_string).collect()
}

fn terminal_lines(lines: &[String], id: u64) -> Vec<String> {
    let needle = format!("\"id\":{id},\"status\"");
    lines.iter().filter(|l| l.contains(&needle)).cloned().collect()
}

fn request(id: u64, disks: usize) -> PlanRequest {
    PlanRequest { id, problem: ProblemSpec::Hanoi { disks }, deadline_ms: None, ga: None }
}

#[test]
fn journaled_submits_without_replies_rerun_on_restart() {
    // Simulate a crash after accepting three jobs: the WAL holds Submit
    // records and nothing else (the process died before any job finished).
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let journal = JobJournal::new(storage.clone());
    for id in 1..=3u64 {
        journal.record_submit(&request(id, 3)).unwrap();
    }
    journal.sync().unwrap();

    // Restart with no client input at all: recovery alone must finish the
    // jobs and write exactly one terminal reply each.
    let lines = session(&storage, "");
    for id in 1..=3u64 {
        let replies = terminal_lines(&lines, id);
        assert_eq!(replies.len(), 1, "job {id} should get exactly one terminal reply: {lines:?}");
        assert!(replies[0].contains("\"status\":\"Done\""), "job {id}: {}", replies[0]);
    }
}

#[test]
fn completed_jobs_reemit_once_then_compact() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());

    // Session 1 runs two jobs to completion.
    let input = "{\"cmd\":\"plan\",\"id\":1,\"problem\":{\"Hanoi\":{\"disks\":3}}}\n\
                 {\"cmd\":\"plan\",\"id\":2,\"problem\":{\"Hanoi\":{\"disks\":4}}}\n";
    let first = session(&storage, input);
    assert_eq!(terminal_lines(&first, 1).len(), 1);
    assert_eq!(terminal_lines(&first, 2).len(), 1);

    // Session 2: the journaled replies re-emit (at-least-once — the crash
    // may have hit between journaling a reply and delivering it)...
    let second = session(&storage, "");
    assert_eq!(terminal_lines(&second, 1).len(), 1, "{second:?}");
    assert_eq!(terminal_lines(&second, 2).len(), 1, "{second:?}");

    // ...and compaction then retires them: session 3 emits nothing.
    let third = session(&storage, "");
    assert!(terminal_lines(&third, 1).is_empty(), "{third:?}");
    assert!(terminal_lines(&third, 2).is_empty(), "{third:?}");
}

#[test]
fn recovered_cache_serves_hits_across_restart() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());

    let first = session(&storage, "{\"cmd\":\"plan\",\"id\":7,\"problem\":{\"Hanoi\":{\"disks\":3}}}\n");
    let done = terminal_lines(&first, 7);
    assert_eq!(done.len(), 1);
    assert!(done[0].contains("\"cache_hit\":false"), "{}", done[0]);

    // Same problem, new id, new process: the reply must come from the
    // journal-reseeded cache without rerunning the GA.
    let second = session(&storage, "{\"cmd\":\"plan\",\"id\":8,\"problem\":{\"Hanoi\":{\"disks\":3}}}\n");
    let hit = terminal_lines(&second, 8);
    assert_eq!(hit.len(), 1, "{second:?}");
    assert!(hit[0].contains("\"cache_hit\":true"), "{}", hit[0]);
}

#[test]
fn metrics_and_health_report_journal_counters() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let journal = JobJournal::new(storage.clone());
    journal.record_submit(&request(1, 3)).unwrap();
    journal.sync().unwrap();

    let lines = session(&storage, "{\"cmd\":\"metrics\"}\n{\"cmd\":\"health\"}\n");
    let metrics = lines.iter().find(|l| l.contains("\"metrics\"")).expect("metrics line");
    assert!(metrics.contains("\"journal_replayed\":1"), "{metrics}");
    assert!(metrics.contains("\"journal_appends\""), "{metrics}");
    assert!(metrics.contains("\"journal_truncated_bytes\":0"), "{metrics}");
    assert!(metrics.contains("\"cache_evictions\""), "{metrics}");
    let health = lines.iter().find(|l| l.contains("\"health\"")).expect("health line");
    assert!(health.contains("\"journal_replayed\":1"), "{health}");
    assert!(health.contains("\"journal_appends\""), "{health}");
}
