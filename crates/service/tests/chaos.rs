//! End-to-end chaos tests over the wire protocol: a client that injects
//! panics mid-job must get a correlatable error line back, and the service
//! must keep answering afterwards — through worker retries, a worker
//! killed outright, and the supervisor's respawn.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use gaplan_service::{serve, PlanService, ProblemSpec, ServiceConfig};

/// A `Write` target the test can inspect after `serve` returns.
#[derive(Clone, Default)]
struct SharedWriter(Arc<parking_lot::Mutex<Vec<u8>>>);

impl Write for SharedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_session(cfg: ServiceConfig, input: &str) -> Vec<String> {
    let out = SharedWriter::default();
    serve(cfg, input.as_bytes(), out.clone()).expect("serve session completes");
    let text = String::from_utf8(out.0.lock().clone()).expect("utf8 output");
    text.lines().map(str::to_string).collect()
}

fn line_for(lines: &[String], id: u64) -> String {
    let needle = format!("\"id\":{id}");
    lines.iter().find(|l| l.contains(&needle)).unwrap_or_else(|| panic!("no response for id {id} in {lines:?}")).clone()
}

#[test]
fn chaos_panicking_job_gets_an_error_line_and_later_jobs_succeed() {
    // Job 1 panics on every attempt; jobs 2 and 3 are real planning work.
    let input = concat!(
        r#"{"cmd":"plan","id":1,"problem":{"Chaos":{"fail_attempts":4294967295,"kill_worker":false}}}"#,
        "\n",
        r#"{"cmd":"plan","id":2,"problem":{"Hanoi":{"disks":3}},"ga":{"population":40,"generations":30,"phases":3}}"#,
        "\n",
        r#"{"cmd":"plan","id":3,"problem":{"Hanoi":{"disks":3}},"ga":{"population":40,"generations":30,"phases":3}}"#,
        "\n",
        r#"{"cmd":"shutdown"}"#,
        "\n",
    );
    let lines = run_session(
        ServiceConfig { workers: 2, queue_capacity: 8, cache_capacity: 8, ..ServiceConfig::default() },
        input,
    );
    let err = line_for(&lines, 1);
    assert!(err.contains(r#""status":"Error""#), "panicking job must answer with an error: {err}");
    assert!(err.contains("panic"), "the error should say what happened: {err}");
    assert!(line_for(&lines, 2).contains(r#""status":"Done""#), "{lines:?}");
    assert!(line_for(&lines, 3).contains(r#""status":"Done""#), "{lines:?}");
}

#[test]
fn chaos_killed_worker_is_respawned_and_the_session_continues() {
    // Job 1 kills its worker thread outright (the panic escapes the retry
    // loop by design). The single-worker service must still answer job 1
    // with an error, respawn the worker, and finish job 2.
    let input = concat!(
        r#"{"cmd":"plan","id":1,"problem":{"Chaos":{"fail_attempts":0,"kill_worker":true}}}"#,
        "\n",
        r#"{"cmd":"plan","id":2,"problem":{"Hanoi":{"disks":3}},"ga":{"population":40,"generations":30,"phases":3}}"#,
        "\n",
        r#"{"cmd":"shutdown"}"#,
        "\n",
    );
    let lines = run_session(
        ServiceConfig { workers: 1, queue_capacity: 8, cache_capacity: 8, ..ServiceConfig::default() },
        input,
    );
    let err = line_for(&lines, 1);
    assert!(err.contains(r#""status":"Error""#), "killed job must still answer: {err}");
    assert!(line_for(&lines, 2).contains(r#""status":"Done""#), "respawned worker must finish job 2: {lines:?}");
}

#[test]
fn chaos_transient_panics_are_retried_to_success_in_process() {
    // In-process (no wire): a job that panics once but has two retries
    // budgeted completes, and the metrics account for the turbulence.
    let (service, responses) = PlanService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 4,
        max_job_retries: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    service
        .submit(gaplan_service::PlanRequest {
            id: 7,
            problem: ProblemSpec::Chaos { fail_attempts: 1, kill_worker: false },
            deadline_ms: None,
            ga: None,
        })
        .unwrap();
    let resp = responses.recv_timeout(Duration::from_secs(10)).expect("job answers");
    assert_eq!(resp.id, 7);
    assert!(resp.solved, "one panic, two retries: the job must succeed: {resp:?}");
    let m = service.metrics();
    assert_eq!(m.panics_caught, 1, "{m:?}");
    assert_eq!(m.jobs_retried, 1, "{m:?}");
    assert_eq!(m.workers_respawned, 0, "a caught panic must not cost a worker: {m:?}");
    service.shutdown();
}
