//! End-to-end chaos tests over the wire protocol: a client that injects
//! panics mid-job must get a correlatable error line back, and the service
//! must keep answering afterwards — through worker retries, a worker
//! killed outright, and the supervisor's respawn.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use gaplan_obs as obs;
use gaplan_service::{serve, ObsHandle, PlanService, ProblemSpec, ServiceConfig};

/// A `Write` target the test can inspect after `serve` returns.
#[derive(Clone, Default)]
struct SharedWriter(Arc<parking_lot::Mutex<Vec<u8>>>);

impl Write for SharedWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn run_session(cfg: ServiceConfig, input: &str) -> Vec<String> {
    let out = SharedWriter::default();
    serve(cfg, input.as_bytes(), out.clone()).expect("serve session completes");
    let text = String::from_utf8(out.0.lock().clone()).expect("utf8 output");
    text.lines().map(str::to_string).collect()
}

fn line_for(lines: &[String], id: u64) -> String {
    let needle = format!("\"id\":{id}");
    lines.iter().find(|l| l.contains(&needle)).unwrap_or_else(|| panic!("no response for id {id} in {lines:?}")).clone()
}

#[test]
fn chaos_panicking_job_gets_an_error_line_and_later_jobs_succeed() {
    // Job 1 panics on every attempt; jobs 2 and 3 are real planning work.
    let input = concat!(
        r#"{"cmd":"plan","id":1,"problem":{"Chaos":{"fail_attempts":4294967295,"kill_worker":false}}}"#,
        "\n",
        r#"{"cmd":"plan","id":2,"problem":{"Hanoi":{"disks":3}},"ga":{"population":40,"generations":30,"phases":3}}"#,
        "\n",
        r#"{"cmd":"plan","id":3,"problem":{"Hanoi":{"disks":3}},"ga":{"population":40,"generations":30,"phases":3}}"#,
        "\n",
        r#"{"cmd":"shutdown"}"#,
        "\n",
    );
    let lines = run_session(
        ServiceConfig { workers: 2, queue_capacity: 8, cache_capacity: 8, ..ServiceConfig::default() },
        input,
    );
    let err = line_for(&lines, 1);
    assert!(err.contains(r#""status":"Error""#), "panicking job must answer with an error: {err}");
    assert!(err.contains("panic"), "the error should say what happened: {err}");
    assert!(line_for(&lines, 2).contains(r#""status":"Done""#), "{lines:?}");
    assert!(line_for(&lines, 3).contains(r#""status":"Done""#), "{lines:?}");
}

#[test]
fn chaos_killed_worker_is_respawned_and_the_session_continues() {
    // Job 1 kills its worker thread outright (the panic escapes the retry
    // loop by design). The single-worker service must still answer job 1
    // with an error, respawn the worker, and finish job 2.
    let input = concat!(
        r#"{"cmd":"plan","id":1,"problem":{"Chaos":{"fail_attempts":0,"kill_worker":true}}}"#,
        "\n",
        r#"{"cmd":"plan","id":2,"problem":{"Hanoi":{"disks":3}},"ga":{"population":40,"generations":30,"phases":3}}"#,
        "\n",
        r#"{"cmd":"shutdown"}"#,
        "\n",
    );
    let lines = run_session(
        ServiceConfig { workers: 1, queue_capacity: 8, cache_capacity: 8, ..ServiceConfig::default() },
        input,
    );
    let err = line_for(&lines, 1);
    assert!(err.contains(r#""status":"Error""#), "killed job must still answer: {err}");
    assert!(line_for(&lines, 2).contains(r#""status":"Done""#), "respawned worker must finish job 2: {lines:?}");
}

#[test]
fn chaos_transient_panics_are_retried_to_success_in_process() {
    // In-process (no wire): a job that panics once but has two retries
    // budgeted completes, and the metrics account for the turbulence.
    let (service, responses) = PlanService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        cache_capacity: 4,
        max_job_retries: 2,
        ..ServiceConfig::default()
    })
    .unwrap();
    service
        .submit(gaplan_service::PlanRequest {
            id: 7,
            problem: ProblemSpec::Chaos { fail_attempts: 1, kill_worker: false },
            deadline_ms: None,
            ga: None,
        })
        .unwrap();
    let resp = responses.recv_timeout(Duration::from_secs(10)).expect("job answers");
    assert_eq!(resp.id, 7);
    assert!(resp.solved, "one panic, two retries: the job must succeed: {resp:?}");
    let m = service.metrics();
    assert_eq!(m.panics_caught, 1, "{m:?}");
    assert_eq!(m.jobs_retried, 1, "{m:?}");
    assert_eq!(m.workers_respawned, 0, "a caught panic must not cost a worker: {m:?}");
    service.shutdown();
}

/// Every `"status":"..."` carried by a wire response must have a matching
/// `svc.reply` trace event with the same id and status — across Done,
/// Error, Timeout, DeadlineExpired, Cancelled, Shed and Rejected — and
/// every dequeued job runs inside a balanced `svc.request` span.
#[test]
fn chaos_every_response_status_has_a_matching_reply_event() {
    let statuses_of = |trace: &str, lines: &[String], wanted: &[(u64, &str)]| {
        for &(id, status) in wanted {
            let id_needle = format!(r#""id":{id}"#);
            let status_needle = format!(r#""status":"{status}""#);
            assert!(
                lines.iter().any(|l| l.contains(&id_needle) && l.contains(&status_needle)),
                "id {id} should answer {status}: {lines:?}"
            );
            let needle = format!(r#"{{"ev":"svc.reply","id":{id},"status":"{status}""#);
            assert!(
                trace.lines().any(|l| l.starts_with(&needle)),
                "no svc.reply event for id {id} status {status} in trace:\n{trace}"
            );
        }
    };

    // Session A — Timeout (deadline hits mid-run), Done, Error
    // (panic-exhausted), DeadlineExpired (deadline passed while queued
    // behind job 5's long run), Cancelled. One worker keeps ordering
    // predictable: job 4 is cancelled while queued or shortly after it
    // starts; either way it must answer Cancelled.
    let sink = obs::SharedBuf::default();
    let cfg = ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 0,
        max_job_retries: 0,
        obs: Some(ObsHandle::new(Arc::new(obs::JsonlSink::new(sink.clone())))),
        ..ServiceConfig::default()
    };
    let input = concat!(
        r#"{"cmd":"plan","id":5,"problem":{"Hanoi":{"disks":10}},"deadline_ms":500,"ga":{"population":400,"generations":400,"phases":5}}"#,
        "\n",
        r#"{"cmd":"plan","id":1,"problem":{"Hanoi":{"disks":3}},"ga":{"population":40,"generations":30,"phases":3}}"#,
        "\n",
        r#"{"cmd":"plan","id":2,"problem":{"Chaos":{"fail_attempts":3,"kill_worker":false}}}"#,
        "\n",
        r#"{"cmd":"plan","id":3,"problem":{"Hanoi":{"disks":6}},"deadline_ms":1}"#,
        "\n",
        r#"{"cmd":"plan","id":4,"problem":{"Hanoi":{"disks":10}},"ga":{"population":400,"generations":400,"phases":5}}"#,
        "\n",
        r#"{"cmd":"cancel","id":4}"#,
        "\n",
        r#"{"cmd":"shutdown"}"#,
        "\n",
    );
    let lines = run_session(cfg, input);
    let trace = sink.contents();
    statuses_of(&trace, &lines, &[(5, "Timeout"), (1, "Done"), (2, "Error"), (3, "DeadlineExpired"), (4, "Cancelled")]);
    let enters = trace.lines().filter(|l| l.starts_with(r#"{"ev":"span_enter","span":"svc.request""#)).count();
    let exits = trace.lines().filter(|l| l.starts_with(r#"{"ev":"span_exit","span":"svc.request""#)).count();
    assert_eq!(enters, 5, "one request span per dequeued job:\n{trace}");
    assert_eq!(enters, exits, "request spans must balance:\n{trace}");
    // Each traced reply echoes into a dequeue event for the same id.
    for id in 1..=5u64 {
        assert!(
            trace.contains(&format!(r#"{{"ev":"svc.dequeue","id":{id},"#)),
            "missing svc.dequeue for {id}:\n{trace}"
        );
    }

    // Session B — Shed (queue full past the admission window while the
    // worker is pinned) and Rejected (duplicate in-flight id). The shed and
    // rejected replies never reach a worker, so they are emitted by the
    // serve loop itself.
    let sink = obs::SharedBuf::default();
    let cfg = ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        cache_capacity: 0,
        admission_timeout: Duration::from_millis(25),
        obs: Some(ObsHandle::new(Arc::new(obs::JsonlSink::new(sink.clone())))),
        ..ServiceConfig::default()
    };
    let input = concat!(
        r#"{"cmd":"plan","id":10,"problem":{"Hanoi":{"disks":10}},"ga":{"population":400,"generations":400,"phases":5}}"#,
        "\n",
        r#"{"cmd":"plan","id":11,"problem":{"Hanoi":{"disks":10}},"ga":{"population":400,"generations":400,"phases":5}}"#,
        "\n",
        r#"{"cmd":"plan","id":12,"problem":{"Hanoi":{"disks":3}}}"#,
        "\n",
        r#"{"cmd":"plan","id":10,"problem":{"Hanoi":{"disks":3}}}"#,
        "\n",
        r#"{"cmd":"cancel","id":10}"#,
        "\n",
        r#"{"cmd":"cancel","id":11}"#,
        "\n",
        r#"{"cmd":"shutdown"}"#,
        "\n",
    );
    let lines = run_session(cfg, input);
    let trace = sink.contents();
    statuses_of(&trace, &lines, &[(12, "Shed")]);
    let rejected = r#"{"ev":"svc.reply","id":10,"status":"Rejected""#;
    assert!(trace.lines().any(|l| l.starts_with(rejected)), "duplicate id must trace a Rejected reply:\n{trace}");
    assert!(
        lines.iter().any(|l| l.contains(r#""id":10"#) && l.contains(r#""status":"Rejected""#)),
        "duplicate id must answer Rejected: {lines:?}"
    );
}

/// Regression for the `wall_ms` helper: every response path — build error,
/// chaos success, GA completion, cache hit, panic-exhausted error and the
/// reply-guard path for a killed worker — must report submission-to-reply
/// latency, *including* time spent queued behind other jobs.
#[test]
fn wall_ms_includes_queue_wait_on_every_response_path() {
    let (service, responses) = PlanService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        cache_capacity: 4,
        ..ServiceConfig::default()
    })
    .unwrap();
    let plan = |id, problem| gaplan_service::PlanRequest { id, problem, deadline_ms: None, ga: None };
    // Pin the single worker on a long-running job...
    service
        .submit(gaplan_service::PlanRequest {
            id: 1,
            problem: ProblemSpec::Hanoi { disks: 10 },
            deadline_ms: None,
            ga: Some(gaplan_service::GaOverrides {
                population: Some(400),
                generations: Some(400),
                phases: Some(5),
                ..Default::default()
            }),
        })
        .unwrap();
    // ...queue one job per response path behind it...
    service.submit(plan(2, ProblemSpec::Hanoi { disks: 0 })).unwrap(); // build error
    service.submit(plan(3, ProblemSpec::Chaos { fail_attempts: 0, kill_worker: false })).unwrap(); // chaos success
    service.submit(plan(4, ProblemSpec::Chaos { fail_attempts: 99, kill_worker: false })).unwrap(); // panic-exhausted
    service.submit(plan(5, ProblemSpec::Chaos { fail_attempts: 0, kill_worker: true })).unwrap(); // reply guard
    service.submit(plan(6, ProblemSpec::Hanoi { disks: 3 })).unwrap(); // GA completion
    service.submit(plan(7, ProblemSpec::Hanoi { disks: 3 })).unwrap(); // cache hit
                                                                       // ...let them accumulate queue wait, then release the worker.
    std::thread::sleep(Duration::from_millis(120));
    assert!(service.cancel(1));
    let mut seen = std::collections::HashMap::new();
    for _ in 0..7 {
        let resp = responses.recv_timeout(Duration::from_secs(30)).expect("every job answers");
        seen.insert(resp.id, resp);
    }
    for id in 2..=7u64 {
        let resp = &seen[&id];
        assert!(
            resp.wall_ms >= 60,
            "id {id} ({:?}) waited >=120ms in queue but reports wall_ms={}",
            resp.status,
            resp.wall_ms
        );
    }
    assert!(seen[&7].cache_hit, "id 7 must be the cache hit: {:?}", seen[&7]);
    let m = service.metrics();
    assert!(
        m.queue_wait_ms_hist.count >= 6 && m.queue_wait_ms_hist.p99 >= 63,
        "queue waits must land in the histogram: {:?}",
        m.queue_wait_ms_hist
    );
    service.shutdown();
}
