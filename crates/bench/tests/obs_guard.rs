//! Overhead guard: instrumentation with no subscriber installed must cost
//! effectively nothing.
//!
//! Comparing two wall-clock runs of the same phase is too noisy for CI, so
//! the guard bounds the overhead analytically instead: measure the
//! per-callsite cost of a disabled `emit`, count how many instrumentation
//! callbacks one Hanoi phase actually triggers, and require the projected
//! total to stay under 2% of the measured phase time. The margin is so wide
//! (nanoseconds of checks against milliseconds of GA work) that a real
//! fast-path regression — say, formatting events before checking
//! `enabled()` — trips it immediately, while scheduler noise cannot.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use gaplan_domains::Hanoi;
use gaplan_ga::{GaConfig, Phase};
use gaplan_obs::{Event, RecordingSubscriber};

fn phase_cfg() -> GaConfig {
    GaConfig {
        population_size: 200,
        generations_per_phase: 20,
        initial_len: 31,
        max_len: 155,
        seed: 1,
        eval: gaplan_ga::EvalMode::Serial,
        ..GaConfig::default()
    }
}

/// Best-of-`runs` timing: the minimum is the least noisy estimator for a
/// deterministic workload.
fn best_of<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .min()
        .unwrap()
}

#[test]
fn disabled_subscriber_overhead_is_under_two_percent_of_a_hanoi_phase() {
    assert!(!gaplan_obs::enabled(), "test requires no subscriber installed");
    let hanoi = Hanoi::new(5);

    // How many instrumentation callbacks does one phase trigger? Count
    // them with a recording subscriber (spans count enter + exit).
    let recorder = Arc::new(RecordingSubscriber::default());
    let callsites = {
        let _g = gaplan_obs::install(recorder.clone());
        Phase::new(&hanoi, phase_cfg()).run();
        recorder.lines().len() as u64
    };
    assert!(callsites >= 20, "a 20-generation phase should emit at least one event per generation, got {callsites}");

    // Per-callsite cost of the disabled fast path. The closure builds a
    // realistic event but must never run; black_box keeps the callsite from
    // being optimized out entirely.
    const ITERS: u64 = 1_000_000;
    let disabled_emit = best_of(5, || {
        for i in 0..ITERS {
            gaplan_obs::emit(|| {
                Event::new("guard.ev").u64("gen", black_box(i)).f64("best", black_box(0.5)).str("k", "v")
            });
        }
    });
    let per_call_ns = disabled_emit.as_nanos() as f64 / ITERS as f64;

    // Phase wall time with tracing off (warm run first).
    Phase::new(&hanoi, phase_cfg()).run();
    let phase_time = best_of(3, || {
        black_box(Phase::new(&hanoi, phase_cfg()).run());
    });

    let projected_overhead_ns = per_call_ns * callsites as f64;
    let budget_ns = phase_time.as_nanos() as f64 * 0.02;
    assert!(
        projected_overhead_ns < budget_ns,
        "disabled instrumentation projects to {projected_overhead_ns:.0} ns over {callsites} callsites \
         ({per_call_ns:.2} ns/call), which exceeds 2% of the {:.3} ms phase",
        phase_time.as_secs_f64() * 1e3
    );
}
