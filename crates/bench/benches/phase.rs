//! Macro-benchmarks: one full GA phase per domain — the unit of cost behind
//! every table in the paper (Tables 2, 4, 5 are built from phases).

use criterion::{criterion_group, criterion_main, Criterion};
use gaplan_domains::{Hanoi, SlidingTile};
use gaplan_ga::{GaConfig, Phase};

fn bench_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase");
    group.sample_size(10);

    let hanoi = Hanoi::new(5);
    let hanoi_cfg = GaConfig {
        population_size: 200,
        generations_per_phase: 20, // a 1/5-phase slice keeps the bench quick
        initial_len: 31,
        max_len: 155,
        seed: 1,
        eval: gaplan_ga::EvalMode::Serial,
        ..GaConfig::default()
    };
    group.bench_function("hanoi5_pop200_gens20", |b| {
        b.iter(|| Phase::new(&hanoi, hanoi_cfg.clone()).run());
    });

    let tile = SlidingTile::new(3, SlidingTile::standard_goal(3));
    let tile_cfg = GaConfig {
        population_size: 200,
        generations_per_phase: 20,
        initial_len: 29,
        max_len: 145,
        seed: 1,
        eval: gaplan_ga::EvalMode::Serial,
        ..GaConfig::default()
    };
    group.bench_function("tile3_pop200_gens20", |b| {
        b.iter(|| Phase::new(&tile, tile_cfg.clone()).run());
    });

    group.finish();
}

criterion_group!(benches, bench_phase);
criterion_main!(benches);
