//! Micro-benchmarks for the decode hot path: gene → valid-operation mapping
//! across the three domain families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaplan_domains::{Hanoi, SlidingTile};
use gaplan_ga::{Decoder, GaConfig, Genome};
use gaplan_grid::image_pipeline;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    group.sample_size(30);

    let cfg = GaConfig::default();
    let mut rng = StdRng::seed_from_u64(1);

    for n in [5usize, 7] {
        let hanoi = Hanoi::new(n);
        let len = 5 * ((1usize << n) - 1);
        let genome = Genome::random(&mut rng, len);
        group.bench_with_input(BenchmarkId::new("hanoi", format!("n{n}_len{len}")), &genome, |b, g| {
            let mut dec = Decoder::new();
            let start = gaplan_core::Domain::initial_state(&hanoi);
            b.iter(|| dec.evaluate(&hanoi, &start, g, &cfg));
        });
    }

    for n in [3usize, 4] {
        let tile = SlidingTile::new(n, SlidingTile::standard_goal(n));
        let len = 5 * (n * n * (n * n).ilog2() as usize);
        let genome = Genome::random(&mut rng, len);
        group.bench_with_input(BenchmarkId::new("tile", format!("n{n}_len{len}")), &genome, |b, g| {
            let mut dec = Decoder::new();
            let start = gaplan_core::Domain::initial_state(&tile);
            b.iter(|| dec.evaluate(&tile, &start, g, &cfg));
        });
    }

    let sc = image_pipeline();
    let genome = Genome::random(&mut rng, 16);
    group.bench_function("grid_len16", |b| {
        let mut dec = Decoder::new();
        let start = gaplan_core::Domain::initial_state(&sc.world);
        b.iter(|| dec.evaluate(&sc.world, &start, &genome, &cfg));
    });

    group.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
