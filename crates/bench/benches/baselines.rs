//! Benchmarks for the deterministic baselines: search effort per planner
//! (the Ext-D table's wall-clock column at micro scale).

use criterion::{criterion_group, criterion_main, Criterion};
use gaplan_baselines::{astar, bfs, idastar, HanoiLowerBound, LinearConflict, ManhattanH, SearchLimits};
use gaplan_domains::{Hanoi, SlidingTile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);

    let hanoi = Hanoi::new(6);
    group.bench_function("bfs_hanoi6", |b| b.iter(|| bfs(&hanoi, SearchLimits::default())));
    group.bench_function("astar_hanoi6", |b| b.iter(|| astar(&hanoi, &HanoiLowerBound, SearchLimits::default())));
    group.bench_function("idastar_hanoi6", |b| b.iter(|| idastar(&hanoi, &HanoiLowerBound, SearchLimits::default())));

    let mut rng = StdRng::seed_from_u64(5);
    let tile = SlidingTile::random_solvable(3, &mut rng);
    group.bench_function("astar_md_tile3", |b| b.iter(|| astar(&tile, &ManhattanH, SearchLimits::default())));
    group.bench_function("astar_lc_tile3", |b| b.iter(|| astar(&tile, &LinearConflict, SearchLimits::default())));

    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
