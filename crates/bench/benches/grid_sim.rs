//! Benchmarks for the grid substrate: workflow-domain operations, activity
//! graph construction, and the discrete-event coordination service.

use criterion::{criterion_group, criterion_main, Criterion};
use gaplan_core::{Domain, DomainExt, Plan};
use gaplan_grid::{image_pipeline, ActivityGraph, Coordinator};

fn pipeline_plan(world: &gaplan_grid::GridWorld) -> Plan {
    let mut state = world.initial_state();
    let mut ops = Vec::new();
    for name in ["run histeq @ orion", "run highpass @ orion", "run fft @ orion"] {
        let op =
            world.valid_ops_vec(&state).into_iter().find(|&o| world.op_name(o) == name).expect("pipeline op valid");
        state = world.apply(&state, op);
        ops.push(op);
    }
    Plan::from_ops(ops)
}

fn bench_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    group.sample_size(30);

    let sc = image_pipeline();
    let world = &sc.world;
    let start = world.initial_state();

    group.bench_function("valid_operations", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            world.valid_operations(&start, &mut out);
            out.len()
        });
    });

    let plan = pipeline_plan(world);
    group.bench_function("activity_graph_from_plan", |b| {
        b.iter(|| ActivityGraph::from_plan(world, &start, &plan));
    });

    group.bench_function("coordinator_run", |b| {
        b.iter(|| Coordinator::new(world).run(&plan, None));
    });

    group.finish();
}

criterion_group!(benches, bench_grid);
criterion_main!(benches);
