//! Micro-benchmarks for the three crossover mechanisms (Table 4's "state-
//! aware is slightly cheaper per solve" claim depends on operator cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gaplan_domains::SlidingTile;
use gaplan_ga::crossover::crossover;
use gaplan_ga::{CrossoverKind, Decoder, Evaluated, Fitness, GaConfig, Genome};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn evaluated(tile: &SlidingTile, genome: Genome, cfg: &GaConfig) -> Evaluated<Vec<u8>> {
    let mut dec = Decoder::new();
    let start = gaplan_core::Domain::initial_state(tile);
    let (decoded, _) = dec.evaluate(tile, &start, &genome, cfg);
    Evaluated::new(genome, decoded, Fitness::default())
}

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossover");
    group.sample_size(50);

    let tile = SlidingTile::new(4, SlidingTile::standard_goal(4));
    let cfg = GaConfig::default();
    let mut rng = StdRng::seed_from_u64(7);
    let a = evaluated(&tile, Genome::random(&mut rng, 320), &cfg);
    let b = evaluated(&tile, Genome::random(&mut rng, 320), &cfg);

    for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
        group.bench_with_input(BenchmarkId::new("tile4_len320", kind.name()), &kind, |bch, &k| {
            let mut rng = StdRng::seed_from_u64(11);
            bch.iter(|| crossover(&mut rng, k, &a, &b, 320));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
