//! Micro-benchmarks for the observability fast path.
//!
//! Three configurations of the same instrumented Hanoi phase:
//! disabled (no subscriber — the shipping default), a no-op subscriber
//! (pays dispatch + event formatting, discards output), and a JSON-lines
//! sink into memory (the full `--trace` cost). The disabled/enabled gap is
//! what `tests/obs_guard.rs` asserts stays under 2%.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use gaplan_domains::Hanoi;
use gaplan_ga::{GaConfig, Phase};
use gaplan_obs::{Event, JsonlSink, NoopSubscriber, SharedBuf};

fn bench_cfg() -> GaConfig {
    GaConfig {
        population_size: 200,
        generations_per_phase: 20,
        initial_len: 31,
        max_len: 155,
        seed: 1,
        eval: gaplan_ga::EvalMode::Serial,
        ..GaConfig::default()
    }
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");

    group.bench_function("emit_disabled", |b| {
        b.iter(|| gaplan_obs::emit(|| Event::new("bench.ev").u64("n", 1)));
    });
    group.bench_function("span_disabled", |b| {
        b.iter(|| gaplan_obs::span("bench.span"));
    });

    let _noop = gaplan_obs::install(Arc::new(NoopSubscriber));
    group.bench_function("emit_noop_subscriber", |b| {
        b.iter(|| gaplan_obs::emit(|| Event::new("bench.ev").u64("n", 1)));
    });
    group.bench_function("span_noop_subscriber", |b| {
        b.iter(|| gaplan_obs::span("bench.span"));
    });
    group.finish();
}

fn bench_instrumented_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_phase");
    group.sample_size(10);
    let hanoi = Hanoi::new(5);

    group.bench_function("hanoi5_trace_disabled", |b| {
        b.iter(|| Phase::new(&hanoi, bench_cfg()).run());
    });

    group.bench_function("hanoi5_trace_noop", |b| {
        let _g = gaplan_obs::install(Arc::new(NoopSubscriber));
        b.iter(|| Phase::new(&hanoi, bench_cfg()).run());
    });

    group.bench_function("hanoi5_trace_jsonl", |b| {
        let buf = SharedBuf::default();
        let _g = gaplan_obs::install(Arc::new(JsonlSink::new(buf)));
        b.iter(|| Phase::new(&hanoi, bench_cfg()).run());
    });

    group.finish();
}

criterion_group!(benches, bench_primitives, bench_instrumented_phase);
criterion_main!(benches);
