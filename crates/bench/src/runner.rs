//! Parallel multi-run executor: repeats a GA configuration across seeds
//! (the paper: "each run uses a different initial population") and
//! aggregates the reports.

use std::time::Instant;

use gaplan_core::Domain;
use gaplan_ga::rng::derive_seed;
use gaplan_ga::{aggregate, AggregateReport, GaConfig, MultiPhase, RunReport};
use parking_lot::Mutex;
use rayon::prelude::*;

/// Run `runs` independent multi-phase GA executions of `cfg` over `domain`,
/// with per-run seeds derived from `cfg.seed`, in parallel across runs.
///
/// Individual-level parallelism is disabled inside each run (the runs
/// themselves are the parallel unit here), keeping results identical to a
/// serial execution.
pub fn run_batch<D: Domain>(domain: &D, cfg: &GaConfig, runs: usize) -> (Vec<RunReport>, AggregateReport) {
    assert!(runs > 0);
    let reports = Mutex::new(vec![None; runs]);
    (0..runs).into_par_iter().for_each(|i| {
        let mut run_cfg = cfg.clone();
        run_cfg.seed = derive_seed(cfg.seed, i as u64 + 1);
        run_cfg.eval = gaplan_ga::EvalMode::Serial;
        let start = Instant::now();
        let result = MultiPhase::new(domain, run_cfg).run();
        let report = RunReport::from_result(&result, start.elapsed().as_secs_f64());
        reports.lock()[i] = Some(report);
    });
    let reports: Vec<RunReport> = reports.into_inner().into_iter().map(|r| r.expect("every run completed")).collect();
    let agg = aggregate(&reports, cfg.max_phases);
    (reports, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_domains::Hanoi;

    fn cfg() -> GaConfig {
        GaConfig {
            population_size: 40,
            generations_per_phase: 30,
            max_phases: 3,
            initial_len: 31,
            max_len: 93,
            seed: 5,
            ..GaConfig::default()
        }
    }

    #[test]
    fn batch_produces_one_report_per_run() {
        let h = Hanoi::new(4);
        let (reports, agg) = run_batch(&h, &cfg(), 4);
        assert_eq!(reports.len(), 4);
        assert_eq!(agg.runs, 4);
        assert!(agg.avg_goal_fitness > 0.0);
    }

    #[test]
    fn batch_is_deterministic_modulo_time() {
        let h = Hanoi::new(4);
        let (a, _) = run_batch(&h, &cfg(), 3);
        let (b, _) = run_batch(&h, &cfg(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.goal_fitness, y.goal_fitness);
            assert_eq!(x.plan_len, y.plan_len);
            assert_eq!(x.generations, y.generations);
        }
    }

    #[test]
    fn runs_use_distinct_seeds() {
        let h = Hanoi::new(5);
        let (reports, _) = run_batch(&h, &cfg(), 4);
        // with distinct seeds, identical outcomes across all runs are
        // vanishingly unlikely
        let all_same =
            reports.windows(2).all(|w| w[0].plan_len == w[1].plan_len && w[0].goal_fitness == w[1].goal_fitness);
        assert!(!all_same);
    }
}
