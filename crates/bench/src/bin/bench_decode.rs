//! Decode/eval throughput benchmark for the shared evaluation layer.
//!
//! Simulates the evaluation phases of a multi-phase GA run on Hanoi-7: a
//! population of genomes is evaluated for a number of generations, lightly
//! mutated between generations exactly like the engine would, once with the
//! shared [`SuccessorCache`] and once without. Both variants produce
//! bitwise-identical fitness totals (asserted); only wall-clock differs.
//!
//! Writes a JSON snapshot (default `BENCH_decode.json`, or the path given
//! as the first argument) and exits non-zero if the cache-on variant is not
//! at least the `GAPLAN_BENCH_MIN_SPEEDUP` (default 1.0 — reporting mode)
//! times faster, so CI can enforce a floor.

use std::sync::Arc;
use std::time::Instant;

use gaplan_core::{Domain, SuccessorCache};
use gaplan_domains::Hanoi;
use gaplan_ga::{Decoder, GaConfig, Genome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const POP: usize = 200;
const GENERATIONS: usize = 40;
const SEED: u64 = 2003;

#[derive(Serialize)]
struct Snapshot {
    bench: &'static str,
    domain: &'static str,
    population: usize,
    generations: usize,
    genome_len: usize,
    cache_off_ms: f64,
    cache_on_ms: f64,
    speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    cache_hit_rate: f64,
}

fn population(rng: &mut StdRng, len: usize) -> Vec<Genome> {
    (0..POP).map(|_| Genome::random(rng, len)).collect()
}

/// One evaluation "run": `GENERATIONS` passes over the population with one
/// point mutation per genome between passes (deterministic), mirroring how
/// states recur across generations in the real engine. Returns a fitness
/// checksum (order-sensitive) and the elapsed wall time.
fn run(hanoi: &Hanoi, cache: Option<&SuccessorCache<Vec<u8>>>, cfg: &GaConfig, len: usize) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut pop = population(&mut rng, len);
    let start = hanoi.initial_state();
    let mut dec = Decoder::new();
    let mut checksum = 0.0f64;
    let t0 = Instant::now();
    for _ in 0..GENERATIONS {
        for genome in &pop {
            let (_, fitness) = dec.evaluate_with(hanoi, &start, genome, cfg, cache, None);
            checksum += fitness.total;
        }
        for genome in &mut pop {
            let at = rng.gen_range(0..genome.len());
            genome.genes_mut()[at] = rng.gen_range(0.0..1.0);
        }
    }
    (checksum, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_decode.json".to_string());
    let min_speedup: f64 = std::env::var("GAPLAN_BENCH_MIN_SPEEDUP").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);

    let hanoi = Hanoi::new(7);
    let len = hanoi.optimal_len(); // 127 genes: a realistic multiphase genome
    let cfg = GaConfig::default();

    // Warm-up both paths (page in code, fill allocator pools).
    let warm_cache = SuccessorCache::new(1 << 16);
    run(&hanoi, None, &cfg, len);
    run(&hanoi, Some(&warm_cache), &cfg, len);

    // Interleave repetitions and keep the fastest of each variant: minimum
    // wall time is the standard noise-robust estimator for shared machines.
    const REPS: usize = 5;
    let cache = Arc::new(SuccessorCache::new(1 << 16));
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    for _ in 0..REPS {
        let (sum_off, off) = run(&hanoi, None, &cfg, len);
        let (sum_on, on) = run(&hanoi, Some(&cache), &cfg, len);
        assert_eq!(sum_off.to_bits(), sum_on.to_bits(), "cache changed evaluation results");
        off_ms = off_ms.min(off);
        on_ms = on_ms.min(on);
    }

    let stats = cache.stats();
    let snap = Snapshot {
        bench: "decode_eval_multiphase",
        domain: "hanoi-7",
        population: POP,
        generations: GENERATIONS,
        genome_len: len,
        cache_off_ms: off_ms,
        cache_on_ms: on_ms,
        speedup: off_ms / on_ms,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        cache_evictions: stats.evictions,
        cache_hit_rate: stats.hit_rate(),
    };
    let json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");

    if snap.speedup < min_speedup {
        eprintln!("FAIL: speedup {:.2}x below the {min_speedup:.2}x floor", snap.speedup);
        std::process::exit(1);
    }
    println!("speedup {:.2}x (floor {min_speedup:.2}x), hit rate {:.1}%", snap.speedup, snap.cache_hit_rate * 100.0);
}
