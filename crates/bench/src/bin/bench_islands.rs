//! Island-model GA benchmark: two experiments in one snapshot.
//!
//! **Quality** — tile-4x4 at a fixed evaluation budget (same population ×
//! generations, so wall-clock parity follows): a K=4 island run with ring
//! migration vs the single-population run it replaces. Both runs are fully
//! deterministic, so the comparison is stable across machines and CI.
//!
//! **Decode path** — the `bench_decode` workload (Hanoi-7, 200 genomes of
//! 127 genes, 40 passes, one fresh point mutation per child per pass,
//! shared successor cache), once through the historical per-candidate path
//! (`Decoder::evaluate_with`, no prefix hints — the loop whose wall time is
//! recorded as `cache_on_ms` in `BENCH_decode.json`) and once through the
//! arena path: children written into a [`PopulationArena`] with
//! [`Provenance`] naming the unchanged prefix, decoded by `evaluate_ref`
//! with a borrowed [`PrefixRef`] replaying the donor's memoized outputs.
//! Both loops draw identical mutations, evaluate a pre-decoded parent set's
//! children, and discard results, so the wall-clock delta isolates the
//! decode/eval path itself. Fitness checksums are asserted
//! bitwise-identical; only wall-clock differs.
//!
//! Writes a JSON snapshot (default `BENCH_islands.json`, or the path given
//! as the first argument). Exits non-zero if the island run's goal fitness
//! falls below the single-population run's, if the arena decode path is
//! not at least `GAPLAN_BENCH_MIN_SPEEDUP` (default 1.0 — reporting mode)
//! times faster than the same-run per-candidate path, or if it is not at
//! least 1.3x faster than the committed `BENCH_decode.json` reference (the
//! roadmap's acceptance bar).

use std::sync::Arc;
use std::time::Instant;

use gaplan_core::{Domain, SuccessorCache};
use gaplan_domains::{Hanoi, SlidingTile};
use gaplan_ga::arena::{PopulationArena, Provenance};
use gaplan_ga::{Decoder, EvalMode, Evaluated, GaConfig, Genome, MultiPhase, PrefixRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const POP: usize = 200;
const GENERATIONS: usize = 40;
const SEED: u64 = 2003;
/// `cache_on_ms` in the committed `BENCH_decode.json`, kept for reference in
/// the snapshot so the decode speedup can be read against the number that
/// motivated the arena refactor.
const REFERENCE_DECODE_MS: f64 = 34.550548;

const TILE_SEED: u64 = 2003;
const TILE_POP: usize = 240;
const TILE_GENS: u32 = 60;
const TILE_PHASES: u32 = 4;

#[derive(Serialize)]
struct Snapshot {
    bench: &'static str,
    quality_domain: &'static str,
    population: usize,
    islands: u32,
    generations_per_phase: u32,
    max_phases: u32,
    single_goal_fitness: f64,
    single_solved: bool,
    single_wall_ms: f64,
    island_goal_fitness: f64,
    island_solved: bool,
    island_wall_ms: f64,
    decode_domain: &'static str,
    decode_generations: usize,
    decode_candidate_ms: f64,
    decode_arena_ms: f64,
    decode_speedup: f64,
    decode_reference_ms: f64,
    decode_vs_reference: f64,
}

fn population(rng: &mut StdRng, len: usize) -> Vec<Genome> {
    (0..POP).map(|_| Genome::random(rng, len)).collect()
}

/// Decode and retain the parent generation the timed loops breed from
/// (untimed setup).
fn setup_parents(
    hanoi: &Hanoi,
    cache: &SuccessorCache<Vec<u8>>,
    cfg: &GaConfig,
    len: usize,
) -> Vec<Evaluated<Vec<u8>>> {
    let mut rng = StdRng::seed_from_u64(SEED);
    let start = hanoi.initial_state();
    let mut dec = Decoder::new();
    population(&mut rng, len)
        .into_iter()
        .map(|g| {
            let (decoded, fitness) = dec.evaluate_with(hanoi, &start, &g, cfg, Some(cache), None);
            Evaluated::new(g, decoded, fitness)
        })
        .collect()
}

/// The `bench_decode` decode loop: every pass clones each parent, applies
/// one point mutation, and decodes the child from scratch (shared cache, no
/// prefix hints). Returns a fitness checksum and elapsed ms.
fn run_candidate(
    hanoi: &Hanoi,
    cache: &SuccessorCache<Vec<u8>>,
    cfg: &GaConfig,
    parents: &[Evaluated<Vec<u8>>],
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x00c0_ffee);
    let start = hanoi.initial_state();
    let mut dec = Decoder::new();
    let mut checksum = 0.0f64;
    let t0 = Instant::now();
    for _ in 0..GENERATIONS {
        for p in parents {
            let mut child = p.genome.clone();
            let at = rng.gen_range(0..child.len());
            child.genes_mut()[at] = rng.gen_range(0.0..1.0);
            let (_, fitness) = dec.evaluate_with(hanoi, &start, &child, cfg, Some(cache), None);
            checksum += fitness.total;
        }
    }
    (checksum, t0.elapsed().as_secs_f64() * 1e3)
}

/// The same children through the arena decode path: every pass writes each
/// mutated child into the flat [`PopulationArena`] with a [`Provenance`]
/// naming its unchanged prefix, then decodes it with a borrowed
/// [`PrefixRef`] that replays the donor's memoized ops/keys/goals. RNG draw
/// order matches [`run_candidate`] exactly, so the checksums must agree
/// bitwise.
fn run_arena(
    hanoi: &Hanoi,
    cache: &SuccessorCache<Vec<u8>>,
    cfg: &GaConfig,
    parents: &[Evaluated<Vec<u8>>],
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x00c0_ffee);
    let start = hanoi.initial_state();
    let len = parents[0].genome.len();
    let mut arena = PopulationArena::with_capacity(POP, POP * len);
    let mut dec = Decoder::new();
    let mut checksum = 0.0f64;
    let t0 = Instant::now();
    for _ in 0..GENERATIONS {
        arena.clear();
        for (i, p) in parents.iter().enumerate() {
            let at = rng.gen_range(0..p.genome.len());
            arena.push(p.genome.genes(), Provenance::prefix(i, at));
            arena.genes_mut(i)[at] = rng.gen_range(0.0..1.0);
        }
        for i in 0..arena.len() {
            let prov = arena.prov(i);
            let donor = &parents[prov.parent as usize];
            let hint = PrefixRef::new(&donor.ops, &donor.match_keys, &donor.step_goals, prov.prefix as usize);
            let (decoded, fitness) = dec.evaluate_ref(hanoi, &start, arena.genes(i), cfg, Some(cache), Some(hint));
            checksum += fitness.total;
            dec.recycle(decoded);
        }
    }
    (checksum, t0.elapsed().as_secs_f64() * 1e3)
}

/// Run the tile-4x4 GA once with the given island count; everything else
/// (seed, population, budget) is held fixed.
fn run_tile(puzzle: &SlidingTile, islands: u32) -> (f64, bool, f64) {
    let cfg = GaConfig {
        population_size: TILE_POP,
        generations_per_phase: TILE_GENS,
        max_phases: TILE_PHASES,
        initial_len: 64,
        max_len: 128,
        seed: TILE_SEED,
        islands,
        migration_interval: 5,
        emigrants: 2,
        ..GaConfig::default()
    };
    cfg.validate().expect("bench config is valid");
    let t0 = Instant::now();
    let r = MultiPhase::new(puzzle, cfg).run();
    (r.goal_fitness, r.solved, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_islands.json".to_string());
    let min_speedup: f64 = std::env::var("GAPLAN_BENCH_MIN_SPEEDUP").ok().and_then(|v| v.parse().ok()).unwrap_or(1.0);

    // -- quality: tile-4x4, fixed budget, K=4 vs K=1 --
    let mut tile_rng = StdRng::seed_from_u64(TILE_SEED);
    let puzzle = SlidingTile::random_solvable(4, &mut tile_rng);
    let (single_goal, single_solved, single_ms) = run_tile(&puzzle, 1);
    let (island_goal, island_solved, island_ms) = run_tile(&puzzle, 4);

    // -- decode path: candidate loop vs arena loop, fastest of 5 each --
    let hanoi = Hanoi::new(7);
    let len = hanoi.optimal_len(); // 127 genes, as in bench_decode
    let cfg = GaConfig { eval: EvalMode::Serial, ..GaConfig::default() };

    let warm = SuccessorCache::new(1 << 16);
    let warm_parents = setup_parents(&hanoi, &warm, &cfg, len);
    run_candidate(&hanoi, &warm, &cfg, &warm_parents);
    run_arena(&hanoi, &warm, &cfg, &warm_parents);

    const REPS: usize = 9;
    let cache = Arc::new(SuccessorCache::new(1 << 16));
    let parents = setup_parents(&hanoi, &cache, &cfg, len);
    let mut candidate_ms = f64::INFINITY;
    let mut arena_ms = f64::INFINITY;
    for _ in 0..REPS {
        let (sum_c, c) = run_candidate(&hanoi, &cache, &cfg, &parents);
        let (sum_a, a) = run_arena(&hanoi, &cache, &cfg, &parents);
        assert_eq!(sum_c.to_bits(), sum_a.to_bits(), "arena path changed evaluation results");
        candidate_ms = candidate_ms.min(c);
        arena_ms = arena_ms.min(a);
    }

    let snap = Snapshot {
        bench: "islands",
        quality_domain: "tile-4x4",
        population: TILE_POP,
        islands: 4,
        generations_per_phase: TILE_GENS,
        max_phases: TILE_PHASES,
        single_goal_fitness: single_goal,
        single_solved,
        single_wall_ms: single_ms,
        island_goal_fitness: island_goal,
        island_solved,
        island_wall_ms: island_ms,
        decode_domain: "hanoi-7",
        decode_generations: GENERATIONS,
        decode_candidate_ms: candidate_ms,
        decode_arena_ms: arena_ms,
        decode_speedup: candidate_ms / arena_ms,
        decode_reference_ms: REFERENCE_DECODE_MS,
        decode_vs_reference: REFERENCE_DECODE_MS / arena_ms,
    };
    let json = serde_json::to_string_pretty(&snap).expect("snapshot serializes");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("{json}");

    let mut failed = false;
    if island_goal < single_goal {
        eprintln!("FAIL: island goal fitness {island_goal:.6} below single-population {single_goal:.6}");
        failed = true;
    }
    if snap.decode_speedup < min_speedup {
        eprintln!("FAIL: arena decode speedup {:.2}x below the {min_speedup:.2}x floor", snap.decode_speedup);
        failed = true;
    }
    // The acceptance bar from the roadmap: the arena decode/eval path must
    // beat the committed BENCH_decode.json cache-on number by ≥1.3x.
    if snap.decode_vs_reference < 1.3 {
        eprintln!(
            "FAIL: arena decode {:.3} ms is only {:.2}x faster than the committed {:.3} ms reference (need 1.30x)",
            arena_ms, snap.decode_vs_reference, REFERENCE_DECODE_MS
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "quality: K=4 {:.4} vs K=1 {:.4} (solved {island_solved} vs {single_solved}); \
         decode: arena {:.2}x faster same-run (floor {min_speedup:.2}x), {:.2}x vs committed reference",
        island_goal, single_goal, snap.decode_speedup, snap.decode_vs_reference
    );
}
