//! Regenerate every table and figure of the paper, plus the extension
//! experiments.
//!
//! Usage:
//! ```text
//! tables [--quick] [--runs N] [--budget F] [--seed S] [--json DIR] CMD...
//! CMD: table1 table2 table3 table4 table5 figures
//!      ext-crossover-hanoi ext-fitness ext-phases ext-baselines ext-grid
//!      ext-chaos ext-sensitivity paper all
//! ```

use std::io::Write as _;
use std::time::Instant;

use gaplan_bench::table::TextTable;
use gaplan_bench::{
    baseline_exp, chaos_exp, figures, grid_exp, hanoi_exp, history_exp, metaheuristic_exp, seeding_exp,
    sensitivity_exp, tile_exp, ExpScale,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExpScale::default();
    let mut json_dir: Option<String> = None;
    let mut commands: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = ExpScale::quick(),
            "--runs" => {
                i += 1;
                scale.runs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage("--runs N"));
            }
            "--budget" => {
                i += 1;
                scale.budget = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|b| *b > 0.0 && *b <= 1.0)
                    .unwrap_or_else(|| usage("--budget F in (0,1]"));
            }
            "--seed" => {
                i += 1;
                scale.seed = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage("--seed S"));
            }
            "--json" => {
                i += 1;
                json_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage("--json DIR")));
            }
            cmd if !cmd.starts_with('-') => commands.push(cmd.to_string()),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if commands.is_empty() {
        usage("no command given");
    }

    // expand meta-commands
    let expand = |cmd: &str| -> Vec<&'static str> {
        match cmd {
            "paper" => vec!["figures", "table1", "table2", "table3", "table4", "table5"],
            "ext-baselines" => vec!["ext-baselines-hanoi", "ext-baselines-tile", "ext-baselines-strips"],
            "ext-sensitivity" => vec![
                "ext-mutation",
                "ext-selection",
                "ext-state-match",
                "ext-goal-eval",
                "ext-elitism",
                "ext-cost-fitness",
            ],
            "all" => vec![
                "figures",
                "table1",
                "table2",
                "table3",
                "table4",
                "table5",
                "ext-crossover-hanoi",
                "ext-fitness",
                "ext-phases",
                "ext-baselines-hanoi",
                "ext-baselines-tile",
                "ext-baselines-strips",
                "ext-grid",
                "ext-grid-climate",
                "ext-chaos",
                "ext-mutation",
                "ext-selection",
                "ext-state-match",
                "ext-goal-eval",
                "ext-elitism",
                "ext-cost-fitness",
                "ext-seeding",
                "ext-metaheuristics-hanoi",
                "ext-metaheuristics-tile",
            ],
            "table1" => vec!["table1"],
            "table2" => vec!["table2"],
            "table3" => vec!["table3"],
            "table4" => vec!["table4"],
            "table5" => vec!["table5"],
            "figures" => vec!["figures"],
            "history" => vec!["history"],
            "ext-crossover-hanoi" => vec!["ext-crossover-hanoi"],
            "ext-fitness" => vec!["ext-fitness"],
            "ext-phases" => vec!["ext-phases"],
            "ext-baselines-hanoi" => vec!["ext-baselines-hanoi"],
            "ext-baselines-tile" => vec!["ext-baselines-tile"],
            "ext-baselines-strips" => vec!["ext-baselines-strips"],
            "ext-grid" => vec!["ext-grid", "ext-grid-climate"],
            "ext-grid-climate" => vec!["ext-grid-climate"],
            "ext-chaos" => vec!["ext-chaos"],
            "ext-mutation" => vec!["ext-mutation"],
            "ext-selection" => vec!["ext-selection"],
            "ext-state-match" => vec!["ext-state-match"],
            "ext-goal-eval" => vec!["ext-goal-eval"],
            "ext-elitism" => vec!["ext-elitism"],
            "ext-cost-fitness" => vec!["ext-cost-fitness"],
            "ext-seeding" => vec!["ext-seeding"],
            "ext-metaheuristics" => vec!["ext-metaheuristics-hanoi", "ext-metaheuristics-tile"],
            "ext-metaheuristics-hanoi" => vec!["ext-metaheuristics-hanoi"],
            "ext-metaheuristics-tile" => vec!["ext-metaheuristics-tile"],
            other => usage(&format!("unknown command {other}")),
        }
    };
    let expanded: Vec<&str> = commands.iter().flat_map(|c| expand(c)).collect();

    for cmd in expanded {
        let started = Instant::now();
        eprintln!(">> running {cmd} ...");
        match cmd {
            "figures" => println!("{}", figures::all_figures()),
            name => {
                let table: TextTable = match name {
                    "table1" => hanoi_exp::table1(&scale),
                    "table2" => hanoi_exp::table2(&scale),
                    "table3" => tile_exp::table3(&scale),
                    "table4" => tile_exp::table4(&scale),
                    "table5" => tile_exp::table5(&scale),
                    "history" => history_exp::history(&scale),
                    "ext-crossover-hanoi" => hanoi_exp::ext_crossover_hanoi(&scale),
                    "ext-fitness" => hanoi_exp::ext_fitness(&scale),
                    "ext-phases" => hanoi_exp::ext_phases(&scale),
                    "ext-baselines-hanoi" => baseline_exp::ext_baselines_hanoi(&scale),
                    "ext-baselines-tile" => baseline_exp::ext_baselines_tile(&scale),
                    "ext-baselines-strips" => baseline_exp::ext_baselines_strips(&scale),
                    "ext-grid" => grid_exp::ext_grid(&scale),
                    "ext-grid-climate" => grid_exp::ext_grid_climate(&scale),
                    "ext-chaos" => chaos_exp::ext_chaos(&scale),
                    "ext-mutation" => sensitivity_exp::ext_mutation(&scale),
                    "ext-selection" => sensitivity_exp::ext_selection(&scale),
                    "ext-state-match" => sensitivity_exp::ext_state_match(&scale),
                    "ext-goal-eval" => sensitivity_exp::ext_goal_eval(&scale),
                    "ext-elitism" => sensitivity_exp::ext_elitism(&scale),
                    "ext-cost-fitness" => sensitivity_exp::ext_cost_fitness(&scale),
                    "ext-seeding" => seeding_exp::ext_seeding(&scale),
                    "ext-metaheuristics-hanoi" => metaheuristic_exp::ext_metaheuristics_hanoi(&scale),
                    "ext-metaheuristics-tile" => metaheuristic_exp::ext_metaheuristics_tile(&scale),
                    _ => unreachable!("expanded commands are known"),
                };
                println!("{}", table.render());
                if let Some(dir) = &json_dir {
                    std::fs::create_dir_all(dir).expect("create json dir");
                    let path = format!("{dir}/{name}.json");
                    let mut f = std::fs::File::create(&path).expect("create json file");
                    f.write_all(table.to_json().as_bytes()).expect("write json");
                    eprintln!(">> wrote {path}");
                }
            }
        }
        eprintln!(">> {cmd} done in {:.1}s\n", started.elapsed().as_secs_f64());
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: tables [--quick] [--runs N] [--budget F] [--seed S] [--json DIR] CMD...\n\
         CMD: table1 table2 table3 table4 table5 figures paper\n\
              ext-crossover-hanoi ext-fitness ext-phases ext-baselines ext-grid ext-chaos ext-sensitivity all"
    );
    std::process::exit(2);
}
