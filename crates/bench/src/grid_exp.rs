//! Ext-E: the grid-workflow experiment — the paper's §1 motivating claim,
//! measured: "A static script is incapable of taking advantage of the full
//! range of alternatives to carry out a computation, while planning does."
//!
//! Protocol: plan the image pipeline with the multi-phase GA; execute it
//! under a scheduled overload of the home site; compare the static script
//! (no replanning) against the coordinator that replans with the GA when
//! the load changes.

use gaplan_core::{Domain, Plan};
use gaplan_ga::{CostFitnessMode, GaConfig, MultiPhase};
use gaplan_grid::{
    climate_ensemble, greedy_plan, image_pipeline, ActivityGraph, Coordinator, ExternalEvent, GridWorld, ReplanPolicy,
};

use crate::table::{f1, f3, TextTable};
use crate::ExpScale;

/// The GA configuration used for grid workflow planning: goal truncation on
/// (a workflow stops when the results exist), general cost fitness, short
/// genomes (pipelines are a handful of steps).
pub fn grid_ga_config(scale: &ExpScale) -> GaConfig {
    GaConfig {
        population_size: 100,
        generations_per_phase: scale.gens(60),
        max_phases: 3,
        initial_len: 8,
        max_len: 16,
        truncate_at_goal: true,
        cost_fitness: CostFitnessMode::InverseCost,
        seed: scale.seed,
        ..GaConfig::default()
    }
}

/// Plan a workflow with the multi-phase GA.
pub fn ga_plan(world: &GridWorld, cfg: &GaConfig) -> Plan {
    MultiPhase::new(world, cfg.clone()).run().plan
}

/// Ext-E: static script vs GA replanning under a load spike.
pub fn ext_grid(scale: &ExpScale) -> TextTable {
    let sc = image_pipeline();
    let world = &sc.world;
    let cfg = grid_ga_config(scale);

    // initial plan, from the unloaded world
    let plan = ga_plan(world, &cfg);
    let graph = ActivityGraph::from_plan(world, &world.initial_state(), &plan);

    let overload = ExternalEvent::LoadChange { time: 3.0, site: sc.sites[0], load: 0.95 };

    // baseline: calm weather, no events
    let calm = Coordinator::new(world).run(&plan, None);

    // static script under overload
    let mut static_coord = Coordinator::new(world);
    static_coord.schedule(overload);
    let static_trace = static_coord.run(&plan, None);

    // replanning coordinator: the GA replans from the current artifact set
    // whenever the resource picture changes
    let mut cfg_replan = cfg.clone();
    cfg_replan.seed ^= 0xD1CE;
    let replanner = move |snapshot: &GridWorld| -> Plan { ga_plan(snapshot, &cfg_replan) };
    let mut replan_coord = Coordinator::new(world);
    replan_coord.schedule(overload).policy(ReplanPolicy::OnLoadChange);
    let replanned = replan_coord.run(&plan, Some(&replanner));

    let mut t = TextTable::new(
        "Ext-E. Grid workflow: static script vs GA replanning under a home-site overload.",
        &["Scenario", "Goal Reached", "Makespan (s)", "Busy Time (s)", "Tasks", "Replans"],
    );
    let mut row = |name: &str, tr: &gaplan_grid::ExecutionTrace| {
        t.row(vec![
            name.into(),
            if tr.reached_goal() { "yes".into() } else { "no".into() },
            f1(tr.makespan),
            f1(tr.busy_time),
            tr.tasks.len().to_string(),
            tr.replans.to_string(),
        ]);
    };
    row("GA plan, no disturbance", &calm);
    row("GA plan, overload, static script", &static_trace);
    row("GA plan, overload, GA replanning", &replanned);

    // the broker's deterministic planner as a non-evolutionary comparator
    if let Some(greedy) = greedy_plan(world, 6) {
        let greedy_calm = Coordinator::new(world).run(&greedy, None);
        row("greedy broker plan, no disturbance", &greedy_calm);
        let greedy_replanner = |snapshot: &GridWorld| greedy_plan(snapshot, 6).unwrap_or_default();
        let mut gc = Coordinator::new(world);
        gc.schedule(overload).policy(ReplanPolicy::OnLoadChange);
        let greedy_replanned = gc.run(&greedy, Some(&greedy_replanner));
        row("greedy plan, overload, greedy replanning", &greedy_replanned);
    }

    let mut meta = format!(
        "\nplanned ops: {} (activity graph: {} nodes, width {}, critical path {:.1}s)\n",
        plan.len(),
        graph.len(),
        graph.width(),
        graph.critical_path()
    );
    for (i, op) in plan.ops().iter().enumerate() {
        meta.push_str(&format!("  {:2}. {}\n", i + 1, world.op_name(*op)));
    }
    t.title.push_str(&meta);
    t
}

/// Ext-E2: the five-site multi-goal climate ensemble — scale test for the
/// workflow domain (134 ground operations, a multi-input program, two
/// weighted goals) with an overload on the primary HPC system.
pub fn ext_grid_climate(scale: &ExpScale) -> TextTable {
    let sc = climate_ensemble();
    let world = &sc.world;
    let cfg = GaConfig {
        population_size: 200,
        generations_per_phase: scale.gens(120),
        max_phases: 5,
        initial_len: 14,
        max_len: 40,
        cost_fitness: CostFitnessMode::InverseCost,
        truncate_at_goal: true,
        seed: scale.seed,
        ..GaConfig::default()
    };

    let plan = ga_plan(world, &cfg);
    let graph = ActivityGraph::from_plan(world, &world.initial_state(), &plan);
    let overload = ExternalEvent::LoadChange {
        time: 2.0,
        site: sc.sites[1], // hpc1
        load: 0.97,
    };

    let calm = Coordinator::new(world).run(&plan, None);
    let mut static_coord = Coordinator::new(world);
    static_coord.schedule(overload);
    let static_trace = static_coord.run(&plan, None);
    let mut cfg_replan = cfg.clone();
    cfg_replan.seed ^= 0xC11A;
    let replanner = move |snapshot: &GridWorld| -> Plan { ga_plan(snapshot, &cfg_replan) };
    let mut replan_coord = Coordinator::new(world);
    replan_coord.schedule(overload).policy(ReplanPolicy::OnLoadChange);
    let replanned = replan_coord.run(&plan, Some(&replanner));

    let mut t = TextTable::new(
        "Ext-E2. Climate-ensemble workflow (5 sites, 2 weighted goals) under an HPC overload.",
        &["Scenario", "Goal Fitness", "Makespan (s)", "Busy Time (s)", "Tasks", "Replans"],
    );
    let mut row = |name: &str, tr: &gaplan_grid::ExecutionTrace| {
        t.row(vec![
            name.into(),
            f3(tr.goal_fitness),
            f1(tr.makespan),
            f1(tr.busy_time),
            tr.tasks.len().to_string(),
            tr.replans.to_string(),
        ]);
    };
    row("GA plan, no disturbance", &calm);
    row("GA plan, overload, static script", &static_trace);
    row("GA plan, overload, GA replanning", &replanned);

    t.title.push_str(&format!(
        "
planned ops: {} (activity graph: {} nodes, width {}, critical path {:.1}s)
",
        plan.len(),
        graph.len(),
        graph.width(),
        graph.critical_path()
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ga_plans_the_pipeline() {
        let sc = image_pipeline();
        let scale = ExpScale {
            budget: 0.5, // keep the test quick; the full budget runs in `tables`
            ..ExpScale::default()
        };
        let cfg = grid_ga_config(&scale);
        let result = MultiPhase::new(&sc.world, cfg).run();
        assert!(result.solved, "GA must plan the image pipeline (fitness {})", result.goal_fitness);
        // the plan replays validly
        let out = result.plan.simulate(&sc.world, &sc.world.initial_state()).unwrap();
        assert!(out.solves);
    }

    #[test]
    fn ext_grid_quick_produces_five_scenarios() {
        let t = ext_grid(&ExpScale::quick());
        assert_eq!(t.rows.len(), 5);
        // calm runs (GA and greedy) must reach the goal
        assert_eq!(t.rows[0][1], "yes");
        assert_eq!(t.rows[3][1], "yes");
    }
}
