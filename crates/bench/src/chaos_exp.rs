//! Ext-I: the chaos experiment — seeded fault injection replayed against
//! every replanning policy.
//!
//! Protocol: plan the image pipeline with the multi-phase GA, then execute
//! that same plan under one seeded fault schedule (a site failure, its
//! recovery, and a load spike from [`chaos_schedule`]) plus a per-attempt
//! operation fault rate, once per policy: `Never` (static script),
//! `OnLoadChange` (the paper's replanner, blind to failures) and
//! `OnFailure` (failure-aware). The schedule and the fault draws are
//! identical across rows — only the policy varies — so the table isolates
//! what failure-awareness buys.

use gaplan_core::Plan;
use gaplan_grid::{chaos_schedule, image_pipeline, Coordinator, ExecutionTrace, FaultPlan, GridWorld, ReplanPolicy};

use crate::grid_exp::{ga_plan, grid_ga_config};
use crate::table::{f1, f3, TextTable};
use crate::ExpScale;

/// Per-attempt operation fault rate used by the experiment.
pub const CHAOS_RATE: f64 = 0.05;

/// Execute `plan` under the seeded chaos schedule with the given policy.
///
/// Every call replays the same events and the same per-attempt fault draws
/// (both derive from `seed` alone), so traces from different policies are
/// directly comparable.
pub fn run_chaos(
    world: &GridWorld,
    plan: &Plan,
    seed: u64,
    horizon: f64,
    policy: ReplanPolicy,
    replanner: Option<&dyn Fn(&GridWorld) -> Plan>,
) -> ExecutionTrace {
    let mut coord = Coordinator::new(world);
    for ev in chaos_schedule(world, seed, horizon) {
        coord.schedule(ev);
    }
    coord.policy(policy).fault_plan(FaultPlan::new(seed, CHAOS_RATE));
    coord.run(plan, replanner)
}

/// Ext-I: one fault schedule, three policies.
pub fn ext_chaos(scale: &ExpScale) -> TextTable {
    let sc = image_pipeline();
    let world = &sc.world;
    let cfg = grid_ga_config(scale);
    let plan = ga_plan(world, &cfg);

    // Calm run sets the horizon: faults land mid-execution, recovery within
    // reach of a degraded-but-patient coordinator.
    let calm = Coordinator::new(world).run(&plan, None);
    let horizon = (calm.makespan * 3.0).max(30.0);

    // A schedule whose failure misses every site the plan touches proves
    // nothing; scan forward from the master seed to the first schedule
    // that actually intersects the plan mid-execution. Deterministic given
    // `scale.seed`.
    let seed = (scale.seed..scale.seed + 64)
        .find(|&s| {
            chaos_schedule(world, s, horizon).iter().any(|ev| match ev {
                gaplan_grid::ExternalEvent::SiteFailure { time, site } => {
                    calm.tasks.iter().any(|task| task.site == *site && task.end > *time)
                }
                _ => false,
            })
        })
        .unwrap_or(scale.seed);

    let mut cfg_replan = cfg.clone();
    cfg_replan.seed ^= 0xFA17;
    let replanner = move |snapshot: &GridWorld| -> Plan { ga_plan(snapshot, &cfg_replan) };

    let mut t = TextTable::new(
        &format!("Ext-I. Chaos run: seeded fault schedule (seed {seed:#x}, rate {CHAOS_RATE}) vs replanning policy."),
        &["Policy", "Goal Fitness", "Makespan (s)", "Replans", "Faults", "Retried", "Rerouted"],
    );
    let mut row = |name: &str, tr: &ExecutionTrace| {
        t.row(vec![
            name.into(),
            f3(tr.goal_fitness),
            f1(tr.makespan),
            tr.replans.to_string(),
            tr.faults_injected.to_string(),
            tr.tasks_retried.to_string(),
            tr.tasks_rerouted.to_string(),
        ]);
    };
    row("calm (no faults)", &calm);
    let never = run_chaos(world, &plan, seed, horizon, ReplanPolicy::Never, None);
    row("Never (static script)", &never);
    let on_load = run_chaos(world, &plan, seed, horizon, ReplanPolicy::OnLoadChange, Some(&replanner));
    row("OnLoadChange (failure-blind)", &on_load);
    let on_failure = run_chaos(world, &plan, seed, horizon, ReplanPolicy::OnFailure, Some(&replanner));
    row("OnFailure (failure-aware)", &on_failure);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_same_seed_replays_identically() {
        let sc = image_pipeline();
        let plan = gaplan_grid::greedy_plan(&sc.world, 6).expect("greedy plans the pipeline");
        let a = run_chaos(&sc.world, &plan, 41, 90.0, ReplanPolicy::Never, None);
        let b = run_chaos(&sc.world, &plan, 41, 90.0, ReplanPolicy::Never, None);
        assert_eq!(a.goal_fitness, b.goal_fitness);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.faults_injected, b.faults_injected);
        assert_eq!(a.tasks_retried, b.tasks_retried);
    }

    #[test]
    fn chaos_table_compares_policies_under_one_schedule() {
        let t = ext_chaos(&ExpScale::quick());
        assert_eq!(t.rows.len(), 4);
        let fitness = |i: usize| t.rows[i][1].parse::<f64>().unwrap();
        assert_eq!(fitness(0), 1.0, "calm run must reach the goal: {:?}", t.rows);
        // Failure-awareness never does worse than the static script under
        // the identical schedule — and both terminate instead of spinning.
        assert!(fitness(3) >= fitness(1), "OnFailure must do at least as well as Never: {:?}", t.rows);
    }
}
