#![warn(missing_docs)]

//! # gaplan-bench
//!
//! The experiment harness: one function per table and figure of the paper,
//! plus the extension experiments listed in DESIGN.md. The `tables` binary
//! is a thin CLI over this library; integration tests call the same
//! functions with reduced budgets.

pub mod baseline_exp;
pub mod chaos_exp;
pub mod figures;
pub mod grid_exp;
pub mod hanoi_exp;
pub mod history_exp;
pub mod metaheuristic_exp;
pub mod runner;
pub mod seeding_exp;
pub mod sensitivity_exp;
pub mod table;
pub mod tile_exp;

/// Shared experiment scaling knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExpScale {
    /// Runs per configuration (paper: 10 for Hanoi, 50 for tiles).
    pub runs: usize,
    /// Generation budget multiplier in (0, 1]; 1.0 reproduces the paper,
    /// smaller values give quick smoke runs.
    pub budget: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExpScale {
    fn default() -> Self {
        ExpScale {
            runs: 0, // 0 = per-experiment paper default
            budget: 1.0,
            seed: 0x1dd5_2003,
        }
    }
}

impl ExpScale {
    /// A fast configuration for tests and smoke runs.
    pub fn quick() -> Self {
        ExpScale { runs: 3, budget: 0.2, seed: 0x1dd5_2003 }
    }

    /// Runs to execute, given the paper's default for this experiment.
    pub fn runs_or(&self, paper_default: usize) -> usize {
        if self.runs == 0 {
            paper_default
        } else {
            self.runs
        }
    }

    /// Scale a generation budget.
    pub fn gens(&self, paper_default: u32) -> u32 {
        ((f64::from(paper_default) * self.budget).round() as u32).max(5)
    }
}
