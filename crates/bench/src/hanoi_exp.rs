//! Towers of Hanoi experiments: Tables 1–2 (§4.1) and the Hanoi extension
//! experiments (crossover ablation, fitness-function ablation, phase-budget
//! sweep).

use gaplan_core::{Domain, OpId};
use gaplan_domains::Hanoi;
use gaplan_ga::{CrossoverKind, GaConfig, SelectionScheme};

use crate::runner::run_batch;
use crate::table::{f1, f3, TextTable};
use crate::ExpScale;

/// The paper's shared Hanoi GA configuration (Table 1). `initial_len` is
/// the optimal solution length `2^n − 1` (§4.1); `MaxLen` is five times
/// that (Table 2 discussion: single-phase lengths saturate near 5× the
/// optimum, and the multi-phase cap is "five times higher" again through
/// concatenation of 5 phases).
pub fn hanoi_config(n: usize, scale: &ExpScale) -> GaConfig {
    let optimal = (1usize << n) - 1;
    GaConfig {
        population_size: 200,
        crossover: CrossoverKind::Random,
        crossover_rate: 0.9,
        mutation_rate: 0.01,
        selection: SelectionScheme::Tournament(2),
        initial_len: optimal,
        max_len: 5 * optimal,
        seed: scale.seed,
        ..GaConfig::default()
    }
}

/// Table 1: parameter settings used in the Towers of Hanoi experiments.
pub fn table1(scale: &ExpScale) -> TextTable {
    let cfg = hanoi_config(5, scale);
    let mut t = TextTable::new(
        "Table 1. Parameter settings used in the Towers of Hanoi planning experiments.",
        &["Parameter", "Value"],
    );
    t.row(vec!["Population size".into(), cfg.population_size.to_string()]);
    t.row(vec!["Number of generations".into(), scale.gens(500).to_string()]);
    t.row(vec!["Crossover rate".into(), format!("{}", cfg.crossover_rate)]);
    t.row(vec!["Mutation rate".into(), format!("{}", cfg.mutation_rate)]);
    t.row(vec!["Selection scheme".into(), "Tournament (2)".into()]);
    t.row(vec!["Weight of goal fitness".into(), format!("{}", cfg.weights.goal)]);
    t.row(vec!["Weight of cost fitness".into(), format!("{}", cfg.weights.cost)]);
    t.row(vec!["Number of disks".into(), "5, 6, and 7".into()]);
    t.row(vec!["Number of phases in multi-phase GA".into(), "5".into()]);
    t
}

/// Table 2: single-phase vs multi-phase GA on 5/6/7 disks — average goal
/// fitness, average solution size, average generations to find a solution
/// (10 runs each in the paper).
pub fn table2(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let mut t = TextTable::new(
        "Table 2. Experimental results for the Towers of Hanoi problem.",
        &[
            "GA Type",
            "Number of Disks",
            "Average Goal Fitness",
            "Average Size of Solution",
            "Average Generations to Find a Solution",
            "Solved Runs",
        ],
    );
    for (ga_type, single) in [("Single-phase", true), ("Multi-phase", false)] {
        for n in [5usize, 6, 7] {
            let hanoi = Hanoi::new(n);
            let mut cfg =
                if single { hanoi_config(n, scale).single_phase() } else { hanoi_config(n, scale).multi_phase() };
            cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
            let (_, agg) = run_batch(&hanoi, &cfg, runs);
            t.row(vec![
                ga_type.into(),
                n.to_string(),
                f3(agg.avg_goal_fitness),
                f1(agg.avg_plan_len),
                f1(agg.avg_generations),
                format!("{}/{}", agg.solved_runs, agg.runs),
            ]);
        }
    }
    t
}

/// Ext-A: crossover ablation on Hanoi (the paper only ran random crossover
/// there; §4.2 showed the mechanisms differ on tiles).
pub fn ext_crossover_hanoi(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let n = 6;
    let hanoi = Hanoi::new(n);
    let mut t = TextTable::new(
        "Ext-A. Crossover ablation on the 6-disk Towers of Hanoi (multi-phase).",
        &["Crossover", "Avg Goal Fitness", "Avg Size", "Avg Generations", "Solved Runs"],
    );
    for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
        let mut cfg = hanoi_config(n, scale).multi_phase();
        cfg.crossover = kind;
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (_, agg) = run_batch(&hanoi, &cfg, runs);
        t.row(vec![
            kind.name().into(),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            f1(agg.avg_generations),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

/// A Hanoi wrapper with a configurable goal-fitness definition, for the
/// Ext-B fitness ablation (§4.1 closes: "good heuristic functions still
/// play important roles in improving the performance of our approach").
pub struct HanoiFitness {
    inner: Hanoi,
    variant: FitnessVariant,
}

/// Which goal-fitness definition to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitnessVariant {
    /// The paper's Eq. 5 (disk weight `2^i`).
    Weighted,
    /// Unweighted fraction of disks on the goal stake.
    Uniform,
    /// All-or-nothing: 1.0 iff goal.
    Exact,
}

impl HanoiFitness {
    /// Wrap an instance.
    pub fn new(n: usize, variant: FitnessVariant) -> Self {
        HanoiFitness { inner: Hanoi::new(n), variant }
    }
}

impl Domain for HanoiFitness {
    type State = <Hanoi as Domain>::State;

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }
    fn num_operations(&self) -> usize {
        self.inner.num_operations()
    }
    fn valid_operations(&self, state: &Self::State, out: &mut Vec<OpId>) {
        self.inner.valid_operations(state, out)
    }
    fn apply(&self, state: &Self::State, op: OpId) -> Self::State {
        self.inner.apply(state, op)
    }
    fn goal_fitness(&self, state: &Self::State) -> f64 {
        match self.variant {
            FitnessVariant::Weighted => self.inner.goal_fitness(state),
            FitnessVariant::Uniform => {
                let on_goal = state.iter().filter(|&&p| p == self.inner.goal_peg()).count();
                on_goal as f64 / state.len() as f64
            }
            FitnessVariant::Exact => {
                if state.iter().all(|&p| p == self.inner.goal_peg()) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
    fn op_name(&self, op: OpId) -> String {
        self.inner.op_name(op)
    }
}

/// Ext-B: goal-fitness-function ablation on 6-disk Hanoi.
pub fn ext_fitness(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let n = 6;
    let mut t = TextTable::new(
        "Ext-B. Goal-fitness ablation on the 6-disk Towers of Hanoi (multi-phase, random crossover).",
        &["Goal fitness", "Avg Goal Fitness (own scale)", "Avg Size", "Solved Runs"],
    );
    for (name, variant) in [
        ("weighted (Eq. 5)", FitnessVariant::Weighted),
        ("uniform disks", FitnessVariant::Uniform),
        ("exact (0/1)", FitnessVariant::Exact),
    ] {
        let domain = HanoiFitness::new(n, variant);
        let mut cfg = hanoi_config(n, scale).multi_phase();
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (_, agg) = run_batch(&domain, &cfg, runs);
        // the fitness column is each variant's own scale; the solved count
        // is the variant-independent comparison that matters
        t.row(vec![
            name.into(),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

/// Ext-C: phase-budget sweep on 6-disk Hanoi at a fixed total budget of 500
/// generations.
pub fn ext_phases(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let n = 6;
    let hanoi = Hanoi::new(n);
    let mut t = TextTable::new(
        "Ext-C. Phase-count sweep on the 6-disk Towers of Hanoi (total budget 500 generations).",
        &["Phases x Gens", "Avg Goal Fitness", "Avg Size", "Avg Generations", "Solved Runs"],
    );
    for (phases, gens) in [(1u32, 500u32), (2, 250), (5, 100), (10, 50), (25, 20)] {
        let mut cfg = hanoi_config(n, scale);
        cfg.max_phases = phases;
        cfg.generations_per_phase = scale.gens(gens);
        cfg.early_stop_on_solution = phases == 1;
        let (_, agg) = run_batch(&hanoi, &cfg, runs);
        t.row(vec![
            format!("{phases} x {gens}"),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            f1(agg.avg_generations),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_paper_parameters() {
        let t = table1(&ExpScale::default());
        let s = t.render();
        assert!(s.contains("200"));
        assert!(s.contains("0.9"));
        assert!(s.contains("0.01"));
        assert!(s.contains("Tournament (2)"));
    }

    #[test]
    fn table2_quick_smoke() {
        let t = table2(&ExpScale::quick());
        assert_eq!(t.rows.len(), 6); // 2 GA types x 3 disk counts
                                     // goal fitness column parses as f64 in [0,1]
        for row in &t.rows {
            let f: f64 = row[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn fitness_variants_disagree_off_goal() {
        let w = HanoiFitness::new(4, FitnessVariant::Weighted);
        let u = HanoiFitness::new(4, FitnessVariant::Uniform);
        let e = HanoiFitness::new(4, FitnessVariant::Exact);
        let state = vec![1u8, 0, 0, 1]; // smallest + largest on B
        assert!(w.goal_fitness(&state) > u.goal_fitness(&state));
        assert_eq!(e.goal_fitness(&state), 0.0);
        let goal = vec![1u8; 4];
        assert_eq!(w.goal_fitness(&goal), 1.0);
        assert_eq!(u.goal_fitness(&goal), 1.0);
        assert_eq!(e.goal_fitness(&goal), 1.0);
    }

    #[test]
    fn hanoi_config_uses_optimal_initial_len() {
        let cfg = hanoi_config(7, &ExpScale::default());
        assert_eq!(cfg.initial_len, 127);
        assert_eq!(cfg.max_len, 635);
        cfg.validate().unwrap();
    }
}
