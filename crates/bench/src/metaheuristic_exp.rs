//! Ext-H: GA vs simulated annealing vs (1+1)-EA at equal evaluation
//! budgets, all over the same indirect encoding — separating what the
//! *population + crossover* contribute from what the encoding contributes
//! (the paper's opening sentence puts GAs and simulated annealing in the
//! same toolbox; this measures the difference).

use gaplan_core::Domain;
use gaplan_domains::Hanoi;
use gaplan_ga::rng::derive_seed;
use gaplan_ga::{one_plus_one, simulated_annealing, AnnealConfig};

use crate::hanoi_exp::hanoi_config;
use crate::runner::run_batch;
use crate::table::{f1, f3, TextTable};
use crate::tile_exp::{tile_config, tile_instance};
use crate::ExpScale;

fn anneal_rows<D: Domain>(
    t: &mut TextTable,
    domain: &D,
    ga_cfg: &gaplan_ga::GaConfig,
    evaluations: u64,
    runs: usize,
    scale: &ExpScale,
) {
    for (name, simulated) in [("simulated annealing", true), ("(1+1)-EA", false)] {
        let mut solved = 0usize;
        let mut fit = 0.0;
        let mut len = 0.0;
        for run in 0..runs {
            let cfg = AnnealConfig {
                evaluations,
                seed: derive_seed(scale.seed, 0xA0 + run as u64),
                ..AnnealConfig::default()
            };
            let r =
                if simulated { simulated_annealing(domain, ga_cfg, &cfg) } else { one_plus_one(domain, ga_cfg, &cfg) };
            solved += usize::from(r.best.solves());
            fit += r.best.fitness.goal;
            len += r.best.plan_len() as f64;
        }
        t.row(vec![name.into(), f3(fit / runs as f64), f1(len / runs as f64), format!("{solved}/{runs}")]);
    }
}

/// Ext-H1: 6-disk Hanoi at a 100k-evaluation budget (= pop 200 × 500 gens).
pub fn ext_metaheuristics_hanoi(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let hanoi = Hanoi::new(6);
    let mut t = TextTable::new(
        "Ext-H1. Metaheuristics on the 6-disk Towers of Hanoi (equal evaluation budgets).",
        &["Method", "Avg Goal Fitness", "Avg Size", "Solved Runs"],
    );
    let mut ga_cfg = hanoi_config(6, scale).multi_phase();
    ga_cfg.generations_per_phase = scale.gens(ga_cfg.generations_per_phase);
    let (_, agg) = run_batch(&hanoi, &ga_cfg, runs);
    t.row(vec![
        "GA multi-phase".into(),
        f3(agg.avg_goal_fitness),
        f1(agg.avg_plan_len),
        format!("{}/{}", agg.solved_runs, agg.runs),
    ]);
    let budget =
        (ga_cfg.population_size as u64) * u64::from(ga_cfg.generations_per_phase) * u64::from(ga_cfg.max_phases);
    anneal_rows(&mut t, &hanoi, &ga_cfg, budget, runs, scale);
    t
}

/// Ext-H2: the Table-4 8-puzzle instance at the equivalent budget.
pub fn ext_metaheuristics_tile(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let instance = tile_instance(3, scale);
    let mut t = TextTable::new(
        "Ext-H2. Metaheuristics on the Table-4 8-puzzle instance (equal evaluation budgets).",
        &["Method", "Avg Goal Fitness", "Avg Size", "Solved Runs"],
    );
    let mut ga_cfg = tile_config(3, gaplan_ga::CrossoverKind::Mixed, scale);
    ga_cfg.generations_per_phase = scale.gens(ga_cfg.generations_per_phase);
    let (_, agg) = run_batch(&instance, &ga_cfg, runs);
    t.row(vec![
        "GA multi-phase (mixed)".into(),
        f3(agg.avg_goal_fitness),
        f1(agg.avg_plan_len),
        format!("{}/{}", agg.solved_runs, agg.runs),
    ]);
    let budget =
        (ga_cfg.population_size as u64) * u64::from(ga_cfg.generations_per_phase) * u64::from(ga_cfg.max_phases);
    anneal_rows(&mut t, &instance, &ga_cfg, budget, runs, scale);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metaheuristic_tables_have_three_methods() {
        let s = ExpScale::quick();
        let h = ext_metaheuristics_hanoi(&s);
        assert_eq!(h.rows.len(), 3);
        let t = ext_metaheuristics_tile(&s);
        assert_eq!(t.rows.len(), 3);
        for row in h.rows.iter().chain(&t.rows) {
            let f: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
