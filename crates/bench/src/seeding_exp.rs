//! Ext-G: population seeding strategies on Blocks World — the experiment
//! of Westerberg & Levine (paper ref. [22]), who found that "seeding
//! partial solutions and keeping some randomness in the initial population
//! appear to benefit GP performance" on Blocks World problems.

use gaplan_baselines::{greedy_best_first, GoalCount, SearchLimits};
use gaplan_domains::blocks_world;
use gaplan_ga::rng::derive_seed;
use gaplan_ga::{aggregate, GaConfig, MultiPhase, RunReport, SeedStrategy};
use std::time::Instant;

use crate::table::{f1, f3, TextTable};
use crate::ExpScale;

/// The Blocks World instance: 9 blocks in three towers, rearranged into
/// two interleaved towers (requires unstacking and careful ordering).
fn instance() -> gaplan_core::strips::StripsProblem {
    blocks_world(9, &vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]], &vec![vec![8, 4, 0, 6, 2], vec![5, 1, 7, 3]])
        .unwrap()
}

fn ga_cfg(scale: &ExpScale) -> GaConfig {
    GaConfig {
        population_size: 150,
        generations_per_phase: scale.gens(100),
        max_phases: 5,
        initial_len: 20,
        max_len: 100,
        seed: scale.seed,
        ..GaConfig::default()
    }
}

/// Ext-G: random vs greedy-walk vs biased-walk vs plan seeding.
pub fn ext_seeding(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let problem = instance();
    let mut t = TextTable::new(
        "Ext-G. Population seeding on 9-block Blocks World (3 towers -> 2 interleaved towers), multi-phase GA.",
        &["Seeding", "Avg Goal Fitness", "Avg Size", "Avg Gen of 1st Solution", "Solved Runs"],
    );

    // a reusable donor plan from the greedy baseline (the plan-reuse seed)
    let donor = greedy_best_first(&problem, &GoalCount, SearchLimits::default()).plan.map(|p| p.ops().to_vec());

    let strategies: Vec<(&str, Option<(SeedStrategy, f64)>)> = vec![
        ("none (random init)", None),
        ("greedy walks, 25%", Some((SeedStrategy::GreedyWalk, 0.25))),
        ("biased walks (0.7), 50%", Some((SeedStrategy::BiasedWalk { bias: 0.7 }, 0.5))),
        ("greedy-planner plan, 10%", donor.map(|p| (SeedStrategy::Plans(vec![p]), 0.1))),
    ];

    for (name, seeder) in strategies {
        let mut reports = Vec::with_capacity(runs);
        for run in 0..runs {
            let mut cfg = ga_cfg(scale);
            cfg.seed = derive_seed(scale.seed, run as u64 + 1);
            cfg.eval = gaplan_ga::EvalMode::Serial;
            let started = Instant::now();
            let mut driver = MultiPhase::new(&problem, cfg);
            if let Some((strategy, fraction)) = &seeder {
                driver = driver.with_seeder(strategy.clone(), *fraction);
            }
            let result = driver.run();
            reports.push(RunReport::from_result(&result, started.elapsed().as_secs_f64()));
        }
        let agg = aggregate(&reports, 5);
        t.row(vec![
            name.into(),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            agg.avg_first_solution_gen.map_or("-".into(), f1),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_experiment_produces_four_rows() {
        let t = ext_seeding(&ExpScale::quick());
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let f: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
