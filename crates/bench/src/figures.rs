//! Figures 1–3: the paper's state diagrams, rendered as ASCII art.

use gaplan_core::Domain;
use gaplan_domains::sliding_tile::render_board;
use gaplan_domains::{Hanoi, SlidingTile};

/// Figure 1: the initial state of the 5-disk Towers of Hanoi problem.
pub fn figure1() -> String {
    let h = Hanoi::new(5);
    format!("Figure 1. The initial state of the 5-disk Towers of Hanoi problem.\n\n{}", h.render(&h.initial_state()))
}

/// Figure 2: the goal state of the 5-disk Towers of Hanoi problem.
pub fn figure2() -> String {
    let h = Hanoi::new(5);
    format!("Figure 2. The goal state of the 5-disk Towers of Hanoi problem.\n\n{}", h.render(&vec![1u8; 5]))
}

/// Figure 3: (a) the reversed 15-puzzle board shown as the paper's initial
/// state illustration (unsolvable by the Johnson & Story criterion — the
/// paper cites that very result); (b) the goal state.
pub fn figure3() -> String {
    let a = render_board(4, &SlidingTile::reversed_board(4));
    let b = render_board(4, &SlidingTile::standard_goal(4));
    format!(
        "Figure 3. (a) An initial state of the 15-puzzle (illustration; unsolvable\nper Johnson & Story 1879). (b) The goal state.\n\n(a)\n{a}\n(b)\n{b}"
    )
}

/// All figures concatenated.
pub fn all_figures() -> String {
    format!("{}\n{}\n{}", figure1(), figure2(), figure3())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shows_full_stack_on_a() {
        let f = figure1();
        assert!(f.contains("Figure 1"));
        assert!(f.contains(&"=".repeat(11))); // largest disk
    }

    #[test]
    fn figure2_is_goal_on_b() {
        let f = figure2();
        assert!(f.contains("Figure 2"));
    }

    #[test]
    fn figure3_contains_both_boards() {
        let f = figure3();
        assert!(f.contains("(a)"));
        assert!(f.contains("(b)"));
        assert!(f.contains("15"));
        assert!(f.contains(" 1 "));
    }

    #[test]
    fn all_figures_concatenates() {
        let f = all_figures();
        assert!(f.contains("Figure 1") && f.contains("Figure 2") && f.contains("Figure 3"));
    }
}
