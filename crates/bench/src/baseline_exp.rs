//! Ext-D: GA versus the deterministic baselines, contextualizing the
//! related-work discussion (§2) with measurements: who solves what, with
//! which plan quality, at what search effort.

use std::time::Instant;

use gaplan_baselines::{
    astar, backward_chain, bfs, forward_chain, graphplan, greedy_best_first, hill_climb, idastar, random_walk,
    DisjointPdb, GoalCount, HAdd, HanoiLowerBound, LinearConflict, ManhattanH, SearchLimits, SearchResult,
};
use gaplan_domains::{blocks_world, Hanoi};
use gaplan_ga::rng::derive_seed;
use gaplan_ga::{MultiPhase, RunReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::hanoi_exp::hanoi_config;
use crate::runner::run_batch;
use crate::table::{f1, f2, TextTable};
use crate::tile_exp::{tile_config, tile_instance};
use crate::ExpScale;

fn search_row(name: &str, r: &SearchResult, secs: f64) -> Vec<String> {
    vec![
        name.into(),
        if r.is_solved() { "yes".into() } else { "no".into() },
        r.plan_len().map_or("-".into(), |l| l.to_string()),
        r.expanded.to_string(),
        f2(secs),
    ]
}

/// GA-vs-baselines on Towers of Hanoi.
pub fn ext_baselines_hanoi(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let mut t = TextTable::new(
        "Ext-D1. Planner comparison on the Towers of Hanoi.",
        &["Planner", "Solved", "Plan Length", "Nodes Expanded", "Seconds"],
    );
    for n in [5usize, 6, 7] {
        let hanoi = Hanoi::new(n);
        let limits = SearchLimits::default();

        let mut cfg = hanoi_config(n, scale).multi_phase();
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (reports, agg) = run_batch(&hanoi, &cfg, runs);
        // GA "nodes expanded" analogue: generations x population
        let evals = agg.avg_generations * cfg.population_size as f64;
        t.row(vec![
            format!("GA multi-phase (n={n}, {}/{} solved)", agg.solved_runs, agg.runs),
            if agg.solved_runs > 0 { "yes".into() } else { "no".into() },
            f1(avg_solved_len(&reports)),
            f1(evals),
            f2(agg.avg_seconds),
        ]);

        for (name, run) in [
            ("BFS", run_timed(|| bfs(&hanoi, limits))),
            ("A* (Hanoi LB)", run_timed(|| astar(&hanoi, &HanoiLowerBound, limits))),
            ("IDA* (Hanoi LB)", run_timed(|| idastar(&hanoi, &HanoiLowerBound, limits))),
            ("Hill-climb (Hanoi LB)", run_timed(|| hill_climb(&hanoi, &HanoiLowerBound, limits))),
            ("Random walk (5x opt)", {
                let mut rng = StdRng::seed_from_u64(derive_seed(scale.seed, n as u64));
                let steps = 5 * ((1 << n) - 1);
                run_timed(|| random_walk(&hanoi, &mut rng, steps))
            }),
        ] {
            let (r, secs) = run;
            t.row(search_row(&format!("{name} (n={n})"), &r, secs));
        }
    }
    t
}

/// GA-vs-baselines on the 8-puzzle instance used by Table 4.
pub fn ext_baselines_tile(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let n = 3;
    let instance = tile_instance(n, scale);
    let limits = SearchLimits::default();
    let mut t = TextTable::new(
        "Ext-D2. Planner comparison on the Table-4 8-puzzle instance.",
        &["Planner", "Solved", "Plan Length", "Nodes Expanded", "Seconds"],
    );

    let mut cfg = tile_config(n, gaplan_ga::CrossoverKind::Mixed, scale);
    cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
    let (reports, agg) = run_batch(&instance, &cfg, runs);
    t.row(vec![
        format!("GA multi-phase mixed ({}/{} solved)", agg.solved_runs, agg.runs),
        if agg.solved_runs > 0 { "yes".into() } else { "no".into() },
        f1(avg_solved_len(&reports)),
        f1(agg.avg_generations * cfg.population_size as f64),
        f2(agg.avg_seconds),
    ]);

    let pdb = DisjointPdb::standard_8puzzle(&instance);
    for (name, (r, secs)) in [
        ("BFS", run_timed(|| bfs(&instance, limits))),
        ("A* (Manhattan)", run_timed(|| astar(&instance, &ManhattanH, limits))),
        ("A* (Linear conflict)", run_timed(|| astar(&instance, &LinearConflict, limits))),
        ("A* (Disjoint PDB)", run_timed(|| astar(&instance, &pdb, limits))),
        ("IDA* (Linear conflict)", run_timed(|| idastar(&instance, &LinearConflict, limits))),
        ("Greedy best-first (MD)", run_timed(|| greedy_best_first(&instance, &ManhattanH, limits))),
        ("Hill-climb (MD)", run_timed(|| hill_climb(&instance, &ManhattanH, limits))),
        ("Random walk (5x init len)", {
            let mut rng = StdRng::seed_from_u64(derive_seed(scale.seed, 0xF00D));
            run_timed(|| random_walk(&instance, &mut rng, 145))
        }),
    ] {
        t.row(search_row(name, &r, secs));
    }
    t
}

/// Ext-D3: STRIPS planner comparison on a Blocks World instance — the only
/// arena where *all* substrates meet (Graphplan requires ground STRIPS).
pub fn ext_baselines_strips(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let problem = blocks_world(5, &vec![vec![0, 1, 2], vec![3, 4]], &vec![vec![4, 2, 0], vec![1, 3]]).unwrap();
    let limits = SearchLimits::default();
    let mut t = TextTable::new(
        "Ext-D3. Planner comparison on 5-block Blocks World (ground STRIPS).",
        &["Planner", "Solved", "Plan Length", "Nodes Expanded", "Seconds"],
    );

    let mut cfg = gaplan_ga::GaConfig {
        population_size: 150,
        generations_per_phase: scale.gens(100),
        max_phases: 5,
        initial_len: 12,
        max_len: 60,
        seed: scale.seed,
        ..gaplan_ga::GaConfig::default()
    };
    cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
    let (reports, agg) = run_batch(&problem, &cfg, runs);
    t.row(vec![
        format!("GA multi-phase ({}/{} solved)", agg.solved_runs, agg.runs),
        if agg.solved_runs > 0 { "yes".into() } else { "no".into() },
        f1(avg_solved_len(&reports)),
        f1(agg.avg_generations * cfg.population_size as f64),
        f2(agg.avg_seconds),
    ]);

    // chaining DFS can thrash for minutes at the default 2M-expansion cap;
    // bound it like the paper bounds its own deterministic comparisons
    let chain_limits = SearchLimits { max_expansions: 100_000, max_states: 200_000 };
    for (name, (r, secs)) in [
        ("Graphplan", run_timed(|| graphplan(&problem, limits))),
        ("BFS", run_timed(|| bfs(&problem, limits))),
        ("Forward chaining", run_timed(|| forward_chain(&problem, chain_limits))),
        ("Backward chaining", run_timed(|| backward_chain(&problem, chain_limits))),
        ("Greedy best-first (goal count)", run_timed(|| greedy_best_first(&problem, &GoalCount, limits))),
        ("HSP-style hill-climb (h_add)", run_timed(|| hill_climb(&problem, &HAdd, limits))),
        ("HSP2-style best-first (h_add)", run_timed(|| greedy_best_first(&problem, &HAdd, limits))),
    ] {
        t.row(search_row(name, &r, secs));
    }
    t
}

fn avg_solved_len(reports: &[RunReport]) -> f64 {
    let solved: Vec<&RunReport> = reports.iter().filter(|r| r.solved).collect();
    if solved.is_empty() {
        return 0.0;
    }
    solved.iter().map(|r| r.plan_len as f64).sum::<f64>() / solved.len() as f64
}

fn run_timed<F: FnOnce() -> SearchResult>(f: F) -> (SearchResult, f64) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}

/// A single GA run on a domain (used by integration tests to cross-check
/// against baselines).
pub fn ga_single_run<D: gaplan_core::Domain>(
    domain: &D,
    cfg: &gaplan_ga::GaConfig,
) -> gaplan_ga::MultiPhaseResult<D::State> {
    MultiPhase::new(domain, cfg.clone()).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hanoi_comparison_quick() {
        let t = ext_baselines_hanoi(&ExpScale::quick());
        // 3 disk sizes x 6 planners
        assert_eq!(t.rows.len(), 18);
        // BFS and A* rows for n=5 must show the optimal 31
        let bfs_row = t.rows.iter().find(|r| r[0].starts_with("BFS (n=5)")).unwrap();
        assert_eq!(bfs_row[2], "31");
        let astar_row = t.rows.iter().find(|r| r[0].starts_with("A* (Hanoi LB) (n=5)")).unwrap();
        assert_eq!(astar_row[2], "31");
    }
}
