//! Ext-F: sensitivity of the GA to its main knobs (mutation rate,
//! tournament size, state-match mode) on the 6-disk Towers of Hanoi.

use gaplan_domains::Hanoi;
use gaplan_ga::{CostFitnessMode, CrossoverKind, GoalEval, SelectionScheme, StateMatchMode};

use crate::hanoi_exp::hanoi_config;
use crate::runner::run_batch;
use crate::table::{f1, f3, TextTable};
use crate::tile_exp::{tile_config, tile_instance};
use crate::ExpScale;

/// Mutation-rate sweep.
pub fn ext_mutation(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let hanoi = Hanoi::new(6);
    let mut t = TextTable::new(
        "Ext-F1. Mutation-rate sensitivity (6-disk Hanoi, multi-phase, random crossover).",
        &["Mutation Rate", "Avg Goal Fitness", "Avg Size", "Solved Runs"],
    );
    for rate in [0.0, 0.001, 0.01, 0.05, 0.2] {
        let mut cfg = hanoi_config(6, scale).multi_phase();
        cfg.mutation_rate = rate;
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (_, agg) = run_batch(&hanoi, &cfg, runs);
        t.row(vec![
            format!("{rate}"),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

/// Selection-scheme sweep.
pub fn ext_selection(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let hanoi = Hanoi::new(6);
    let mut t = TextTable::new(
        "Ext-F2. Selection-scheme sensitivity (6-disk Hanoi, multi-phase).",
        &["Selection", "Avg Goal Fitness", "Avg Size", "Solved Runs"],
    );
    for (name, sel) in [
        ("tournament(2)", SelectionScheme::Tournament(2)),
        ("tournament(4)", SelectionScheme::Tournament(4)),
        ("tournament(8)", SelectionScheme::Tournament(8)),
        ("roulette", SelectionScheme::Roulette),
        ("rank", SelectionScheme::Rank),
    ] {
        let mut cfg = hanoi_config(6, scale).multi_phase();
        cfg.selection = sel;
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (_, agg) = run_batch(&hanoi, &cfg, runs);
        t.row(vec![
            name.into(),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

/// State-match-mode ablation for state-aware crossover (DESIGN.md note 6).
pub fn ext_state_match(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let hanoi = Hanoi::new(6);
    let mut t = TextTable::new(
        "Ext-F3. State-match rule for state-aware crossover (6-disk Hanoi, multi-phase).",
        &["Match rule", "Avg Goal Fitness", "Avg Size", "Solved Runs"],
    );
    for (name, mode) in [("exact state", StateMatchMode::ExactState), ("valid-op set", StateMatchMode::ValidOpSet)] {
        let mut cfg = hanoi_config(6, scale).multi_phase();
        cfg.crossover = CrossoverKind::StateAware;
        cfg.state_match = mode;
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (_, agg) = run_batch(&hanoi, &cfg, runs);
        t.row(vec![
            name.into(),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

/// Goal-evaluation semantics ablation: the strict final-state reading of
/// §3.3 versus the calibrated best-prefix reading (see EXPERIMENTS.md).
pub fn ext_goal_eval(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let instance = tile_instance(3, scale);
    let mut t = TextTable::new(
        "Ext-F4. Goal-evaluation semantics (Table-4 8-puzzle instance, multi-phase, random crossover).",
        &["Semantics", "Avg Goal Fitness", "Avg Size", "Avg Generations", "Solved Runs"],
    );
    for (name, eval, trunc) in [
        ("final-state, full decode", GoalEval::FinalState, false),
        ("final-state, truncate at goal", GoalEval::FinalState, true),
        ("best-prefix, truncate at goal", GoalEval::BestPrefix, true),
    ] {
        let mut cfg = tile_config(3, CrossoverKind::Random, scale);
        cfg.goal_eval = eval;
        cfg.truncate_at_goal = trunc;
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (_, agg) = run_batch(&instance, &cfg, runs);
        t.row(vec![
            name.into(),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            f1(agg.avg_generations),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

/// Elitism ablation: the reconstruction keeps one elite per generation; the
/// strict generational reading keeps none.
pub fn ext_elitism(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let hanoi = Hanoi::new(6);
    let mut t = TextTable::new(
        "Ext-F5. Elitism (6-disk Hanoi, multi-phase, random crossover).",
        &["Elites", "Avg Goal Fitness", "Avg Size", "Avg Generations", "Solved Runs"],
    );
    for elites in [0usize, 1, 2, 10] {
        let mut cfg = hanoi_config(6, scale).multi_phase();
        cfg.elitism = elites;
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (_, agg) = run_batch(&hanoi, &cfg, runs);
        t.row(vec![
            elites.to_string(),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            f1(agg.avg_generations),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

/// Eq. 2 reading ablation: linear length normalization vs the reciprocal
/// `1/len` (which creates the empty-plan attractor described in
/// `CostFitnessMode`).
pub fn ext_cost_fitness(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(10);
    let instance = tile_instance(3, scale);
    let mut t = TextTable::new(
        "Ext-F6. Cost-fitness reading of Eq. 2 (Table-4 8-puzzle instance, multi-phase).",
        &["F_cost", "Avg Goal Fitness", "Avg Size", "Solved Runs"],
    );
    for (name, mode) in [
        ("1 - len/MaxLen (linear)", CostFitnessMode::LinearLength),
        ("1/len (reciprocal)", CostFitnessMode::InverseLength),
        ("none (goal only)", CostFitnessMode::Zero),
    ] {
        let mut cfg = tile_config(3, CrossoverKind::Random, scale);
        cfg.cost_fitness = mode;
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (_, agg) = run_batch(&instance, &cfg, runs);
        t.row(vec![
            name.into(),
            f3(agg.avg_goal_fitness),
            f1(agg.avg_plan_len),
            format!("{}/{}", agg.solved_runs, agg.runs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_have_expected_row_counts() {
        let s = ExpScale::quick();
        assert_eq!(ext_mutation(&s).rows.len(), 5);
        assert_eq!(ext_selection(&s).rows.len(), 5);
        assert_eq!(ext_state_match(&s).rows.len(), 2);
        assert_eq!(ext_goal_eval(&s).rows.len(), 3);
        assert_eq!(ext_elitism(&s).rows.len(), 4);
        assert_eq!(ext_cost_fitness(&s).rows.len(), 3);
    }
}
