//! Plain-text table rendering and JSON persistence for experiment output.

use std::fmt::Write as _;

use serde::Serialize;

/// A rendered experiment table.
#[derive(Debug, Clone, Serialize)]
pub struct TextTable {
    /// Table title (e.g. "Table 2. Experimental results for the Towers of
    /// Hanoi problem").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let line = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        line(&mut out);
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(out, "| {h:w$} ");
        }
        out.push_str("|\n");
        line(&mut out);
        for row in &self.rows {
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(out, "| {cell:>w$} ");
            }
            out.push_str("|\n");
        }
        line(&mut out);
        out
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new("Table X", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.345".into()]);
        let s = t.render();
        assert!(s.contains("Table X"));
        assert!(s.contains("| name"));
        assert!(s.contains("longer"));
        // all rows have the same width
        let widths: Vec<usize> = s.lines().skip(1).map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_roundtrip_shape() {
        let mut t = TextTable::new("T", &["a"]);
        t.row(vec!["x".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\""));
        assert!(j.contains("\"rows\""));
    }

    #[test]
    fn float_formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.005), "1.00"); // bankers-adjacent, but stable
    }
}
