//! Sliding-tile puzzle experiments: Tables 3–5 (§4.2).
//!
//! Instance choice: the paper's Figure 3(a) (reversed 15-puzzle) is
//! unsolvable by the Johnson & Story criterion, and the paper does not
//! state which instances its 50 runs used. We therefore use one *fixed*
//! uniformly-random solvable instance per board size, generated from the
//! experiment master seed, so that runs differ only in their GA seed —
//! matching "each individual run of the GA was executed using a different
//! random seed".

use gaplan_domains::SlidingTile;
use gaplan_ga::rng::derive_seed;
use gaplan_ga::{CrossoverKind, GaConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::runner::run_batch;
use crate::table::{f2, f3, TextTable};
use crate::ExpScale;

/// Initial individual length (§4.2): `n² · log₂(n²)`, "the number of
/// comparisons needed to sort a set of n² values".
pub fn tile_initial_len(n: usize) -> usize {
    let cells = (n * n) as f64;
    (cells * cells.log2()).ceil() as usize
}

/// The paper's tile GA configuration (Table 3) for board side `n`.
pub fn tile_config(n: usize, crossover: CrossoverKind, scale: &ExpScale) -> GaConfig {
    let initial = tile_initial_len(n);
    GaConfig {
        population_size: 200,
        crossover,
        crossover_rate: 0.9,
        mutation_rate: 0.01,
        initial_len: initial,
        max_len: 5 * initial,
        seed: scale.seed,
        ..GaConfig::default()
    }
    .multi_phase()
}

/// The fixed per-size instance used by Tables 4–5.
pub fn tile_instance(n: usize, scale: &ExpScale) -> SlidingTile {
    let mut rng = StdRng::seed_from_u64(derive_seed(scale.seed, 0xB0A7D + n as u64));
    SlidingTile::random_solvable(n, &mut rng)
}

/// Table 3: parameter settings for the Sliding-tile puzzle experiments.
pub fn table3(scale: &ExpScale) -> TextTable {
    let cfg = tile_config(3, CrossoverKind::Random, scale);
    let mut t =
        TextTable::new("Table 3. Parameter settings for the Sliding-tile puzzle experiments.", &["Parameter", "Value"]);
    t.row(vec!["Population size".into(), cfg.population_size.to_string()]);
    t.row(vec!["Number of generations".into(), scale.gens(500).to_string()]);
    t.row(vec!["Crossover type".into(), "Random / State-aware / Mixed".into()]);
    t.row(vec!["Crossover rate".into(), format!("{}", cfg.crossover_rate)]);
    t.row(vec!["Mutation rate".into(), format!("{}", cfg.mutation_rate)]);
    t.row(vec!["Selection scheme".into(), "Tournament (2)".into()]);
    t.row(vec!["Weight of goal fitness".into(), format!("{}", cfg.weights.goal)]);
    t.row(vec!["Weight of cost fitness".into(), format!("{}", cfg.weights.cost)]);
    t.row(vec!["Board size (n)".into(), "3 and 4".into()]);
    t.row(vec!["Number of phases in multi-phase GA".into(), "5".into()]);
    t
}

/// Table 4: the three crossover mechanisms on 9 and 16 tiles — average goal
/// fitness, average solution size, number of runs (of 50) that found a
/// valid solution, and average wall-clock time per run.
pub fn table4(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(50);
    let mut t = TextTable::new(
        "Table 4. Experimental results for the Sliding-tile puzzle.",
        &[
            "Type of Crossover",
            "Number of Tiles",
            "Average Goal Fitness",
            "Average Size of Solution",
            "# Runs That Find a Valid Solution",
            "Average Time (seconds)",
        ],
    );
    for kind in [CrossoverKind::StateAware, CrossoverKind::Random, CrossoverKind::Mixed] {
        for n in [3usize, 4] {
            let instance = tile_instance(n, scale);
            let mut cfg = tile_config(n, kind, scale);
            cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
            let (_, agg) = run_batch(&instance, &cfg, runs);
            t.row(vec![
                kind.name().into(),
                (n * n).to_string(),
                f3(agg.avg_goal_fitness),
                f2(agg.avg_plan_len),
                format!("{}", agg.solved_runs),
                f2(agg.avg_seconds),
            ]);
        }
    }
    t
}

/// Table 5: the phase in which the first valid solution was found, per
/// crossover mechanism, for the 3×3 board.
pub fn table5(scale: &ExpScale) -> TextTable {
    let runs = scale.runs_or(50);
    let n = 3;
    let mut t = TextTable::new(
        "Table 5. Runs finding a valid solution in each phase (3x3 board).",
        &["Phase", "Random", "State-aware", "Mixed"],
    );
    let mut histograms = Vec::new();
    let mut avg_first = Vec::new();
    for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed] {
        let instance = tile_instance(n, scale);
        let mut cfg = tile_config(n, kind, scale);
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let (_, agg) = run_batch(&instance, &cfg, runs);
        histograms.push(agg.solved_per_phase);
        avg_first.push(agg.avg_first_solution_gen);
    }
    let phases = histograms.iter().map(Vec::len).max().unwrap_or(0);
    for p in 0..phases {
        t.row(vec![
            (p + 1).to_string(),
            histograms[0].get(p).copied().unwrap_or(0).to_string(),
            histograms[1].get(p).copied().unwrap_or(0).to_string(),
            histograms[2].get(p).copied().unwrap_or(0).to_string(),
        ]);
    }
    // finer-grained than the paper: mean cumulative generation of the first
    // valid solution (our calibrated GA solves the 8-puzzle within phase 1
    // for every mechanism, so the generation count is what discriminates)
    let fmt = |v: Option<f64>| v.map_or("-".to_string(), |g| format!("{g:.1}"));
    t.row(vec!["avg gen of 1st solution".into(), fmt(avg_first[0]), fmt(avg_first[1]), fmt(avg_first[2])]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::Domain;

    #[test]
    fn initial_len_formula() {
        // 3x3: 9 * log2(9) = 28.53 -> 29; 4x4: 16 * 4 = 64
        assert_eq!(tile_initial_len(3), 29);
        assert_eq!(tile_initial_len(4), 64);
    }

    #[test]
    fn tile_config_is_valid_and_multiphase() {
        let cfg = tile_config(4, CrossoverKind::Mixed, &ExpScale::default());
        cfg.validate().unwrap();
        assert_eq!(cfg.max_phases, 5);
        assert_eq!(cfg.generations_per_phase, 100);
        assert_eq!(cfg.max_len, 320);
    }

    #[test]
    fn tile_instance_is_fixed_per_scale() {
        let s = ExpScale::default();
        let a = tile_instance(3, &s);
        let b = tile_instance(3, &s);
        assert_eq!(a.initial_state(), b.initial_state());
        let mut other = s;
        other.seed ^= 1;
        let c = tile_instance(3, &other);
        assert_ne!(a.initial_state(), c.initial_state());
    }

    #[test]
    fn table5_quick_smoke_has_phase_rows() {
        let t = table5(&ExpScale::quick());
        assert_eq!(t.rows.len(), 6); // 5 phase rows + avg-generation row
                                     // phase counts sum to at most runs per column
        for col in 1..=3 {
            let total: usize = t.rows.iter().take(5).map(|r| r[col].parse::<usize>().unwrap()).sum();
            assert!(total <= 3);
        }
        assert_eq!(t.rows[5][0], "avg gen of 1st solution");
    }
}
