//! Convergence histories: per-generation statistics for representative
//! runs — the data behind the convergence figures a modern write-up of the
//! paper would include (the original reports only endpoint aggregates).

use gaplan_domains::Hanoi;
use gaplan_ga::{CrossoverKind, MultiPhase};

use crate::hanoi_exp::hanoi_config;
use crate::table::{f1, f3, TextTable};
use crate::tile_exp::{tile_config, tile_instance};
use crate::ExpScale;

/// Sample a run's history every `stride` generations into table rows.
fn sample_history(t: &mut TextTable, label: &str, history: &[gaplan_ga::GenStats], stride: usize) {
    for s in history.iter().step_by(stride.max(1)) {
        t.row(vec![
            label.into(),
            s.generation.to_string(),
            f3(s.best_goal),
            f3(s.mean_total),
            f1(s.mean_len),
            s.solvers.to_string(),
        ]);
    }
}

/// Convergence of one multi-phase run per domain/crossover combination.
/// Generation numbers restart at each phase boundary (the paper's phases
/// are independent GA runs).
pub fn history(scale: &ExpScale) -> TextTable {
    let mut t = TextTable::new(
        "History. Per-generation convergence of representative multi-phase runs (sampled every 10 generations).",
        &["Run", "Generation", "Best Goal Fitness", "Mean Total Fitness", "Mean Plan Length", "Solvers"],
    );

    let hanoi = Hanoi::new(6);
    let mut cfg = hanoi_config(6, scale).multi_phase();
    cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
    let r = MultiPhase::new(&hanoi, cfg).run();
    sample_history(&mut t, "hanoi6/random", &r.history, 10);

    for kind in [CrossoverKind::Random, CrossoverKind::StateAware] {
        let instance = tile_instance(3, scale);
        let mut cfg = tile_config(3, kind, scale);
        cfg.generations_per_phase = scale.gens(cfg.generations_per_phase);
        let r = MultiPhase::new(&instance, cfg).run();
        sample_history(&mut t, &format!("tile3/{}", kind.name()), &r.history, 10);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_has_rows_for_each_run() {
        let t = history(&ExpScale::quick());
        assert!(t.rows.len() >= 3);
        let labels: std::collections::HashSet<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(labels.contains("hanoi6/random"));
        assert!(labels.contains("tile3/state-aware"));
        // best goal fitness is monotone within a run only per-phase; just
        // check the values parse and are normalized
        for row in &t.rows {
            let f: f64 = row[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&f));
        }
    }
}
