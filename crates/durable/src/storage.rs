//! Injectable byte storage: a real filesystem backend and an in-memory chaos
//! backend with seeded fault injection.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Named byte-blob storage used by journals and snapshots.
///
/// Implementations must make `append` durable-ordered (data is flushed to the
/// backend before the call returns) and `write_atomic` all-or-nothing: after
/// a crash the file holds either the old or the new contents, never a mix.
pub trait Storage: Send + Sync {
    /// Read the full contents of `name`. Missing files are an error of kind
    /// [`io::ErrorKind::NotFound`].
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Append `data` to `name` (creating it if absent) and flush.
    fn append(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Atomically replace the contents of `name` with `data`.
    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()>;
    /// Truncate `name` to `len` bytes. A no-op if already shorter.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
    /// Force `name`'s contents to durable media (fsync). Missing files are
    /// silently ignored so sync-after-drain works on never-written journals.
    fn sync(&self, name: &str) -> io::Result<()>;
    /// Whether `name` exists.
    fn exists(&self, name: &str) -> bool;
    /// Remove `name`. A no-op if absent.
    fn remove(&self, name: &str) -> io::Result<()>;
}

/// Filesystem-backed [`Storage`] rooted at a directory.
pub struct FsStorage {
    root: PathBuf,
}

impl FsStorage {
    /// Open (creating if needed) a storage root at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The root directory backing this storage.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Storage for FsStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        fs::read(self.path(name))
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let mut file = OpenOptions::new().create(true).append(true).open(self.path(name))?;
        file.write_all(data)?;
        file.flush()?;
        // Durable-ordered: the record must hit the disk before the caller
        // acts on it (enqueues the job, replies to the client, ...).
        file.sync_data()
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut file = File::create(&tmp)?;
            file.write_all(data)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, self.path(name))
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let file = OpenOptions::new().write(true).open(self.path(name))?;
        if file.metadata()?.len() > len {
            file.set_len(len)?;
            file.sync_data()?;
        }
        Ok(())
    }

    fn sync(&self, name: &str) -> io::Result<()> {
        match File::open(self.path(name)) {
            Ok(file) => file.sync_all(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// What a [`FaultPlan`] does to a particular write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A prefix of the data is persisted, then the write fails with an error
    /// — the classic torn write a crash mid-append produces.
    Torn,
    /// A prefix of the data is persisted but the write *reports success*.
    /// Models lying hardware / lost cache lines; only recovery-time
    /// checksums can catch it.
    Short,
    /// Nothing is persisted and the write fails with an error.
    Error,
}

/// Seeded, deterministic schedule of storage faults for [`MemStorage`].
///
/// Each write (append or atomic-write) draws one pseudo-random word from a
/// splitmix64 stream keyed by `seed` and the write counter; `rate_percent`
/// of writes fault, cycling through torn/short/error kinds. The same seed
/// always yields the same fault schedule, so chaos tests are reproducible.
pub struct FaultPlan {
    seed: u64,
    rate_percent: u64,
    counter: AtomicU64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that faults `rate_percent`% of writes (clamped to 0..=100),
    /// deterministically derived from `seed`.
    pub fn new(seed: u64, rate_percent: u64) -> Self {
        Self { seed, rate_percent: rate_percent.min(100), counter: AtomicU64::new(0) }
    }

    /// Decide the fate of the next write over `len` payload bytes.
    /// Returns `None` (write proceeds normally) or the fault to inject plus
    /// the number of prefix bytes to persist.
    fn next_fault(&self, len: usize) -> Option<(FaultKind, usize)> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let word = splitmix64(self.seed ^ n.wrapping_mul(0xA076_1D64_78BD_642F));
        if word % 100 >= self.rate_percent {
            return None;
        }
        let kind = match (word >> 8) % 3 {
            0 => FaultKind::Torn,
            1 => FaultKind::Short,
            _ => FaultKind::Error,
        };
        let keep = if len == 0 { 0 } else { ((word >> 16) as usize) % len };
        Some((kind, keep))
    }
}

/// In-memory [`Storage`] with optional seeded fault injection. Reads are
/// always faithful: faults corrupt what gets *persisted*, not what is read
/// back, mirroring real torn-write crashes.
pub struct MemStorage {
    files: Mutex<HashMap<String, Vec<u8>>>,
    faults: Option<FaultPlan>,
}

impl MemStorage {
    /// A fault-free in-memory storage.
    pub fn new() -> Self {
        Self { files: Mutex::new(HashMap::new()), faults: None }
    }

    /// An in-memory storage whose writes fault per `plan`.
    pub fn with_faults(plan: FaultPlan) -> Self {
        Self { files: Mutex::new(HashMap::new()), faults: Some(plan) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Vec<u8>>> {
        // Chaos tests may panic while holding the lock; the data is still
        // coherent (single HashMap op), so recover the guard.
        self.files.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Direct snapshot of a file's bytes (test helper; bypasses faults).
    pub fn raw(&self, name: &str) -> Option<Vec<u8>> {
        self.lock().get(name).cloned()
    }

    /// Directly set a file's bytes (test helper; bypasses faults).
    pub fn set_raw(&self, name: &str, data: Vec<u8>) {
        self.lock().insert(name.to_string(), data);
    }

    fn faulted_write(&self, name: &str, data: &[u8], replace: bool) -> io::Result<()> {
        let fault = self.faults.as_ref().and_then(|p| p.next_fault(data.len()));
        match fault {
            None => {
                let mut files = self.lock();
                let entry = files.entry(name.to_string()).or_default();
                if replace {
                    entry.clear();
                }
                entry.extend_from_slice(data);
                Ok(())
            }
            Some((FaultKind::Error, _)) => Err(io::Error::other("injected io error")),
            Some((kind, keep)) => {
                // Atomic replacement is all-or-nothing: a torn/short fault
                // during write_atomic leaves the OLD contents intact.
                if !replace {
                    let mut files = self.lock();
                    let entry = files.entry(name.to_string()).or_default();
                    entry.extend_from_slice(&data[..keep]);
                }
                match kind {
                    FaultKind::Torn => Err(io::Error::other("injected torn write")),
                    FaultKind::Short => Ok(()),
                    FaultKind::Error => unreachable!(),
                }
            }
        }
    }
}

impl Default for MemStorage {
    fn default() -> Self {
        Self::new()
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.lock().get(name).cloned().ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))
    }

    fn append(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.faulted_write(name, data, false)
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> io::Result<()> {
        self.faulted_write(name, data, true)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut files = self.lock();
        let entry = files.get_mut(name).ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, name.to_string()))?;
        if entry.len() as u64 > len {
            entry.truncate(len as usize);
        }
        Ok(())
    }

    fn sync(&self, _name: &str) -> io::Result<()> {
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.lock().contains_key(name)
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        self.lock().remove(name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_roundtrip() {
        let s = MemStorage::new();
        assert!(!s.exists("a"));
        assert_eq!(s.read("a").unwrap_err().kind(), io::ErrorKind::NotFound);
        s.append("a", b"hello ").unwrap();
        s.append("a", b"world").unwrap();
        assert_eq!(s.read("a").unwrap(), b"hello world");
        s.write_atomic("a", b"fresh").unwrap();
        assert_eq!(s.read("a").unwrap(), b"fresh");
        s.truncate("a", 2).unwrap();
        assert_eq!(s.read("a").unwrap(), b"fr");
        s.remove("a").unwrap();
        assert!(!s.exists("a"));
        s.remove("a").unwrap();
    }

    #[test]
    fn fs_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("gaplan-durable-test-{}", std::process::id()));
        let s = FsStorage::new(&dir).unwrap();
        s.remove("f").unwrap();
        s.append("f", b"abc").unwrap();
        s.append("f", b"def").unwrap();
        assert_eq!(s.read("f").unwrap(), b"abcdef");
        s.write_atomic("f", b"xyz").unwrap();
        assert_eq!(s.read("f").unwrap(), b"xyz");
        s.truncate("f", 1).unwrap();
        assert_eq!(s.read("f").unwrap(), b"x");
        s.sync("f").unwrap();
        s.sync("missing").unwrap();
        assert!(s.exists("f"));
        s.remove("f").unwrap();
        assert!(!s.exists("f"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_is_deterministic_and_respects_rate() {
        let a = FaultPlan::new(7, 40);
        let b = FaultPlan::new(7, 40);
        let seq_a: Vec<_> = (0..64).map(|_| a.next_fault(100)).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.next_fault(100)).collect();
        assert_eq!(seq_a, seq_b);
        let faulted = seq_a.iter().filter(|f| f.is_some()).count();
        assert!(faulted > 0 && faulted < 64, "rate 40% should fault some but not all: {faulted}");
        let zero = FaultPlan::new(7, 0);
        assert!((0..64).all(|_| zero.next_fault(100).is_none()));
        let full = FaultPlan::new(7, 100);
        assert!((0..64).all(|_| full.next_fault(100).is_some()));
    }

    #[test]
    fn torn_write_persists_prefix_and_errors() {
        // Scan seeds until the first write faults as Torn with a nonzero keep.
        for seed in 0..1000 {
            let plan = FaultPlan::new(seed, 100);
            if let Some((FaultKind::Torn, keep)) = plan.next_fault(8) {
                if keep == 0 {
                    continue;
                }
                let s = MemStorage::with_faults(FaultPlan::new(seed, 100));
                let err = s.append("j", b"12345678").unwrap_err();
                assert_eq!(err.to_string(), "injected torn write");
                assert_eq!(s.raw("j").unwrap(), b"12345678"[..keep].to_vec());
                return;
            }
        }
        panic!("no torn fault found in 1000 seeds");
    }

    #[test]
    fn short_write_persists_prefix_and_reports_success() {
        for seed in 0..1000 {
            let plan = FaultPlan::new(seed, 100);
            if let Some((FaultKind::Short, keep)) = plan.next_fault(8) {
                let s = MemStorage::with_faults(FaultPlan::new(seed, 100));
                s.append("j", b"12345678").unwrap();
                assert_eq!(s.raw("j").unwrap_or_default(), b"12345678"[..keep].to_vec());
                return;
            }
        }
        panic!("no short fault found in 1000 seeds");
    }

    #[test]
    fn atomic_write_fault_preserves_old_contents() {
        let s = MemStorage::new();
        s.append("f", b"old").unwrap();
        for seed in 0..1000 {
            let plan = FaultPlan::new(seed, 100);
            if let Some((FaultKind::Torn, _)) = plan.next_fault(8) {
                let chaos = MemStorage::with_faults(FaultPlan::new(seed, 100));
                chaos.set_raw("f", b"old".to_vec());
                let _ = chaos.write_atomic("f", b"newnewnw");
                assert_eq!(chaos.raw("f").unwrap(), b"old", "atomic write must not tear");
                return;
            }
        }
        panic!("no torn fault found in 1000 seeds");
    }
}
