//! Crash-safe persistence primitives for the planning stack.
//!
//! This crate is deliberately independent of every other workspace crate: it
//! deals only in bytes. Callers serialize their own records (the service uses
//! JSON) and hand them to a [`Journal`], which frames each record as
//! `[u32 len_le][u32 crc32_le][payload]` and appends it through an injectable
//! [`Storage`] backend. Recovery ([`Journal::replay`]) walks the frames,
//! stops at the first length/checksum violation, and reports how many bytes
//! of corrupt tail were discarded — it never panics on garbage input.
//!
//! Two backends ship with the crate:
//!
//! * [`FsStorage`] — real files under a root directory, with atomic
//!   whole-file replacement (`write_atomic`) via temp-file + rename.
//! * [`MemStorage`] — an in-memory map with a seeded [`FaultPlan`] that can
//!   inject torn writes (prefix persisted, error reported), short writes
//!   (prefix persisted, success reported — the nasty silent case), and plain
//!   IO errors. Recovery code is tested against this chaos backend.

#![warn(missing_docs)]

pub mod checksum;
pub mod journal;
pub mod snapshot;
pub mod storage;

pub use checksum::crc32;
pub use journal::{decode_frames, frame, Journal, Replay, MAX_RECORD_LEN};
pub use snapshot::{load_snapshot, save_snapshot};
pub use storage::{FaultKind, FaultPlan, FsStorage, MemStorage, Storage};
