//! Whole-file checksummed snapshots with atomic replacement.
//!
//! A snapshot is a single journal frame (`[len][crc][payload]`) written via
//! [`Storage::write_atomic`], so a crash during save leaves the previous
//! snapshot intact, and a corrupt snapshot is detected on load rather than
//! trusted.

use std::io;
use std::sync::Arc;

use crate::journal::{decode_frames, frame};
use crate::storage::Storage;

/// Atomically write `payload` as a checksummed snapshot file.
pub fn save_snapshot(storage: &Arc<dyn Storage>, name: &str, payload: &[u8]) -> io::Result<()> {
    storage.write_atomic(name, &frame(payload))
}

/// Load a snapshot. Returns:
/// * `Ok(Some(bytes))` — intact snapshot.
/// * `Ok(None)` — file absent (nothing saved yet).
/// * `Err(InvalidData)` — file present but fails length/checksum validation;
///   callers decide whether to start fresh or abort.
pub fn load_snapshot(storage: &Arc<dyn Storage>, name: &str) -> io::Result<Option<Vec<u8>>> {
    let data = match storage.read(name) {
        Ok(data) => data,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let replay = decode_frames(&data);
    if replay.records.len() == 1 && replay.truncated_bytes == 0 {
        Ok(Some(replay.records.into_iter().next().unwrap()))
    } else {
        Err(io::Error::new(io::ErrorKind::InvalidData, format!("corrupt snapshot {name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn storage() -> Arc<dyn Storage> {
        Arc::new(MemStorage::new())
    }

    #[test]
    fn roundtrip() {
        let s = storage();
        assert!(load_snapshot(&s, "snap").unwrap().is_none());
        save_snapshot(&s, "snap", b"payload").unwrap();
        assert_eq!(load_snapshot(&s, "snap").unwrap().unwrap(), b"payload");
        save_snapshot(&s, "snap", b"replaced").unwrap();
        assert_eq!(load_snapshot(&s, "snap").unwrap().unwrap(), b"replaced");
    }

    #[test]
    fn corruption_is_reported_not_trusted() {
        let s = storage();
        save_snapshot(&s, "snap", b"payload").unwrap();
        let mem = Arc::new(MemStorage::new());
        let mut raw = {
            let src: Arc<dyn Storage> = mem.clone();
            save_snapshot(&src, "snap", b"payload").unwrap();
            mem.raw("snap").unwrap()
        };
        raw[9] ^= 0x01;
        mem.set_raw("snap", raw);
        let src: Arc<dyn Storage> = mem;
        let err = load_snapshot(&src, "snap").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mem = Arc::new(MemStorage::new());
        let src: Arc<dyn Storage> = mem.clone();
        save_snapshot(&src, "snap", b"payload").unwrap();
        mem.append("snap", b"junk").unwrap();
        assert!(load_snapshot(&src, "snap").is_err());
    }
}
