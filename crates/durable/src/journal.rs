//! Length-prefixed, checksummed append-only journal.
//!
//! Record frame: `[u32 len_le][u32 crc32_le][payload; len]`. The checksum
//! covers the payload only; the length field is validated by a hard upper
//! bound plus the checksum of the bytes it delimits, so a corrupt length
//! surfaces as either an over-limit frame or a checksum mismatch.

use std::io;
use std::sync::Arc;

use crate::checksum::crc32;
use crate::storage::Storage;

/// Upper bound on a single record's payload. Anything larger is treated as a
/// corrupt length field during replay (and rejected at append time).
pub const MAX_RECORD_LEN: u32 = 1 << 30;

const HEADER_LEN: usize = 8;

/// Append-only journal of opaque byte records over a [`Storage`] backend.
pub struct Journal {
    storage: Arc<dyn Storage>,
    name: String,
}

/// Result of replaying a journal file.
#[derive(Debug, Default)]
pub struct Replay {
    /// Payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of well-formed prefix (safe truncation point).
    pub valid_bytes: u64,
    /// Bytes of corrupt tail discarded after the last intact record.
    pub truncated_bytes: u64,
}

/// Frame one payload as `[len][crc][payload]`.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode every intact frame from `data`, stopping at the first corruption.
/// Never panics: a short header, over-limit length, short payload, or crc
/// mismatch all end the scan, with the remaining bytes counted as truncated.
pub fn decode_frames(data: &[u8]) -> Replay {
    let mut replay = Replay::default();
    let mut pos = 0usize;
    while data.len() - pos >= HEADER_LEN {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            break;
        }
        let len = len as usize;
        let body_start = pos + HEADER_LEN;
        let Some(body_end) = body_start.checked_add(len) else { break };
        if body_end > data.len() {
            break;
        }
        let payload = &data[body_start..body_end];
        if crc32(payload) != crc {
            break;
        }
        replay.records.push(payload.to_vec());
        pos = body_end;
    }
    replay.valid_bytes = pos as u64;
    replay.truncated_bytes = (data.len() - pos) as u64;
    replay
}

impl Journal {
    /// Open a journal named `name` on `storage`. The file need not exist yet.
    pub fn new(storage: Arc<dyn Storage>, name: impl Into<String>) -> Self {
        Self { storage, name: name.into() }
    }

    /// The backing storage.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// The journal's file name within its storage.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append one record (framed + checksummed) and flush it to the backend.
    pub fn append(&self, payload: &[u8]) -> io::Result<()> {
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "record exceeds MAX_RECORD_LEN"));
        }
        self.storage.append(&self.name, &frame(payload))
    }

    /// Force journal contents to durable media.
    pub fn sync(&self) -> io::Result<()> {
        self.storage.sync(&self.name)
    }

    /// Replay the journal: decode every intact record, then truncate the file
    /// at the first corruption so subsequent appends extend a valid prefix.
    /// A missing file replays as empty. Never panics on corrupt input.
    pub fn replay(&self) -> io::Result<Replay> {
        let data = match self.storage.read(&self.name) {
            Ok(data) => data,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
            Err(e) => return Err(e),
        };
        let replay = decode_frames(&data);
        if replay.truncated_bytes > 0 {
            self.storage.truncate(&self.name, replay.valid_bytes)?;
        }
        Ok(replay)
    }

    /// Atomically rewrite the journal to contain exactly `payloads`
    /// (compaction). The old contents survive intact if the write faults.
    pub fn rewrite<'a>(&self, payloads: impl IntoIterator<Item = &'a [u8]>) -> io::Result<()> {
        let mut data = Vec::new();
        for payload in payloads {
            data.extend_from_slice(&frame(payload));
        }
        self.storage.write_atomic(&self.name, &data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FaultPlan, MemStorage};

    fn mem_journal() -> (Arc<MemStorage>, Journal) {
        let storage = Arc::new(MemStorage::new());
        let journal = Journal::new(storage.clone() as Arc<dyn Storage>, "j.wal");
        (storage, journal)
    }

    #[test]
    fn roundtrip_preserves_records_in_order() {
        let (_, journal) = mem_journal();
        let records: Vec<Vec<u8>> = vec![b"alpha".to_vec(), vec![], b"\x00\xFFbinary\x7F".to_vec(), vec![9u8; 5000]];
        for r in &records {
            journal.append(r).unwrap();
        }
        let replay = journal.replay().unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.truncated_bytes, 0);
    }

    #[test]
    fn missing_file_replays_empty() {
        let (_, journal) = mem_journal();
        let replay = journal.replay().unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_journal_stays_appendable() {
        let (storage, journal) = mem_journal();
        journal.append(b"one").unwrap();
        journal.append(b"two").unwrap();
        // Simulate a torn append: half a frame of a third record.
        let full = frame(b"three");
        storage.append("j.wal", &full[..full.len() / 2]).unwrap();

        let replay = journal.replay().unwrap();
        assert_eq!(replay.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(replay.truncated_bytes > 0);

        // After replay the corrupt tail is gone; appends extend a valid log.
        journal.append(b"four").unwrap();
        let replay = journal.replay().unwrap();
        assert_eq!(replay.records, vec![b"one".to_vec(), b"two".to_vec(), b"four".to_vec()]);
        assert_eq!(replay.truncated_bytes, 0);
    }

    #[test]
    fn corrupt_payload_byte_stops_replay_at_previous_record() {
        let (storage, journal) = mem_journal();
        journal.append(b"good").unwrap();
        journal.append(b"evil").unwrap();
        let mut raw = storage.raw("j.wal").unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x40;
        storage.set_raw("j.wal", raw);
        let replay = journal.replay().unwrap();
        assert_eq!(replay.records, vec![b"good".to_vec()]);
    }

    #[test]
    fn absurd_length_field_is_treated_as_corruption() {
        let (storage, journal) = mem_journal();
        journal.append(b"ok").unwrap();
        storage.append("j.wal", &u32::MAX.to_le_bytes()).unwrap();
        storage.append("j.wal", &[0u8; 12]).unwrap();
        let replay = journal.replay().unwrap();
        assert_eq!(replay.records, vec![b"ok".to_vec()]);
        assert_eq!(replay.truncated_bytes, 16);
    }

    #[test]
    fn decode_never_panics_on_arbitrary_garbage() {
        // Deterministic pseudo-random garbage of many lengths.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for len in 0..200usize {
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                data.push((x >> 56) as u8);
            }
            let replay = decode_frames(&data);
            assert_eq!(replay.valid_bytes + replay.truncated_bytes, len as u64);
        }
    }

    #[test]
    fn rewrite_compacts_to_exactly_the_given_records() {
        let (_, journal) = mem_journal();
        for i in 0..10u8 {
            journal.append(&[i]).unwrap();
        }
        journal.rewrite([&[3u8][..], &[7u8][..]]).unwrap();
        let replay = journal.replay().unwrap();
        assert_eq!(replay.records, vec![vec![3u8], vec![7u8]]);
    }

    #[test]
    fn chaos_appends_always_leave_a_recoverable_log() {
        // Under every fault seed: appends may fail, but replay must never
        // panic, must only return records that were actually appended (in
        // order), and after replay-truncation further appends must work.
        for seed in 0..200u64 {
            let storage = Arc::new(MemStorage::with_faults(FaultPlan::new(seed, 35)));
            let journal = Journal::new(storage.clone() as Arc<dyn Storage>, "j.wal");
            let mut acked: Vec<Vec<u8>> = Vec::new();
            for i in 0..30u32 {
                let payload = format!("record-{i}-{}", "x".repeat((i % 7) as usize)).into_bytes();
                if journal.append(&payload).is_ok() {
                    acked.push(payload);
                }
            }
            let replay = journal.replay().unwrap();
            // Replayed records are an ordered subsequence of the acked
            // sequence: short writes can silently drop acked records (a
            // zero-byte short write even leaves the stream frame-aligned, so
            // later records still decode), but an intact record is never
            // reordered or fabricated.
            let mut acked_it = acked.iter();
            for rec in &replay.records {
                assert!(acked_it.any(|a| a == rec), "seed {seed}: replayed record was never acked (or out of order)");
            }
            // After replay-truncation the log is clean; keep appending until
            // one actually lands (an Ok append can still be a silent short
            // write — only replay proves durability), re-truncating torn
            // tails between attempts.
            let after = loop {
                let _ = journal.append(b"post-recovery");
                let after = journal.replay().unwrap();
                if after.records.last().map(|r| r.as_slice()) == Some(&b"post-recovery"[..]) {
                    break after;
                }
            };
            assert_eq!(after.truncated_bytes, 0, "seed {seed}: clean log has torn tail");
        }
    }
}
