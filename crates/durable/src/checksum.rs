//! CRC32 (IEEE 802.3 polynomial, reflected) over byte slices.
//!
//! The table is built in a `const fn` so the crate stays dependency-free and
//! the checksum is identical on every platform — journal files written on one
//! machine must verify on any other.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ byte as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"gaplan journal record");
        let mut flipped = b"gaplan journal record".to_vec();
        for i in 0..flipped.len() * 8 {
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), base, "bit {i} flip undetected");
            flipped[i / 8] ^= 1 << (i % 8);
        }
    }
}
