//! GA configuration: every knob from the paper's Tables 1 and 3 plus the
//! ambiguity-resolution and extension options called out in DESIGN.md.

use serde::{Deserialize, Serialize};

/// Which crossover mechanism to use (paper §3.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CrossoverKind {
    /// One-point crossover with independently chosen cut points on each
    /// parent. Cheap, but the suffix genes decode against a different state
    /// after the swap.
    #[default]
    Random,
    /// The paper's novel mechanism: the second parent's cut point is
    /// restricted to loci whose decode state *matches* the first cut's
    /// state, so the exchanged suffixes keep their meaning. When no matching
    /// locus exists the parents pass through unchanged.
    StateAware,
    /// Try state-aware; if no matching cut point exists, fall back to a
    /// random second cut point.
    Mixed,
    /// Extension (not in the paper): two-point crossover with independent
    /// cut pairs — included for ablation.
    TwoPoint,
}

impl CrossoverKind {
    /// Display name used in experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            CrossoverKind::Random => "random",
            CrossoverKind::StateAware => "state-aware",
            CrossoverKind::Mixed => "mixed",
            CrossoverKind::TwoPoint => "two-point",
        }
    }
}

/// How two decode states are considered "matching" for state-aware
/// crossover. The paper requires that "the same genetic code will be mapped
/// to the same sequence of operations from these two states".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StateMatchMode {
    /// Full state identity (by signature). Sound and conservative: equal
    /// states trivially decode any suffix identically — but exact matches
    /// are so rare in large state spaces that state-aware crossover
    /// degenerates to no-op pass-through (measured in Ext-F3).
    ExactState,
    /// Match on the *valid-operation set* of the state. This satisfies the
    /// paper's wording for the immediately following gene (it maps to the
    /// same operation) though not transitively; matches are plentiful
    /// (e.g. tile boards share a valid-op set whenever the blank sits in
    /// the same cell class), which is what makes state-aware crossover an
    /// active operator. Default, per the EXPERIMENTS.md calibration.
    #[default]
    ValidOpSet,
}

/// How individuals are evaluated each generation.
///
/// Evaluation (decode + fitness) is a pure function of the genome, so the
/// two modes are *bitwise-identical* by contract — `Parallel` fans the
/// population out over rayon workers that share one successor cache, and the
/// order-preserving collect keeps results positionally identical to a serial
/// fold. The mode is excluded from [`GaConfig::signature`] for the same
/// reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EvalMode {
    /// One decoder, one thread. Useful for profiling and as the reference
    /// for the serial-vs-parallel equivalence tests.
    Serial,
    /// Rayon-parallel evaluation (the default).
    #[default]
    Parallel,
}

/// Which state of the decoded plan the goal fitness `F_goal` scores.
///
/// The paper's §3.3 says the goal fitness "evaluates the quality of
/// matching between the final state of the solution and the goal state",
/// but is silent on whether a plan that *passes through* the goal counts as
/// a solution (its prefix trivially is one). The two readings differ
/// sharply in search dynamics — see EXPERIMENTS.md's calibration note.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GoalEval {
    /// Score the state after the last decoded operation (strict reading).
    #[default]
    FinalState,
    /// Score the best state visited along the plan. A plan passing through
    /// the goal then scores 1.0, and its prefix up to the goal hit is the
    /// reported solution (combine with `truncate_at_goal`).
    BestPrefix,
}

/// Parent-selection scheme (§3.4.1 uses tournament with size 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectionScheme {
    /// Pick `k` individuals uniformly with replacement; the fittest wins.
    Tournament(u32),
    /// Fitness-proportional (roulette-wheel) selection. Extension.
    Roulette,
    /// Linear-rank selection. Extension.
    Rank,
}

impl Default for SelectionScheme {
    fn default() -> Self {
        SelectionScheme::Tournament(2) // paper: "Tournament (2)"
    }
}

/// Weights of the fitness components (paper Eq. 3–4). The match-fitness
/// component is identically 1 under indirect encoding, so only the goal and
/// cost weights matter (the paper drops the match term for the same reason).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitnessWeights {
    /// Weight of the goal fitness `F_goal`. Paper: 0.9.
    pub goal: f64,
    /// Weight of the cost fitness `F_cost`. Paper: 0.1.
    pub cost: f64,
}

impl Default for FitnessWeights {
    fn default() -> Self {
        FitnessWeights { goal: 0.9, cost: 0.1 }
    }
}

impl FitnessWeights {
    /// Validate: weights must be non-negative and sum to 1 (paper: "where
    /// w1 and w2 are weights and w1 + w2 = 1").
    pub fn validate(&self) -> Result<(), String> {
        if self.goal < 0.0 || self.cost < 0.0 {
            return Err(format!("negative fitness weight: goal={} cost={}", self.goal, self.cost));
        }
        if (self.goal + self.cost - 1.0).abs() > 1e-9 {
            return Err(format!("fitness weights must sum to 1 (goal={} cost={})", self.goal, self.cost));
        }
        Ok(())
    }
}

/// How the cost fitness `F_cost` is computed.
///
/// The paper's Eq. 2 (the unit-cost case) is illegible in the surviving
/// text. Two standard readings exist: `1/len` and `1 − len/MaxLen`. The
/// reciprocal reading creates an *empty-plan attractor*: near the goal, a
/// zero-length plan (cost fitness 1) outscores any plan that makes real
/// progress, so multi-phase search stalls — which contradicts the paper's
/// reported 92–96% tile solve rates. The linear reading has no such trap,
/// so it is the default; the reciprocal is kept and ablated (Ext-F5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CostFitnessMode {
    /// `F_cost = 1 − len/MaxLen` (clamped to `[0, 1]`): linear in plan
    /// length, normalized by the configured `MaxLen`.
    #[default]
    LinearLength,
    /// `F_cost = 1 / len(plan)`; an empty plan scores 1. See the enum docs
    /// for why this reading is rejected as the default.
    InverseLength,
    /// General-cost analogue used by the grid domain: `F_cost = 1 / (1 +
    /// total_cost)`, monotone decreasing in cost and equal to 1 at zero cost.
    InverseCost,
    /// Ignore cost entirely (`F_cost = 0`); used in ablations.
    Zero,
}

/// Full GA configuration.
///
/// Defaults reproduce the shared parameter block of the paper's Tables 1
/// and 3: population 200, 500 generations, crossover rate 0.9, mutation rate
/// 0.01, tournament(2), weights 0.9/0.1, 5 phases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaConfig {
    /// Number of individuals per generation. Paper: 200.
    pub population_size: usize,
    /// Generations evolved within one phase. Paper: 500 single-phase, 100
    /// per phase in the multi-phase runs.
    pub generations_per_phase: u32,
    /// Maximum number of phases (paper: 5). `1` gives the single-phase GA.
    pub max_phases: u32,
    /// Crossover mechanism.
    pub crossover: CrossoverKind,
    /// Probability that a selected pair undergoes crossover. Paper: 0.9.
    pub crossover_rate: f64,
    /// Per-gene mutation probability. Paper: 0.01.
    pub mutation_rate: f64,
    /// Number of best individuals copied unchanged into the next
    /// generation. The paper does not state its elitism policy, but its
    /// reported convergence speeds (e.g. a valid 5-disk Hanoi solution after
    /// 43 generations on average) are unattainable when crossover at rate
    /// 0.9 can destroy every copy of the best individual; keeping one elite
    /// reproduces the paper's convergence regime (see EXPERIMENTS.md
    /// calibration note). Set to 0 for strict generational replacement.
    pub elitism: usize,
    /// Extension: probability (per individual) of a length mutation that
    /// inserts or deletes one gene. 0 disables (paper behaviour).
    pub length_mutation_rate: f64,
    /// Parent-selection scheme. Paper: tournament(2).
    pub selection: SelectionScheme,
    /// Fitness weights. Paper: goal 0.9, cost 0.1.
    pub weights: FitnessWeights,
    /// Cost-fitness mode (Eq. 2 by default).
    pub cost_fitness: CostFitnessMode,
    /// Nominal length of the randomly generated initial individuals (§3.2:
    /// "The lengths of the initial population of solutions are set to
    /// reasonable values" — the experiments use the optimal length for
    /// Hanoi and an `n² log n²` bound for the tile puzzle).
    pub initial_len: usize,
    /// Relative half-width of the initial length distribution: individual
    /// lengths are drawn uniformly from `[initial_len·(1−s), initial_len·(1+s)]`
    /// (clamped to `[1, max_len]`). A spread matters because plan length can
    /// only change through crossover cut points afterwards — with all-equal
    /// (say, odd) lengths, domains whose goal distance has a parity (the
    /// tile puzzle) start in a trap where no individual can end on the
    /// goal. Default 0.5.
    pub initial_len_spread: f64,
    /// Upper bound `MaxLen` on individual length (§3.1). Crossover children
    /// are truncated to this length.
    pub max_len: usize,
    /// How the goal fitness samples the decoded trajectory.
    pub goal_eval: GoalEval,
    /// If true, decoding stops as soon as the goal state is reached, so
    /// genes past the first goal hit are ignored. The paper's formal
    /// definition scores the *final* state, so this defaults to false; the
    /// toggle is ablated in EXPERIMENTS.md.
    pub truncate_at_goal: bool,
    /// State-matching rule for state-aware crossover.
    pub state_match: StateMatchMode,
    /// Stop a phase as soon as some individual solves the problem. The paper
    /// reports sub-budget generation counts for the single-phase GA
    /// (e.g. 42.9 avg for 5 disks) but phase-multiples for the multi-phase
    /// GA, so [`crate::MultiPhase`] sets this automatically; it is exposed
    /// for single-phase use.
    pub early_stop_on_solution: bool,
    /// Evaluation mode (serial or rayon-parallel). Deterministic either way:
    /// decoding and fitness are pure functions of the genome.
    pub eval: EvalMode,
    /// Memoize `valid_operations` results in a shared [`SuccessorCache`]
    /// keyed by state signature. Pure optimization: decoded plans, fitness
    /// trajectories and traces are identical with the cache on or off.
    ///
    /// [`SuccessorCache`]: gaplan_core::SuccessorCache
    pub succ_cache: bool,
    /// Successor-cache capacity in entries (bounded; direct-mapped eviction
    /// beyond this).
    pub succ_cache_capacity: usize,
    /// Master RNG seed; every run derived from a config is reproducible.
    pub seed: u64,
    /// Number of islands (independently evolving sub-populations) per
    /// phase. `1` is the paper's single-population GA and the default; `K >
    /// 1` splits `population_size` into `K` equal blocks, each with its own
    /// seed-derived RNG stream, exchanging individuals by deterministic
    /// ring migration every [`GaConfig::migration_interval`] generations.
    pub islands: u32,
    /// Generations between migrations (ignored when `islands == 1`).
    pub migration_interval: u32,
    /// Individuals each island emits to its ring neighbour per migration
    /// (its top-E by fitness replace the neighbour's worst-E).
    pub emigrants: usize,
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig {
            population_size: 200,
            generations_per_phase: 100,
            max_phases: 5,
            crossover: CrossoverKind::Random,
            crossover_rate: 0.9,
            mutation_rate: 0.01,
            elitism: 1,
            length_mutation_rate: 0.0,
            selection: SelectionScheme::default(),
            weights: FitnessWeights::default(),
            cost_fitness: CostFitnessMode::default(),
            initial_len: 32,
            initial_len_spread: 0.5,
            max_len: 128,
            goal_eval: GoalEval::BestPrefix,
            truncate_at_goal: true,
            state_match: StateMatchMode::default(),
            early_stop_on_solution: false,
            eval: EvalMode::Parallel,
            succ_cache: true,
            succ_cache_capacity: gaplan_core::succ::DEFAULT_CAPACITY,
            seed: 0x9a_9a_9a,
            islands: 1,
            migration_interval: 10,
            emigrants: 2,
        }
    }
}

impl GaConfig {
    /// Validate parameter ranges; returns a human-readable error message.
    pub fn validate(&self) -> Result<(), String> {
        if self.population_size < 2 {
            return Err("population_size must be at least 2".into());
        }
        if self.elitism >= self.population_size {
            return Err(format!(
                "elitism ({}) must be smaller than the population ({})",
                self.elitism, self.population_size
            ));
        }
        if self.generations_per_phase == 0 {
            return Err("generations_per_phase must be positive".into());
        }
        if self.max_phases == 0 {
            return Err("max_phases must be positive".into());
        }
        for (name, v) in [
            ("crossover_rate", self.crossover_rate),
            ("mutation_rate", self.mutation_rate),
            ("length_mutation_rate", self.length_mutation_rate),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0, 1], got {v}"));
            }
        }
        if let SelectionScheme::Tournament(k) = self.selection {
            if k == 0 {
                return Err("tournament size must be positive".into());
            }
        }
        self.weights.validate()?;
        if self.initial_len == 0 {
            return Err("initial_len must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.initial_len_spread) {
            return Err(format!("initial_len_spread must be in [0, 1], got {}", self.initial_len_spread));
        }
        if self.max_len < self.initial_len {
            return Err(format!("max_len ({}) must be >= initial_len ({})", self.max_len, self.initial_len));
        }
        if self.islands == 0 {
            return Err("islands must be at least 1".into());
        }
        if self.islands > 1 {
            let k = self.islands as usize;
            if !self.population_size.is_multiple_of(k) {
                return Err(format!("population_size ({}) must be divisible by islands ({k})", self.population_size));
            }
            let per_island = self.population_size / k;
            if per_island < 2 {
                return Err(format!("per-island population ({per_island}) must be at least 2"));
            }
            if self.elitism >= per_island {
                return Err(format!(
                    "elitism ({}) must be smaller than the per-island population ({per_island})",
                    self.elitism
                ));
            }
            if self.migration_interval == 0 {
                return Err("migration_interval must be positive".into());
            }
            if self.emigrants >= per_island {
                return Err(format!(
                    "emigrants ({}) must be smaller than the per-island population ({per_island})",
                    self.emigrants
                ));
            }
        }
        Ok(())
    }

    /// The paper's single-phase configuration: one phase of 500 generations
    /// with early stopping at the first valid solution.
    pub fn single_phase(mut self) -> Self {
        self.max_phases = 1;
        self.generations_per_phase = 500;
        self.early_stop_on_solution = true;
        self
    }

    /// The paper's multi-phase configuration: up to 5 phases of 100
    /// generations each; each phase runs its full budget.
    pub fn multi_phase(mut self) -> Self {
        self.max_phases = 5;
        self.generations_per_phase = 100;
        self.early_stop_on_solution = false;
        self
    }

    /// Scale the per-run search budget (population × generations) by
    /// `factor`, clamped to `(0, 1]`, flooring both knobs so the result is
    /// still a valid GA: at least one generation per phase, and a
    /// population no smaller than 8 (and always larger than `elitism`, or
    /// [`GaConfig::validate`] would reject it). The GA is an anytime
    /// algorithm, so a scaled budget trades plan quality for latency —
    /// this is the knob the planning service's brownout controller turns
    /// under overload.
    pub fn scale_budget(&self, factor: f64) -> GaConfig {
        let f = factor.clamp(0.0, 1.0);
        let mut cfg = self.clone();
        let pop_floor = (self.elitism + 1).max(8).min(self.population_size.max(2));
        cfg.population_size = ((self.population_size as f64 * f) as usize).max(pop_floor);
        cfg.generations_per_phase = ((self.generations_per_phase as f64 * f) as u32).max(1);
        cfg
    }

    /// Stable 64-bit signature of every config field that can change a
    /// run's *result* — used (combined with the problem signature) as the
    /// planning service's plan-cache key. `eval`, `succ_cache` and
    /// `succ_cache_capacity` are deliberately excluded: evaluation is
    /// deterministic by contract, so serial/parallel and cached/uncached
    /// runs of the same config produce the same plan.
    pub fn signature(&self) -> u64 {
        let mut s = gaplan_core::sig::SigBuilder::new();
        s.tag("ga-config-v1");
        s.tag("pop").usize(self.population_size);
        s.tag("gens").u32(self.generations_per_phase);
        s.tag("phases").u32(self.max_phases);
        s.tag("xover").str(self.crossover.name());
        s.tag("xover-rate").f64(self.crossover_rate);
        s.tag("mut-rate").f64(self.mutation_rate);
        s.tag("elitism").usize(self.elitism);
        s.tag("len-mut").f64(self.length_mutation_rate);
        s.tag("select");
        match self.selection {
            SelectionScheme::Tournament(k) => s.str("tournament").u32(k),
            SelectionScheme::Roulette => s.str("roulette"),
            SelectionScheme::Rank => s.str("rank"),
        };
        s.tag("weights").f64(self.weights.goal).f64(self.weights.cost);
        s.tag("cost-fitness").u32(match self.cost_fitness {
            CostFitnessMode::LinearLength => 0,
            CostFitnessMode::InverseLength => 1,
            CostFitnessMode::InverseCost => 2,
            CostFitnessMode::Zero => 3,
        });
        s.tag("init-len").usize(self.initial_len).f64(self.initial_len_spread);
        s.tag("max-len").usize(self.max_len);
        s.tag("goal-eval").bool(self.goal_eval == GoalEval::BestPrefix);
        s.tag("truncate").bool(self.truncate_at_goal);
        s.tag("state-match").bool(self.state_match == StateMatchMode::ValidOpSet);
        s.tag("early-stop").bool(self.early_stop_on_solution);
        s.tag("seed").u64(self.seed);
        // Island knobs participate only when the model is actually on:
        // `islands == 1` must keep the signature every existing cache entry
        // and checkpoint was stamped with (migration knobs are inert there).
        if self.islands > 1 {
            s.tag("islands").u32(self.islands);
            s.tag("migrate-every").u32(self.migration_interval);
            s.tag("emigrants").usize(self.emigrants);
        }
        s.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_tables() {
        let c = GaConfig::default();
        assert_eq!(c.population_size, 200);
        assert_eq!(c.crossover_rate, 0.9);
        assert_eq!(c.mutation_rate, 0.01);
        assert_eq!(c.selection, SelectionScheme::Tournament(2));
        assert_eq!(c.weights.goal, 0.9);
        assert_eq!(c.weights.cost, 0.1);
        assert_eq!(c.max_phases, 5);
        c.validate().unwrap();
    }

    #[test]
    fn presets_configure_phases() {
        let s = GaConfig::default().single_phase();
        assert_eq!(s.max_phases, 1);
        assert_eq!(s.generations_per_phase, 500);
        assert!(s.early_stop_on_solution);
        let m = GaConfig::default().multi_phase();
        assert_eq!(m.max_phases, 5);
        assert_eq!(m.generations_per_phase, 100);
        assert!(!m.early_stop_on_solution);
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let c = GaConfig { crossover_rate: 1.5, ..GaConfig::default() };
        assert!(c.validate().is_err());
        let c = GaConfig { mutation_rate: -0.1, ..GaConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_weights() {
        let c = GaConfig { weights: FitnessWeights { goal: 0.5, cost: 0.1 }, ..GaConfig::default() };
        assert!(c.validate().is_err());
        let c = GaConfig { weights: FitnessWeights { goal: -0.5, cost: 1.5 }, ..GaConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_sizes() {
        let c = GaConfig { population_size: 1, ..GaConfig::default() };
        assert!(c.validate().is_err());
        let c = GaConfig { initial_len: 10, max_len: 5, ..GaConfig::default() };
        assert!(c.validate().is_err());
        let c = GaConfig { selection: SelectionScheme::Tournament(0), ..GaConfig::default() };
        assert!(c.validate().is_err());
        let c = GaConfig { elitism: 300, ..GaConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn scale_budget_shrinks_with_floors() {
        let base = GaConfig { population_size: 200, generations_per_phase: 100, ..GaConfig::default() };
        let half = base.scale_budget(0.5);
        assert_eq!(half.population_size, 100);
        assert_eq!(half.generations_per_phase, 50);
        assert!(half.validate().is_ok());
        // A tiny factor bottoms out at the floors, never at an invalid GA.
        let floor = base.scale_budget(0.001);
        assert_eq!(floor.generations_per_phase, 1);
        assert!(floor.population_size >= 8);
        assert!(floor.population_size > floor.elitism);
        assert!(floor.validate().is_ok());
        // Factor 1 (and anything above) is the identity on the budget.
        let same = base.scale_budget(1.5);
        assert_eq!(same.population_size, 200);
        assert_eq!(same.generations_per_phase, 100);
    }

    #[test]
    fn crossover_names() {
        assert_eq!(CrossoverKind::Random.name(), "random");
        assert_eq!(CrossoverKind::StateAware.name(), "state-aware");
        assert_eq!(CrossoverKind::Mixed.name(), "mixed");
        assert_eq!(CrossoverKind::TwoPoint.name(), "two-point");
    }

    #[test]
    fn signature_ignores_eval_and_cache_knobs() {
        let base = GaConfig::default();
        let serial = GaConfig { eval: EvalMode::Serial, ..base.clone() };
        let uncached = GaConfig { succ_cache: false, succ_cache_capacity: 8, ..base.clone() };
        assert_eq!(base.signature(), serial.signature());
        assert_eq!(base.signature(), uncached.signature());
        let different = GaConfig { seed: base.seed + 1, ..base.clone() };
        assert_ne!(base.signature(), different.signature());
    }

    #[test]
    fn validate_rejects_bad_island_configs() {
        let ok = GaConfig { islands: 4, ..GaConfig::default() };
        ok.validate().unwrap();
        let c = GaConfig { islands: 0, ..GaConfig::default() };
        assert!(c.validate().is_err());
        // 200 % 3 != 0
        let c = GaConfig { islands: 3, ..GaConfig::default() };
        assert!(c.validate().is_err());
        // per-island population of 1
        let c = GaConfig { islands: 4, population_size: 4, ..GaConfig::default() };
        assert!(c.validate().is_err());
        // elitism must fit inside one island
        let c = GaConfig { islands: 4, population_size: 8, elitism: 2, ..GaConfig::default() };
        assert!(c.validate().is_err());
        let c = GaConfig { islands: 2, migration_interval: 0, ..GaConfig::default() };
        assert!(c.validate().is_err());
        // emigrants must leave at least one resident per island
        let c = GaConfig { islands: 2, population_size: 8, emigrants: 4, ..GaConfig::default() };
        assert!(c.validate().is_err());
        // all island knobs are inert at islands == 1
        let c = GaConfig { islands: 1, migration_interval: 0, emigrants: 10_000, ..GaConfig::default() };
        c.validate().unwrap();
    }

    #[test]
    fn signature_island_knobs() {
        let base = GaConfig::default();
        // islands == 1 keeps the pre-island signature regardless of the
        // (inert) migration knobs, so existing cache keys stay valid.
        let one = GaConfig { islands: 1, migration_interval: 99, emigrants: 7, ..base.clone() };
        assert_eq!(base.signature(), one.signature());
        // K > 1 changes results, so it must change the signature...
        let four = GaConfig { islands: 4, ..base.clone() };
        assert_ne!(base.signature(), four.signature());
        // ...and so do the migration knobs once islands are on.
        let faster = GaConfig { migration_interval: 5, ..four.clone() };
        assert_ne!(four.signature(), faster.signature());
        let heavier = GaConfig { emigrants: 5, ..four.clone() };
        assert_ne!(four.signature(), heavier.signature());
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = GaConfig::default().multi_phase();
        let json = serde_json::to_string(&c).unwrap();
        let back: GaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.population_size, c.population_size);
        assert_eq!(back.crossover, c.crossover);
        assert_eq!(back.max_phases, c.max_phases);
    }
}
