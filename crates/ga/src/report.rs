//! Run reports and aggregation: the statistics the paper's Tables 2, 4 and
//! 5 are built from ("we performed ten runs … and picked the individual with
//! the highest goal fitness in each run. Then we averaged the fitness and
//! the length of these individuals").

use serde::{Deserialize, Serialize};

use crate::multiphase::MultiPhaseResult;

/// One GA run's reportable outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Goal fitness of the run's best (concatenated) solution.
    pub goal_fitness: f64,
    /// Length of the best solution.
    pub plan_len: usize,
    /// Did the run find a valid solution?
    pub solved: bool,
    /// 1-based phase in which the solution was found (Table 5).
    pub solved_in_phase: Option<u32>,
    /// Generations executed until the solution was found, or the full
    /// budget when unsolved (Table 2's generations column).
    pub generations: u32,
    /// Cumulative generation at which an individual first solved, if any.
    pub first_solution_gen: Option<u32>,
    /// Wall-clock duration of the run in seconds (Table 4's time column).
    pub seconds: f64,
}

impl RunReport {
    /// Extract a report from a multi-phase result plus measured wall time.
    pub fn from_result<S>(r: &MultiPhaseResult<S>, seconds: f64) -> RunReport {
        RunReport {
            goal_fitness: r.goal_fitness,
            plan_len: r.plan.len(),
            solved: r.solved,
            solved_in_phase: r.solved_in_phase,
            generations: r.generations_to_solution,
            first_solution_gen: r.first_solution_gen,
            seconds,
        }
    }
}

/// Aggregate statistics over a batch of runs — one table row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AggregateReport {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean goal fitness over the per-run best individuals.
    pub avg_goal_fitness: f64,
    /// Mean solution length.
    pub avg_plan_len: f64,
    /// Mean generations-to-solution (unsolved runs contribute their full
    /// budget, matching the paper's Table 2 averages).
    pub avg_generations: f64,
    /// Number of runs that found a valid solution (Table 4's column).
    pub solved_runs: usize,
    /// Mean wall-clock seconds per run.
    pub avg_seconds: f64,
    /// Runs solved per phase: `solved_per_phase[p]` counts runs first
    /// solved in phase `p+1` (Table 5).
    pub solved_per_phase: Vec<usize>,
    /// Mean cumulative generation of the first solution, over runs that
    /// solved (None when no run solved).
    pub avg_first_solution_gen: Option<f64>,
    /// Population standard deviation of the per-run goal fitness.
    pub std_goal_fitness: f64,
    /// Population standard deviation of the per-run solution length.
    pub std_plan_len: f64,
}

fn std_dev(values: impl Iterator<Item = f64> + Clone, mean: f64, n: f64) -> f64 {
    (values.map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt()
}

/// Aggregate a batch of run reports. `max_phases` sizes the per-phase
/// histogram. Panics on an empty batch.
pub fn aggregate(reports: &[RunReport], max_phases: u32) -> AggregateReport {
    assert!(!reports.is_empty(), "cannot aggregate zero runs");
    let n = reports.len() as f64;
    let mut solved_per_phase = vec![0usize; max_phases as usize];
    for r in reports {
        if let Some(p) = r.solved_in_phase {
            let idx = (p as usize - 1).min(solved_per_phase.len().saturating_sub(1));
            solved_per_phase[idx] += 1;
        }
    }
    let first_gens: Vec<f64> = reports.iter().filter_map(|r| r.first_solution_gen.map(f64::from)).collect();
    let avg_first_solution_gen =
        if first_gens.is_empty() { None } else { Some(first_gens.iter().sum::<f64>() / first_gens.len() as f64) };
    let avg_goal_fitness = reports.iter().map(|r| r.goal_fitness).sum::<f64>() / n;
    let avg_plan_len = reports.iter().map(|r| r.plan_len as f64).sum::<f64>() / n;
    AggregateReport {
        runs: reports.len(),
        avg_goal_fitness,
        avg_plan_len,
        avg_generations: reports.iter().map(|r| f64::from(r.generations)).sum::<f64>() / n,
        solved_runs: reports.iter().filter(|r| r.solved).count(),
        avg_seconds: reports.iter().map(|r| r.seconds).sum::<f64>() / n,
        solved_per_phase,
        avg_first_solution_gen,
        std_goal_fitness: std_dev(reports.iter().map(|r| r.goal_fitness), avg_goal_fitness, n),
        std_plan_len: std_dev(reports.iter().map(|r| r.plan_len as f64), avg_plan_len, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(goal: f64, len: usize, phase: Option<u32>, gens: u32) -> RunReport {
        RunReport {
            goal_fitness: goal,
            plan_len: len,
            solved: phase.is_some(),
            solved_in_phase: phase,
            generations: gens,
            first_solution_gen: phase.map(|_| gens.saturating_sub(1)),
            seconds: 1.0,
        }
    }

    #[test]
    fn aggregate_means() {
        let rs = vec![report(1.0, 30, Some(1), 100), report(1.0, 50, Some(2), 200), report(0.5, 80, None, 500)];
        let a = aggregate(&rs, 5);
        assert_eq!(a.runs, 3);
        assert!((a.avg_goal_fitness - (2.5 / 3.0)).abs() < 1e-12);
        assert!((a.avg_plan_len - (160.0 / 3.0)).abs() < 1e-12);
        assert!((a.avg_generations - (800.0 / 3.0)).abs() < 1e-12);
        assert_eq!(a.solved_runs, 2);
        assert_eq!(a.solved_per_phase, vec![1, 1, 0, 0, 0]);
        assert!((a.avg_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_deviations_are_computed() {
        let rs = vec![report(1.0, 10, Some(1), 100), report(0.5, 30, None, 500)];
        let a = aggregate(&rs, 5);
        assert!((a.std_goal_fitness - 0.25).abs() < 1e-12);
        assert!((a.std_plan_len - 10.0).abs() < 1e-12);
        // single-run batches have zero dispersion
        let single = aggregate(&rs[..1], 5);
        assert_eq!(single.std_goal_fitness, 0.0);
        assert_eq!(single.std_plan_len, 0.0);
    }

    #[test]
    fn phase_histogram_clamps_overflow() {
        let rs = vec![report(1.0, 10, Some(9), 100)];
        let a = aggregate(&rs, 3);
        assert_eq!(a.solved_per_phase, vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_batch_panics() {
        aggregate(&[], 5);
    }

    #[test]
    fn report_serde_roundtrip() {
        let r = report(0.9, 42, Some(3), 300);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.plan_len, 42);
        assert_eq!(back.solved_in_phase, Some(3));
    }
}
