//! Seed derivation: every GA run, phase and experiment repetition gets an
//! independent, reproducible RNG stream derived from one master seed.

/// SplitMix64 — the standard stateless seed-expansion function. Used to
/// derive per-run/per-phase seeds so parallel experiment repetitions do not
/// share RNG streams.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the seed of sub-stream `index` from `master`.
#[inline]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    splitmix64(master ^ splitmix64(index.wrapping_add(0x5851_f42d_4c95_7f2d)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
    }

    #[test]
    fn distinct_indices_distinct_seeds() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(42, i)).collect();
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), s.len());
    }

    #[test]
    fn distinct_masters_distinct_streams() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn splitmix_avalanche_smoke() {
        // single-bit input change flips roughly half the output bits
        let a = splitmix64(0);
        let b = splitmix64(1);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "flipped {flipped} bits");
    }
}
