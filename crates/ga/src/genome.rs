//! Genomes: variable-length sequences of floating-point genes in `[0, 1)`
//! (paper §3.1, indirect encoding).

use rand::Rng;

/// An individual's genetic code. Each gene is a float in `[0, 1)` that the
/// decoder maps to a valid operation of the state reached at that locus.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Genome {
    genes: Vec<f64>,
}

impl Genome {
    /// An empty genome (decodes to the empty plan).
    pub fn empty() -> Self {
        Genome { genes: Vec::new() }
    }

    /// Build from raw genes. Panics in debug builds if any gene is outside
    /// `[0, 1)` — the decode mapping is only defined on that interval.
    pub fn from_genes(genes: Vec<f64>) -> Self {
        debug_assert!(genes.iter().all(|g| (0.0..1.0).contains(g)), "genes must lie in [0, 1)");
        Genome { genes }
    }

    /// A random genome of length `len` (paper §3.2: members of the initial
    /// population are randomly generated).
    pub fn random<R: Rng + ?Sized>(rng: &mut R, len: usize) -> Self {
        Genome { genes: (0..len).map(|_| rng.gen::<f64>()).collect() }
    }

    /// The raw genes.
    pub fn genes(&self) -> &[f64] {
        &self.genes
    }

    /// Mutable access for the genetic operators.
    pub fn genes_mut(&mut self) -> &mut Vec<f64> {
        &mut self.genes
    }

    /// Number of genes.
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Is the genome empty?
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Truncate to at most `max_len` genes (enforces the paper's `MaxLen`).
    pub fn truncate(&mut self, max_len: usize) {
        self.genes.truncate(max_len);
    }

    /// One-point recombination helper: child = `self[..cut_a] ++
    /// other[cut_b..]`, truncated to `max_len`.
    pub fn splice(&self, cut_a: usize, other: &Genome, cut_b: usize, max_len: usize) -> Genome {
        debug_assert!(cut_a <= self.len() && cut_b <= other.len());
        let mut genes = Vec::with_capacity((cut_a + other.len() - cut_b).min(max_len));
        genes.extend_from_slice(&self.genes[..cut_a]);
        genes.extend_from_slice(&other.genes[cut_b..]);
        genes.truncate(max_len);
        Genome { genes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_genome_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = Genome::random(&mut rng, 1000);
        assert_eq!(g.len(), 1000);
        assert!(g.genes().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn random_is_seed_deterministic() {
        let a = Genome::random(&mut StdRng::seed_from_u64(3), 64);
        let b = Genome::random(&mut StdRng::seed_from_u64(3), 64);
        assert_eq!(a, b);
    }

    #[test]
    fn splice_combines_prefix_and_suffix() {
        let a = Genome::from_genes(vec![0.1, 0.2, 0.3]);
        let b = Genome::from_genes(vec![0.7, 0.8, 0.9]);
        let c = a.splice(2, &b, 1, 100);
        assert_eq!(c.genes(), &[0.1, 0.2, 0.8, 0.9]);
    }

    #[test]
    fn splice_respects_max_len() {
        let a = Genome::from_genes(vec![0.1; 5]);
        let b = Genome::from_genes(vec![0.9; 5]);
        let c = a.splice(5, &b, 0, 6);
        assert_eq!(c.len(), 6);
        assert_eq!(c.genes()[5], 0.9);
    }

    #[test]
    fn splice_edge_cuts() {
        let a = Genome::from_genes(vec![0.1, 0.2]);
        let b = Genome::from_genes(vec![0.8]);
        // full swap: empty prefix + whole other
        assert_eq!(a.splice(0, &b, 0, 10).genes(), &[0.8]);
        // append nothing
        assert_eq!(a.splice(2, &b, 1, 10).genes(), &[0.1, 0.2]);
    }

    #[test]
    fn truncate_caps_length() {
        let mut g = Genome::from_genes(vec![0.5; 10]);
        g.truncate(4);
        assert_eq!(g.len(), 4);
        g.truncate(100); // no-op
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn empty_genome() {
        let g = Genome::empty();
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }
}
