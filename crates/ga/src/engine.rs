//! The single-phase GA engine: one "independent GA run" in the paper's
//! terminology (§3.5 step 2a): evaluate → select → crossover → mutate →
//! replace, for a fixed number of generations.

use std::sync::Arc;
use std::time::Instant;

use gaplan_core::budget::{Budget, StopCause};
use gaplan_core::{Domain, SuccessorCache};
use gaplan_obs as obs;
use rand::rngs::StdRng;
use rand::Rng;

use crate::arena::{PopulationArena, Provenance};
use crate::checkpoint::PhaseSnapshot;
use crate::config::GaConfig;
use crate::crossover::{crossover_plan, CrossoverPlan};
use crate::genome::Genome;
use crate::individual::Evaluated;
use crate::mutation::{length_mutate_plan, mutate_slice, LengthEdit};
use crate::population::{evaluate_arena, evaluate_candidates, init_population, island_rng, Candidate};
use crate::seeding::{seeded_population, SeedStrategy};
use crate::selection::select_parent;
use crate::stats::GenStats;

/// One GA phase: an independent run over a fixed generation budget,
/// starting from a given state.
pub struct Phase<'d, D: Domain> {
    domain: &'d D,
    cfg: GaConfig,
    start: D::State,
    phase_index: u32,
    seeder: Option<(SeedStrategy, f64)>,
    budget: Budget,
    cache: Option<Arc<SuccessorCache<D::State>>>,
}

/// The outcome of a phase.
#[derive(Debug, Clone)]
pub struct PhaseResult<S> {
    /// The best individual found across all generations of the phase,
    /// ranked by `(goal fitness, total fitness)` lexicographically — the
    /// paper both reports and chains phases on "the individual with the
    /// highest goal fitness".
    pub best: Evaluated<S>,
    /// Per-generation statistics.
    pub history: Vec<GenStats>,
    /// Number of generations actually evolved. Always equals
    /// `history.len()`, and is less than the configured budget iff the
    /// phase stopped early (solution found, deadline, or cancellation).
    pub generations_executed: u32,
    /// First generation (0-based) at which some individual solved the
    /// problem, if any. When `Some(g)`, `g < generations_executed`.
    pub first_solution_gen: Option<u32>,
    /// Why the phase was cut short by its [`Budget`], if it was. `None`
    /// means the phase ran to its configured end or early-stopped on a
    /// solution. Even when `Some`, at least one generation was evaluated,
    /// so `best` is the genuine best-so-far.
    pub stopped: Option<StopCause>,
}

/// Ranking used for "best individual": goal fitness first (the paper picks
/// by goal fitness), total fitness as tie-break (prefers cheaper plans).
#[inline]
fn better<S>(a: &Evaluated<S>, b: &Evaluated<S>) -> bool {
    (a.fitness.goal, a.fitness.total) > (b.fitness.goal, b.fitness.total)
}

impl<'d, D: Domain> Phase<'d, D> {
    /// Create a phase starting from the domain's initial state.
    pub fn new(domain: &'d D, cfg: GaConfig) -> Self {
        let start = domain.initial_state();
        Phase { domain, cfg, start, phase_index: 0, seeder: None, budget: Budget::unlimited(), cache: None }
    }

    /// Create a phase starting from an arbitrary state (used by the
    /// multi-phase driver: "the final state of the solution is taken as the
    /// initial state for the search during the next phase"). `phase_index`
    /// selects an independent RNG stream.
    pub fn with_start(domain: &'d D, cfg: GaConfig, start: D::State, phase_index: u32) -> Self {
        Phase { domain, cfg, start, phase_index, seeder: None, budget: Budget::unlimited(), cache: None }
    }

    /// Share a successor cache with this phase (the multi-phase driver and
    /// the planning service pass one cache across phases/replans, so later
    /// runs start warm). Without this, the phase builds a private cache when
    /// `cfg.succ_cache` is on; `cfg.succ_cache = false` disables caching
    /// entirely, including a cache passed here.
    pub fn with_cache(mut self, cache: Arc<SuccessorCache<D::State>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Seed a fraction of the initial population with heuristic individuals
    /// (Westerberg & Levine-style seeding; see [`crate::seeding`]).
    pub fn with_seeder(mut self, strategy: SeedStrategy, fraction: f64) -> Self {
        self.seeder = Some((strategy, fraction));
        self
    }

    /// Attach an execution budget (deadline and/or cancellation token),
    /// checked between generations. The first generation always runs, so a
    /// stopped phase still returns a meaningful best-so-far individual.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Run the phase to completion (or early stop) and return the result.
    pub fn run(&self) -> PhaseResult<D::State> {
        self.run_snapshotting(None, 0, &mut |_| {})
    }

    /// [`Phase::run`] with mid-phase checkpointing: when `snapshot_every > 0`
    /// the evolve loop hands a [`PhaseSnapshot`] to `sink` every
    /// `snapshot_every` generations (taken at the top of the loop, before
    /// evaluation), and a run resumed from such a snapshot via `resume`
    /// continues bitwise-identically — the snapshot captures the
    /// bred-but-unevaluated population plus the raw RNG state, and decoding
    /// is a pure function of the genome.
    ///
    /// Panics on a structurally invalid or mismatched snapshot (callers that
    /// load snapshots from disk validate first; see
    /// [`crate::checkpoint::PhaseSnapshot::validate`]).
    pub fn run_snapshotting(
        &self,
        resume: Option<&PhaseSnapshot>,
        snapshot_every: u32,
        sink: &mut dyn FnMut(PhaseSnapshot),
    ) -> PhaseResult<D::State> {
        self.cfg.validate().expect("invalid GaConfig");
        let cfg = &self.cfg;
        // The successor cache is shared when the caller provided one,
        // phase-private otherwise; `succ_cache = false` switches the layer
        // off regardless. Either way decode results are identical — only
        // `valid_operations` call counts change.
        let cache: Option<Arc<SuccessorCache<D::State>>> = if cfg.succ_cache {
            Some(self.cache.clone().unwrap_or_else(|| Arc::new(SuccessorCache::new(cfg.succ_cache_capacity))))
        } else {
            None
        };
        let cache_start = cache.as_ref().map(|c| c.stats()).unwrap_or_default();

        // Island layout: the population is partitioned into `islands` equal
        // blocks, each with its own RNG stream. `islands == 1` reduces to
        // the historical single-population engine, byte for byte.
        let islands = cfg.islands.max(1) as usize;
        let island_pop = cfg.population_size / islands;

        let mut rngs: Vec<StdRng>;
        let mut arena: PopulationArena;
        // Previous generation's evaluated individuals; arena provenance
        // indexes into this. Empty for fresh or resumed populations (whose
        // provenance is `NONE`).
        let mut parents: Vec<Evaluated<D::State>> = Vec::new();
        let mut best: Option<Evaluated<D::State>>;
        let mut history;
        let mut first_solution_gen;
        let mut generations_executed;
        let start_gen;
        match resume {
            Some(snap) => {
                snap.validate().expect("invalid phase snapshot");
                assert_eq!(snap.phase_index, self.phase_index, "snapshot belongs to another phase");
                assert!(snap.next_gen < cfg.generations_per_phase, "snapshot next_gen {} out of range", snap.next_gen);
                assert_eq!(snap.islands(), cfg.islands, "snapshot island count mismatch");
                rngs = snap.rng_states().into_iter().map(StdRng::from_state).collect();
                arena = PopulationArena::with_capacity(snap.genomes.len(), snap.genomes.iter().map(Vec::len).sum());
                for genes in &snap.genomes {
                    arena.push(genes, Provenance::NONE);
                }
                // Rebuild the best-so-far individual by re-evaluating its
                // genome: decoding is deterministic and RNG-free, so the
                // result is identical to the pre-crash individual.
                best = evaluate_candidates(
                    self.domain,
                    &self.start,
                    vec![Candidate::fresh(Genome::from_genes(snap.best.clone()))],
                    cfg,
                    cache.as_deref(),
                )
                .into_iter()
                .next();
                history = snap.history.clone();
                first_solution_gen = snap.first_solution_gen;
                generations_executed = snap.next_gen;
                start_gen = snap.next_gen;
            }
            None => {
                rngs = (0..cfg.islands.max(1)).map(|i| island_rng(cfg, self.phase_index, i)).collect();
                arena = PopulationArena::new();
                let mut icfg = cfg.clone();
                icfg.population_size = island_pop;
                for rng in &mut rngs {
                    let genomes = match &self.seeder {
                        Some((strategy, fraction)) => {
                            seeded_population(self.domain, &self.start, &icfg, strategy, *fraction, rng)
                        }
                        None => init_population(rng, &icfg),
                    };
                    for g in &genomes {
                        arena.push(g.genes(), Provenance::NONE);
                    }
                }
                best = None;
                history = Vec::with_capacity(cfg.generations_per_phase as usize);
                first_solution_gen = None;
                generations_executed = 0;
                start_gen = 0;
            }
        }
        let mut stopped = None;

        for gen in start_gen..cfg.generations_per_phase {
            // Budget check gates every generation but the first: generation
            // 0 always evaluates, so `best` exists and a timed-out job can
            // still report its best-so-far plan.
            if gen > 0 {
                if let Some(cause) = self.budget.check() {
                    stopped = Some(cause);
                    break;
                }
            }

            // Mid-phase checkpoint: the population here is bred but not yet
            // evaluated, and the RNG is exactly between the breeding of
            // generation `gen - 1` and the selection of generation `gen`, so
            // this point fully determines the rest of the phase. Skipped at
            // `start_gen` (nothing new to save) and free of RNG draws and
            // obs events, so checkpointing never perturbs the run.
            if snapshot_every > 0 && gen > start_gen && gen % snapshot_every == 0 {
                sink(PhaseSnapshot {
                    phase_index: self.phase_index,
                    next_gen: gen,
                    rng: rngs.iter().flat_map(|r| r.state().to_vec()).collect(),
                    genomes: arena.iter().map(|g| g.to_vec()).collect(),
                    best: best
                        .as_ref()
                        .expect("gen > start_gen implies an evaluated generation")
                        .genome
                        .genes()
                        .to_vec(),
                    history: history.clone(),
                    first_solution_gen,
                    islands: Some(cfg.islands),
                });
            }

            // (i) evaluate each individual. The clock is only read while a
            // trace subscriber is installed: eval wall time is telemetry,
            // and the disabled path must stay free of syscalls.
            let eval_started = if obs::enabled() { Some(Instant::now()) } else { None };
            let mut evaluated = evaluate_arena(self.domain, &self.start, &arena, &parents, cfg, cache.as_deref());
            let eval_wall_ns = eval_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
            generations_executed = gen + 1;

            let stats = GenStats::from_population(gen, &evaluated);
            if stats.solvers > 0 && first_solution_gen.is_none() {
                first_solution_gen = Some(gen);
            }
            obs::emit(|| {
                obs::Event::new("ga.gen")
                    .u64("phase", self.phase_index as u64)
                    .u64("gen", gen as u64)
                    .f64("best_total", stats.best_total)
                    .f64("best_goal", stats.best_goal)
                    .f64("mean_total", stats.mean_total)
                    .f64("worst_total", stats.worst_total)
                    .f64("mean_len", stats.mean_len)
                    .u64("solvers", stats.solvers as u64)
                    .u64("eval_wall_ns", eval_wall_ns)
            });
            history.push(stats);

            // track best-ever across the phase
            if let Some(gen_best) = evaluated.iter().max_by(|a, b| {
                (a.fitness.goal, a.fitness.total)
                    .partial_cmp(&(b.fitness.goal, b.fitness.total))
                    .expect("fitness values are never NaN")
            }) {
                if best.as_ref().is_none_or(|b| better(gen_best, b)) {
                    best = Some(gen_best.clone());
                }
            }

            let stop_early = cfg.early_stop_on_solution && best.as_ref().is_some_and(|b| b.solves());
            if stop_early || gen + 1 == cfg.generations_per_phase {
                break;
            }

            // Deterministic ring migration (paper-style island model): every
            // `migration_interval` generations the top `emigrants` of island
            // `i` replace the worst individuals of island `i + 1`, with all
            // ranking done against the pre-migration population and ties
            // broken by genome bytes — zero RNG draws, so the per-island
            // streams are untouched. The budget is re-checked immediately
            // before committing: a deadline or cancellation that lands here
            // stops the phase with its proper cause rather than committing a
            // partial migration.
            if islands > 1 && cfg.emigrants > 0 && gen > 0 && gen % cfg.migration_interval == 0 {
                if let Some(cause) = self.budget.check() {
                    stopped = Some(cause);
                    break;
                }
                let mig_started = if obs::enabled() { Some(Instant::now()) } else { None };
                let moved = migrate(&mut evaluated, islands, island_pop, cfg.emigrants);
                obs::emit(|| {
                    obs::Event::new("ga.migration")
                        .u64("phase", self.phase_index as u64)
                        .u64("gen", gen as u64)
                        .u64("islands", islands as u64)
                        .u64("emigrants", cfg.emigrants as u64)
                        .u64("moved", moved)
                        .u64("wall_ns", mig_started.map_or(0, |t| t.elapsed().as_nanos() as u64))
                });
            }

            // (ii) + (iii) select, cross over, and mutate each island
            // independently, appending children into a fresh arena. Each
            // island draws only from its own RNG stream, so island outcomes
            // are independent of evaluation order and of each other.
            // Crossover outcomes are tallied across islands so the trace
            // exposes how often the state-aware mechanism fires vs. falls
            // back, exactly as in the single-population engine.
            let mut next = PopulationArena::with_capacity(cfg.population_size, arena.total_genes());
            let mut tallies = XoTallies::default();
            for (isl, rng) in rngs.iter_mut().enumerate() {
                let base = isl * island_pop;
                breed_island(rng, &evaluated[base..base + island_pop], base, cfg, &mut next, &mut tallies);
            }
            obs::emit(|| {
                obs::Event::new("ga.xover")
                    .u64("phase", self.phase_index as u64)
                    .u64("gen", gen as u64)
                    .u64("children", tallies.children)
                    .u64("fallback", tallies.fallback)
                    .u64("unchanged", tallies.unchanged)
                    .u64("skipped", tallies.skipped)
            });

            // (iv) replace old with new population
            arena = next;
            parents = evaluated;
        }

        // Cache telemetry for the phase. Emitted even with the cache off
        // (all-zero counters) so cache-on and cache-off traces stay
        // line-aligned; the counter *values* are masked in golden traces
        // because parallel workers race on hits vs. misses.
        obs::emit(|| {
            let delta = cache.as_ref().map(|c| c.stats().since(&cache_start)).unwrap_or_default();
            obs::Event::new("ga.cache")
                .u64("phase", self.phase_index as u64)
                .u64("hits", delta.hits)
                .u64("misses", delta.misses)
                .u64("evictions", delta.evictions)
                .u64("capacity", cache.as_ref().map_or(0, |c| c.capacity() as u64))
        });

        debug_assert_eq!(history.len() as u32, generations_executed);
        debug_assert!(first_solution_gen.is_none_or(|g| g < generations_executed));
        PhaseResult {
            best: best.expect("at least one generation was evaluated"),
            history,
            generations_executed,
            first_solution_gen,
            stopped,
        }
    }
}

/// Per-generation crossover outcome tallies, summed across islands for the
/// `ga.xover` trace event.
#[derive(Debug, Default)]
struct XoTallies {
    children: u64,
    fallback: u64,
    unchanged: u64,
    skipped: u64,
}

/// Breed one island's next generation into `next`, drawing only from that
/// island's RNG: selection, crossover, mutation, then elitism — the same
/// operator sequence (and, with one island, the same RNG draw order) as the
/// historical single-population loop. `block` is the island's slice of the
/// evaluated population and `base` its offset, so recorded provenance
/// indexes the *global* parent generation.
fn breed_island<S: Clone>(
    rng: &mut StdRng,
    block: &[Evaluated<S>],
    base: usize,
    cfg: &GaConfig,
    next: &mut PopulationArena,
    t: &mut XoTallies,
) {
    let n = block.len();
    let block_start = next.len();
    let fitnesses: Vec<f64> = block.iter().map(|e| e.fitness.total).collect();
    let sel: Vec<usize> = (0..n).map(|_| select_parent(rng, &fitnesses, cfg.selection)).collect();
    let mut i = 0;
    while i + 1 < sel.len() {
        let (ia, ib) = (sel[i], sel[i + 1]);
        let (pa, pb) = (&block[ia], &block[ib]);
        if rng.gen::<f64>() < cfg.crossover_rate {
            let plan = crossover_plan(rng, cfg.crossover, pa, pb);
            match plan {
                CrossoverPlan::Splice { fallback: false, .. } | CrossoverPlan::TwoPoint { .. } => t.children += 1,
                // mixed crossover found no matching cut and fell back to a
                // random second cut
                CrossoverPlan::Splice { fallback: true, .. } => t.fallback += 1,
                // state-aware found no matching cut: "both parents are
                // included in the population of the next generation"
                CrossoverPlan::Unchanged => t.unchanged += 1,
            }
            plan.materialize_into(next, pa, base + ia, pb, base + ib, cfg.max_len);
        } else {
            t.skipped += 1;
            next.push(pa.genome.genes(), Provenance::full(base + ia));
            next.push(pb.genome.genes(), Provenance::full(base + ib));
        }
        i += 2;
    }
    if i < sel.len() {
        next.push(block[sel[i]].genome.genes(), Provenance::full(base + sel[i]));
    }
    for j in block_start..next.len() {
        let m = mutate_slice(rng, next.genes_mut(j), cfg.mutation_rate);
        let lm = match length_mutate_plan(rng, next.genes(j).len(), cfg.length_mutation_rate, cfg.max_len) {
            Some(LengthEdit::Insert { at, v }) => {
                next.insert_gene(j, at, v);
                Some(at)
            }
            Some(LengthEdit::Remove { at }) => {
                next.remove_gene(j, at);
                Some(at)
            }
            None => None,
        };
        // The prefix-reuse provenance stays valid only up to the first
        // locus any mutation touched.
        if let Some(first_changed) = [m, lm].into_iter().flatten().min() {
            next.prov_mut(j).truncate(first_changed);
        }
    }

    // elitism: the island's best `elitism` individuals survive unchanged,
    // overwriting the tail of its offspring block
    if cfg.elitism > 0 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            block[b].fitness.total.partial_cmp(&block[a].fitness.total).expect("fitness values are never NaN")
        });
        let produced = next.len() - block_start;
        for (slot, &idx) in order.iter().take(cfg.elitism.min(produced)).enumerate() {
            next.replace(block_start + produced - 1 - slot, block[idx].genome.genes(), Provenance::full(base + idx));
        }
    }
}

/// Rank an island block best-first by `(goal, total)` fitness, with a fully
/// deterministic tie-break: genome gene bits lexicographically, then index.
/// Migration must not depend on the incidental order of equal-fitness
/// individuals, or island runs would stop being reproducible.
fn ranked_indices<S>(block: &[Evaluated<S>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..block.len()).collect();
    order.sort_by(|&x, &y| {
        let (a, b) = (&block[x], &block[y]);
        (b.fitness.goal, b.fitness.total)
            .partial_cmp(&(a.fitness.goal, a.fitness.total))
            .expect("fitness values are never NaN")
            .then_with(|| {
                a.genome.genes().iter().map(|g| g.to_bits()).cmp(b.genome.genes().iter().map(|g| g.to_bits()))
            })
            .then_with(|| x.cmp(&y))
    });
    order
}

/// Ring migration: clone the top `emigrants` of every island (ranked
/// against the pre-migration population), then overwrite the worst
/// individuals of each island's ring successor. All emigrants are captured
/// before any island is modified, so a migration never forwards an
/// individual that itself just migrated in. Returns the number moved.
fn migrate<S: Clone>(pop: &mut [Evaluated<S>], islands: usize, island_pop: usize, emigrants: usize) -> u64 {
    let ranked: Vec<Vec<usize>> =
        (0..islands).map(|i| ranked_indices(&pop[i * island_pop..(i + 1) * island_pop])).collect();
    let emigrant_pool: Vec<Vec<Evaluated<S>>> = (0..islands)
        .map(|i| ranked[i][..emigrants].iter().map(|&x| pop[i * island_pop + x].clone()).collect())
        .collect();
    let mut moved = 0u64;
    for (i, emis) in emigrant_pool.into_iter().enumerate() {
        let dest = (i + 1) % islands;
        let dest_base = dest * island_pop;
        let worst = &ranked[dest][island_pop - emigrants..];
        for (e, &slot) in emis.into_iter().zip(worst) {
            pop[dest_base + slot] = e;
            moved += 1;
        }
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CrossoverKind, EvalMode, SelectionScheme};
    use gaplan_core::strips::{StripsBuilder, StripsProblem};
    use gaplan_core::{DomainExt, Plan};

    /// Linear chain domain of length n with a distractor "undo" op at each
    /// step; goal-fitness graded by progress.
    fn chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 0..n {
            b.op(&format!("fwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i + 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        b.goal(&[&format!("s{n}")]).unwrap();
        b.build().unwrap()
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population_size: 40,
            generations_per_phase: 60,
            initial_len: 10,
            max_len: 24,
            seed: 7,
            eval: EvalMode::Serial,
            ..GaConfig::default()
        }
    }

    #[test]
    fn phase_solves_small_chain() {
        let d = chain(6);
        let r = Phase::new(&d, cfg()).run();
        assert!(r.best.solves(), "best goal fitness = {}", r.best.fitness.goal);
        assert!(r.first_solution_gen.is_some());
        // the decoded best must replay as a valid plan that solves
        let plan = Plan::from_ops(r.best.ops.clone());
        let out = plan.simulate(&d, &d.initial_state()).unwrap();
        assert!(out.solves);
    }

    #[test]
    fn early_stop_shortens_run() {
        let d = chain(4);
        let mut c = cfg();
        c.early_stop_on_solution = true;
        let r = Phase::new(&d, c).run();
        assert!(r.best.solves());
        assert!(r.generations_executed < 60, "executed {}", r.generations_executed);
        assert_eq!(r.history.len() as u32, r.generations_executed);
    }

    #[test]
    fn run_is_deterministic_for_fixed_seed() {
        let d = chain(5);
        let a = Phase::new(&d, cfg()).run();
        let b = Phase::new(&d, cfg()).run();
        assert_eq!(a.best.genome, b.best.genome);
        assert_eq!(a.best.fitness.total, b.best.fitness.total);
        assert_eq!(a.generations_executed, b.generations_executed);
        assert_eq!(a.first_solution_gen, b.first_solution_gen);
    }

    #[test]
    fn different_seeds_differ() {
        let d = chain(5);
        let mut c2 = cfg();
        c2.seed = 8;
        let a = Phase::new(&d, cfg()).run();
        let b = Phase::new(&d, c2).run();
        // overwhelmingly likely the runs diverge
        assert!(a.best.genome != b.best.genome || a.first_solution_gen != b.first_solution_gen);
    }

    #[test]
    fn best_fitness_is_monotone_in_history() {
        let d = chain(8);
        let r = Phase::new(&d, cfg()).run();
        let mut peak = f64::NEG_INFINITY;
        for s in &r.history {
            peak = peak.max(s.best_goal);
        }
        assert_eq!(peak, r.best.fitness.goal);
    }

    #[test]
    fn all_crossover_kinds_run_and_respect_max_len() {
        let d = chain(5);
        for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
            let mut c = cfg();
            c.crossover = kind;
            c.generations_per_phase = 20;
            let r = Phase::new(&d, c).run();
            assert!(r.best.genome.len() <= 24, "{kind:?} overflowed MaxLen");
        }
    }

    #[test]
    fn alternative_selection_schemes_run() {
        let d = chain(4);
        for sel in [SelectionScheme::Roulette, SelectionScheme::Rank, SelectionScheme::Tournament(4)] {
            let mut c = cfg();
            c.selection = sel;
            c.generations_per_phase = 30;
            let r = Phase::new(&d, c).run();
            assert!(r.best.fitness.goal > 0.0);
        }
    }

    #[test]
    fn with_start_searches_from_given_state() {
        let d = chain(6);
        // start two steps in
        let mut s = d.initial_state();
        for _ in 0..2 {
            let ops = d.valid_ops_vec(&s);
            let fwd = ops.iter().copied().find(|&o| d.op_name(o).starts_with("fwd")).unwrap();
            s = d.apply(&s, fwd);
        }
        let r = Phase::with_start(&d, cfg(), s.clone(), 3).run();
        // plan must replay validly from the custom start
        let plan = Plan::from_ops(r.best.ops.clone());
        plan.simulate(&d, &s).unwrap();
    }

    #[test]
    fn odd_population_size_is_handled() {
        let d = chain(3);
        let mut c = cfg();
        c.population_size = 31;
        let r = Phase::new(&d, c).run();
        assert!(r.best.fitness.goal > 0.0);
    }

    #[test]
    fn elitism_makes_population_best_monotone() {
        let d = chain(8);
        let mut c = cfg();
        c.elitism = 1;
        c.generations_per_phase = 40;
        let r = Phase::new(&d, c).run();
        // with one elite surviving every generation, the population's best
        // total fitness never decreases
        for w in r.history.windows(2) {
            assert!(
                w[1].best_total >= w[0].best_total - 1e-9,
                "best regressed: {} -> {}",
                w[0].best_total,
                w[1].best_total
            );
        }
    }

    #[test]
    fn without_elitism_best_can_regress() {
        // stochastic property: across a handful of seeds, strict
        // generational replacement loses its best individual at least once
        let d = chain(8);
        let regressed = (0..5).any(|seed| {
            let mut c = cfg();
            c.elitism = 0;
            c.generations_per_phase = 60;
            c.seed = 100 + seed;
            let r = Phase::new(&d, c).run();
            r.history.windows(2).any(|w| w[1].best_total < w[0].best_total - 1e-9)
        });
        assert!(regressed, "no regression across 5 seeds - elitism would be redundant");
    }

    /// Like `chain` but each forward move also adds a persistent `r{i}`
    /// marker that is part of the goal, so goal fitness is graded and the
    /// greedy seeding walk has a gradient to follow (the plain chain's 0/1
    /// fitness makes greedy walks indistinguishable from random ones).
    fn graded_chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 1..=n {
            b.condition(&format!("r{i}")).unwrap();
        }
        for i in 0..n {
            b.op(
                &format!("fwd{i}"),
                &[&format!("s{i}")],
                &[&format!("s{}", i + 1), &format!("r{}", i + 1)],
                &[&format!("s{i}")],
                1.0,
            )
            .unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        let goal: Vec<String> = (1..=n).map(|i| format!("r{i}")).collect();
        let refs: Vec<&str> = goal.iter().map(String::as_str).collect();
        b.goal(&refs).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn seeded_phase_uses_heuristic_individuals() {
        use crate::seeding::SeedStrategy;
        let d = graded_chain(8);
        let mut c = cfg();
        c.generations_per_phase = 5;
        let seeded = Phase::new(&d, c.clone()).with_seeder(SeedStrategy::GreedyWalk, 0.5).run();
        let unseeded = Phase::new(&d, c).run();
        // greedy seeds give the seeded phase a head start on this graded chain
        assert!(
            seeded.history[0].best_goal >= unseeded.history[0].best_goal,
            "seeded gen-0 best {} < unseeded {}",
            seeded.history[0].best_goal,
            unseeded.history[0].best_goal
        );
        // and the greedy walks themselves reach the goal on a graded chain
        assert!(
            seeded.history[0].best_goal >= 1.0 - 1e-12,
            "greedy seeds should solve the graded chain at gen 0, got {}",
            seeded.history[0].best_goal
        );
    }

    #[test]
    fn cancelled_phase_returns_consistent_best_so_far() {
        use gaplan_core::budget::{Budget, CancelToken, StopCause};
        let d = chain(8);
        let mut c = cfg();
        c.generations_per_phase = 50;
        let token = CancelToken::new();
        token.cancel(); // cancelled before the run even starts
        let r = Phase::new(&d, c).with_budget(Budget::unlimited().with_token(token)).run();
        // generation 0 always runs, so there is a genuine best-so-far...
        assert_eq!(r.stopped, Some(StopCause::Cancelled));
        assert_eq!(r.generations_executed, 1);
        // ...and the bookkeeping stays consistent when cut short:
        assert_eq!(r.history.len() as u32, r.generations_executed);
        if let Some(g) = r.first_solution_gen {
            assert!(g < r.generations_executed, "first_solution_gen {g} out of range");
        }
    }

    #[test]
    fn expired_deadline_stops_phase_after_one_generation() {
        use gaplan_core::budget::{Budget, StopCause};
        use std::time::Duration;
        let d = chain(8);
        let mut c = cfg();
        c.generations_per_phase = 50;
        let r = Phase::new(&d, c).with_budget(Budget::unlimited().with_timeout(Duration::ZERO)).run();
        assert_eq!(r.stopped, Some(StopCause::Deadline));
        assert_eq!(r.generations_executed, 1);
        assert_eq!(r.history.len(), 1);
    }

    #[test]
    fn unlimited_budget_leaves_run_unchanged() {
        let d = chain(6);
        let with = Phase::new(&d, cfg()).with_budget(gaplan_core::Budget::unlimited()).run();
        let without = Phase::new(&d, cfg()).run();
        assert_eq!(with.generations_executed, without.generations_executed);
        assert_eq!(with.best.ops, without.best.ops);
        assert_eq!(with.stopped, None);
    }

    #[test]
    #[should_panic(expected = "invalid GaConfig")]
    fn invalid_config_panics() {
        let d = chain(3);
        let mut c = cfg();
        c.crossover_rate = 2.0;
        Phase::new(&d, c).run();
    }

    /// Whole-phase equivalence: the evaluation layer (successor cache +
    /// prefix hints) must not change a single bit of the outcome, for every
    /// crossover kind and both match modes.
    #[test]
    fn phase_results_identical_with_cache_on_and_off() {
        use crate::config::StateMatchMode;
        let d = chain(6);
        for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
            for mode in [StateMatchMode::ValidOpSet, StateMatchMode::ExactState] {
                let mut on = cfg();
                on.crossover = kind;
                on.state_match = mode;
                on.generations_per_phase = 25;
                on.length_mutation_rate = 0.05;
                let mut off = on.clone();
                on.succ_cache = true;
                off.succ_cache = false;
                let a = Phase::new(&d, on).run();
                let b = Phase::new(&d, off).run();
                assert_eq!(a.best.genome, b.best.genome, "{kind:?}/{mode:?}: genome");
                assert_eq!(a.best.ops, b.best.ops, "{kind:?}/{mode:?}: ops");
                assert_eq!(a.best.match_keys, b.best.match_keys, "{kind:?}/{mode:?}: match keys");
                assert_eq!(
                    a.best.fitness.total.to_bits(),
                    b.best.fitness.total.to_bits(),
                    "{kind:?}/{mode:?}: fitness"
                );
                assert_eq!(a.generations_executed, b.generations_executed, "{kind:?}/{mode:?}: generations");
                assert_eq!(a.first_solution_gen, b.first_solution_gen, "{kind:?}/{mode:?}: first solution");
                for (ha, hb) in a.history.iter().zip(&b.history) {
                    assert_eq!(ha.best_total.to_bits(), hb.best_total.to_bits(), "{kind:?}/{mode:?}: history");
                    assert_eq!(ha.mean_total.to_bits(), hb.mean_total.to_bits(), "{kind:?}/{mode:?}: history mean");
                }
            }
        }
    }

    /// The cache hit-rate guard from the perf issue: on a seeded run the
    /// population revisits states so heavily that well over half of all
    /// successor lookups must be served from the table.
    #[test]
    fn seeded_run_cache_hit_rate_exceeds_half() {
        let d = chain(8);
        let mut c = cfg();
        c.generations_per_phase = 30;
        let cache = Arc::new(SuccessorCache::new(c.succ_cache_capacity));
        Phase::new(&d, c).with_cache(Arc::clone(&cache)).run();
        let stats = cache.stats();
        assert!(
            stats.hit_rate() > 0.5,
            "cache hit rate {:.1}% (hits {} misses {}) — expected > 50%",
            stats.hit_rate() * 100.0,
            stats.hits,
            stats.misses
        );
    }

    #[test]
    fn shared_cache_stays_warm_across_phases() {
        let d = chain(6);
        let c = cfg();
        let cache = Arc::new(SuccessorCache::new(1 << 12));
        Phase::new(&d, c.clone()).with_cache(Arc::clone(&cache)).run();
        let after_first = cache.stats();
        Phase::with_start(&d, c, d.initial_state(), 1).with_cache(Arc::clone(&cache)).run();
        let after_second = cache.stats();
        let second = after_second.since(&after_first);
        // The second phase starts from the same state space: its miss count
        // must be far below its hit count because the table is already warm.
        assert!(
            second.hits > second.misses,
            "warm-start phase should mostly hit: hits {} misses {}",
            second.hits,
            second.misses
        );
    }

    fn island_cfg() -> GaConfig {
        let mut c = cfg();
        c.islands = 4;
        c.migration_interval = 5;
        c.emigrants = 2;
        c
    }

    fn assert_results_identical(
        a: &PhaseResult<<StripsProblem as gaplan_core::Domain>::State>,
        b: &PhaseResult<<StripsProblem as gaplan_core::Domain>::State>,
        what: &str,
    ) {
        assert_eq!(a.best.genome, b.best.genome, "{what}: genome");
        assert_eq!(a.best.ops, b.best.ops, "{what}: ops");
        assert_eq!(a.best.fitness.total.to_bits(), b.best.fitness.total.to_bits(), "{what}: fitness");
        assert_eq!(a.generations_executed, b.generations_executed, "{what}: generations");
        assert_eq!(a.first_solution_gen, b.first_solution_gen, "{what}: first solution");
        assert_eq!(a.history.len(), b.history.len(), "{what}: history length");
        for (ha, hb) in a.history.iter().zip(&b.history) {
            assert_eq!(ha.best_total.to_bits(), hb.best_total.to_bits(), "{what}: history best");
            assert_eq!(ha.mean_total.to_bits(), hb.mean_total.to_bits(), "{what}: history mean");
        }
    }

    #[test]
    fn island_run_is_bitwise_reproducible() {
        let d = chain(6);
        let a = Phase::new(&d, island_cfg()).run();
        let b = Phase::new(&d, island_cfg()).run();
        assert_results_identical(&a, &b, "run-to-run");
    }

    #[test]
    fn island_run_identical_serial_and_parallel() {
        let d = chain(6);
        let mut par = island_cfg();
        par.eval = EvalMode::Parallel;
        let a = Phase::new(&d, island_cfg()).run();
        let b = Phase::new(&d, par).run();
        assert_results_identical(&a, &b, "serial vs parallel");
    }

    #[test]
    fn island_run_identical_with_cache_on_and_off() {
        let d = chain(6);
        let mut off = island_cfg();
        off.succ_cache = false;
        let a = Phase::new(&d, island_cfg()).run();
        let b = Phase::new(&d, off).run();
        assert_results_identical(&a, &b, "cache on vs off");
    }

    #[test]
    fn islands_diverge_from_single_population() {
        let d = chain(6);
        let one = Phase::new(&d, cfg()).run();
        let four = Phase::new(&d, island_cfg()).run();
        // different RNG streams per island: overwhelmingly likely to diverge
        assert!(
            one.best.genome != four.best.genome || one.first_solution_gen != four.first_solution_gen,
            "4-island run coincided with the single-population run"
        );
    }

    #[test]
    fn migration_fires_on_schedule_and_is_traced() {
        use gaplan_obs::RecordingSubscriber;
        let d = chain(12); // hard enough that no early stop interferes
        let mut c = island_cfg();
        c.generations_per_phase = 18; // migrations at gens 5, 10, 15
        let rec = Arc::new(RecordingSubscriber::default());
        let guard = obs::install(rec.clone());
        Phase::new(&d, c).run();
        drop(guard);
        let migrations: Vec<String> =
            rec.lines().into_iter().filter(|l| l.contains(r#""ev":"ga.migration""#)).collect();
        assert_eq!(migrations.len(), 3, "{migrations:?}");
        for (line, gen) in migrations.iter().zip([5u32, 10, 15]) {
            assert!(line.contains(&format!(r#""gen":{gen}"#)), "{line}");
            assert!(line.contains(r#""islands":4"#), "{line}");
            assert!(line.contains(r#""moved":8"#), "4 islands x 2 emigrants: {line}");
        }
    }

    #[test]
    fn migrate_moves_best_over_ring_and_replaces_worst() {
        // Two islands of three; fitness identifies individuals.
        let genome = |v: f64| Genome::from_genes(vec![v]);
        let mut pop: Vec<Evaluated<()>> = (0..6)
            .map(|i| {
                let mut e = Evaluated {
                    genome: genome(i as f64 / 10.0),
                    ops: vec![],
                    match_keys: vec![0],
                    step_goals: vec![],
                    final_state: (),
                    decoded_len: 0,
                    best_prefix_at: 0,
                    best_prefix_state: (),
                    fitness: Default::default(),
                };
                e.fitness.total = i as f64;
                e
            })
            .collect();
        // island 0 = fitness [0,1,2], island 1 = fitness [3,4,5]
        let moved = migrate(&mut pop, 2, 3, 1);
        assert_eq!(moved, 2);
        // island 1's best (5) replaced island 0's worst (0); island 0's
        // best (2) replaced island 1's worst (3) — ranked pre-migration.
        let totals: Vec<f64> = pop.iter().map(|e| e.fitness.total).collect();
        assert_eq!(totals, vec![5.0, 1.0, 2.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn mid_phase_island_snapshot_resume_is_identical() {
        let d = chain(8);
        let mut c = island_cfg();
        c.generations_per_phase = 30;
        let mut snaps: Vec<PhaseSnapshot> = Vec::new();
        let full = Phase::new(&d, c.clone()).run_snapshotting(None, 7, &mut |s| snaps.push(s));
        assert!(!snaps.is_empty(), "expected mid-phase snapshots");
        let snap = snaps.last().unwrap();
        assert_eq!(snap.islands(), 4);
        assert_eq!(snap.rng.len(), 16, "4 islands x 4 words of RNG state");
        let resumed = Phase::new(&d, c).run_snapshotting(Some(snap), 0, &mut |_| {});
        assert_results_identical(&full, &resumed, "resume");
    }

    #[test]
    #[should_panic(expected = "snapshot island count mismatch")]
    fn resume_with_wrong_island_count_panics() {
        let d = chain(6);
        let mut snaps: Vec<PhaseSnapshot> = Vec::new();
        Phase::new(&d, island_cfg()).run_snapshotting(None, 7, &mut |s| snaps.push(s));
        let mut two = island_cfg();
        two.islands = 2;
        Phase::new(&d, two).run_snapshotting(Some(&snaps[0]), 0, &mut |_| {});
    }

    /// Regression test for the masked-stop bug class: a cancellation that
    /// lands *inside* a migration step (between evaluation and the ring
    /// exchange) must surface as the phase's stop cause, and the migration
    /// must not be committed partially (here: not at all).
    #[test]
    fn cancel_inside_migration_step_propagates_stop_cause() {
        use gaplan_core::budget::{Budget, CancelToken, StopCause};
        use std::sync::Mutex;

        /// Records every event and cancels the token the moment evaluation
        /// of `cancel_at` finishes (its `ga.gen` event) — exactly the window
        /// in which the engine is about to migrate.
        struct CancelOnGen {
            token: CancelToken,
            cancel_at: u64,
            lines: Mutex<Vec<String>>,
        }
        impl obs::Subscriber for CancelOnGen {
            fn on_event(&self, event: &obs::Event) {
                self.lines.lock().unwrap().push(event.to_json());
                if event.name() == "ga.gen"
                    && event.fields().iter().any(|(k, v)| *k == "gen" && *v == obs::FieldValue::U64(self.cancel_at))
                {
                    self.token.cancel();
                }
            }
        }

        let d = chain(12);
        let mut c = island_cfg();
        c.migration_interval = 10;
        c.generations_per_phase = 30;
        let token = CancelToken::new();
        let sub = Arc::new(CancelOnGen { token: token.clone(), cancel_at: 10, lines: Mutex::new(Vec::new()) });
        let guard = obs::install(sub.clone());
        let r = Phase::new(&d, c).with_budget(Budget::unlimited().with_token(token)).run();
        drop(guard);

        assert_eq!(r.stopped, Some(StopCause::Cancelled), "stop cause must survive the migration path");
        assert_eq!(r.generations_executed, 11, "generation 10 evaluated, then the cut landed");
        assert_eq!(r.history.len() as u32, r.generations_executed);
        let lines = sub.lines.lock().unwrap();
        assert!(
            !lines.iter().any(|l| l.contains(r#""ev":"ga.migration""#)),
            "a cancelled migration step must not commit (even partially)"
        );
    }
}
