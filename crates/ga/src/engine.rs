//! The single-phase GA engine: one "independent GA run" in the paper's
//! terminology (§3.5 step 2a): evaluate → select → crossover → mutate →
//! replace, for a fixed number of generations.

use std::sync::Arc;
use std::time::Instant;

use gaplan_core::budget::{Budget, StopCause};
use gaplan_core::{Domain, SuccessorCache};
use gaplan_obs as obs;
use rand::rngs::StdRng;
use rand::Rng;

use crate::checkpoint::PhaseSnapshot;
use crate::config::GaConfig;
use crate::crossover::{crossover_with_cuts, CrossoverOutcome};
use crate::decode::PrefixHint;
use crate::genome::Genome;
use crate::individual::Evaluated;
use crate::mutation::{length_mutate, mutate};
use crate::population::{evaluate_candidates, init_population, phase_rng, Candidate};
use crate::seeding::{seeded_population, SeedStrategy};
use crate::selection::select_parent;
use crate::stats::GenStats;

/// One GA phase: an independent run over a fixed generation budget,
/// starting from a given state.
pub struct Phase<'d, D: Domain> {
    domain: &'d D,
    cfg: GaConfig,
    start: D::State,
    phase_index: u32,
    seeder: Option<(SeedStrategy, f64)>,
    budget: Budget,
    cache: Option<Arc<SuccessorCache<D::State>>>,
}

/// The outcome of a phase.
#[derive(Debug, Clone)]
pub struct PhaseResult<S> {
    /// The best individual found across all generations of the phase,
    /// ranked by `(goal fitness, total fitness)` lexicographically — the
    /// paper both reports and chains phases on "the individual with the
    /// highest goal fitness".
    pub best: Evaluated<S>,
    /// Per-generation statistics.
    pub history: Vec<GenStats>,
    /// Number of generations actually evolved. Always equals
    /// `history.len()`, and is less than the configured budget iff the
    /// phase stopped early (solution found, deadline, or cancellation).
    pub generations_executed: u32,
    /// First generation (0-based) at which some individual solved the
    /// problem, if any. When `Some(g)`, `g < generations_executed`.
    pub first_solution_gen: Option<u32>,
    /// Why the phase was cut short by its [`Budget`], if it was. `None`
    /// means the phase ran to its configured end or early-stopped on a
    /// solution. Even when `Some`, at least one generation was evaluated,
    /// so `best` is the genuine best-so-far.
    pub stopped: Option<StopCause>,
}

/// Ranking used for "best individual": goal fitness first (the paper picks
/// by goal fitness), total fitness as tie-break (prefers cheaper plans).
#[inline]
fn better<S>(a: &Evaluated<S>, b: &Evaluated<S>) -> bool {
    (a.fitness.goal, a.fitness.total) > (b.fitness.goal, b.fitness.total)
}

impl<'d, D: Domain> Phase<'d, D> {
    /// Create a phase starting from the domain's initial state.
    pub fn new(domain: &'d D, cfg: GaConfig) -> Self {
        let start = domain.initial_state();
        Phase { domain, cfg, start, phase_index: 0, seeder: None, budget: Budget::unlimited(), cache: None }
    }

    /// Create a phase starting from an arbitrary state (used by the
    /// multi-phase driver: "the final state of the solution is taken as the
    /// initial state for the search during the next phase"). `phase_index`
    /// selects an independent RNG stream.
    pub fn with_start(domain: &'d D, cfg: GaConfig, start: D::State, phase_index: u32) -> Self {
        Phase { domain, cfg, start, phase_index, seeder: None, budget: Budget::unlimited(), cache: None }
    }

    /// Share a successor cache with this phase (the multi-phase driver and
    /// the planning service pass one cache across phases/replans, so later
    /// runs start warm). Without this, the phase builds a private cache when
    /// `cfg.succ_cache` is on; `cfg.succ_cache = false` disables caching
    /// entirely, including a cache passed here.
    pub fn with_cache(mut self, cache: Arc<SuccessorCache<D::State>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Seed a fraction of the initial population with heuristic individuals
    /// (Westerberg & Levine-style seeding; see [`crate::seeding`]).
    pub fn with_seeder(mut self, strategy: SeedStrategy, fraction: f64) -> Self {
        self.seeder = Some((strategy, fraction));
        self
    }

    /// Attach an execution budget (deadline and/or cancellation token),
    /// checked between generations. The first generation always runs, so a
    /// stopped phase still returns a meaningful best-so-far individual.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Run the phase to completion (or early stop) and return the result.
    pub fn run(&self) -> PhaseResult<D::State> {
        self.run_snapshotting(None, 0, &mut |_| {})
    }

    /// [`Phase::run`] with mid-phase checkpointing: when `snapshot_every > 0`
    /// the evolve loop hands a [`PhaseSnapshot`] to `sink` every
    /// `snapshot_every` generations (taken at the top of the loop, before
    /// evaluation), and a run resumed from such a snapshot via `resume`
    /// continues bitwise-identically — the snapshot captures the
    /// bred-but-unevaluated population plus the raw RNG state, and decoding
    /// is a pure function of the genome.
    ///
    /// Panics on a structurally invalid or mismatched snapshot (callers that
    /// load snapshots from disk validate first; see
    /// [`crate::checkpoint::PhaseSnapshot::validate`]).
    pub fn run_snapshotting(
        &self,
        resume: Option<&PhaseSnapshot>,
        snapshot_every: u32,
        sink: &mut dyn FnMut(PhaseSnapshot),
    ) -> PhaseResult<D::State> {
        self.cfg.validate().expect("invalid GaConfig");
        let cfg = &self.cfg;
        // The successor cache is shared when the caller provided one,
        // phase-private otherwise; `succ_cache = false` switches the layer
        // off regardless. Either way decode results are identical — only
        // `valid_operations` call counts change.
        let cache: Option<Arc<SuccessorCache<D::State>>> = if cfg.succ_cache {
            Some(self.cache.clone().unwrap_or_else(|| Arc::new(SuccessorCache::new(cfg.succ_cache_capacity))))
        } else {
            None
        };
        let cache_start = cache.as_ref().map(|c| c.stats()).unwrap_or_default();

        let mut rng;
        let mut candidates: Vec<Candidate>;
        let mut best: Option<Evaluated<D::State>>;
        let mut history;
        let mut first_solution_gen;
        let mut generations_executed;
        let start_gen;
        match resume {
            Some(snap) => {
                snap.validate().expect("invalid phase snapshot");
                assert_eq!(snap.phase_index, self.phase_index, "snapshot belongs to another phase");
                assert!(snap.next_gen < cfg.generations_per_phase, "snapshot next_gen {} out of range", snap.next_gen);
                rng = StdRng::from_state(snap.rng_state());
                candidates =
                    snap.genomes.iter().map(|genes| Candidate::fresh(Genome::from_genes(genes.clone()))).collect();
                // Rebuild the best-so-far individual by re-evaluating its
                // genome: decoding is deterministic and RNG-free, so the
                // result is identical to the pre-crash individual.
                best = evaluate_candidates(
                    self.domain,
                    &self.start,
                    vec![Candidate::fresh(Genome::from_genes(snap.best.clone()))],
                    cfg,
                    cache.as_deref(),
                )
                .into_iter()
                .next();
                history = snap.history.clone();
                first_solution_gen = snap.first_solution_gen;
                generations_executed = snap.next_gen;
                start_gen = snap.next_gen;
            }
            None => {
                rng = phase_rng(cfg, self.phase_index);
                candidates = match &self.seeder {
                    Some((strategy, fraction)) => {
                        seeded_population(self.domain, &self.start, cfg, strategy, *fraction, &mut rng)
                    }
                    None => init_population(&mut rng, cfg),
                }
                .into_iter()
                .map(Candidate::fresh)
                .collect();
                best = None;
                history = Vec::with_capacity(cfg.generations_per_phase as usize);
                first_solution_gen = None;
                generations_executed = 0;
                start_gen = 0;
            }
        }
        let mut stopped = None;

        for gen in start_gen..cfg.generations_per_phase {
            // Budget check gates every generation but the first: generation
            // 0 always evaluates, so `best` exists and a timed-out job can
            // still report its best-so-far plan.
            if gen > 0 {
                if let Some(cause) = self.budget.check() {
                    stopped = Some(cause);
                    break;
                }
            }

            // Mid-phase checkpoint: the population here is bred but not yet
            // evaluated, and the RNG is exactly between the breeding of
            // generation `gen - 1` and the selection of generation `gen`, so
            // this point fully determines the rest of the phase. Skipped at
            // `start_gen` (nothing new to save) and free of RNG draws and
            // obs events, so checkpointing never perturbs the run.
            if snapshot_every > 0 && gen > start_gen && gen % snapshot_every == 0 {
                sink(PhaseSnapshot {
                    phase_index: self.phase_index,
                    next_gen: gen,
                    rng: rng.state().to_vec(),
                    genomes: candidates.iter().map(|c| c.genome.genes().to_vec()).collect(),
                    best: best
                        .as_ref()
                        .expect("gen > start_gen implies an evaluated generation")
                        .genome
                        .genes()
                        .to_vec(),
                    history: history.clone(),
                    first_solution_gen,
                });
            }

            // (i) evaluate each individual. The clock is only read while a
            // trace subscriber is installed: eval wall time is telemetry,
            // and the disabled path must stay free of syscalls.
            let eval_started = if obs::enabled() { Some(Instant::now()) } else { None };
            let evaluated = evaluate_candidates(self.domain, &self.start, candidates, cfg, cache.as_deref());
            let eval_wall_ns = eval_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
            generations_executed = gen + 1;

            let stats = GenStats::from_population(gen, &evaluated);
            if stats.solvers > 0 && first_solution_gen.is_none() {
                first_solution_gen = Some(gen);
            }
            obs::emit(|| {
                obs::Event::new("ga.gen")
                    .u64("phase", self.phase_index as u64)
                    .u64("gen", gen as u64)
                    .f64("best_total", stats.best_total)
                    .f64("best_goal", stats.best_goal)
                    .f64("mean_total", stats.mean_total)
                    .f64("worst_total", stats.worst_total)
                    .f64("mean_len", stats.mean_len)
                    .u64("solvers", stats.solvers as u64)
                    .u64("eval_wall_ns", eval_wall_ns)
            });
            history.push(stats);

            // track best-ever across the phase
            if let Some(gen_best) = evaluated.iter().max_by(|a, b| {
                (a.fitness.goal, a.fitness.total)
                    .partial_cmp(&(b.fitness.goal, b.fitness.total))
                    .expect("fitness values are never NaN")
            }) {
                if best.as_ref().is_none_or(|b| better(gen_best, b)) {
                    best = Some(gen_best.clone());
                }
            }

            let stop_early = cfg.early_stop_on_solution && best.as_ref().is_some_and(|b| b.solves());
            if stop_early || gen + 1 == cfg.generations_per_phase {
                break;
            }

            // (ii) select individuals for the next generation
            let fitnesses: Vec<f64> = evaluated.iter().map(|e| e.fitness.total).collect();
            let parents: Vec<usize> =
                (0..cfg.population_size).map(|_| select_parent(&mut rng, &fitnesses, cfg.selection)).collect();

            // (iii) crossover and mutation; children replace their parents.
            // Outcomes are tallied per generation so the trace exposes how
            // often the state-aware mechanism actually fires vs. falls back.
            let (mut xo_children, mut xo_fallback, mut xo_unchanged, mut xo_skipped) = (0u64, 0u64, 0u64, 0u64);
            let mut next: Vec<Candidate> = Vec::with_capacity(cfg.population_size);
            // Every child's decode checkpoint: crossover children reuse the
            // donor parent's decode up to their cut; pass-through individuals
            // reuse the parent's entire decode.
            let full_hint = |e: &Evaluated<D::State>| Some(PrefixHint::new(&e.ops, &e.match_keys, e.ops.len()));
            let cut_hint = |e: &Evaluated<D::State>, cut: usize| Some(PrefixHint::new(&e.ops, &e.match_keys, cut));
            let mut i = 0;
            while i + 1 < parents.len() {
                let (pa, pb) = (&evaluated[parents[i]], &evaluated[parents[i + 1]]);
                if rng.gen::<f64>() < cfg.crossover_rate {
                    match crossover_with_cuts(&mut rng, cfg.crossover, pa, pb, cfg.max_len) {
                        (CrossoverOutcome::Children(c1, c2), cuts) => {
                            xo_children += 1;
                            let (p1, p2) = cuts.unwrap_or((0, 0));
                            next.push(Candidate { hint: cut_hint(pa, p1), genome: c1 });
                            next.push(Candidate { hint: cut_hint(pb, p2), genome: c2 });
                        }
                        (CrossoverOutcome::FallbackChildren(c1, c2), cuts) => {
                            // mixed crossover found no matching cut and fell
                            // back to a random second cut
                            xo_fallback += 1;
                            let (p1, p2) = cuts.unwrap_or((0, 0));
                            next.push(Candidate { hint: cut_hint(pa, p1), genome: c1 });
                            next.push(Candidate { hint: cut_hint(pb, p2), genome: c2 });
                        }
                        (CrossoverOutcome::Unchanged, _) => {
                            // state-aware found no matching cut: "both
                            // parents are included in the population of the
                            // next generation"
                            xo_unchanged += 1;
                            next.push(Candidate { hint: full_hint(pa), genome: pa.genome.clone() });
                            next.push(Candidate { hint: full_hint(pb), genome: pb.genome.clone() });
                        }
                    }
                } else {
                    xo_skipped += 1;
                    next.push(Candidate { hint: full_hint(pa), genome: pa.genome.clone() });
                    next.push(Candidate { hint: full_hint(pb), genome: pb.genome.clone() });
                }
                i += 2;
            }
            obs::emit(|| {
                obs::Event::new("ga.xover")
                    .u64("phase", self.phase_index as u64)
                    .u64("gen", gen as u64)
                    .u64("children", xo_children)
                    .u64("fallback", xo_fallback)
                    .u64("unchanged", xo_unchanged)
                    .u64("skipped", xo_skipped)
            });
            if i < parents.len() {
                let leftover = &evaluated[parents[i]];
                next.push(Candidate { hint: full_hint(leftover), genome: leftover.genome.clone() });
            }
            for cand in &mut next {
                let m = mutate(&mut rng, &mut cand.genome, cfg.mutation_rate);
                let lm = length_mutate(&mut rng, &mut cand.genome, cfg.length_mutation_rate, cfg.max_len);
                // The checkpoint stays valid only up to the first locus any
                // mutation touched.
                if let Some(first_changed) = [m, lm].into_iter().flatten().min() {
                    if let Some(hint) = &mut cand.hint {
                        hint.truncate(first_changed);
                    }
                }
            }

            // elitism: the best `elitism` individuals survive unchanged,
            // overwriting the tail of the offspring pool
            if cfg.elitism > 0 {
                let mut order: Vec<usize> = (0..evaluated.len()).collect();
                order.sort_by(|&a, &b| {
                    evaluated[b]
                        .fitness
                        .total
                        .partial_cmp(&evaluated[a].fitness.total)
                        .expect("fitness values are never NaN")
                });
                let n = next.len();
                for (slot, &idx) in order.iter().take(cfg.elitism.min(n)).enumerate() {
                    let elite = &evaluated[idx];
                    next[n - 1 - slot] = Candidate { hint: full_hint(elite), genome: elite.genome.clone() };
                }
            }

            // (iv) replace old with new population
            candidates = next;
        }

        // Cache telemetry for the phase. Emitted even with the cache off
        // (all-zero counters) so cache-on and cache-off traces stay
        // line-aligned; the counter *values* are masked in golden traces
        // because parallel workers race on hits vs. misses.
        obs::emit(|| {
            let delta = cache.as_ref().map(|c| c.stats().since(&cache_start)).unwrap_or_default();
            obs::Event::new("ga.cache")
                .u64("phase", self.phase_index as u64)
                .u64("hits", delta.hits)
                .u64("misses", delta.misses)
                .u64("evictions", delta.evictions)
                .u64("capacity", cache.as_ref().map_or(0, |c| c.capacity() as u64))
        });

        debug_assert_eq!(history.len() as u32, generations_executed);
        debug_assert!(first_solution_gen.is_none_or(|g| g < generations_executed));
        PhaseResult {
            best: best.expect("at least one generation was evaluated"),
            history,
            generations_executed,
            first_solution_gen,
            stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CrossoverKind, EvalMode, SelectionScheme};
    use gaplan_core::strips::{StripsBuilder, StripsProblem};
    use gaplan_core::{DomainExt, Plan};

    /// Linear chain domain of length n with a distractor "undo" op at each
    /// step; goal-fitness graded by progress.
    fn chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 0..n {
            b.op(&format!("fwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i + 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        b.goal(&[&format!("s{n}")]).unwrap();
        b.build().unwrap()
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population_size: 40,
            generations_per_phase: 60,
            initial_len: 10,
            max_len: 24,
            seed: 7,
            eval: EvalMode::Serial,
            ..GaConfig::default()
        }
    }

    #[test]
    fn phase_solves_small_chain() {
        let d = chain(6);
        let r = Phase::new(&d, cfg()).run();
        assert!(r.best.solves(), "best goal fitness = {}", r.best.fitness.goal);
        assert!(r.first_solution_gen.is_some());
        // the decoded best must replay as a valid plan that solves
        let plan = Plan::from_ops(r.best.ops.clone());
        let out = plan.simulate(&d, &d.initial_state()).unwrap();
        assert!(out.solves);
    }

    #[test]
    fn early_stop_shortens_run() {
        let d = chain(4);
        let mut c = cfg();
        c.early_stop_on_solution = true;
        let r = Phase::new(&d, c).run();
        assert!(r.best.solves());
        assert!(r.generations_executed < 60, "executed {}", r.generations_executed);
        assert_eq!(r.history.len() as u32, r.generations_executed);
    }

    #[test]
    fn run_is_deterministic_for_fixed_seed() {
        let d = chain(5);
        let a = Phase::new(&d, cfg()).run();
        let b = Phase::new(&d, cfg()).run();
        assert_eq!(a.best.genome, b.best.genome);
        assert_eq!(a.best.fitness.total, b.best.fitness.total);
        assert_eq!(a.generations_executed, b.generations_executed);
        assert_eq!(a.first_solution_gen, b.first_solution_gen);
    }

    #[test]
    fn different_seeds_differ() {
        let d = chain(5);
        let mut c2 = cfg();
        c2.seed = 8;
        let a = Phase::new(&d, cfg()).run();
        let b = Phase::new(&d, c2).run();
        // overwhelmingly likely the runs diverge
        assert!(a.best.genome != b.best.genome || a.first_solution_gen != b.first_solution_gen);
    }

    #[test]
    fn best_fitness_is_monotone_in_history() {
        let d = chain(8);
        let r = Phase::new(&d, cfg()).run();
        let mut peak = f64::NEG_INFINITY;
        for s in &r.history {
            peak = peak.max(s.best_goal);
        }
        assert_eq!(peak, r.best.fitness.goal);
    }

    #[test]
    fn all_crossover_kinds_run_and_respect_max_len() {
        let d = chain(5);
        for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
            let mut c = cfg();
            c.crossover = kind;
            c.generations_per_phase = 20;
            let r = Phase::new(&d, c).run();
            assert!(r.best.genome.len() <= 24, "{kind:?} overflowed MaxLen");
        }
    }

    #[test]
    fn alternative_selection_schemes_run() {
        let d = chain(4);
        for sel in [SelectionScheme::Roulette, SelectionScheme::Rank, SelectionScheme::Tournament(4)] {
            let mut c = cfg();
            c.selection = sel;
            c.generations_per_phase = 30;
            let r = Phase::new(&d, c).run();
            assert!(r.best.fitness.goal > 0.0);
        }
    }

    #[test]
    fn with_start_searches_from_given_state() {
        let d = chain(6);
        // start two steps in
        let mut s = d.initial_state();
        for _ in 0..2 {
            let ops = d.valid_ops_vec(&s);
            let fwd = ops.iter().copied().find(|&o| d.op_name(o).starts_with("fwd")).unwrap();
            s = d.apply(&s, fwd);
        }
        let r = Phase::with_start(&d, cfg(), s.clone(), 3).run();
        // plan must replay validly from the custom start
        let plan = Plan::from_ops(r.best.ops.clone());
        plan.simulate(&d, &s).unwrap();
    }

    #[test]
    fn odd_population_size_is_handled() {
        let d = chain(3);
        let mut c = cfg();
        c.population_size = 31;
        let r = Phase::new(&d, c).run();
        assert!(r.best.fitness.goal > 0.0);
    }

    #[test]
    fn elitism_makes_population_best_monotone() {
        let d = chain(8);
        let mut c = cfg();
        c.elitism = 1;
        c.generations_per_phase = 40;
        let r = Phase::new(&d, c).run();
        // with one elite surviving every generation, the population's best
        // total fitness never decreases
        for w in r.history.windows(2) {
            assert!(
                w[1].best_total >= w[0].best_total - 1e-9,
                "best regressed: {} -> {}",
                w[0].best_total,
                w[1].best_total
            );
        }
    }

    #[test]
    fn without_elitism_best_can_regress() {
        // stochastic property: across a handful of seeds, strict
        // generational replacement loses its best individual at least once
        let d = chain(8);
        let regressed = (0..5).any(|seed| {
            let mut c = cfg();
            c.elitism = 0;
            c.generations_per_phase = 60;
            c.seed = 100 + seed;
            let r = Phase::new(&d, c).run();
            r.history.windows(2).any(|w| w[1].best_total < w[0].best_total - 1e-9)
        });
        assert!(regressed, "no regression across 5 seeds - elitism would be redundant");
    }

    /// Like `chain` but each forward move also adds a persistent `r{i}`
    /// marker that is part of the goal, so goal fitness is graded and the
    /// greedy seeding walk has a gradient to follow (the plain chain's 0/1
    /// fitness makes greedy walks indistinguishable from random ones).
    fn graded_chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 1..=n {
            b.condition(&format!("r{i}")).unwrap();
        }
        for i in 0..n {
            b.op(
                &format!("fwd{i}"),
                &[&format!("s{i}")],
                &[&format!("s{}", i + 1), &format!("r{}", i + 1)],
                &[&format!("s{i}")],
                1.0,
            )
            .unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        let goal: Vec<String> = (1..=n).map(|i| format!("r{i}")).collect();
        let refs: Vec<&str> = goal.iter().map(String::as_str).collect();
        b.goal(&refs).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn seeded_phase_uses_heuristic_individuals() {
        use crate::seeding::SeedStrategy;
        let d = graded_chain(8);
        let mut c = cfg();
        c.generations_per_phase = 5;
        let seeded = Phase::new(&d, c.clone()).with_seeder(SeedStrategy::GreedyWalk, 0.5).run();
        let unseeded = Phase::new(&d, c).run();
        // greedy seeds give the seeded phase a head start on this graded chain
        assert!(
            seeded.history[0].best_goal >= unseeded.history[0].best_goal,
            "seeded gen-0 best {} < unseeded {}",
            seeded.history[0].best_goal,
            unseeded.history[0].best_goal
        );
        // and the greedy walks themselves reach the goal on a graded chain
        assert!(
            seeded.history[0].best_goal >= 1.0 - 1e-12,
            "greedy seeds should solve the graded chain at gen 0, got {}",
            seeded.history[0].best_goal
        );
    }

    #[test]
    fn cancelled_phase_returns_consistent_best_so_far() {
        use gaplan_core::budget::{Budget, CancelToken, StopCause};
        let d = chain(8);
        let mut c = cfg();
        c.generations_per_phase = 50;
        let token = CancelToken::new();
        token.cancel(); // cancelled before the run even starts
        let r = Phase::new(&d, c).with_budget(Budget::unlimited().with_token(token)).run();
        // generation 0 always runs, so there is a genuine best-so-far...
        assert_eq!(r.stopped, Some(StopCause::Cancelled));
        assert_eq!(r.generations_executed, 1);
        // ...and the bookkeeping stays consistent when cut short:
        assert_eq!(r.history.len() as u32, r.generations_executed);
        if let Some(g) = r.first_solution_gen {
            assert!(g < r.generations_executed, "first_solution_gen {g} out of range");
        }
    }

    #[test]
    fn expired_deadline_stops_phase_after_one_generation() {
        use gaplan_core::budget::{Budget, StopCause};
        use std::time::Duration;
        let d = chain(8);
        let mut c = cfg();
        c.generations_per_phase = 50;
        let r = Phase::new(&d, c).with_budget(Budget::unlimited().with_timeout(Duration::ZERO)).run();
        assert_eq!(r.stopped, Some(StopCause::Deadline));
        assert_eq!(r.generations_executed, 1);
        assert_eq!(r.history.len(), 1);
    }

    #[test]
    fn unlimited_budget_leaves_run_unchanged() {
        let d = chain(6);
        let with = Phase::new(&d, cfg()).with_budget(gaplan_core::Budget::unlimited()).run();
        let without = Phase::new(&d, cfg()).run();
        assert_eq!(with.generations_executed, without.generations_executed);
        assert_eq!(with.best.ops, without.best.ops);
        assert_eq!(with.stopped, None);
    }

    #[test]
    #[should_panic(expected = "invalid GaConfig")]
    fn invalid_config_panics() {
        let d = chain(3);
        let mut c = cfg();
        c.crossover_rate = 2.0;
        Phase::new(&d, c).run();
    }

    /// Whole-phase equivalence: the evaluation layer (successor cache +
    /// prefix hints) must not change a single bit of the outcome, for every
    /// crossover kind and both match modes.
    #[test]
    fn phase_results_identical_with_cache_on_and_off() {
        use crate::config::StateMatchMode;
        let d = chain(6);
        for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
            for mode in [StateMatchMode::ValidOpSet, StateMatchMode::ExactState] {
                let mut on = cfg();
                on.crossover = kind;
                on.state_match = mode;
                on.generations_per_phase = 25;
                on.length_mutation_rate = 0.05;
                let mut off = on.clone();
                on.succ_cache = true;
                off.succ_cache = false;
                let a = Phase::new(&d, on).run();
                let b = Phase::new(&d, off).run();
                assert_eq!(a.best.genome, b.best.genome, "{kind:?}/{mode:?}: genome");
                assert_eq!(a.best.ops, b.best.ops, "{kind:?}/{mode:?}: ops");
                assert_eq!(a.best.match_keys, b.best.match_keys, "{kind:?}/{mode:?}: match keys");
                assert_eq!(
                    a.best.fitness.total.to_bits(),
                    b.best.fitness.total.to_bits(),
                    "{kind:?}/{mode:?}: fitness"
                );
                assert_eq!(a.generations_executed, b.generations_executed, "{kind:?}/{mode:?}: generations");
                assert_eq!(a.first_solution_gen, b.first_solution_gen, "{kind:?}/{mode:?}: first solution");
                for (ha, hb) in a.history.iter().zip(&b.history) {
                    assert_eq!(ha.best_total.to_bits(), hb.best_total.to_bits(), "{kind:?}/{mode:?}: history");
                    assert_eq!(ha.mean_total.to_bits(), hb.mean_total.to_bits(), "{kind:?}/{mode:?}: history mean");
                }
            }
        }
    }

    /// The cache hit-rate guard from the perf issue: on a seeded run the
    /// population revisits states so heavily that well over half of all
    /// successor lookups must be served from the table.
    #[test]
    fn seeded_run_cache_hit_rate_exceeds_half() {
        let d = chain(8);
        let mut c = cfg();
        c.generations_per_phase = 30;
        let cache = Arc::new(SuccessorCache::new(c.succ_cache_capacity));
        Phase::new(&d, c).with_cache(Arc::clone(&cache)).run();
        let stats = cache.stats();
        assert!(
            stats.hit_rate() > 0.5,
            "cache hit rate {:.1}% (hits {} misses {}) — expected > 50%",
            stats.hit_rate() * 100.0,
            stats.hits,
            stats.misses
        );
    }

    #[test]
    fn shared_cache_stays_warm_across_phases() {
        let d = chain(6);
        let c = cfg();
        let cache = Arc::new(SuccessorCache::new(1 << 12));
        Phase::new(&d, c.clone()).with_cache(Arc::clone(&cache)).run();
        let after_first = cache.stats();
        Phase::with_start(&d, c, d.initial_state(), 1).with_cache(Arc::clone(&cache)).run();
        let after_second = cache.stats();
        let second = after_second.since(&after_first);
        // The second phase starts from the same state space: its miss count
        // must be far below its hit count because the table is already warm.
        assert!(
            second.hits > second.misses,
            "warm-start phase should mostly hit: hits {} misses {}",
            second.hits,
            second.misses
        );
    }
}
