//! The single-phase GA engine: one "independent GA run" in the paper's
//! terminology (§3.5 step 2a): evaluate → select → crossover → mutate →
//! replace, for a fixed number of generations.

use std::time::Instant;

use gaplan_core::budget::{Budget, StopCause};
use gaplan_core::Domain;
use gaplan_obs as obs;
use rand::Rng;

use crate::config::GaConfig;
use crate::crossover::{crossover, CrossoverOutcome};
use crate::individual::Evaluated;
use crate::mutation::{length_mutate, mutate};
use crate::population::{evaluate_all, init_population, phase_rng};
use crate::seeding::{seeded_population, SeedStrategy};
use crate::selection::select_parent;
use crate::stats::GenStats;

/// One GA phase: an independent run over a fixed generation budget,
/// starting from a given state.
pub struct Phase<'d, D: Domain> {
    domain: &'d D,
    cfg: GaConfig,
    start: D::State,
    phase_index: u32,
    seeder: Option<(SeedStrategy, f64)>,
    budget: Budget,
}

/// The outcome of a phase.
#[derive(Debug, Clone)]
pub struct PhaseResult<S> {
    /// The best individual found across all generations of the phase,
    /// ranked by `(goal fitness, total fitness)` lexicographically — the
    /// paper both reports and chains phases on "the individual with the
    /// highest goal fitness".
    pub best: Evaluated<S>,
    /// Per-generation statistics.
    pub history: Vec<GenStats>,
    /// Number of generations actually evolved. Always equals
    /// `history.len()`, and is less than the configured budget iff the
    /// phase stopped early (solution found, deadline, or cancellation).
    pub generations_executed: u32,
    /// First generation (0-based) at which some individual solved the
    /// problem, if any. When `Some(g)`, `g < generations_executed`.
    pub first_solution_gen: Option<u32>,
    /// Why the phase was cut short by its [`Budget`], if it was. `None`
    /// means the phase ran to its configured end or early-stopped on a
    /// solution. Even when `Some`, at least one generation was evaluated,
    /// so `best` is the genuine best-so-far.
    pub stopped: Option<StopCause>,
}

/// Ranking used for "best individual": goal fitness first (the paper picks
/// by goal fitness), total fitness as tie-break (prefers cheaper plans).
#[inline]
fn better<S>(a: &Evaluated<S>, b: &Evaluated<S>) -> bool {
    (a.fitness.goal, a.fitness.total) > (b.fitness.goal, b.fitness.total)
}

impl<'d, D: Domain> Phase<'d, D> {
    /// Create a phase starting from the domain's initial state.
    pub fn new(domain: &'d D, cfg: GaConfig) -> Self {
        let start = domain.initial_state();
        Phase { domain, cfg, start, phase_index: 0, seeder: None, budget: Budget::unlimited() }
    }

    /// Create a phase starting from an arbitrary state (used by the
    /// multi-phase driver: "the final state of the solution is taken as the
    /// initial state for the search during the next phase"). `phase_index`
    /// selects an independent RNG stream.
    pub fn with_start(domain: &'d D, cfg: GaConfig, start: D::State, phase_index: u32) -> Self {
        Phase { domain, cfg, start, phase_index, seeder: None, budget: Budget::unlimited() }
    }

    /// Seed a fraction of the initial population with heuristic individuals
    /// (Westerberg & Levine-style seeding; see [`crate::seeding`]).
    pub fn with_seeder(mut self, strategy: SeedStrategy, fraction: f64) -> Self {
        self.seeder = Some((strategy, fraction));
        self
    }

    /// Attach an execution budget (deadline and/or cancellation token),
    /// checked between generations. The first generation always runs, so a
    /// stopped phase still returns a meaningful best-so-far individual.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Run the phase to completion (or early stop) and return the result.
    pub fn run(&self) -> PhaseResult<D::State> {
        self.cfg.validate().expect("invalid GaConfig");
        let cfg = &self.cfg;
        let mut rng = phase_rng(cfg, self.phase_index);
        let mut genomes = match &self.seeder {
            Some((strategy, fraction)) => {
                seeded_population(self.domain, &self.start, cfg, strategy, *fraction, &mut rng)
            }
            None => init_population(&mut rng, cfg),
        };

        let mut best: Option<Evaluated<D::State>> = None;
        let mut history = Vec::with_capacity(cfg.generations_per_phase as usize);
        let mut first_solution_gen = None;
        let mut generations_executed = 0;
        let mut stopped = None;

        for gen in 0..cfg.generations_per_phase {
            // Budget check gates every generation but the first: generation
            // 0 always evaluates, so `best` exists and a timed-out job can
            // still report its best-so-far plan.
            if gen > 0 {
                if let Some(cause) = self.budget.check() {
                    stopped = Some(cause);
                    break;
                }
            }

            // (i) evaluate each individual. The clock is only read while a
            // trace subscriber is installed: eval wall time is telemetry,
            // and the disabled path must stay free of syscalls.
            let eval_started = if obs::enabled() { Some(Instant::now()) } else { None };
            let evaluated = evaluate_all(self.domain, &self.start, genomes, cfg);
            let eval_wall_ns = eval_started.map_or(0, |t| t.elapsed().as_nanos() as u64);
            generations_executed = gen + 1;

            let stats = GenStats::from_population(gen, &evaluated);
            if stats.solvers > 0 && first_solution_gen.is_none() {
                first_solution_gen = Some(gen);
            }
            obs::emit(|| {
                obs::Event::new("ga.gen")
                    .u64("phase", self.phase_index as u64)
                    .u64("gen", gen as u64)
                    .f64("best_total", stats.best_total)
                    .f64("best_goal", stats.best_goal)
                    .f64("mean_total", stats.mean_total)
                    .f64("worst_total", stats.worst_total)
                    .f64("mean_len", stats.mean_len)
                    .u64("solvers", stats.solvers as u64)
                    .u64("eval_wall_ns", eval_wall_ns)
            });
            history.push(stats);

            // track best-ever across the phase
            if let Some(gen_best) = evaluated.iter().max_by(|a, b| {
                (a.fitness.goal, a.fitness.total)
                    .partial_cmp(&(b.fitness.goal, b.fitness.total))
                    .expect("fitness values are never NaN")
            }) {
                if best.as_ref().is_none_or(|b| better(gen_best, b)) {
                    best = Some(gen_best.clone());
                }
            }

            let stop_early = cfg.early_stop_on_solution && best.as_ref().is_some_and(|b| b.solves());
            if stop_early || gen + 1 == cfg.generations_per_phase {
                break;
            }

            // (ii) select individuals for the next generation
            let fitnesses: Vec<f64> = evaluated.iter().map(|e| e.fitness.total).collect();
            let parents: Vec<usize> =
                (0..cfg.population_size).map(|_| select_parent(&mut rng, &fitnesses, cfg.selection)).collect();

            // (iii) crossover and mutation; children replace their parents.
            // Outcomes are tallied per generation so the trace exposes how
            // often the state-aware mechanism actually fires vs. falls back.
            let (mut xo_children, mut xo_fallback, mut xo_unchanged, mut xo_skipped) = (0u64, 0u64, 0u64, 0u64);
            let mut next = Vec::with_capacity(cfg.population_size);
            let mut i = 0;
            while i + 1 < parents.len() {
                let (pa, pb) = (&evaluated[parents[i]], &evaluated[parents[i + 1]]);
                if rng.gen::<f64>() < cfg.crossover_rate {
                    match crossover(&mut rng, cfg.crossover, pa, pb, cfg.max_len) {
                        CrossoverOutcome::Children(c1, c2) => {
                            xo_children += 1;
                            next.push(c1);
                            next.push(c2);
                        }
                        CrossoverOutcome::FallbackChildren(c1, c2) => {
                            // mixed crossover found no matching cut and fell
                            // back to a random second cut
                            xo_fallback += 1;
                            next.push(c1);
                            next.push(c2);
                        }
                        CrossoverOutcome::Unchanged => {
                            // state-aware found no matching cut: "both
                            // parents are included in the population of the
                            // next generation"
                            xo_unchanged += 1;
                            next.push(pa.genome.clone());
                            next.push(pb.genome.clone());
                        }
                    }
                } else {
                    xo_skipped += 1;
                    next.push(pa.genome.clone());
                    next.push(pb.genome.clone());
                }
                i += 2;
            }
            obs::emit(|| {
                obs::Event::new("ga.xover")
                    .u64("phase", self.phase_index as u64)
                    .u64("gen", gen as u64)
                    .u64("children", xo_children)
                    .u64("fallback", xo_fallback)
                    .u64("unchanged", xo_unchanged)
                    .u64("skipped", xo_skipped)
            });
            if i < parents.len() {
                next.push(evaluated[parents[i]].genome.clone());
            }
            for genome in &mut next {
                mutate(&mut rng, genome, cfg.mutation_rate);
                length_mutate(&mut rng, genome, cfg.length_mutation_rate, cfg.max_len);
            }

            // elitism: the best `elitism` individuals survive unchanged,
            // overwriting the tail of the offspring pool
            if cfg.elitism > 0 {
                let mut order: Vec<usize> = (0..evaluated.len()).collect();
                order.sort_by(|&a, &b| {
                    evaluated[b]
                        .fitness
                        .total
                        .partial_cmp(&evaluated[a].fitness.total)
                        .expect("fitness values are never NaN")
                });
                let n = next.len();
                for (slot, &idx) in order.iter().take(cfg.elitism.min(n)).enumerate() {
                    next[n - 1 - slot] = evaluated[idx].genome.clone();
                }
            }

            // (iv) replace old with new population
            genomes = next;
        }

        debug_assert_eq!(history.len() as u32, generations_executed);
        debug_assert!(first_solution_gen.is_none_or(|g| g < generations_executed));
        PhaseResult {
            best: best.expect("at least one generation was evaluated"),
            history,
            generations_executed,
            first_solution_gen,
            stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CrossoverKind, SelectionScheme};
    use gaplan_core::strips::{StripsBuilder, StripsProblem};
    use gaplan_core::{DomainExt, Plan};

    /// Linear chain domain of length n with a distractor "undo" op at each
    /// step; goal-fitness graded by progress.
    fn chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 0..n {
            b.op(&format!("fwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i + 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        b.goal(&[&format!("s{n}")]).unwrap();
        b.build().unwrap()
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population_size: 40,
            generations_per_phase: 60,
            initial_len: 10,
            max_len: 24,
            seed: 7,
            parallel: false,
            ..GaConfig::default()
        }
    }

    #[test]
    fn phase_solves_small_chain() {
        let d = chain(6);
        let r = Phase::new(&d, cfg()).run();
        assert!(r.best.solves(), "best goal fitness = {}", r.best.fitness.goal);
        assert!(r.first_solution_gen.is_some());
        // the decoded best must replay as a valid plan that solves
        let plan = Plan::from_ops(r.best.ops.clone());
        let out = plan.simulate(&d, &d.initial_state()).unwrap();
        assert!(out.solves);
    }

    #[test]
    fn early_stop_shortens_run() {
        let d = chain(4);
        let mut c = cfg();
        c.early_stop_on_solution = true;
        let r = Phase::new(&d, c).run();
        assert!(r.best.solves());
        assert!(r.generations_executed < 60, "executed {}", r.generations_executed);
        assert_eq!(r.history.len() as u32, r.generations_executed);
    }

    #[test]
    fn run_is_deterministic_for_fixed_seed() {
        let d = chain(5);
        let a = Phase::new(&d, cfg()).run();
        let b = Phase::new(&d, cfg()).run();
        assert_eq!(a.best.genome, b.best.genome);
        assert_eq!(a.best.fitness.total, b.best.fitness.total);
        assert_eq!(a.generations_executed, b.generations_executed);
        assert_eq!(a.first_solution_gen, b.first_solution_gen);
    }

    #[test]
    fn different_seeds_differ() {
        let d = chain(5);
        let mut c2 = cfg();
        c2.seed = 8;
        let a = Phase::new(&d, cfg()).run();
        let b = Phase::new(&d, c2).run();
        // overwhelmingly likely the runs diverge
        assert!(a.best.genome != b.best.genome || a.first_solution_gen != b.first_solution_gen);
    }

    #[test]
    fn best_fitness_is_monotone_in_history() {
        let d = chain(8);
        let r = Phase::new(&d, cfg()).run();
        let mut peak = f64::NEG_INFINITY;
        for s in &r.history {
            peak = peak.max(s.best_goal);
        }
        assert_eq!(peak, r.best.fitness.goal);
    }

    #[test]
    fn all_crossover_kinds_run_and_respect_max_len() {
        let d = chain(5);
        for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
            let mut c = cfg();
            c.crossover = kind;
            c.generations_per_phase = 20;
            let r = Phase::new(&d, c).run();
            assert!(r.best.genome.len() <= 24, "{kind:?} overflowed MaxLen");
        }
    }

    #[test]
    fn alternative_selection_schemes_run() {
        let d = chain(4);
        for sel in [SelectionScheme::Roulette, SelectionScheme::Rank, SelectionScheme::Tournament(4)] {
            let mut c = cfg();
            c.selection = sel;
            c.generations_per_phase = 30;
            let r = Phase::new(&d, c).run();
            assert!(r.best.fitness.goal > 0.0);
        }
    }

    #[test]
    fn with_start_searches_from_given_state() {
        let d = chain(6);
        // start two steps in
        let mut s = d.initial_state();
        for _ in 0..2 {
            let ops = d.valid_ops_vec(&s);
            let fwd = ops.iter().copied().find(|&o| d.op_name(o).starts_with("fwd")).unwrap();
            s = d.apply(&s, fwd);
        }
        let r = Phase::with_start(&d, cfg(), s.clone(), 3).run();
        // plan must replay validly from the custom start
        let plan = Plan::from_ops(r.best.ops.clone());
        plan.simulate(&d, &s).unwrap();
    }

    #[test]
    fn odd_population_size_is_handled() {
        let d = chain(3);
        let mut c = cfg();
        c.population_size = 31;
        let r = Phase::new(&d, c).run();
        assert!(r.best.fitness.goal > 0.0);
    }

    #[test]
    fn elitism_makes_population_best_monotone() {
        let d = chain(8);
        let mut c = cfg();
        c.elitism = 1;
        c.generations_per_phase = 40;
        let r = Phase::new(&d, c).run();
        // with one elite surviving every generation, the population's best
        // total fitness never decreases
        for w in r.history.windows(2) {
            assert!(
                w[1].best_total >= w[0].best_total - 1e-9,
                "best regressed: {} -> {}",
                w[0].best_total,
                w[1].best_total
            );
        }
    }

    #[test]
    fn without_elitism_best_can_regress() {
        // stochastic property: across a handful of seeds, strict
        // generational replacement loses its best individual at least once
        let d = chain(8);
        let regressed = (0..5).any(|seed| {
            let mut c = cfg();
            c.elitism = 0;
            c.generations_per_phase = 60;
            c.seed = 100 + seed;
            let r = Phase::new(&d, c).run();
            r.history.windows(2).any(|w| w[1].best_total < w[0].best_total - 1e-9)
        });
        assert!(regressed, "no regression across 5 seeds - elitism would be redundant");
    }

    /// Like `chain` but each forward move also adds a persistent `r{i}`
    /// marker that is part of the goal, so goal fitness is graded and the
    /// greedy seeding walk has a gradient to follow (the plain chain's 0/1
    /// fitness makes greedy walks indistinguishable from random ones).
    fn graded_chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 1..=n {
            b.condition(&format!("r{i}")).unwrap();
        }
        for i in 0..n {
            b.op(
                &format!("fwd{i}"),
                &[&format!("s{i}")],
                &[&format!("s{}", i + 1), &format!("r{}", i + 1)],
                &[&format!("s{i}")],
                1.0,
            )
            .unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        let goal: Vec<String> = (1..=n).map(|i| format!("r{i}")).collect();
        let refs: Vec<&str> = goal.iter().map(String::as_str).collect();
        b.goal(&refs).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn seeded_phase_uses_heuristic_individuals() {
        use crate::seeding::SeedStrategy;
        let d = graded_chain(8);
        let mut c = cfg();
        c.generations_per_phase = 5;
        let seeded = Phase::new(&d, c.clone()).with_seeder(SeedStrategy::GreedyWalk, 0.5).run();
        let unseeded = Phase::new(&d, c).run();
        // greedy seeds give the seeded phase a head start on this graded chain
        assert!(
            seeded.history[0].best_goal >= unseeded.history[0].best_goal,
            "seeded gen-0 best {} < unseeded {}",
            seeded.history[0].best_goal,
            unseeded.history[0].best_goal
        );
        // and the greedy walks themselves reach the goal on a graded chain
        assert!(
            seeded.history[0].best_goal >= 1.0 - 1e-12,
            "greedy seeds should solve the graded chain at gen 0, got {}",
            seeded.history[0].best_goal
        );
    }

    #[test]
    fn cancelled_phase_returns_consistent_best_so_far() {
        use gaplan_core::budget::{Budget, CancelToken, StopCause};
        let d = chain(8);
        let mut c = cfg();
        c.generations_per_phase = 50;
        let token = CancelToken::new();
        token.cancel(); // cancelled before the run even starts
        let r = Phase::new(&d, c).with_budget(Budget::unlimited().with_token(token)).run();
        // generation 0 always runs, so there is a genuine best-so-far...
        assert_eq!(r.stopped, Some(StopCause::Cancelled));
        assert_eq!(r.generations_executed, 1);
        // ...and the bookkeeping stays consistent when cut short:
        assert_eq!(r.history.len() as u32, r.generations_executed);
        if let Some(g) = r.first_solution_gen {
            assert!(g < r.generations_executed, "first_solution_gen {g} out of range");
        }
    }

    #[test]
    fn expired_deadline_stops_phase_after_one_generation() {
        use gaplan_core::budget::{Budget, StopCause};
        use std::time::Duration;
        let d = chain(8);
        let mut c = cfg();
        c.generations_per_phase = 50;
        let r = Phase::new(&d, c).with_budget(Budget::unlimited().with_timeout(Duration::ZERO)).run();
        assert_eq!(r.stopped, Some(StopCause::Deadline));
        assert_eq!(r.generations_executed, 1);
        assert_eq!(r.history.len(), 1);
    }

    #[test]
    fn unlimited_budget_leaves_run_unchanged() {
        let d = chain(6);
        let with = Phase::new(&d, cfg()).with_budget(gaplan_core::Budget::unlimited()).run();
        let without = Phase::new(&d, cfg()).run();
        assert_eq!(with.generations_executed, without.generations_executed);
        assert_eq!(with.best.ops, without.best.ops);
        assert_eq!(with.stopped, None);
    }

    #[test]
    #[should_panic(expected = "invalid GaConfig")]
    fn invalid_config_panics() {
        let d = chain(3);
        let mut c = cfg();
        c.crossover_rate = 2.0;
        Phase::new(&d, c).run();
    }
}
