//! Per-generation statistics, recorded by the engine for analysis and for
//! the convergence figures in EXPERIMENTS.md.

use serde::{Deserialize, Serialize};

use crate::individual::Evaluated;

/// Summary of one generation's population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenStats {
    /// Generation index within the phase (0-based).
    pub generation: u32,
    /// Best total fitness in the population.
    pub best_total: f64,
    /// Best goal fitness in the population.
    pub best_goal: f64,
    /// Mean total fitness.
    pub mean_total: f64,
    /// Worst total fitness.
    pub worst_total: f64,
    /// Mean decoded plan length.
    pub mean_len: f64,
    /// Number of individuals that solve the problem.
    pub solvers: u32,
}

impl GenStats {
    /// Compute statistics over an evaluated population.
    pub fn from_population<S>(generation: u32, pop: &[Evaluated<S>]) -> GenStats {
        assert!(!pop.is_empty());
        let mut best_total = f64::NEG_INFINITY;
        let mut worst_total = f64::INFINITY;
        let mut best_goal = f64::NEG_INFINITY;
        let mut sum_total = 0.0;
        let mut sum_len = 0.0;
        let mut solvers = 0u32;
        for e in pop {
            let t = e.fitness.total;
            best_total = best_total.max(t);
            worst_total = worst_total.min(t);
            best_goal = best_goal.max(e.fitness.goal);
            sum_total += t;
            sum_len += e.plan_len() as f64;
            if e.solves() {
                solvers += 1;
            }
        }
        GenStats {
            generation,
            best_total,
            best_goal,
            mean_total: sum_total / pop.len() as f64,
            worst_total,
            mean_len: sum_len / pop.len() as f64,
            solvers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::Fitness;
    use crate::genome::Genome;

    fn ind(goal: f64, total: f64, len: usize) -> Evaluated<u8> {
        Evaluated {
            genome: Genome::from_genes(vec![0.5; len]),
            ops: vec![gaplan_core::OpId(0); len],
            match_keys: vec![0; len + 1],
            step_goals: vec![0.0; len],
            final_state: 0,
            decoded_len: len,
            best_prefix_at: len,
            best_prefix_state: 0,
            fitness: Fitness { match_: 1.0, goal, cost: 0.0, total },
        }
    }

    #[test]
    fn stats_aggregate_correctly() {
        let pop = vec![ind(1.0, 0.95, 4), ind(0.5, 0.5, 8), ind(0.2, 0.3, 12)];
        let s = GenStats::from_population(7, &pop);
        assert_eq!(s.generation, 7);
        assert_eq!(s.best_total, 0.95);
        assert_eq!(s.worst_total, 0.3);
        assert_eq!(s.best_goal, 1.0);
        assert!((s.mean_total - (0.95 + 0.5 + 0.3) / 3.0).abs() < 1e-12);
        assert!((s.mean_len - 8.0).abs() < 1e-12);
        assert_eq!(s.solvers, 1);
    }

    #[test]
    fn single_individual_population() {
        let pop = vec![ind(0.7, 0.63, 5)];
        let s = GenStats::from_population(0, &pop);
        assert_eq!(s.best_total, s.worst_total);
        assert_eq!(s.solvers, 0);
    }

    #[test]
    #[should_panic]
    fn empty_population_panics() {
        GenStats::from_population::<u8>(0, &[]);
    }
}
