//! Flat arena storage for GA populations.
//!
//! A generation's genomes live in **one contiguous `Vec<f64>`** with a
//! prefix-sum bounds table instead of one heap allocation per individual.
//! Children produced by crossover are spliced *directly* into the arena
//! (no intermediate `Genome`), and prefix-reuse provenance is recorded as
//! a small `(parent index, prefix length)` pair instead of a cloned
//! `PrefixHint`, so the decode layer can borrow the donor's op/key slices
//! straight out of the previous generation.

/// Sentinel parent index meaning "no provenance" (fresh or resumed genome).
pub const NO_PARENT: u32 = u32::MAX;

/// Prefix length meaning "the entire donor plan is a valid prefix".
pub const FULL_PREFIX: u32 = u32::MAX;

/// Where an arena individual came from, for prefix-reuse decoding.
///
/// `parent` indexes the *previous* generation's evaluated individuals;
/// `prefix` is the number of leading genes guaranteed unchanged since the
/// parent was decoded (capped at the parent's decoded length when the hint
/// is resolved, mirroring [`crate::decode::PrefixHint::new`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Index of the donor individual in the parent generation, or [`NO_PARENT`].
    pub parent: u32,
    /// Unchanged-prefix length in genes, or [`FULL_PREFIX`].
    pub prefix: u32,
}

impl Provenance {
    /// No donor: decode from scratch.
    pub const NONE: Provenance = Provenance { parent: NO_PARENT, prefix: 0 };

    /// Full-prefix provenance from `parent`.
    pub fn full(parent: usize) -> Provenance {
        Provenance { parent: parent as u32, prefix: FULL_PREFIX }
    }

    /// Prefix of `prefix` genes from `parent`.
    pub fn prefix(parent: usize, prefix: usize) -> Provenance {
        Provenance { parent: parent as u32, prefix: prefix.min(FULL_PREFIX as usize) as u32 }
    }

    /// Shrink the unchanged prefix to at most `len` genes (e.g. after a
    /// mutation changed gene `len`). No-op when already shorter.
    pub fn truncate(&mut self, len: usize) {
        if self.parent != NO_PARENT {
            self.prefix = self.prefix.min(len.min(FULL_PREFIX as usize) as u32);
        }
    }
}

/// A population stored as one contiguous gene buffer.
///
/// `bounds` is a prefix-sum table: individual `i` occupies
/// `genes[bounds[i] .. bounds[i + 1]]`. Individuals are appended in order;
/// [`PopulationArena::replace`] supports the (rare) elitism overwrite and
/// [`PopulationArena::insert_gene`] / [`PopulationArena::remove_gene`] the
/// (default-off) length mutation.
#[derive(Clone, Debug, Default)]
pub struct PopulationArena {
    genes: Vec<f64>,
    bounds: Vec<u32>,
    prov: Vec<Provenance>,
}

impl PopulationArena {
    /// Empty arena.
    pub fn new() -> Self {
        PopulationArena { genes: Vec::new(), bounds: vec![0], prov: Vec::new() }
    }

    /// Empty arena with room for `individuals` genomes / `total_genes` genes.
    pub fn with_capacity(individuals: usize, total_genes: usize) -> Self {
        let mut bounds = Vec::with_capacity(individuals + 1);
        bounds.push(0);
        PopulationArena { genes: Vec::with_capacity(total_genes), bounds, prov: Vec::with_capacity(individuals) }
    }

    /// Number of individuals.
    pub fn len(&self) -> usize {
        self.prov.len()
    }

    /// True when no individuals are stored.
    pub fn is_empty(&self) -> bool {
        self.prov.is_empty()
    }

    /// Total genes across all individuals.
    pub fn total_genes(&self) -> usize {
        self.genes.len()
    }

    /// Remove all individuals, keeping allocations.
    pub fn clear(&mut self) {
        self.genes.clear();
        self.bounds.clear();
        self.bounds.push(0);
        self.prov.clear();
    }

    /// Append an individual by copying `genes`.
    pub fn push(&mut self, genes: &[f64], prov: Provenance) {
        self.genes.extend_from_slice(genes);
        self.bounds.push(self.genes.len() as u32);
        self.prov.push(prov);
    }

    /// Append a splice child: `a[..cut_a] ++ b[cut_b..]`, truncated to
    /// `max_len` genes — identical to [`crate::genome::Genome::splice`] but
    /// built directly in the arena buffer.
    pub fn push_splice(&mut self, a: &[f64], cut_a: usize, b: &[f64], cut_b: usize, max_len: usize, prov: Provenance) {
        let start = self.genes.len();
        self.genes.extend_from_slice(&a[..cut_a.min(a.len())]);
        self.genes.extend_from_slice(&b[cut_b.min(b.len())..]);
        self.genes.truncate(start + max_len.min(self.genes.len() - start));
        self.bounds.push(self.genes.len() as u32);
        self.prov.push(prov);
    }

    /// Append a three-segment child `head ++ mid ++ tail` truncated to
    /// `max_len` genes (two-point crossover shape).
    pub fn push_concat3(&mut self, head: &[f64], mid: &[f64], tail: &[f64], max_len: usize, prov: Provenance) {
        let start = self.genes.len();
        self.genes.extend_from_slice(head);
        self.genes.extend_from_slice(mid);
        self.genes.extend_from_slice(tail);
        self.genes.truncate(start + max_len.min(self.genes.len() - start));
        self.bounds.push(self.genes.len() as u32);
        self.prov.push(prov);
    }

    fn range(&self, i: usize) -> (usize, usize) {
        (self.bounds[i] as usize, self.bounds[i + 1] as usize)
    }

    /// Genes of individual `i`.
    pub fn genes(&self, i: usize) -> &[f64] {
        let (lo, hi) = self.range(i);
        &self.genes[lo..hi]
    }

    /// Mutable genes of individual `i`.
    pub fn genes_mut(&mut self, i: usize) -> &mut [f64] {
        let (lo, hi) = self.range(i);
        &mut self.genes[lo..hi]
    }

    /// Provenance of individual `i`.
    pub fn prov(&self, i: usize) -> Provenance {
        self.prov[i]
    }

    /// Mutable provenance of individual `i`.
    pub fn prov_mut(&mut self, i: usize) -> &mut Provenance {
        &mut self.prov[i]
    }

    /// Overwrite individual `i` with `genes` (elitism). Later individuals
    /// shift to absorb the length difference.
    pub fn replace(&mut self, i: usize, genes: &[f64], prov: Provenance) {
        let (lo, hi) = self.range(i);
        self.genes.splice(lo..hi, genes.iter().copied());
        let delta = genes.len() as i64 - (hi - lo) as i64;
        if delta != 0 {
            for b in &mut self.bounds[i + 1..] {
                *b = (*b as i64 + delta) as u32;
            }
        }
        self.prov[i] = prov;
    }

    /// Insert gene `v` at position `at` of individual `i` (length mutation).
    pub fn insert_gene(&mut self, i: usize, at: usize, v: f64) {
        let (lo, hi) = self.range(i);
        debug_assert!(at <= hi - lo);
        self.genes.insert(lo + at, v);
        for b in &mut self.bounds[i + 1..] {
            *b += 1;
        }
    }

    /// Remove the gene at position `at` of individual `i` (length mutation).
    pub fn remove_gene(&mut self, i: usize, at: usize) {
        let (lo, hi) = self.range(i);
        debug_assert!(at < hi - lo);
        self.genes.remove(lo + at);
        for b in &mut self.bounds[i + 1..] {
            *b -= 1;
        }
    }

    /// Iterate over the gene slices in order.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.len()).map(move |i| self.genes(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut a = PopulationArena::new();
        a.push(&[0.1, 0.2], Provenance::NONE);
        a.push(&[], Provenance::full(0));
        a.push(&[0.5], Provenance::prefix(1, 3));
        assert_eq!(a.len(), 3);
        assert_eq!(a.total_genes(), 3);
        assert_eq!(a.genes(0), &[0.1, 0.2]);
        assert_eq!(a.genes(1), &[] as &[f64]);
        assert_eq!(a.genes(2), &[0.5]);
        assert_eq!(a.prov(0), Provenance::NONE);
        assert_eq!(a.prov(1), Provenance { parent: 0, prefix: FULL_PREFIX });
        assert_eq!(a.prov(2), Provenance { parent: 1, prefix: 3 });
        let collected: Vec<&[f64]> = a.iter().collect();
        assert_eq!(collected.len(), 3);
    }

    #[test]
    fn splice_matches_genome_splice() {
        use crate::genome::Genome;
        let a = Genome::from_genes(vec![0.1, 0.2, 0.3, 0.4]);
        let b = Genome::from_genes(vec![0.9, 0.8, 0.7]);
        for cut_a in 0..=4 {
            for cut_b in 0..=3 {
                for max_len in 1..=8 {
                    let expect = a.splice(cut_a, &b, cut_b, max_len);
                    let mut arena = PopulationArena::new();
                    arena.push_splice(a.genes(), cut_a, b.genes(), cut_b, max_len, Provenance::NONE);
                    assert_eq!(arena.genes(0), expect.genes(), "cuts ({cut_a},{cut_b}) max {max_len}");
                }
            }
        }
    }

    #[test]
    fn concat3_truncates() {
        let mut a = PopulationArena::new();
        a.push_concat3(&[0.1, 0.2], &[0.3], &[0.4, 0.5], 4, Provenance::NONE);
        assert_eq!(a.genes(0), &[0.1, 0.2, 0.3, 0.4]);
        a.push_concat3(&[], &[], &[], 4, Provenance::NONE);
        assert_eq!(a.genes(1), &[] as &[f64]);
    }

    #[test]
    fn replace_shifts_following_individuals() {
        let mut a = PopulationArena::new();
        a.push(&[0.1, 0.2], Provenance::NONE);
        a.push(&[0.3, 0.4], Provenance::NONE);
        a.push(&[0.5], Provenance::NONE);
        a.replace(0, &[0.9, 0.9, 0.9], Provenance::full(7));
        assert_eq!(a.genes(0), &[0.9, 0.9, 0.9]);
        assert_eq!(a.genes(1), &[0.3, 0.4]);
        assert_eq!(a.genes(2), &[0.5]);
        assert_eq!(a.prov(0).parent, 7);
        a.replace(1, &[0.7], Provenance::NONE);
        assert_eq!(a.genes(0), &[0.9, 0.9, 0.9]);
        assert_eq!(a.genes(1), &[0.7]);
        assert_eq!(a.genes(2), &[0.5]);
    }

    #[test]
    fn insert_and_remove_gene_shift_bounds() {
        let mut a = PopulationArena::new();
        a.push(&[0.1, 0.2], Provenance::NONE);
        a.push(&[0.3], Provenance::NONE);
        a.insert_gene(0, 1, 0.15);
        assert_eq!(a.genes(0), &[0.1, 0.15, 0.2]);
        assert_eq!(a.genes(1), &[0.3]);
        a.remove_gene(0, 0);
        assert_eq!(a.genes(0), &[0.15, 0.2]);
        assert_eq!(a.genes(1), &[0.3]);
        a.insert_gene(1, 0, 0.25);
        assert_eq!(a.genes(1), &[0.25, 0.3]);
    }

    #[test]
    fn provenance_truncate_caps_prefix() {
        let mut p = Provenance::full(3);
        p.truncate(5);
        assert_eq!(p.prefix, 5);
        p.truncate(9);
        assert_eq!(p.prefix, 5);
        let mut none = Provenance::NONE;
        none.truncate(2);
        assert_eq!(none, Provenance::NONE);
    }

    #[test]
    fn clear_keeps_capacity_and_resets() {
        let mut a = PopulationArena::with_capacity(4, 16);
        a.push(&[0.1], Provenance::NONE);
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.total_genes(), 0);
        a.push(&[0.2, 0.3], Provenance::NONE);
        assert_eq!(a.genes(0), &[0.2, 0.3]);
    }
}
