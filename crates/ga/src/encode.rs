//! Inverse encoding: turn an operation sequence back into a genome that
//! decodes to exactly that sequence.
//!
//! This is the bridge the plan-reuse literature the paper discusses (§2,
//! Nebel & Koehler) needs: an existing plan — from a baseline planner, a
//! previous GA run, or a truncated prefix of either — becomes genetic
//! material. It also powers the seeding strategies of
//! [`crate::seeding`] (Westerberg & Levine, the paper's ref. [22], found
//! seeding partial solutions "appears to benefit GP performance").

use gaplan_core::{Domain, OpId};

use crate::genome::Genome;

/// Error produced when a plan cannot be re-encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The operation at this index is not valid in the state reached there.
    InvalidOp {
        /// Index within the plan.
        at: usize,
        /// The offending operation.
        op: OpId,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::InvalidOp { at, op } => {
                write!(f, "operation {op:?} at index {at} is invalid in its state")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encode an operation sequence as a genome that decodes back to it.
///
/// For each step, the gene is placed at the *midpoint* of the interval that
/// maps to the desired operation (`(idx + 0.5) / k`), so the decoding is
/// robust to floating-point rounding and to small mutations.
///
/// # Errors
/// [`EncodeError::InvalidOp`] if some operation is invalid where it occurs.
pub fn encode_plan<D: Domain>(domain: &D, start: &D::State, ops: &[OpId]) -> Result<Genome, EncodeError> {
    let mut state = start.clone();
    let mut genes = Vec::with_capacity(ops.len());
    let mut valid = Vec::new();
    for (at, &op) in ops.iter().enumerate() {
        valid.clear();
        domain.valid_operations(&state, &mut valid);
        let idx = valid.iter().position(|&o| o == op).ok_or(EncodeError::InvalidOp { at, op })?;
        genes.push((idx as f64 + 0.5) / valid.len() as f64);
        state = domain.apply(&state, op);
    }
    Ok(Genome::from_genes(genes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StateMatchMode;
    use crate::decode::Decoder;
    use gaplan_core::strips::{StripsBuilder, StripsProblem};
    use gaplan_core::DomainExt;

    fn chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 0..n {
            b.op(&format!("fwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i + 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        b.goal(&[&format!("s{n}")]).unwrap();
        b.build().unwrap()
    }

    /// Walk the domain taking a fixed op pattern, collecting the ops.
    fn walk(d: &StripsProblem, steps: usize, pick: impl Fn(usize, &[OpId]) -> OpId) -> Vec<OpId> {
        let mut state = d.initial_state();
        let mut ops = Vec::new();
        for i in 0..steps {
            let valid = d.valid_ops_vec(&state);
            let op = pick(i, &valid);
            state = d.apply(&state, op);
            ops.push(op);
        }
        ops
    }

    #[test]
    fn encode_decode_roundtrip() {
        let d = chain(6);
        let ops = walk(&d, 10, |i, valid| valid[i % valid.len()]);
        let genome = encode_plan(&d, &d.initial_state(), &ops).unwrap();
        let decoded = Decoder::new().decode(&d, &d.initial_state(), &genome, false, StateMatchMode::ExactState);
        assert_eq!(decoded.ops, ops, "decode must reproduce the encoded plan");
    }

    #[test]
    fn encode_rejects_invalid_ops() {
        let d = chain(3);
        // bwd1 (OpId 3) is invalid at the initial state s0
        let err = encode_plan(&d, &d.initial_state(), &[OpId(3)]).unwrap_err();
        assert_eq!(err, EncodeError::InvalidOp { at: 0, op: OpId(3) });
        assert!(err.to_string().contains("index 0"));
    }

    #[test]
    fn encoded_genes_are_interval_midpoints() {
        let d = chain(4);
        let ops = walk(&d, 4, |_, valid| valid[0]);
        let genome = encode_plan(&d, &d.initial_state(), &ops).unwrap();
        for &g in genome.genes() {
            assert!((0.0..1.0).contains(&g));
            // with k <= 2 valid ops, midpoints are 0.25, 0.5+0.25, or 0.5
            let frac2 = (g * 2.0).fract();
            let frac1 = g;
            assert!((frac2 - 0.5).abs() < 1e-9 || (frac1 - 0.5).abs() < 1e-9, "gene {g} is not a midpoint");
        }
    }

    #[test]
    fn roundtrip_survives_small_perturbation() {
        // midpoint placement tolerates perturbations smaller than half the
        // interval width
        let d = chain(6);
        let ops = walk(&d, 8, |i, valid| valid[i % valid.len()]);
        let genome = encode_plan(&d, &d.initial_state(), &ops).unwrap();
        let nudged: Vec<f64> = genome.genes().iter().map(|g| (g + 0.05).min(0.999_999)).collect();
        let decoded = Decoder::new().decode(
            &d,
            &d.initial_state(),
            &Genome::from_genes(nudged),
            false,
            StateMatchMode::ExactState,
        );
        assert_eq!(decoded.ops, ops);
    }

    #[test]
    fn empty_plan_encodes_to_empty_genome() {
        let d = chain(3);
        let genome = encode_plan(&d, &d.initial_state(), &[]).unwrap();
        assert!(genome.is_empty());
    }
}
