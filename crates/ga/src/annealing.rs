//! Single-individual metaheuristics over the same indirect encoding: the
//! paper's opening sentence groups "genetic algorithms, neural networks,
//! and simulated annealing" as the heuristic methods of choice, so this
//! module provides the simulated-annealing and (1+1)-EA comparators that
//! share the GA's genome, decoder and fitness — isolating the value of
//! *populations and crossover* from the value of the encoding itself.

use gaplan_core::Domain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::GaConfig;
use crate::decode::Decoder;
use crate::genome::Genome;
use crate::individual::Evaluated;
use crate::mutation::{length_mutate, mutate};
use crate::rng::derive_seed;

/// Configuration for [`simulated_annealing`] and [`one_plus_one`].
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Evaluation budget (comparable to `population × generations` of a GA
    /// run).
    pub evaluations: u64,
    /// Starting temperature (in fitness units; the paper-scale fitness is
    /// in `[0, 1]`, so temperatures around 0.05–0.2 are reasonable).
    pub start_temperature: f64,
    /// Geometric cooling factor applied every evaluation.
    pub cooling: f64,
    /// Per-gene mutation probability of the proposal move.
    pub mutation_rate: f64,
    /// Per-proposal probability of a length insertion/deletion.
    pub length_mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            evaluations: 100_000,
            start_temperature: 0.1,
            cooling: 0.999_95,
            mutation_rate: 0.05,
            length_mutation_rate: 0.2,
            seed: 0xA11EA1,
        }
    }
}

/// The outcome of a single-individual search.
#[derive(Debug, Clone)]
pub struct AnnealResult<S> {
    /// Best individual encountered.
    pub best: Evaluated<S>,
    /// Evaluations consumed.
    pub evaluations: u64,
    /// Evaluation index at which the best individual first solved, if ever.
    pub first_solution_eval: Option<u64>,
}

fn propose<R: Rng + ?Sized>(rng: &mut R, genome: &Genome, cfg: &AnnealConfig, max_len: usize) -> Genome {
    let mut child = genome.clone();
    mutate(rng, &mut child, cfg.mutation_rate);
    length_mutate(rng, &mut child, cfg.length_mutation_rate, max_len);
    child
}

/// Simulated annealing over genomes: propose a mutated neighbour, accept
/// improvements always and regressions with probability
/// `exp(Δfitness / temperature)`; cool geometrically.
///
/// `ga_cfg` supplies the shared decoding/fitness settings (`initial_len`,
/// `max_len`, weights, goal evaluation) — only its population/crossover
/// machinery is unused.
pub fn simulated_annealing<D: Domain>(domain: &D, ga_cfg: &GaConfig, cfg: &AnnealConfig) -> AnnealResult<D::State> {
    let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 0));
    let mut decoder = Decoder::new();
    let start = domain.initial_state();

    let mut current_genome = Genome::random(&mut rng, ga_cfg.initial_len);
    let (decoded, fitness) = decoder.evaluate(domain, &start, &current_genome, ga_cfg);
    let mut current = Evaluated::new(current_genome.clone(), decoded, fitness);
    let mut best = current.clone();
    let mut first_solution_eval = if best.solves() { Some(0) } else { None };

    let mut temperature = cfg.start_temperature.max(1e-12);
    for eval in 1..cfg.evaluations {
        let candidate_genome = propose(&mut rng, &current_genome, cfg, ga_cfg.max_len);
        let (decoded, fitness) = decoder.evaluate(domain, &start, &candidate_genome, ga_cfg);
        let candidate = Evaluated::new(candidate_genome.clone(), decoded, fitness);

        let delta = candidate.fitness.total - current.fitness.total;
        let accept = delta >= 0.0 || rng.gen::<f64>() < (delta / temperature).exp();
        if accept {
            current = candidate;
            current_genome = candidate_genome;
        }
        if (current.fitness.goal, current.fitness.total) > (best.fitness.goal, best.fitness.total) {
            best = current.clone();
            if best.solves() && first_solution_eval.is_none() {
                first_solution_eval = Some(eval);
            }
        }
        temperature *= cfg.cooling;
    }
    AnnealResult { best, evaluations: cfg.evaluations, first_solution_eval }
}

/// The (1+1)-EA: like annealing with temperature zero — only improvements
/// (or ties) are accepted. The minimal evolutionary baseline.
pub fn one_plus_one<D: Domain>(domain: &D, ga_cfg: &GaConfig, cfg: &AnnealConfig) -> AnnealResult<D::State> {
    let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 1));
    let mut decoder = Decoder::new();
    let start = domain.initial_state();

    let mut current_genome = Genome::random(&mut rng, ga_cfg.initial_len);
    let (decoded, fitness) = decoder.evaluate(domain, &start, &current_genome, ga_cfg);
    let mut current = Evaluated::new(current_genome.clone(), decoded, fitness);
    let mut first_solution_eval = if current.solves() { Some(0) } else { None };

    for eval in 1..cfg.evaluations {
        let candidate_genome = propose(&mut rng, &current_genome, cfg, ga_cfg.max_len);
        let (decoded, fitness) = decoder.evaluate(domain, &start, &candidate_genome, ga_cfg);
        let candidate = Evaluated::new(candidate_genome.clone(), decoded, fitness);
        if candidate.fitness.total >= current.fitness.total {
            current = candidate;
            current_genome = candidate_genome;
            if current.solves() && first_solution_eval.is_none() {
                first_solution_eval = Some(eval);
            }
        }
    }
    AnnealResult { best: current, evaluations: cfg.evaluations, first_solution_eval }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::strips::{StripsBuilder, StripsProblem};

    fn graded_chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 1..=n {
            b.condition(&format!("r{i}")).unwrap();
        }
        for i in 0..n {
            b.op(
                &format!("fwd{i}"),
                &[&format!("s{i}")],
                &[&format!("s{}", i + 1), &format!("r{}", i + 1)],
                &[&format!("s{i}")],
                1.0,
            )
            .unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        let goal: Vec<String> = (1..=n).map(|i| format!("r{i}")).collect();
        let refs: Vec<&str> = goal.iter().map(String::as_str).collect();
        b.goal(&refs).unwrap();
        b.build().unwrap()
    }

    fn ga_cfg() -> GaConfig {
        GaConfig { initial_len: 10, max_len: 20, ..GaConfig::default() }
    }

    fn anneal_cfg() -> AnnealConfig {
        AnnealConfig { evaluations: 20_000, seed: 9, ..AnnealConfig::default() }
    }

    #[test]
    fn annealing_solves_graded_chain() {
        let d = graded_chain(8);
        let r = simulated_annealing(&d, &ga_cfg(), &anneal_cfg());
        assert!(r.best.solves(), "fitness {}", r.best.fitness.goal);
        assert!(r.first_solution_eval.is_some());
        assert_eq!(r.evaluations, 20_000);
    }

    #[test]
    fn one_plus_one_solves_graded_chain() {
        let d = graded_chain(8);
        let r = one_plus_one(&d, &ga_cfg(), &anneal_cfg());
        assert!(r.best.solves(), "fitness {}", r.best.fitness.goal);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = graded_chain(6);
        let a = simulated_annealing(&d, &ga_cfg(), &anneal_cfg());
        let b = simulated_annealing(&d, &ga_cfg(), &anneal_cfg());
        assert_eq!(a.best.genome, b.best.genome);
        assert_eq!(a.first_solution_eval, b.first_solution_eval);
    }

    #[test]
    fn annealing_and_ea_use_independent_streams() {
        let d = graded_chain(6);
        let a = simulated_annealing(&d, &ga_cfg(), &anneal_cfg());
        let b = one_plus_one(&d, &ga_cfg(), &anneal_cfg());
        // same seed value, different derived streams
        assert!(a.best.genome != b.best.genome || a.first_solution_eval != b.first_solution_eval);
    }

    #[test]
    fn best_never_regresses() {
        let d = graded_chain(10);
        let small = AnnealConfig { evaluations: 2_000, ..anneal_cfg() };
        let r1 = simulated_annealing(&d, &ga_cfg(), &small);
        let big = AnnealConfig { evaluations: 20_000, ..anneal_cfg() };
        let r2 = simulated_annealing(&d, &ga_cfg(), &big);
        assert!(r2.best.fitness.goal >= r1.best.fitness.goal - 1e-9);
    }
}
