#![warn(missing_docs)]

//! # gaplan-ga
//!
//! The paper's primary contribution: a genetic algorithm for STRIPS-like
//! planning (Yu, Marinescu, Wu, Siegel — IPDPS 2003, §3).
//!
//! Key design points, each implemented faithfully:
//!
//! * **Indirect encoding** (§3.1): an individual is a variable-length
//!   sequence of floating-point genes in `[0, 1)`. Each gene is mapped to a
//!   *valid* operation of the state reached so far, by splitting `[0, 1)`
//!   into `k` equal intervals when `k` operations are valid. Every decoded
//!   plan therefore contains only valid operations, and the paper's match
//!   fitness is identically 1 (Eq. 1).
//! * **Fitness** (§3.3): `F = w_goal·F_goal + w_cost·F_cost` (Eq. 4) with
//!   `w_goal + w_cost = 1`; `F_goal` comes from the domain and `F_cost` is
//!   `1/len` for unit-cost domains (Eq. 2).
//! * **Tournament selection** (§3.4.1) plus roulette and rank selection as
//!   extensions.
//! * **Three crossover mechanisms** (§3.4.2): random, state-aware, mixed.
//! * **Per-gene replacement mutation** (§3.4.3), plus optional
//!   insertion/deletion length mutation as an extension.
//! * **Multi-phase search** (§3.5): serially independent GA runs, each
//!   starting from the final state of the previous phase's best individual;
//!   the final plan is the concatenation of per-phase bests.
//!
//! ## Quickstart
//!
//! ```
//! use gaplan_ga::{GaConfig, MultiPhase};
//! use gaplan_core::strips::StripsBuilder;
//!
//! let mut b = StripsBuilder::new();
//! b.condition("raw").unwrap();
//! b.condition("clean").unwrap();
//! b.condition("done").unwrap();
//! b.op("filter", &["raw"], &["clean"], &["raw"], 1.0).unwrap();
//! b.op("transform", &["clean"], &["done"], &[], 1.0).unwrap();
//! b.init(&["raw"]).unwrap();
//! b.goal(&["done"]).unwrap();
//! let problem = b.build().unwrap();
//! // tiny problem: small population and few generations suffice
//! let cfg = GaConfig {
//!     population_size: 20,
//!     generations_per_phase: 50,
//!     max_phases: 2,
//!     initial_len: 4,
//!     max_len: 8,
//!     seed: 1,
//!     ..GaConfig::default()
//! };
//! let result = MultiPhase::new(&problem, cfg).run();
//! assert!(result.solved);
//! ```

pub mod annealing;
pub mod arena;
pub mod checkpoint;
pub mod config;
pub mod crossover;
pub mod decode;
pub mod encode;
pub mod engine;
pub mod fitness;
pub mod genome;
pub mod individual;
pub mod multiphase;
pub mod mutation;
pub mod population;
pub mod report;
pub mod rng;
pub mod seeding;
pub mod selection;
pub mod stats;

pub use annealing::{one_plus_one, simulated_annealing, AnnealConfig, AnnealResult};
pub use arena::{PopulationArena, Provenance};
pub use checkpoint::{MultiPhaseCheckpoint, PhaseSnapshot, ResumeError, CHECKPOINT_VERSION};
pub use config::{
    CostFitnessMode, CrossoverKind, EvalMode, FitnessWeights, GaConfig, GoalEval, SelectionScheme, StateMatchMode,
};
pub use decode::{Decoded, Decoder, PrefixHint, PrefixRef};
pub use encode::{encode_plan, EncodeError};
pub use engine::{Phase, PhaseResult};
pub use fitness::Fitness;
pub use genome::Genome;
pub use individual::Evaluated;
pub use multiphase::{MultiPhase, MultiPhaseResult};
pub use report::{aggregate, AggregateReport, RunReport};
pub use seeding::{seeded_population, SeedStrategy};
pub use stats::GenStats;
