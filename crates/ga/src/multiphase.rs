//! The multi-phase GA (paper §3.5): the search is divided into serially
//! independent GA runs. Phase 1 starts from the initial state; each later
//! phase starts from the final state of the previous phase's best solution;
//! the final plan is the concatenation of per-phase bests. The search ends
//! when a phase produces a valid solution or after `max_phases` phases.

use std::sync::Arc;

use gaplan_core::budget::{Budget, StopCause};
use gaplan_core::{Domain, OpId, Plan, SuccessorCache};
use gaplan_obs as obs;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{MultiPhaseCheckpoint, PhaseSnapshot, ResumeError, CHECKPOINT_VERSION};
use crate::config::{GaConfig, GoalEval};
use crate::engine::{Phase, PhaseResult};
use crate::seeding::SeedStrategy;
use crate::stats::GenStats;

/// Compact per-phase summary kept in the multi-phase result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseSummary {
    /// 1-based phase number.
    pub phase: u32,
    /// Goal fitness of the phase's best individual (evaluated at the end of
    /// the concatenated plan so far).
    pub best_goal_fitness: f64,
    /// Total fitness of the phase's best individual.
    pub best_total_fitness: f64,
    /// Decoded plan length contributed by this phase.
    pub plan_len: usize,
    /// Generations evolved in this phase.
    pub generations: u32,
    /// First generation of this phase at which an individual solved.
    pub first_solution_gen: Option<u32>,
}

/// The result of a multi-phase GA run.
#[derive(Debug, Clone)]
pub struct MultiPhaseResult<S> {
    /// The concatenated plan (paper §3.5 step 3).
    pub plan: Plan,
    /// Final state after executing the concatenated plan.
    pub final_state: S,
    /// Goal fitness of the final state.
    pub goal_fitness: f64,
    /// Did the run find a valid solution?
    pub solved: bool,
    /// 1-based phase in which the solution was found, if any (the paper's
    /// Table 5 statistic).
    pub solved_in_phase: Option<u32>,
    /// Per-phase summaries.
    pub phases: Vec<PhaseSummary>,
    /// Full per-generation history, concatenated across phases.
    pub history: Vec<GenStats>,
    /// Total generations evolved across all phases.
    pub total_generations: u32,
    /// Generations executed up to and including the solving phase; equals
    /// `total_generations` when unsolved. This is the paper's "number of
    /// generations to find a solution" column.
    pub generations_to_solution: u32,
    /// Cumulative generation index (across phases) at which *some*
    /// individual first solved, if any — finer-grained than the paper's
    /// phase-resolution statistic.
    pub first_solution_gen: Option<u32>,
    /// Why the run was cut short by its [`Budget`], if it was. Even when
    /// `Some`, `plan` holds the best-so-far concatenation (at least one
    /// generation of phase 1 always runs).
    pub stopped: Option<StopCause>,
}

/// Driver for the multi-phase GA.
pub struct MultiPhase<'d, D: Domain> {
    domain: &'d D,
    cfg: GaConfig,
    seeder: Option<(SeedStrategy, f64)>,
    budget: Budget,
    cache: Option<Arc<SuccessorCache<D::State>>>,
    problem_sig: u64,
}

impl<'d, D: Domain> MultiPhase<'d, D> {
    /// Create a driver. Use `cfg.max_phases = 1` (or
    /// [`GaConfig::single_phase`]) for the paper's single-phase baseline.
    pub fn new(domain: &'d D, cfg: GaConfig) -> Self {
        MultiPhase { domain, cfg, seeder: None, budget: Budget::unlimited(), cache: None, problem_sig: 0 }
    }

    /// Stamp checkpoints with the problem's signature, and refuse to resume
    /// a checkpoint carrying a different one. Without this (or with 0, the
    /// "unknown" sentinel), the problem check is skipped — the config check
    /// still applies either way.
    pub fn with_problem_sig(mut self, sig: u64) -> Self {
        self.problem_sig = sig;
        self
    }

    /// Share an external successor cache across this run's phases (and with
    /// whatever else holds the `Arc` — e.g. the planning service reuses one
    /// cache across replans of the same problem). Without this, the run
    /// builds one cache shared by its phases when `cfg.succ_cache` is on.
    pub fn with_cache(mut self, cache: Arc<SuccessorCache<D::State>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attach an execution budget (deadline and/or cancellation token). It
    /// is shared by all phases: each phase checks it between generations,
    /// and a stopped phase ends the whole run with its best-so-far plan.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Seed a fraction of every phase's initial population (see
    /// [`crate::seeding`]). Plan seeds apply to phase 1 only (later phases
    /// start from different states, where the plans rarely re-encode);
    /// walk-based strategies reseed from each phase's start state.
    pub fn with_seeder(mut self, strategy: SeedStrategy, fraction: f64) -> Self {
        self.seeder = Some((strategy, fraction));
        self
    }

    /// Run up to `max_phases` phases and assemble the concatenated solution.
    pub fn run(&self) -> MultiPhaseResult<D::State> {
        self.run_checkpointed(None, 0, &mut |_| {}).expect("no checkpoint to resume, so no resume errors")
    }

    /// [`MultiPhase::run`] with checkpointing: after every completed phase
    /// that leaves more work to do, a phase-boundary [`MultiPhaseCheckpoint`]
    /// is handed to `sink`; with `snapshot_every > 0`, mid-phase checkpoints
    /// (carrying a [`PhaseSnapshot`]) are additionally emitted every that
    /// many generations. Passing a previously emitted checkpoint as `resume`
    /// continues the run from that point, bitwise-identically to an
    /// uninterrupted run: phase RNG streams are freshly derived per phase,
    /// the resume start state is reconstructed by replaying the accumulated
    /// plan, and mid-phase snapshots carry the raw RNG state.
    ///
    /// Fails with [`ResumeError`] when the checkpoint does not belong to
    /// this (problem, config, engine version) — never resumes from a
    /// mismatched or corrupt checkpoint.
    pub fn run_checkpointed(
        &self,
        resume: Option<&MultiPhaseCheckpoint>,
        snapshot_every: u32,
        sink: &mut dyn FnMut(&MultiPhaseCheckpoint),
    ) -> Result<MultiPhaseResult<D::State>, ResumeError> {
        self.cfg.validate().expect("invalid GaConfig");
        let config_sig = self.cfg.signature();

        let start_phase;
        let mut phase_resume: Option<PhaseSnapshot> = None;
        let resume_plan: Option<Plan>;
        if let Some(cp) = resume {
            if cp.version != CHECKPOINT_VERSION {
                return Err(ResumeError::VersionMismatch { found: cp.version, expected: CHECKPOINT_VERSION });
            }
            // Checked before the config signature so a mid-phase snapshot
            // taken under a different island count gets the specific error
            // (the signature would also differ, but says only "config").
            if let Some(snap) = &cp.phase_snapshot {
                if snap.islands() != self.cfg.islands {
                    return Err(ResumeError::IslandMismatch { found: snap.islands(), expected: self.cfg.islands });
                }
            }
            if cp.config_sig != config_sig {
                return Err(ResumeError::ConfigMismatch { found: cp.config_sig, expected: config_sig });
            }
            if self.problem_sig != 0 && cp.problem_sig != 0 && cp.problem_sig != self.problem_sig {
                return Err(ResumeError::ProblemMismatch { found: cp.problem_sig, expected: self.problem_sig });
            }
            if cp.next_phase >= self.cfg.max_phases {
                return Err(ResumeError::PhaseOutOfRange {
                    next_phase: cp.next_phase,
                    max_phases: self.cfg.max_phases,
                });
            }
            if let Some(snap) = &cp.phase_snapshot {
                snap.validate()?;
                if snap.phase_index != cp.next_phase {
                    return Err(ResumeError::BadSnapshot(format!(
                        "snapshot phase {} != checkpoint next phase {}",
                        snap.phase_index, cp.next_phase
                    )));
                }
                if snap.next_gen >= self.cfg.generations_per_phase {
                    return Err(ResumeError::BadSnapshot(format!(
                        "snapshot next_gen {} >= generations_per_phase {}",
                        snap.next_gen, self.cfg.generations_per_phase
                    )));
                }
                phase_resume = Some(snap.clone());
            }
            start_phase = cp.next_phase;
            resume_plan = Some(Plan::from_ops(cp.plan_ops.iter().map(|&op| OpId(op)).collect()));
        } else {
            start_phase = 0;
            resume_plan = None;
        }

        let _run_span = obs::span("ga.run");
        // One successor cache for the whole run: later phases search the
        // same state space and start warm. Pure optimization — results are
        // identical with the cache off.
        let cache: Option<Arc<SuccessorCache<D::State>>> = if self.cfg.succ_cache {
            Some(self.cache.clone().unwrap_or_else(|| Arc::new(SuccessorCache::new(self.cfg.succ_cache_capacity))))
        } else {
            None
        };
        let mut plan = Plan::new();
        let mut state = self.domain.initial_state();
        let mut phases = Vec::new();
        let mut history = Vec::new();
        let mut total_generations = 0;
        let mut solved_in_phase = None;
        let mut generations_to_solution = 0;
        let mut first_solution_gen = None;
        let mut stopped = None;

        if let (Some(cp), Some(rp)) = (resume, resume_plan) {
            // Reconstruct the resume start state by replaying the
            // accumulated plan — checkpoints carry no domain state, so they
            // stay domain-agnostic and a stale plan fails here loudly
            // instead of resuming from a silently wrong state.
            state = rp.simulate_unchecked(self.domain, &state).final_state;
            plan = rp;
            phases = cp.phases.clone();
            history = cp.history.clone();
            total_generations = cp.total_generations;
            first_solution_gen = cp.first_solution_gen;
        }

        for p in start_phase..self.cfg.max_phases {
            // A phase always evaluates at least one generation, so check
            // the shared budget here to avoid starting a doomed phase —
            // except before phase 1, which must run for best-so-far to
            // exist.
            if p > 0 {
                if let Some(cause) = self.budget.check() {
                    stopped = Some(cause);
                    break;
                }
            }

            let PhaseResult {
                best,
                history: phase_history,
                generations_executed,
                first_solution_gen: phase_first_solution,
                stopped: phase_stopped,
            } = {
                let _phase_span = obs::span("ga.phase");
                let mut phase =
                    Phase::with_start(self.domain, self.cfg.clone(), state.clone(), p).with_budget(self.budget.clone());
                if let Some(cache) = &cache {
                    phase = phase.with_cache(Arc::clone(cache));
                }
                if let Some((strategy, fraction)) = &self.seeder {
                    let applies = match strategy {
                        SeedStrategy::Plans(_) => p == 0,
                        _ => true,
                    };
                    if applies {
                        phase = phase.with_seeder(strategy.clone(), *fraction);
                    }
                }
                // A mid-phase snapshot only ever resumes the phase it was
                // taken in; wrap each one in a full checkpoint carrying the
                // run-level accumulators as they stood when this phase began.
                let inner_resume = if p == start_phase { phase_resume.as_ref() } else { None };
                let mut inner_sink = |snap: PhaseSnapshot| {
                    sink(&MultiPhaseCheckpoint {
                        version: CHECKPOINT_VERSION,
                        problem_sig: self.problem_sig,
                        config_sig,
                        next_phase: p,
                        plan_ops: plan.ops().iter().map(|op| op.0).collect(),
                        phases: phases.clone(),
                        history: history.clone(),
                        total_generations,
                        first_solution_gen,
                        phase_snapshot: Some(snap),
                    });
                };
                phase.run_snapshotting(inner_resume, snapshot_every, &mut inner_sink)
            };

            if first_solution_gen.is_none() {
                if let Some(g) = phase_first_solution {
                    first_solution_gen = Some(total_generations + g);
                }
            }
            total_generations += generations_executed;
            history.extend(phase_history);
            let summary = PhaseSummary {
                phase: p + 1,
                best_goal_fitness: best.fitness.goal,
                best_total_fitness: best.fitness.total,
                plan_len: match self.cfg.goal_eval {
                    GoalEval::FinalState => best.ops.len(),
                    GoalEval::BestPrefix => best.best_prefix_at,
                },
                generations: generations_executed,
                first_solution_gen: phase_first_solution,
            };
            obs::emit(|| {
                obs::Event::new("ga.phase_end")
                    .u64("phase", summary.phase as u64)
                    .f64("best_goal", summary.best_goal_fitness)
                    .f64("best_total", summary.best_total_fitness)
                    .u64("plan_len", summary.plan_len as u64)
                    .u64("generations", summary.generations as u64)
                    .bool("solved", best.solves())
            });
            phases.push(summary);

            // keep the best solution of the phase and continue from its
            // final state (§3.5 step 2c). Under BestPrefix goal evaluation
            // the "solution" is the prefix achieving the best goal fitness,
            // so chaining continues from that prefix's state.
            match self.cfg.goal_eval {
                GoalEval::FinalState => {
                    plan.extend_from(&Plan::from_ops(best.ops.clone()));
                    state = best.final_state.clone();
                }
                GoalEval::BestPrefix => {
                    plan.extend_from(&Plan::from_ops(best.ops[..best.best_prefix_at].to_vec()));
                    state = best.best_prefix_state.clone();
                }
            }

            if best.solves() {
                solved_in_phase = Some(p + 1);
                generations_to_solution = total_generations;
                // A solving phase that was *cut* (deadline/cancel mid-
                // refinement) must still report the stop: its best-so-far
                // depends on where the cut landed, so callers that treat
                // `stopped: None` as "complete, deterministic run" (the
                // service's Done status and plan cache) would otherwise
                // cache and compare nondeterministic plans.
                stopped = phase_stopped;
                break;
            }

            if phase_stopped.is_some() {
                stopped = phase_stopped;
                break;
            }

            // Phase boundary with more phases to go: the natural checkpoint.
            // No RNG state is needed — phase `p + 1` derives a fresh stream
            // from `(seed, p + 1)` — so a resume from here is trivially
            // bitwise-identical.
            if p + 1 < self.cfg.max_phases {
                sink(&MultiPhaseCheckpoint {
                    version: CHECKPOINT_VERSION,
                    problem_sig: self.problem_sig,
                    config_sig,
                    next_phase: p + 1,
                    plan_ops: plan.ops().iter().map(|op| op.0).collect(),
                    phases: phases.clone(),
                    history: history.clone(),
                    total_generations,
                    first_solution_gen,
                    phase_snapshot: None,
                });
            }
        }

        if solved_in_phase.is_none() {
            generations_to_solution = total_generations;
        }
        let goal_fitness = self.domain.goal_fitness(&state);
        obs::emit(|| {
            obs::Event::new("ga.run_end")
                .bool("solved", solved_in_phase.is_some())
                .u64("phases", phases.len() as u64)
                .u64("total_generations", total_generations as u64)
                .f64("goal_fitness", goal_fitness)
                .u64("plan_len", plan.len() as u64)
        });
        Ok(MultiPhaseResult {
            solved: solved_in_phase.is_some(),
            solved_in_phase,
            plan,
            final_state: state,
            goal_fitness,
            phases,
            history,
            total_generations,
            generations_to_solution,
            first_solution_gen,
            stopped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::strips::{StripsBuilder, StripsProblem};

    /// Bidirectional chain with permanent `reached-i` markers so the goal
    /// fitness is graded (a single-condition goal would give the GA no
    /// gradient at all).
    fn chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 1..=n {
            b.condition(&format!("reached{i}")).unwrap();
        }
        for i in 0..n {
            b.op(
                &format!("fwd{i}"),
                &[&format!("s{i}")],
                &[&format!("s{}", i + 1), &format!("reached{}", i + 1)],
                &[&format!("s{i}")],
                1.0,
            )
            .unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        let goal: Vec<String> = (1..=n).map(|i| format!("reached{i}")).collect();
        let goal_refs: Vec<&str> = goal.iter().map(String::as_str).collect();
        b.goal(&goal_refs).unwrap();
        b.build().unwrap()
    }

    fn cfg() -> GaConfig {
        GaConfig {
            population_size: 30,
            generations_per_phase: 25,
            max_phases: 4,
            initial_len: 6,
            max_len: 12,
            seed: 21,
            eval: crate::config::EvalMode::Serial,
            ..GaConfig::default()
        }
    }

    #[test]
    fn multiphase_solves_and_concatenated_plan_replays() {
        let d = chain(8); // long enough that later phases usually contribute
        let mut c = cfg();
        c.population_size = 50;
        c.generations_per_phase = 60;
        let r = MultiPhase::new(&d, c).run();
        assert!(r.solved, "goal fitness reached {}", r.goal_fitness);
        let out = r.plan.simulate(&d, &d.initial_state()).unwrap();
        assert!(out.solves);
        assert_eq!(out.final_state, r.final_state);
        assert_eq!(r.goal_fitness, 1.0);
    }

    #[test]
    fn phases_chain_states() {
        let d = chain(10);
        let r = MultiPhase::new(&d, cfg()).run();
        // total plan length equals the sum of per-phase contributions
        let total: usize = r.phases.iter().map(|p| p.plan_len).sum();
        assert_eq!(total, r.plan.len());
        // goal fitness is non-decreasing across phases (each phase keeps
        // its best-by-goal individual, and an empty plan preserves state)
        for w in r.phases.windows(2) {
            assert!(w[1].best_goal_fitness >= w[0].best_goal_fitness - 1e-9, "phase fitness regressed: {:?}", r.phases);
        }
    }

    #[test]
    fn stops_after_solving_phase() {
        let d = chain(4); // easy: solved in phase 1
        let r = MultiPhase::new(&d, cfg()).run();
        assert_eq!(r.solved_in_phase, Some(1));
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.total_generations, 25);
        assert_eq!(r.generations_to_solution, 25);
    }

    #[test]
    fn unsolved_run_reports_full_budget() {
        let d = chain(60); // impossible within 4 phases * max_len 12
        let r = MultiPhase::new(&d, cfg()).run();
        assert!(!r.solved);
        assert_eq!(r.solved_in_phase, None);
        assert_eq!(r.phases.len(), 4);
        assert_eq!(r.total_generations, 100);
        assert_eq!(r.generations_to_solution, 100);
        assert!(r.goal_fitness < 1.0);
    }

    #[test]
    fn single_phase_preset_runs_one_phase() {
        let d = chain(5);
        let mut c = cfg().single_phase();
        c.generations_per_phase = 40; // keep the test fast
        let r = MultiPhase::new(&d, c).run();
        assert_eq!(r.phases.len(), 1);
        // early stop: executed generations < budget when solved quickly
        if r.solved {
            assert!(r.total_generations <= 40);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let d = chain(8);
        let a = MultiPhase::new(&d, cfg()).run();
        let b = MultiPhase::new(&d, cfg()).run();
        assert_eq!(a.plan.ops(), b.plan.ops());
        assert_eq!(a.solved_in_phase, b.solved_in_phase);
        assert_eq!(a.total_generations, b.total_generations);
    }

    #[test]
    fn history_spans_all_phases() {
        let d = chain(60);
        let r = MultiPhase::new(&d, cfg()).run();
        assert_eq!(r.history.len() as u32, r.total_generations);
    }

    #[test]
    fn cancelled_run_returns_best_so_far_with_consistent_counts() {
        use gaplan_core::budget::{Budget, CancelToken, StopCause};
        let d = chain(60); // hard: would otherwise run all 4 phases
        let token = CancelToken::new();
        token.cancel();
        let r = MultiPhase::new(&d, cfg()).with_budget(Budget::unlimited().with_token(token)).run();
        assert_eq!(r.stopped, Some(StopCause::Cancelled));
        // phase 1 ran exactly one generation before noticing the token
        assert_eq!(r.total_generations, 1);
        assert_eq!(r.history.len() as u32, r.total_generations);
        assert_eq!(r.phases.len(), 1);
        // the best-so-far concatenation is still a valid (if poor) plan
        let out = r.plan.simulate(&d, &d.initial_state()).unwrap();
        assert_eq!(out.final_state, r.final_state);
    }

    #[test]
    fn solving_phase_cut_by_deadline_still_reports_the_stop() {
        use gaplan_core::budget::{Budget, StopCause};
        use std::time::{Duration, Instant};
        // Trivially solvable (single forced op), so the phase's best
        // solves even though the already-expired deadline cuts it after
        // one generation. The stop must not be masked by the solve: a cut
        // run's plan depends on where the cut landed, and downstream
        // consumers use `stopped: None` to mean "deterministic, cacheable".
        let d = chain(1);
        let deadline = Instant::now() - Duration::from_millis(1);
        let r = MultiPhase::new(&d, cfg()).with_budget(Budget::unlimited().with_deadline(deadline)).run();
        assert!(r.solved, "one-op chain must solve immediately: {r:?}");
        assert_eq!(r.stopped, Some(StopCause::Deadline), "deadline cut was masked by the solve");
    }

    #[test]
    fn trace_events_are_emitted_and_masked_stream_is_deterministic() {
        let d = chain(8);
        let run = || {
            let rec = std::sync::Arc::new(obs::RecordingSubscriber::default());
            let guard = obs::install(rec.clone());
            let r = MultiPhase::new(&d, cfg()).run();
            drop(guard);
            (r, rec.lines())
        };
        let (ra, la) = run();
        let (rb, lb) = run();
        // Same plan with and without tracing-driven clock reads.
        assert_eq!(ra.plan.ops(), rb.plan.ops());
        // One ga.gen and one ga.xover per generation, one phase_end per
        // phase, one run_end, balanced span lines.
        let count = |needle: &str| la.iter().filter(|l| l.starts_with(&format!("{{\"ev\":\"{needle}\""))).count();
        assert_eq!(count("ga.gen") as u32, ra.total_generations);
        // the final generation of each phase never breeds (the loop breaks
        // after evaluation), so xover events = generations - phases
        assert_eq!(count("ga.xover") as u32, ra.total_generations - ra.phases.len() as u32);
        assert_eq!(count("ga.phase_end"), ra.phases.len());
        // one cache-counter event per phase, cache on or off
        assert_eq!(count("ga.cache"), ra.phases.len());
        assert_eq!(count("ga.run_end"), 1);
        assert_eq!(count("span_enter"), count("span_exit"));
        // Byte-identical after masking wall-clock fields.
        let mask = |lines: &[String]| lines.iter().map(|l| obs::golden::mask_line(l)).collect::<Vec<_>>();
        assert_eq!(mask(&la), mask(&lb));
        // ...and the wall fields really did get masked to zero.
        assert!(mask(&la).iter().any(|l| l.contains(r#""eval_wall_ns":0"#)), "{la:?}");
    }

    #[test]
    fn multiphase_identical_with_cache_on_and_off() {
        let d = chain(10);
        let mut on = cfg();
        on.succ_cache = true;
        let mut off = cfg();
        off.succ_cache = false;
        let a = MultiPhase::new(&d, on).run();
        let b = MultiPhase::new(&d, off).run();
        assert_eq!(a.plan.ops(), b.plan.ops());
        assert_eq!(a.solved_in_phase, b.solved_in_phase);
        assert_eq!(a.total_generations, b.total_generations);
        assert_eq!(a.goal_fitness.to_bits(), b.goal_fitness.to_bits());
        assert_eq!(a.history.len(), b.history.len());
        for (ha, hb) in a.history.iter().zip(&b.history) {
            assert_eq!(ha.best_total.to_bits(), hb.best_total.to_bits());
            assert_eq!(ha.mean_total.to_bits(), hb.mean_total.to_bits());
        }
    }

    #[test]
    fn external_cache_is_shared_across_runs() {
        let d = chain(8);
        let cache = Arc::new(SuccessorCache::new(1 << 12));
        let r1 = MultiPhase::new(&d, cfg()).with_cache(Arc::clone(&cache)).run();
        let warm = cache.stats();
        let r2 = MultiPhase::new(&d, cfg()).with_cache(Arc::clone(&cache)).run();
        let second = cache.stats().since(&warm);
        // identical seeds: identical plans, but the second run decodes warm
        assert_eq!(r1.plan.ops(), r2.plan.ops());
        assert!(
            second.hits > second.misses,
            "second run should mostly hit (hits {} misses {})",
            second.hits,
            second.misses
        );
    }

    fn assert_bitwise_equal(
        a: &MultiPhaseResult<impl PartialEq + std::fmt::Debug>,
        b: &MultiPhaseResult<impl PartialEq + std::fmt::Debug>,
    ) {
        assert_eq!(a.plan.ops(), b.plan.ops());
        assert_eq!(a.goal_fitness.to_bits(), b.goal_fitness.to_bits());
        assert_eq!(a.solved, b.solved);
        assert_eq!(a.solved_in_phase, b.solved_in_phase);
        assert_eq!(a.total_generations, b.total_generations);
        assert_eq!(a.generations_to_solution, b.generations_to_solution);
        assert_eq!(a.first_solution_gen, b.first_solution_gen);
        assert_eq!(a.phases.len(), b.phases.len());
        assert_eq!(a.history.len(), b.history.len());
        for (ha, hb) in a.history.iter().zip(&b.history) {
            assert_eq!(ha.best_total.to_bits(), hb.best_total.to_bits());
            assert_eq!(ha.best_goal.to_bits(), hb.best_goal.to_bits());
            assert_eq!(ha.mean_total.to_bits(), hb.mean_total.to_bits());
            assert_eq!(ha.solvers, hb.solvers);
        }
    }

    #[test]
    fn resume_from_every_phase_boundary_is_bitwise_identical() {
        let d = chain(60); // hard: runs all 4 phases, so 3 boundary checkpoints
        let mut cps: Vec<MultiPhaseCheckpoint> = Vec::new();
        let full = MultiPhase::new(&d, cfg())
            .with_problem_sig(42)
            .run_checkpointed(None, 0, &mut |cp| cps.push(cp.clone()))
            .unwrap();
        assert_eq!(cps.len(), 3, "one checkpoint per non-final phase boundary");
        for cp in &cps {
            // Round trip through JSON exactly as the CLI persists it.
            let json = serde_json::to_string(cp).unwrap();
            let cp: MultiPhaseCheckpoint = serde_json::from_str(&json).unwrap();
            let resumed =
                MultiPhase::new(&d, cfg()).with_problem_sig(42).run_checkpointed(Some(&cp), 0, &mut |_| {}).unwrap();
            assert_bitwise_equal(&resumed, &full);
        }
    }

    #[test]
    fn resume_from_midphase_snapshot_is_bitwise_identical() {
        let d = chain(60);
        let mut cps: Vec<MultiPhaseCheckpoint> = Vec::new();
        let full = MultiPhase::new(&d, cfg()).run_checkpointed(None, 7, &mut |cp| cps.push(cp.clone())).unwrap();
        let mid: Vec<&MultiPhaseCheckpoint> = cps.iter().filter(|c| c.phase_snapshot.is_some()).collect();
        assert!(!mid.is_empty(), "25-generation phases at every-7 must snapshot");
        for cp in mid {
            let json = serde_json::to_string(cp).unwrap();
            let cp: MultiPhaseCheckpoint = serde_json::from_str(&json).unwrap();
            let resumed = MultiPhase::new(&d, cfg()).run_checkpointed(Some(&cp), 0, &mut |_| {}).unwrap();
            assert_bitwise_equal(&resumed, &full);
        }
    }

    #[test]
    fn resume_rejects_foreign_checkpoints() {
        let d = chain(60); // unsolvable in 4 phases, so boundaries exist
        let mut cps: Vec<MultiPhaseCheckpoint> = Vec::new();
        MultiPhase::new(&d, cfg())
            .with_problem_sig(42)
            .run_checkpointed(None, 0, &mut |cp| cps.push(cp.clone()))
            .unwrap();
        let cp = cps.first().expect("unsolved 4-phase run leaves boundaries").clone();

        let mut bad = cp.clone();
        bad.version += 1;
        let err = MultiPhase::new(&d, cfg()).run_checkpointed(Some(&bad), 0, &mut |_| {}).unwrap_err();
        assert!(matches!(err, ResumeError::VersionMismatch { .. }));

        let mut other_cfg = cfg();
        other_cfg.seed += 1;
        let err = MultiPhase::new(&d, other_cfg).run_checkpointed(Some(&cp), 0, &mut |_| {}).unwrap_err();
        assert!(matches!(err, ResumeError::ConfigMismatch { .. }));

        let err =
            MultiPhase::new(&d, cfg()).with_problem_sig(7).run_checkpointed(Some(&cp), 0, &mut |_| {}).unwrap_err();
        assert!(matches!(err, ResumeError::ProblemMismatch { .. }));

        // problem sig 0 on either side skips the problem check
        MultiPhase::new(&d, cfg()).run_checkpointed(Some(&cp), 0, &mut |_| {}).unwrap();

        let mut bad = cp.clone();
        bad.next_phase = 99;
        let err = MultiPhase::new(&d, cfg()).run_checkpointed(Some(&bad), 0, &mut |_| {}).unwrap_err();
        assert!(matches!(err, ResumeError::PhaseOutOfRange { .. }));
    }

    #[test]
    fn resumed_run_trace_matches_uninterrupted_suffix() {
        // Phase-boundary resume must replay the *identical* event stream for
        // the remaining phases: the masked continuation trace (minus its
        // run-enter line) equals the uninterrupted trace's suffix from the
        // resumed phase's span_enter on (minus the final run-exit lines,
        // compared separately since both traces end with them).
        let d = chain(60);
        let mut cps: Vec<MultiPhaseCheckpoint> = Vec::new();
        let rec = std::sync::Arc::new(obs::RecordingSubscriber::default());
        let guard = obs::install(rec.clone());
        MultiPhase::new(&d, cfg()).run_checkpointed(None, 0, &mut |cp| cps.push(cp.clone())).unwrap();
        drop(guard);
        let full: Vec<String> = rec.lines().iter().map(|l| obs::golden::mask_line(l)).collect();

        for cp in &cps {
            let rec = std::sync::Arc::new(obs::RecordingSubscriber::default());
            let guard = obs::install(rec.clone());
            MultiPhase::new(&d, cfg()).run_checkpointed(Some(cp), 0, &mut |_| {}).unwrap();
            drop(guard);
            let resumed: Vec<String> = rec.lines().iter().map(|l| obs::golden::mask_line(l)).collect();

            // Uninterrupted suffix: from the (next_phase + 1)-th phase span
            // enter line onward.
            let phase_enters: Vec<usize> = full
                .iter()
                .enumerate()
                .filter(|(_, l)| l.starts_with("{\"ev\":\"span_enter\",\"span\":\"ga.phase\""))
                .map(|(i, _)| i)
                .collect();
            let suffix = &full[phase_enters[cp.next_phase as usize]..];
            // Resumed trace: drop its leading span_enter ga.run line.
            assert!(resumed[0].starts_with("{\"ev\":\"span_enter\",\"span\":\"ga.run\""), "{}", resumed[0]);
            assert_eq!(&resumed[1..], suffix, "trace suffix diverged for resume at phase {}", cp.next_phase);
        }
    }

    fn island_cfg() -> GaConfig {
        let mut c = cfg();
        c.population_size = 32; // divisible by 4 islands
        c.islands = 4;
        c.migration_interval = 5;
        c.emigrants = 2;
        c
    }

    #[test]
    fn island_multiphase_is_deterministic_and_traces_migrations() {
        let d = chain(60); // unsolvable: all 4 phases run their full budget
        let run = || {
            let rec = std::sync::Arc::new(obs::RecordingSubscriber::default());
            let guard = obs::install(rec.clone());
            let r = MultiPhase::new(&d, island_cfg()).run();
            drop(guard);
            (r, rec.lines())
        };
        let (ra, la) = run();
        let (rb, lb) = run();
        assert_eq!(ra.plan.ops(), rb.plan.ops());
        let mask = |lines: &[String]| lines.iter().map(|l| obs::golden::mask_line(l)).collect::<Vec<_>>();
        assert_eq!(mask(&la), mask(&lb), "island trace must be run-to-run deterministic");
        let count = |needle: &str| la.iter().filter(|l| l.starts_with(&format!("{{\"ev\":\"{needle}\""))).count();
        // the aggregated per-generation xover event keeps the single-
        // population trace shape: one per breeding generation
        assert_eq!(count("ga.xover") as u32, ra.total_generations - ra.phases.len() as u32);
        // migrations at gens 5/10/15/20 of each 25-generation phase
        assert_eq!(count("ga.migration"), 4 * ra.phases.len());
        // and masking blanks the migration wall field like any other
        assert!(
            mask(&la).iter().any(|l| l.starts_with("{\"ev\":\"ga.migration\"") && l.contains(r#""wall_ns":0"#)),
            "migration wall_ns must be masked"
        );
    }

    #[test]
    fn island_midphase_resume_is_bitwise_identical() {
        let d = chain(60);
        let mut cps: Vec<MultiPhaseCheckpoint> = Vec::new();
        let full = MultiPhase::new(&d, island_cfg()).run_checkpointed(None, 7, &mut |cp| cps.push(cp.clone())).unwrap();
        let mid: Vec<&MultiPhaseCheckpoint> = cps.iter().filter(|c| c.phase_snapshot.is_some()).collect();
        assert!(!mid.is_empty());
        for cp in mid {
            let json = serde_json::to_string(cp).unwrap();
            let cp: MultiPhaseCheckpoint = serde_json::from_str(&json).unwrap();
            assert_eq!(cp.phase_snapshot.as_ref().unwrap().islands(), 4);
            let resumed = MultiPhase::new(&d, island_cfg()).run_checkpointed(Some(&cp), 0, &mut |_| {}).unwrap();
            assert_bitwise_equal(&resumed, &full);
        }
    }

    #[test]
    fn resume_rejects_island_count_mismatch() {
        let d = chain(60);
        let mut cps: Vec<MultiPhaseCheckpoint> = Vec::new();
        MultiPhase::new(&d, island_cfg()).run_checkpointed(None, 7, &mut |cp| cps.push(cp.clone())).unwrap();
        let cp = cps.iter().find(|c| c.phase_snapshot.is_some()).expect("mid-phase checkpoint").clone();
        let mut two = island_cfg();
        two.islands = 2;
        let err = MultiPhase::new(&d, two).run_checkpointed(Some(&cp), 0, &mut |_| {}).unwrap_err();
        assert!(
            matches!(err, ResumeError::IslandMismatch { found: 4, expected: 2 }),
            "want the specific island error, got {err:?}"
        );
    }

    #[test]
    fn deadline_stops_between_phases() {
        use gaplan_core::budget::{Budget, StopCause};
        use std::time::Duration;
        let d = chain(60);
        let r = MultiPhase::new(&d, cfg()).with_budget(Budget::unlimited().with_timeout(Duration::ZERO)).run();
        assert_eq!(r.stopped, Some(StopCause::Deadline));
        assert!(r.total_generations < 100, "deadline should cut the 4x25 budget");
        assert_eq!(r.history.len() as u32, r.total_generations);
        assert!(!r.solved);
    }
}
