//! Parent selection (paper §3.4.1: tournament with size 2), plus roulette
//! and rank selection as extensions.

use rand::Rng;

use crate::config::SelectionScheme;

/// Select the index of one parent from a population described by its
/// fitness values. `fitnesses` must be non-empty.
///
/// * `Tournament(k)`: pick `k` indices uniformly with replacement, return
///   the fittest (the paper's scheme with `k = 2`).
/// * `Roulette`: fitness-proportional; valid because total fitness is
///   non-negative under the paper's weighting. Degenerates to uniform when
///   all fitnesses are zero.
/// * `Rank`: linear ranking — probability proportional to `rank + 1` with
///   the worst individual having rank 0.
pub fn select_parent<R: Rng + ?Sized>(rng: &mut R, fitnesses: &[f64], scheme: SelectionScheme) -> usize {
    assert!(!fitnesses.is_empty(), "cannot select from an empty population");
    match scheme {
        SelectionScheme::Tournament(k) => {
            let mut best = rng.gen_range(0..fitnesses.len());
            for _ in 1..k {
                let c = rng.gen_range(0..fitnesses.len());
                if fitnesses[c] > fitnesses[best] {
                    best = c;
                }
            }
            best
        }
        SelectionScheme::Roulette => {
            let total: f64 = fitnesses.iter().sum();
            if total <= 0.0 {
                return rng.gen_range(0..fitnesses.len());
            }
            let mut ticket = rng.gen::<f64>() * total;
            for (i, &f) in fitnesses.iter().enumerate() {
                ticket -= f;
                if ticket <= 0.0 {
                    return i;
                }
            }
            fitnesses.len() - 1
        }
        SelectionScheme::Rank => {
            // ranks[i] = rank of individual i (0 = worst)
            let n = fitnesses.len();
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| fitnesses[a].partial_cmp(&fitnesses[b]).unwrap_or(std::cmp::Ordering::Equal));
            let total = (n * (n + 1) / 2) as f64;
            let mut ticket = rng.gen::<f64>() * total;
            for (rank, &idx) in order.iter().enumerate() {
                ticket -= (rank + 1) as f64;
                if ticket <= 0.0 {
                    return idx;
                }
            }
            *order.last().expect("non-empty")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(fit: &[f64], scheme: SelectionScheme, trials: usize) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; fit.len()];
        for _ in 0..trials {
            counts[select_parent(&mut rng, fit, scheme)] += 1;
        }
        counts
    }

    #[test]
    fn tournament_prefers_fitter() {
        let counts = frequencies(&[0.1, 0.9], SelectionScheme::Tournament(2), 10_000);
        // P(select best) = 1 - P(both picks are worst) = 1 - 0.25 = 0.75
        let p = counts[1] as f64 / 10_000.0;
        assert!((0.70..0.80).contains(&p), "p = {p}");
    }

    #[test]
    fn tournament_size_one_is_uniform() {
        let counts = frequencies(&[0.1, 0.9], SelectionScheme::Tournament(1), 10_000);
        let p = counts[1] as f64 / 10_000.0;
        assert!((0.45..0.55).contains(&p), "p = {p}");
    }

    #[test]
    fn larger_tournament_is_greedier() {
        let p2 = frequencies(&[0.1, 0.5, 0.9], SelectionScheme::Tournament(2), 20_000)[2];
        let p8 = frequencies(&[0.1, 0.5, 0.9], SelectionScheme::Tournament(8), 20_000)[2];
        assert!(p8 > p2);
    }

    #[test]
    fn roulette_is_fitness_proportional() {
        let counts = frequencies(&[1.0, 3.0], SelectionScheme::Roulette, 20_000);
        let p = counts[1] as f64 / 20_000.0;
        assert!((0.72..0.78).contains(&p), "p = {p}");
    }

    #[test]
    fn roulette_all_zero_degenerates_to_uniform() {
        let counts = frequencies(&[0.0, 0.0, 0.0], SelectionScheme::Roulette, 9_000);
        for &c in &counts {
            assert!((2_500..3_500).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn rank_orders_by_rank_not_magnitude() {
        // enormous fitness gap, but rank selection only sees order
        let counts = frequencies(&[1e-9, 1e9], SelectionScheme::Rank, 20_000);
        let p = counts[1] as f64 / 20_000.0;
        // ranks 1 and 2 of 2 -> P(best) = 2/3
        assert!((0.63..0.71).contains(&p), "p = {p}");
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_population_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        select_parent(&mut rng, &[], SelectionScheme::Tournament(2));
    }
}
