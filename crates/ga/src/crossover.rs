//! The three crossover mechanisms (paper §3.4.2): random, state-aware and
//! mixed, plus a two-point extension.
//!
//! State-aware crossover is the paper's novel operator. Because the encoding
//! is indirect, the genes to the right of a random cut decode against a
//! *different* state after the swap and may therefore mean a completely
//! different operation sequence. State-aware crossover restricts the second
//! parent's cut to a locus whose decode state matches the first cut's state,
//! so the exchanged suffixes keep their meaning — "attempts to preserve
//! partial solutions that have been evolved in the search".

use rand::Rng;

use crate::arena::{PopulationArena, Provenance};
use crate::config::CrossoverKind;
use crate::genome::Genome;
use crate::individual::Evaluated;

/// Outcome of a crossover attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum CrossoverOutcome {
    /// Two children were produced (they replace their parents).
    Children(Genome, Genome),
    /// Mixed crossover found no matching cut and fell back to a random
    /// second cut. Distinguished from `Children` so the fallback rate —
    /// how often the paper's state-aware mechanism actually fires — is
    /// observable by the engine's telemetry.
    FallbackChildren(Genome, Genome),
    /// No matching cut point existed (state-aware only): "we do not perform
    /// the crossover and both parents are included in the population of the
    /// next generation".
    Unchanged,
}

impl CrossoverOutcome {
    /// The produced children regardless of how the cut was chosen.
    pub fn into_children(self) -> Option<(Genome, Genome)> {
        match self {
            CrossoverOutcome::Children(c1, c2) | CrossoverOutcome::FallbackChildren(c1, c2) => Some((c1, c2)),
            CrossoverOutcome::Unchanged => None,
        }
    }
}

/// All RNG decisions of one crossover attempt, separated from child
/// construction so children can be materialized either as [`Genome`]s or
/// directly into a [`PopulationArena`] without touching the draw sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossoverPlan {
    /// Single-cut splice: child1 = `a[..c1] ++ b[c2..]`, child2 =
    /// `b[..c2] ++ a[c1..]`. `fallback` marks mixed crossover's random-cut
    /// fallback (no matching state was found).
    Splice {
        /// Cut on parent `a`.
        c1: usize,
        /// Cut on parent `b`.
        c2: usize,
        /// True when mixed crossover fell back to a random second cut.
        fallback: bool,
    },
    /// Two-point swap of `a[a1..a2]` with `b[b1..b2]`.
    TwoPoint {
        /// First cut on parent `a`.
        a1: usize,
        /// Second cut on parent `a`.
        a2: usize,
        /// First cut on parent `b`.
        b1: usize,
        /// Second cut on parent `b`.
        b2: usize,
    },
    /// No matching cut point existed (state-aware only); parents pass
    /// through unchanged.
    Unchanged,
}

impl CrossoverPlan {
    /// Each child's unchanged-prefix length (`None` for [`CrossoverPlan::Unchanged`]).
    pub fn cuts(&self) -> Option<(usize, usize)> {
        match *self {
            CrossoverPlan::Splice { c1, c2, .. } => Some((c1, c2)),
            // Only the flanks before the first cut of each parent survive
            // unchanged in the corresponding child.
            CrossoverPlan::TwoPoint { a1, b1, .. } => Some((a1, b1)),
            CrossoverPlan::Unchanged => None,
        }
    }

    /// Append this plan's two children (or the unchanged parents) to
    /// `arena`, recording prefix-reuse provenance against parent indices
    /// `pa` / `pb` in the evaluated parent generation.
    pub fn materialize_into<S>(
        &self,
        arena: &mut PopulationArena,
        a: &Evaluated<S>,
        pa: usize,
        b: &Evaluated<S>,
        pb: usize,
        max_len: usize,
    ) {
        let (ga, gb) = (a.genome.genes(), b.genome.genes());
        match *self {
            CrossoverPlan::Splice { c1, c2, .. } => {
                arena.push_splice(ga, c1, gb, c2, max_len, Provenance::prefix(pa, c1));
                arena.push_splice(gb, c2, ga, c1, max_len, Provenance::prefix(pb, c2));
            }
            CrossoverPlan::TwoPoint { a1, a2, b1, b2 } => {
                arena.push_concat3(&ga[..a1], &gb[b1..b2], &ga[a2..], max_len, Provenance::prefix(pa, a1));
                arena.push_concat3(&gb[..b1], &ga[a1..a2], &gb[b2..], max_len, Provenance::prefix(pb, b1));
            }
            CrossoverPlan::Unchanged => {
                arena.push(ga, Provenance::full(pa));
                arena.push(gb, Provenance::full(pb));
            }
        }
    }
}

/// Draw the RNG decisions for one crossover of `kind` between evaluated
/// parents `a` and `b`. Consumes exactly the draws [`crossover`] consumes.
pub fn crossover_plan<R: Rng + ?Sized, S>(
    rng: &mut R,
    kind: CrossoverKind,
    a: &Evaluated<S>,
    b: &Evaluated<S>,
) -> CrossoverPlan {
    match kind {
        CrossoverKind::Random => {
            let c1 = rng.gen_range(0..=a.genome.len());
            let c2 = rng.gen_range(0..=b.genome.len());
            CrossoverPlan::Splice { c1, c2, fallback: false }
        }
        CrossoverKind::StateAware => {
            // Cut points must lie in the decoded region: match keys identify
            // decode states, which only exist for decoded loci.
            let c1 = rng.gen_range(0..=a.decoded_len);
            match matching_cut(rng, a.match_keys[c1], b) {
                Some(c2) => CrossoverPlan::Splice { c1, c2, fallback: false },
                None => CrossoverPlan::Unchanged,
            }
        }
        CrossoverKind::Mixed => {
            // "We randomly select the first crossover point and check if
            // state-aware crossover can be performed. … Otherwise, we
            // randomly select the second crossover point and carry out a
            // random crossover."
            let c1 = rng.gen_range(0..=a.decoded_len);
            match matching_cut(rng, a.match_keys[c1], b) {
                Some(c2) => CrossoverPlan::Splice { c1, c2, fallback: false },
                None => {
                    let c2 = rng.gen_range(0..=b.genome.len());
                    CrossoverPlan::Splice { c1, c2, fallback: true }
                }
            }
        }
        CrossoverKind::TwoPoint => {
            let (a1, a2) = sorted_pair(rng, a.genome.len());
            let (b1, b2) = sorted_pair(rng, b.genome.len());
            CrossoverPlan::TwoPoint { a1, a2, b1, b2 }
        }
    }
}

/// Apply crossover `kind` to two evaluated parents, producing children
/// truncated to `max_len`.
pub fn crossover<R: Rng + ?Sized, S>(
    rng: &mut R,
    kind: CrossoverKind,
    a: &Evaluated<S>,
    b: &Evaluated<S>,
    max_len: usize,
) -> CrossoverOutcome {
    crossover_with_cuts(rng, kind, a, b, max_len).0
}

/// [`crossover`] that also reports each child's *unchanged-prefix lengths*:
/// `cuts = Some((p1, p2))` means the first child's genes `0..p1` are copied
/// verbatim from parent `a` and the second child's genes `0..p2` verbatim
/// from parent `b`. The engine turns these into prefix-reuse decode hints.
/// `None` accompanies [`CrossoverOutcome::Unchanged`] (the parents pass
/// through whole, so their entire decode is reusable).
///
/// The RNG draw sequence is identical to [`crossover`]'s and
/// [`crossover_plan`]'s by construction — all draws happen in the plan,
/// materialization here is draw-free.
pub fn crossover_with_cuts<R: Rng + ?Sized, S>(
    rng: &mut R,
    kind: CrossoverKind,
    a: &Evaluated<S>,
    b: &Evaluated<S>,
    max_len: usize,
) -> (CrossoverOutcome, Option<(usize, usize)>) {
    let plan = crossover_plan(rng, kind, a, b);
    let cuts = plan.cuts();
    let outcome = match plan {
        CrossoverPlan::Splice { c1, c2, fallback } => match children(a, c1, b, c2, max_len) {
            CrossoverOutcome::Children(g1, g2) if fallback => CrossoverOutcome::FallbackChildren(g1, g2),
            other => other,
        },
        CrossoverPlan::TwoPoint { a1, a2, b1, b2 } => {
            let mid_a = &a.genome.genes()[a1..a2];
            let mid_b = &b.genome.genes()[b1..b2];
            let mut g1 = Vec::with_capacity(a.genome.len() - mid_a.len() + mid_b.len());
            g1.extend_from_slice(&a.genome.genes()[..a1]);
            g1.extend_from_slice(mid_b);
            g1.extend_from_slice(&a.genome.genes()[a2..]);
            g1.truncate(max_len);
            let mut g2 = Vec::with_capacity(b.genome.len() - mid_b.len() + mid_a.len());
            g2.extend_from_slice(&b.genome.genes()[..b1]);
            g2.extend_from_slice(mid_a);
            g2.extend_from_slice(&b.genome.genes()[b2..]);
            g2.truncate(max_len);
            CrossoverOutcome::Children(Genome::from_genes(g1), Genome::from_genes(g2))
        }
        CrossoverPlan::Unchanged => CrossoverOutcome::Unchanged,
    };
    (outcome, cuts)
}

fn children<S>(a: &Evaluated<S>, c1: usize, b: &Evaluated<S>, c2: usize, max_len: usize) -> CrossoverOutcome {
    CrossoverOutcome::Children(a.genome.splice(c1, &b.genome, c2, max_len), b.genome.splice(c2, &a.genome, c1, max_len))
}

/// Find a cut point on `b` whose decode state matches `key`, chosen
/// uniformly at random among all matches. Returns `None` when no locus of
/// `b` matches.
fn matching_cut<R: Rng + ?Sized, S>(rng: &mut R, key: u64, b: &Evaluated<S>) -> Option<usize> {
    // Reservoir-sample a uniform match in one pass without allocating.
    let mut chosen = None;
    let mut seen = 0usize;
    for (i, &k) in b.match_keys.iter().enumerate().take(b.decoded_len + 1) {
        if k == key {
            seen += 1;
            if rng.gen_range(0..seen) == 0 {
                chosen = Some(i);
            }
        }
    }
    chosen
}

fn sorted_pair<R: Rng + ?Sized>(rng: &mut R, len: usize) -> (usize, usize) {
    let x = rng.gen_range(0..=len);
    let y = rng.gen_range(0..=len);
    (x.min(y), x.max(y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::Fitness;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build an Evaluated with the given genes and match keys; state carried
    /// as `()` because crossover never inspects it.
    fn ind(genes: Vec<f64>, keys: Vec<u64>) -> Evaluated<()> {
        let decoded_len = genes.len();
        assert_eq!(keys.len(), decoded_len + 1);
        Evaluated {
            genome: Genome::from_genes(genes),
            ops: vec![],
            match_keys: keys,
            step_goals: vec![],
            final_state: (),
            decoded_len,
            best_prefix_at: 0,
            best_prefix_state: (),
            fitness: Fitness::default(),
        }
    }

    #[test]
    fn random_crossover_preserves_total_length_when_unbounded() {
        let a = ind(vec![0.1; 10], (0..=10).collect());
        let b = ind(vec![0.9; 6], (100..=106).collect());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            match crossover(&mut rng, CrossoverKind::Random, &a, &b, usize::MAX).into_children() {
                Some((c1, c2)) => assert_eq!(c1.len() + c2.len(), 16),
                None => panic!("random crossover always produces children"),
            }
        }
    }

    #[test]
    fn random_crossover_children_respect_max_len() {
        let a = ind(vec![0.1; 10], (0..=10).collect());
        let b = ind(vec![0.9; 10], (100..=110).collect());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            if let CrossoverOutcome::Children(c1, c2) = crossover(&mut rng, CrossoverKind::Random, &a, &b, 12) {
                assert!(c1.len() <= 12 && c2.len() <= 12);
            }
        }
    }

    #[test]
    fn state_aware_returns_unchanged_without_matching_state() {
        let a = ind(vec![0.1; 4], vec![1, 2, 3, 4, 5]);
        let b = ind(vec![0.9; 4], vec![10, 20, 30, 40, 50]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(crossover(&mut rng, CrossoverKind::StateAware, &a, &b, 100), CrossoverOutcome::Unchanged);
        }
    }

    #[test]
    fn state_aware_swaps_at_matching_state() {
        // a's locus 2 has key 7; b's locus 1 has key 7; all others unique.
        let a = ind(vec![0.1, 0.2, 0.3], vec![1, 2, 7, 4]);
        let b = ind(vec![0.7, 0.8, 0.9], vec![5, 7, 6, 8]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut produced = 0;
        for _ in 0..200 {
            if let CrossoverOutcome::Children(c1, c2) = crossover(&mut rng, CrossoverKind::StateAware, &a, &b, 100) {
                produced += 1;
                // the only matching pair is (c1=2, c2=1)
                assert_eq!(c1.genes(), &[0.1, 0.2, 0.8, 0.9]);
                assert_eq!(c2.genes(), &[0.7, 0.3]);
            }
        }
        // cut c1 is uniform over 0..=3; only c1 = 2 matches, so about 1/4
        // of attempts succeed.
        assert!((20..=90).contains(&produced), "produced = {produced}");
    }

    #[test]
    fn state_aware_suffix_decodes_identically() {
        // If key(c1 on a) == key(c2 on b), the child gene suffix is b's
        // suffix and will decode from the same state it decoded from in b —
        // the operator's entire point. Verified structurally here: the swap
        // only happens at equal keys.
        let a = ind(vec![0.1, 0.2], vec![100, 42, 100]);
        let b = ind(vec![0.9, 0.8], vec![42, 100, 42]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            if let CrossoverOutcome::Children(c1, _c2) = crossover(&mut rng, CrossoverKind::StateAware, &a, &b, 100) {
                // any produced child is a splice at loci with equal keys
                assert!(c1.len() <= 4);
            }
        }
    }

    #[test]
    fn mixed_always_produces_children() {
        // No keys match, so every mixed attempt takes the random-cut
        // fallback — and reports it as such.
        let a = ind(vec![0.1; 4], vec![1, 2, 3, 4, 5]);
        let b = ind(vec![0.9; 4], vec![10, 20, 30, 40, 50]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert!(matches!(
                crossover(&mut rng, CrossoverKind::Mixed, &a, &b, 100),
                CrossoverOutcome::FallbackChildren(..)
            ));
        }
    }

    #[test]
    fn mixed_prefers_state_aware_cut() {
        // every locus matches (all keys equal): mixed == state-aware here,
        // and children must cut within the decoded region.
        let a = ind(vec![0.1, 0.2], vec![7, 7, 7]);
        let b = ind(vec![0.9, 0.8], vec![7, 7, 7]);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            match crossover(&mut rng, CrossoverKind::Mixed, &a, &b, 100) {
                CrossoverOutcome::Children(c1, c2) => assert_eq!(c1.len() + c2.len(), 4),
                other => panic!("state-aware cut must be found: {other:?}"),
            }
        }
    }

    #[test]
    fn two_point_preserves_flanks() {
        let a = ind(vec![0.1, 0.2, 0.3, 0.4], (0..=4).collect());
        let b = ind(vec![0.9, 0.8, 0.7, 0.6], (10..=14).collect());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            if let CrossoverOutcome::Children(c1, c2) = crossover(&mut rng, CrossoverKind::TwoPoint, &a, &b, 100) {
                assert_eq!(c1.len() + c2.len(), 8);
                // first gene of c1 is from a (or mid-swap from b if cut at 0)
                assert!(c1.genes().iter().all(|&g| (0.0..1.0).contains(&g)));
            }
        }
    }

    #[test]
    fn empty_parents_are_handled() {
        let a = ind(vec![], vec![1]);
        let b = ind(vec![0.5], vec![1, 2]);
        let mut rng = StdRng::seed_from_u64(8);
        for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
            // must not panic; state-aware can match at key 1
            let _ = crossover(&mut rng, kind, &a, &b, 100);
        }
    }

    #[test]
    fn reported_cuts_are_true_unchanged_prefixes() {
        let a = ind(vec![0.11, 0.12, 0.13, 0.14, 0.15], vec![1, 2, 7, 4, 9, 5]);
        let b = ind(vec![0.91, 0.92, 0.93, 0.94], vec![5, 7, 6, 9, 8]);
        for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
            let mut rng = StdRng::seed_from_u64(21);
            for _ in 0..100 {
                let (outcome, cuts) = crossover_with_cuts(&mut rng, kind, &a, &b, 100);
                match (outcome, cuts) {
                    (
                        CrossoverOutcome::Children(c1, c2) | CrossoverOutcome::FallbackChildren(c1, c2),
                        Some((p1, p2)),
                    ) => {
                        assert!(p1 <= c1.len() && p1 <= a.genome.len(), "{kind:?}: p1 {p1} out of range");
                        assert!(p2 <= c2.len() && p2 <= b.genome.len(), "{kind:?}: p2 {p2} out of range");
                        assert_eq!(&c1.genes()[..p1], &a.genome.genes()[..p1], "{kind:?}: child1 prefix");
                        assert_eq!(&c2.genes()[..p2], &b.genome.genes()[..p2], "{kind:?}: child2 prefix");
                    }
                    (CrossoverOutcome::Unchanged, None) => {}
                    (outcome, cuts) => panic!("{kind:?}: inconsistent report {outcome:?} / {cuts:?}"),
                }
            }
        }
    }

    #[test]
    fn crossover_and_with_cuts_share_rng_stream() {
        let a = ind(vec![0.1; 8], (0..=8).collect());
        let b = ind(vec![0.9; 5], vec![3, 1, 4, 1, 5, 9]);
        for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
            let mut r1 = StdRng::seed_from_u64(33);
            let mut r2 = StdRng::seed_from_u64(33);
            for _ in 0..50 {
                let plain = crossover(&mut r1, kind, &a, &b, 20);
                let (cut, _) = crossover_with_cuts(&mut r2, kind, &a, &b, 20);
                assert_eq!(plain, cut, "{kind:?} diverged");
            }
            // streams still aligned afterwards
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn arena_materialization_matches_genome_path() {
        let a = ind(vec![0.11, 0.12, 0.13, 0.14, 0.15], vec![1, 2, 7, 4, 9, 5]);
        let b = ind(vec![0.91, 0.92, 0.93, 0.94], vec![5, 7, 6, 9, 8]);
        for kind in [CrossoverKind::Random, CrossoverKind::StateAware, CrossoverKind::Mixed, CrossoverKind::TwoPoint] {
            let mut r1 = StdRng::seed_from_u64(17);
            let mut r2 = StdRng::seed_from_u64(17);
            for max_len in [3usize, 7, 100] {
                for _ in 0..50 {
                    let (outcome, cuts) = crossover_with_cuts(&mut r1, kind, &a, &b, max_len);
                    let plan = crossover_plan(&mut r2, kind, &a, &b);
                    assert_eq!(plan.cuts(), cuts, "{kind:?}");
                    let mut arena = PopulationArena::new();
                    plan.materialize_into(&mut arena, &a, 3, &b, 5, max_len);
                    assert_eq!(arena.len(), 2);
                    match outcome.into_children() {
                        Some((c1, c2)) => {
                            assert_eq!(arena.genes(0), c1.genes(), "{kind:?} child1 max {max_len}");
                            assert_eq!(arena.genes(1), c2.genes(), "{kind:?} child2 max {max_len}");
                            let (p1, p2) = cuts.unwrap();
                            assert_eq!(arena.prov(0), Provenance::prefix(3, p1));
                            assert_eq!(arena.prov(1), Provenance::prefix(5, p2));
                        }
                        None => {
                            assert_eq!(arena.genes(0), a.genome.genes());
                            assert_eq!(arena.genes(1), b.genome.genes());
                            assert_eq!(arena.prov(0), Provenance::full(3));
                            assert_eq!(arena.prov(1), Provenance::full(5));
                        }
                    }
                }
            }
            // plan and materialized paths consumed identical draw sequences
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn matching_cut_is_uniform_over_matches() {
        let b = ind(vec![0.5; 4], vec![7, 9, 7, 9, 7]);
        let mut rng = StdRng::seed_from_u64(12);
        let mut counts = [0usize; 5];
        for _ in 0..9000 {
            let c = matching_cut(&mut rng, 7, &b).unwrap();
            counts[c] += 1;
        }
        assert_eq!(counts[1] + counts[3], 0);
        for &i in &[0usize, 2, 4] {
            assert!((2_500..3_500).contains(&counts[i]), "counts = {counts:?}");
        }
    }
}
