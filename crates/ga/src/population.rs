//! Population initialization and (optionally parallel) evaluation.

use gaplan_core::{Domain, SuccessorCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::arena::{PopulationArena, NO_PARENT};
use crate::config::{EvalMode, GaConfig};
use crate::decode::{Decoder, PrefixHint, PrefixRef};
use crate::genome::Genome;
use crate::individual::Evaluated;

/// A genome queued for evaluation, plus the decode checkpoint of its
/// unchanged prefix (set by the breeding operators; `None` for fresh random
/// individuals, whose whole genome is new).
#[derive(Debug, Clone, Default)]
pub struct Candidate {
    /// The genome to evaluate.
    pub genome: Genome,
    /// Replayable prefix inherited from the donor parent, if any.
    pub hint: Option<PrefixHint>,
}

impl Candidate {
    /// A candidate with no reusable prefix.
    pub fn fresh(genome: Genome) -> Candidate {
        Candidate { genome, hint: None }
    }
}

/// Generate the random initial population (paper §3.2): uniform random
/// genes, lengths drawn uniformly from the spread interval around
/// `cfg.initial_len` (see `GaConfig::initial_len_spread` for why a spread
/// is essential).
pub fn init_population<R: Rng + ?Sized>(rng: &mut R, cfg: &GaConfig) -> Vec<Genome> {
    let nominal = cfg.initial_len as f64;
    let lo = ((nominal * (1.0 - cfg.initial_len_spread)).floor() as usize).max(1);
    let hi = ((nominal * (1.0 + cfg.initial_len_spread)).ceil() as usize).min(cfg.max_len).max(lo);
    (0..cfg.population_size)
        .map(|_| {
            let len = rng.gen_range(lo..=hi);
            Genome::random(rng, len)
        })
        .collect()
}

/// Evaluate a set of genomes from `start`, producing [`Evaluated`]
/// individuals in the same order.
///
/// Evaluation is a pure function of each genome, so the parallel path
/// (rayon, one [`Decoder`] per worker via `map_init`) is bitwise-identical
/// to the sequential path — parallelism changes wall-clock, never results.
pub fn evaluate_all<D: Domain>(
    domain: &D,
    start: &D::State,
    genomes: Vec<Genome>,
    cfg: &GaConfig,
) -> Vec<Evaluated<D::State>> {
    evaluate_candidates(domain, start, genomes.into_iter().map(Candidate::fresh).collect(), cfg, None)
}

/// [`evaluate_all`] through the shared evaluation layer: candidates carry
/// prefix-reuse hints, and all workers probe one shared [`SuccessorCache`].
/// Cache and hints are pure optimizations — results are bitwise-identical to
/// the plain path (and between serial and parallel modes).
pub fn evaluate_candidates<D: Domain>(
    domain: &D,
    start: &D::State,
    candidates: Vec<Candidate>,
    cfg: &GaConfig,
    cache: Option<&SuccessorCache<D::State>>,
) -> Vec<Evaluated<D::State>> {
    if cfg.eval == EvalMode::Parallel {
        candidates
            .into_par_iter()
            .map_init(Decoder::new, |dec, cand| {
                let (decoded, fitness) = dec.evaluate_with(domain, start, &cand.genome, cfg, cache, cand.hint.as_ref());
                Evaluated::new(cand.genome, decoded, fitness)
            })
            .collect()
    } else {
        let mut dec = Decoder::new();
        candidates
            .into_iter()
            .map(|cand| {
                let (decoded, fitness) = dec.evaluate_with(domain, start, &cand.genome, cfg, cache, cand.hint.as_ref());
                Evaluated::new(cand.genome, decoded, fitness)
            })
            .collect()
    }
}

/// Evaluate an arena-backed generation: each individual's genes live in the
/// shared flat buffer, and its provenance is resolved to a *borrowed* prefix
/// hint against `parents` (the previous, already-evaluated generation) — no
/// per-individual hint allocation. Results are bitwise-identical to
/// [`evaluate_candidates`] over equivalent candidates, in both eval modes.
pub fn evaluate_arena<D: Domain>(
    domain: &D,
    start: &D::State,
    arena: &PopulationArena,
    parents: &[Evaluated<D::State>],
    cfg: &GaConfig,
    cache: Option<&SuccessorCache<D::State>>,
) -> Vec<Evaluated<D::State>> {
    let eval_one = |dec: &mut Decoder, i: usize| {
        let genes = arena.genes(i);
        let prov = arena.prov(i);
        let hint = if prov.parent == NO_PARENT {
            None
        } else {
            let donor = &parents[prov.parent as usize];
            Some(PrefixRef::new(&donor.ops, &donor.match_keys, &donor.step_goals, prov.prefix as usize))
        };
        let (decoded, fitness) = dec.evaluate_ref(domain, start, genes, cfg, cache, hint);
        Evaluated::new(Genome::from_genes(genes.to_vec()), decoded, fitness)
    };
    if cfg.eval == EvalMode::Parallel {
        (0..arena.len()).into_par_iter().map_init(Decoder::new, |dec, i| eval_one(dec, i)).collect()
    } else {
        let mut dec = Decoder::new();
        (0..arena.len()).map(|i| eval_one(&mut dec, i)).collect()
    }
}

/// Deterministic RNG for a phase, derived from the config seed and phase
/// index.
pub fn phase_rng(cfg: &GaConfig, phase: u32) -> StdRng {
    StdRng::seed_from_u64(crate::rng::derive_seed(cfg.seed, u64::from(phase)))
}

/// Deterministic RNG for one island of a phase. With a single island this is
/// exactly [`phase_rng`] — the island-model run is byte-identical to the
/// historical single-population path. With `K > 1` islands, each island gets
/// an independent stream split off the phase seed (`derive_seed(phase_seed,
/// island + 1)`; the `+ 1` keeps island 0 distinct from the phase stream
/// itself, so no island aliases the K=1 run).
pub fn island_rng(cfg: &GaConfig, phase: u32, island: u32) -> StdRng {
    if cfg.islands <= 1 {
        phase_rng(cfg, phase)
    } else {
        let phase_seed = crate::rng::derive_seed(cfg.seed, u64::from(phase));
        StdRng::seed_from_u64(crate::rng::derive_seed(phase_seed, u64::from(island) + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::strips::{StripsBuilder, StripsProblem};

    fn chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 0..n {
            b.op(&format!("step{i}"), &[&format!("s{i}")], &[&format!("s{}", i + 1)], &[&format!("s{i}")], 1.0)
                .unwrap();
        }
        b.init(&["s0"]).unwrap();
        b.goal(&[&format!("s{n}")]).unwrap();
        b.build().unwrap()
    }

    fn small_cfg() -> GaConfig {
        GaConfig { population_size: 30, initial_len: 8, max_len: 16, seed: 99, ..GaConfig::default() }
    }

    #[test]
    fn init_population_lengths_follow_spread() {
        let cfg = small_cfg(); // initial_len 8, spread 0.5 -> lengths in [4, 12]
        let mut rng = phase_rng(&cfg, 0);
        let pop = init_population(&mut rng, &cfg);
        assert_eq!(pop.len(), 30);
        assert!(pop.iter().all(|g| (4..=12).contains(&g.len())), "lengths out of range");
        // both parities must be present (the tile-puzzle parity trap)
        assert!(pop.iter().any(|g| g.len() % 2 == 0));
        assert!(pop.iter().any(|g| g.len() % 2 == 1));
        // not all identical
        assert!(pop.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn zero_spread_gives_fixed_lengths() {
        let mut cfg = small_cfg();
        cfg.initial_len_spread = 0.0;
        let mut rng = phase_rng(&cfg, 0);
        let pop = init_population(&mut rng, &cfg);
        assert!(pop.iter().all(|g| g.len() == 8));
    }

    #[test]
    fn spread_respects_max_len() {
        let mut cfg = small_cfg();
        cfg.initial_len = 16;
        cfg.max_len = 16; // upper end of the spread would be 24
        let mut rng = phase_rng(&cfg, 0);
        let pop = init_population(&mut rng, &cfg);
        assert!(pop.iter().all(|g| g.len() <= 16));
    }

    #[test]
    fn parallel_and_sequential_evaluation_agree() {
        let d = chain(6);
        let mut cfg = small_cfg();
        let mut rng = phase_rng(&cfg, 0);
        let pop = init_population(&mut rng, &cfg);

        cfg.eval = EvalMode::Parallel;
        let par = evaluate_all(&d, &d.initial_state(), pop.clone(), &cfg);
        cfg.eval = EvalMode::Serial;
        let seq = evaluate_all(&d, &d.initial_state(), pop, &cfg);

        assert_eq!(par.len(), seq.len());
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.genome, s.genome);
            assert_eq!(p.ops, s.ops);
            assert_eq!(p.fitness.total, s.fitness.total);
            assert_eq!(p.final_state, s.final_state);
        }
    }

    #[test]
    fn shared_cache_changes_nothing_serial_or_parallel() {
        use gaplan_core::SuccessorCache;
        let d = chain(6);
        let mut cfg = small_cfg();
        let mut rng = phase_rng(&cfg, 0);
        let pop = init_population(&mut rng, &cfg);
        let plain = evaluate_all(&d, &d.initial_state(), pop.clone(), &cfg);

        let cache = SuccessorCache::new(1024);
        for eval in [EvalMode::Serial, EvalMode::Parallel] {
            cfg.eval = eval;
            let cands: Vec<Candidate> = pop.iter().cloned().map(Candidate::fresh).collect();
            let cached = evaluate_candidates(&d, &d.initial_state(), cands, &cfg, Some(&cache));
            for (p, c) in plain.iter().zip(&cached) {
                assert_eq!(p.genome, c.genome);
                assert_eq!(p.ops, c.ops);
                assert_eq!(p.match_keys, c.match_keys);
                assert_eq!(p.fitness.total.to_bits(), c.fitness.total.to_bits());
                assert_eq!(p.final_state, c.final_state);
            }
        }
        assert!(cache.stats().hits > 0, "populations share states; the cache must hit");
    }

    #[test]
    fn evaluation_preserves_order() {
        let d = chain(3);
        let cfg = small_cfg();
        let genomes =
            vec![Genome::from_genes(vec![0.1]), Genome::from_genes(vec![0.2, 0.3]), Genome::from_genes(vec![])];
        let evald = evaluate_all(&d, &d.initial_state(), genomes.clone(), &cfg);
        for (g, e) in genomes.iter().zip(&evald) {
            assert_eq!(g, &e.genome);
        }
    }

    #[test]
    fn phase_rng_streams_are_independent() {
        let cfg = small_cfg();
        let a: Vec<u64> = {
            let mut r = phase_rng(&cfg, 0);
            (0..4).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = phase_rng(&cfg, 1);
            (0..4).map(|_| r.gen()).collect()
        };
        assert_ne!(a, b);
        let a2: Vec<u64> = {
            let mut r = phase_rng(&cfg, 0);
            (0..4).map(|_| r.gen()).collect()
        };
        assert_eq!(a, a2);
    }
}
