//! Mutation (paper §3.4.3): "Every gene has equal probability of being
//! mutated. In every mutation, a new randomly generated floating point
//! number replaces the old one." Plus an optional insertion/deletion length
//! mutation as an extension (disabled by default).

use rand::Rng;

use crate::genome::Genome;

/// Apply per-gene replacement mutation with probability `rate` per gene.
///
/// Returns the first modified locus, if any gene changed — the caller uses
/// it to truncate the individual's prefix-reuse checkpoint (genes before the
/// first flipped locus still decode identically).
pub fn mutate<R: Rng + ?Sized>(rng: &mut R, genome: &mut Genome, rate: f64) -> Option<usize> {
    mutate_slice(rng, genome.genes_mut(), rate)
}

/// [`mutate`] over a raw gene slice — the arena-backed engine path, where
/// genomes are windows of one contiguous buffer rather than `Genome`s.
/// Identical draw sequence and semantics.
pub fn mutate_slice<R: Rng + ?Sized>(rng: &mut R, genes: &mut [f64], rate: f64) -> Option<usize> {
    if rate <= 0.0 {
        return None;
    }
    let mut first_changed = None;
    for (i, g) in genes.iter_mut().enumerate() {
        if rng.gen::<f64>() < rate {
            *g = rng.gen::<f64>();
            if first_changed.is_none() {
                first_changed = Some(i);
            }
        }
    }
    first_changed
}

/// A planned length mutation: the edit [`length_mutate_plan`] decided on,
/// to be applied by the caller (to a `Genome` or an arena individual).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LengthEdit {
    /// Insert gene value `v` at locus `at`.
    Insert {
        /// Insertion locus.
        at: usize,
        /// The new gene value.
        v: f64,
    },
    /// Remove the gene at locus `at`.
    Remove {
        /// Removal locus.
        at: usize,
    },
}

impl LengthEdit {
    /// The first modified locus (everything from there on shifts).
    pub fn at(&self) -> usize {
        match *self {
            LengthEdit::Insert { at, .. } | LengthEdit::Remove { at } => at,
        }
    }
}

/// Draw the RNG decisions for one length mutation of a genome of `len`
/// genes, without applying it. Consumes exactly the draws [`length_mutate`]
/// consumes.
pub fn length_mutate_plan<R: Rng + ?Sized>(rng: &mut R, len: usize, rate: f64, max_len: usize) -> Option<LengthEdit> {
    if rate <= 0.0 || rng.gen::<f64>() >= rate {
        return None;
    }
    let insert = len < max_len && (len <= 1 || rng.gen::<bool>());
    if insert {
        let at = rng.gen_range(0..=len);
        let v = rng.gen::<f64>();
        Some(LengthEdit::Insert { at, v })
    } else if len > 1 {
        let at = rng.gen_range(0..len);
        Some(LengthEdit::Remove { at })
    } else {
        None
    }
}

/// Extension: with probability `rate`, insert a random gene at a random
/// locus or delete a random gene (50/50), respecting `max_len` and never
/// deleting the last gene of a single-gene individual.
///
/// Returns the first modified locus (the insertion/deletion point: every
/// gene from there on shifted), if the genome changed.
pub fn length_mutate<R: Rng + ?Sized>(rng: &mut R, genome: &mut Genome, rate: f64, max_len: usize) -> Option<usize> {
    let edit = length_mutate_plan(rng, genome.len(), rate, max_len)?;
    let genes = genome.genes_mut();
    match edit {
        LengthEdit::Insert { at, v } => genes.insert(at, v),
        LengthEdit::Remove { at } => {
            genes.remove(at);
        }
    }
    Some(edit.at())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Genome::from_genes(vec![0.25; 100]);
        mutate(&mut rng, &mut g, 0.0);
        assert!(g.genes().iter().all(|&x| x == 0.25));
    }

    #[test]
    fn rate_one_replaces_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Genome::from_genes(vec![0.25; 100]);
        mutate(&mut rng, &mut g, 1.0);
        // probability of any survivor is (1/2^52)-ish
        assert!(g.genes().iter().all(|&x| x != 0.25));
        assert!(g.genes().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn mutation_rate_is_respected_statistically() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut changed = 0usize;
        const N: usize = 100_000;
        let mut g = Genome::from_genes(vec![0.25; N]);
        mutate(&mut rng, &mut g, 0.01);
        for &x in g.genes() {
            if x != 0.25 {
                changed += 1;
            }
        }
        // expect ~1000; loose 5-sigma bounds
        assert!((800..1200).contains(&changed), "changed = {changed}");
    }

    #[test]
    fn mutation_preserves_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = Genome::from_genes(vec![0.5; 37]);
        mutate(&mut rng, &mut g, 0.5);
        assert_eq!(g.len(), 37);
    }

    #[test]
    fn length_mutation_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = Genome::from_genes(vec![0.5; 4]);
        for _ in 0..1000 {
            length_mutate(&mut rng, &mut g, 1.0, 6);
            assert!((1..=6).contains(&g.len()), "len = {}", g.len());
        }
    }

    #[test]
    fn length_mutation_never_empties_genome() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = Genome::from_genes(vec![0.5]);
        for _ in 0..100 {
            length_mutate(&mut rng, &mut g, 1.0, 1);
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn length_mutation_zero_rate_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = Genome::from_genes(vec![0.5; 3]);
        length_mutate(&mut rng, &mut g, 0.0, 10);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn mutate_reports_first_changed_locus() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let mut g = Genome::from_genes(vec![0.25; 50]);
            match mutate(&mut rng, &mut g, 0.1) {
                Some(first) => {
                    let changed: Vec<usize> =
                        g.genes().iter().enumerate().filter(|(_, &x)| x != 0.25).map(|(i, _)| i).collect();
                    assert_eq!(changed.first(), Some(&first));
                }
                None => assert!(g.genes().iter().all(|&x| x == 0.25)),
            }
        }
        // unchanged genomes report None
        let mut g = Genome::from_genes(vec![0.25; 5]);
        assert_eq!(mutate(&mut rng, &mut g, 0.0), None);
    }

    #[test]
    fn slice_mutation_matches_genome_mutation() {
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let mut g = Genome::from_genes(vec![0.25; 17]);
            let mut flat = vec![0.25f64; 17];
            let a = mutate(&mut r1, &mut g, 0.2);
            let b = mutate_slice(&mut r2, &mut flat, 0.2);
            assert_eq!(a, b);
            assert_eq!(g.genes(), &flat[..]);
        }
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn length_plan_matches_applied_mutation() {
        let mut r1 = StdRng::seed_from_u64(12);
        let mut r2 = StdRng::seed_from_u64(12);
        for len in [1usize, 2, 5, 8] {
            for _ in 0..200 {
                let mut g = Genome::from_genes(vec![0.25; len]);
                let applied = length_mutate(&mut r1, &mut g, 0.7, 8);
                let plan = length_mutate_plan(&mut r2, len, 0.7, 8);
                assert_eq!(applied, plan.map(|e| e.at()));
                match plan {
                    Some(LengthEdit::Insert { .. }) => assert_eq!(g.len(), len + 1),
                    Some(LengthEdit::Remove { .. }) => assert_eq!(g.len(), len - 1),
                    None => assert_eq!(g.len(), len),
                }
            }
        }
        assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn length_mutate_reports_change_point() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let mut g = Genome::from_genes(vec![0.25; 6]);
            let before = g.genes().to_vec();
            match length_mutate(&mut rng, &mut g, 1.0, 8) {
                Some(at) => {
                    // genes before `at` are untouched
                    assert!(at <= before.len());
                    assert_eq!(&g.genes()[..at], &before[..at]);
                }
                None => assert_eq!(g.genes(), &before[..]),
            }
        }
    }
}
