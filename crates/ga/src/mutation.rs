//! Mutation (paper §3.4.3): "Every gene has equal probability of being
//! mutated. In every mutation, a new randomly generated floating point
//! number replaces the old one." Plus an optional insertion/deletion length
//! mutation as an extension (disabled by default).

use rand::Rng;

use crate::genome::Genome;

/// Apply per-gene replacement mutation with probability `rate` per gene.
pub fn mutate<R: Rng + ?Sized>(rng: &mut R, genome: &mut Genome, rate: f64) {
    if rate <= 0.0 {
        return;
    }
    for g in genome.genes_mut() {
        if rng.gen::<f64>() < rate {
            *g = rng.gen::<f64>();
        }
    }
}

/// Extension: with probability `rate`, insert a random gene at a random
/// locus or delete a random gene (50/50), respecting `max_len` and never
/// deleting the last gene of a single-gene individual.
pub fn length_mutate<R: Rng + ?Sized>(rng: &mut R, genome: &mut Genome, rate: f64, max_len: usize) {
    if rate <= 0.0 || rng.gen::<f64>() >= rate {
        return;
    }
    let genes = genome.genes_mut();
    let insert = genes.len() < max_len && (genes.len() <= 1 || rng.gen::<bool>());
    if insert {
        let at = rng.gen_range(0..=genes.len());
        let v = rng.gen::<f64>();
        genes.insert(at, v);
    } else if genes.len() > 1 {
        let at = rng.gen_range(0..genes.len());
        genes.remove(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Genome::from_genes(vec![0.25; 100]);
        mutate(&mut rng, &mut g, 0.0);
        assert!(g.genes().iter().all(|&x| x == 0.25));
    }

    #[test]
    fn rate_one_replaces_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Genome::from_genes(vec![0.25; 100]);
        mutate(&mut rng, &mut g, 1.0);
        // probability of any survivor is (1/2^52)-ish
        assert!(g.genes().iter().all(|&x| x != 0.25));
        assert!(g.genes().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn mutation_rate_is_respected_statistically() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut changed = 0usize;
        const N: usize = 100_000;
        let mut g = Genome::from_genes(vec![0.25; N]);
        mutate(&mut rng, &mut g, 0.01);
        for &x in g.genes() {
            if x != 0.25 {
                changed += 1;
            }
        }
        // expect ~1000; loose 5-sigma bounds
        assert!((800..1200).contains(&changed), "changed = {changed}");
    }

    #[test]
    fn mutation_preserves_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = Genome::from_genes(vec![0.5; 37]);
        mutate(&mut rng, &mut g, 0.5);
        assert_eq!(g.len(), 37);
    }

    #[test]
    fn length_mutation_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = Genome::from_genes(vec![0.5; 4]);
        for _ in 0..1000 {
            length_mutate(&mut rng, &mut g, 1.0, 6);
            assert!((1..=6).contains(&g.len()), "len = {}", g.len());
        }
    }

    #[test]
    fn length_mutation_never_empties_genome() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = Genome::from_genes(vec![0.5]);
        for _ in 0..100 {
            length_mutate(&mut rng, &mut g, 1.0, 1);
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn length_mutation_zero_rate_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = Genome::from_genes(vec![0.5; 3]);
        length_mutate(&mut rng, &mut g, 0.0, 10);
        assert_eq!(g.len(), 3);
    }
}
