//! Mutation (paper §3.4.3): "Every gene has equal probability of being
//! mutated. In every mutation, a new randomly generated floating point
//! number replaces the old one." Plus an optional insertion/deletion length
//! mutation as an extension (disabled by default).

use rand::Rng;

use crate::genome::Genome;

/// Apply per-gene replacement mutation with probability `rate` per gene.
///
/// Returns the first modified locus, if any gene changed — the caller uses
/// it to truncate the individual's prefix-reuse checkpoint (genes before the
/// first flipped locus still decode identically).
pub fn mutate<R: Rng + ?Sized>(rng: &mut R, genome: &mut Genome, rate: f64) -> Option<usize> {
    if rate <= 0.0 {
        return None;
    }
    let mut first_changed = None;
    for (i, g) in genome.genes_mut().iter_mut().enumerate() {
        if rng.gen::<f64>() < rate {
            *g = rng.gen::<f64>();
            if first_changed.is_none() {
                first_changed = Some(i);
            }
        }
    }
    first_changed
}

/// Extension: with probability `rate`, insert a random gene at a random
/// locus or delete a random gene (50/50), respecting `max_len` and never
/// deleting the last gene of a single-gene individual.
///
/// Returns the first modified locus (the insertion/deletion point: every
/// gene from there on shifted), if the genome changed.
pub fn length_mutate<R: Rng + ?Sized>(rng: &mut R, genome: &mut Genome, rate: f64, max_len: usize) -> Option<usize> {
    if rate <= 0.0 || rng.gen::<f64>() >= rate {
        return None;
    }
    let genes = genome.genes_mut();
    let insert = genes.len() < max_len && (genes.len() <= 1 || rng.gen::<bool>());
    if insert {
        let at = rng.gen_range(0..=genes.len());
        let v = rng.gen::<f64>();
        genes.insert(at, v);
        Some(at)
    } else if genes.len() > 1 {
        let at = rng.gen_range(0..genes.len());
        genes.remove(at);
        Some(at)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Genome::from_genes(vec![0.25; 100]);
        mutate(&mut rng, &mut g, 0.0);
        assert!(g.genes().iter().all(|&x| x == 0.25));
    }

    #[test]
    fn rate_one_replaces_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Genome::from_genes(vec![0.25; 100]);
        mutate(&mut rng, &mut g, 1.0);
        // probability of any survivor is (1/2^52)-ish
        assert!(g.genes().iter().all(|&x| x != 0.25));
        assert!(g.genes().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn mutation_rate_is_respected_statistically() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut changed = 0usize;
        const N: usize = 100_000;
        let mut g = Genome::from_genes(vec![0.25; N]);
        mutate(&mut rng, &mut g, 0.01);
        for &x in g.genes() {
            if x != 0.25 {
                changed += 1;
            }
        }
        // expect ~1000; loose 5-sigma bounds
        assert!((800..1200).contains(&changed), "changed = {changed}");
    }

    #[test]
    fn mutation_preserves_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = Genome::from_genes(vec![0.5; 37]);
        mutate(&mut rng, &mut g, 0.5);
        assert_eq!(g.len(), 37);
    }

    #[test]
    fn length_mutation_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = Genome::from_genes(vec![0.5; 4]);
        for _ in 0..1000 {
            length_mutate(&mut rng, &mut g, 1.0, 6);
            assert!((1..=6).contains(&g.len()), "len = {}", g.len());
        }
    }

    #[test]
    fn length_mutation_never_empties_genome() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = Genome::from_genes(vec![0.5]);
        for _ in 0..100 {
            length_mutate(&mut rng, &mut g, 1.0, 1);
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn length_mutation_zero_rate_is_identity() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = Genome::from_genes(vec![0.5; 3]);
        length_mutate(&mut rng, &mut g, 0.0, 10);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn mutate_reports_first_changed_locus() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let mut g = Genome::from_genes(vec![0.25; 50]);
            match mutate(&mut rng, &mut g, 0.1) {
                Some(first) => {
                    let changed: Vec<usize> =
                        g.genes().iter().enumerate().filter(|(_, &x)| x != 0.25).map(|(i, _)| i).collect();
                    assert_eq!(changed.first(), Some(&first));
                }
                None => assert!(g.genes().iter().all(|&x| x == 0.25)),
            }
        }
        // unchanged genomes report None
        let mut g = Genome::from_genes(vec![0.25; 5]);
        assert_eq!(mutate(&mut rng, &mut g, 0.0), None);
    }

    #[test]
    fn length_mutate_reports_change_point() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let mut g = Genome::from_genes(vec![0.25; 6]);
            let before = g.genes().to_vec();
            match length_mutate(&mut rng, &mut g, 1.0, 8) {
                Some(at) => {
                    // genes before `at` are untouched
                    assert!(at <= before.len());
                    assert_eq!(&g.genes()[..at], &before[..at]);
                }
                None => assert_eq!(g.genes(), &before[..]),
            }
        }
    }
}
