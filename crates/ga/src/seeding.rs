//! Population seeding strategies, after Westerberg & Levine (the paper's
//! ref. [22]): "Seeding partial solutions and keeping some randomness in
//! the initial population appear to benefit GP performance."
//!
//! A seeding strategy replaces a fraction of the random initial population
//! with individuals re-encoded (via [`crate::encode::encode_plan`]) from
//! plans produced by a cheap heuristic:
//!
//! * [`SeedStrategy::GreedyWalk`] — from the start state, repeatedly take
//!   the valid operation whose successor has the highest goal fitness
//!   (ties random); stop at the goal or after `len` steps. The GA then
//!   repairs/extends these greedy skeletons.
//! * [`SeedStrategy::BiasedWalk`] — a random walk that prefers improving
//!   moves with probability `bias` (a softer greedy — retains diversity).
//! * [`SeedStrategy::Plans`] — seed explicit plans (e.g. a previous
//!   solution for a *similar* problem: the plan-reuse setting of §2; or a
//!   baseline planner's output).

use gaplan_core::{Domain, OpId};
use rand::Rng;

use crate::config::GaConfig;
use crate::encode::encode_plan;
use crate::genome::Genome;
use crate::population::init_population;

/// How seed individuals are generated.
#[derive(Debug, Clone)]
pub enum SeedStrategy {
    /// Greedy goal-fitness walks of at most `initial_len` steps.
    GreedyWalk,
    /// Random walks preferring improving moves with the given probability.
    BiasedWalk {
        /// Probability of taking the best successor instead of a uniform one.
        bias: f64,
    },
    /// Explicit plans to re-encode (invalid plans are skipped).
    Plans(Vec<Vec<OpId>>),
}

/// Build an initial population with `seed_fraction` of the individuals
/// produced by `strategy` and the rest random (ref. [22]'s "keeping some
/// randomness" finding). Always returns exactly `cfg.population_size`
/// genomes.
pub fn seeded_population<D: Domain, R: Rng + ?Sized>(
    domain: &D,
    start: &D::State,
    cfg: &GaConfig,
    strategy: &SeedStrategy,
    seed_fraction: f64,
    rng: &mut R,
) -> Vec<Genome> {
    assert!((0.0..=1.0).contains(&seed_fraction), "seed_fraction in [0,1]");
    let mut population = init_population(rng, cfg);
    let n_seeds = ((cfg.population_size as f64) * seed_fraction).round() as usize;
    let mut produced = 0usize;
    let mut attempts = 0usize;
    while produced < n_seeds && attempts < n_seeds * 4 {
        attempts += 1;
        let genome = match strategy {
            SeedStrategy::GreedyWalk => walk_genome(domain, start, cfg.initial_len, 1.0, rng),
            SeedStrategy::BiasedWalk { bias } => walk_genome(domain, start, cfg.initial_len, *bias, rng),
            SeedStrategy::Plans(plans) => {
                if plans.is_empty() {
                    break;
                }
                let plan = &plans[produced % plans.len()];
                match encode_plan(domain, start, plan) {
                    Ok(mut g) => {
                        g.truncate(cfg.max_len);
                        Some(g)
                    }
                    Err(_) => None,
                }
            }
        };
        if let Some(genome) = genome {
            population[produced] = genome;
            produced += 1;
        }
    }
    population
}

/// A (possibly biased) goal-fitness-improving walk, re-encoded as a genome.
fn walk_genome<D: Domain, R: Rng + ?Sized>(
    domain: &D,
    start: &D::State,
    len: usize,
    bias: f64,
    rng: &mut R,
) -> Option<Genome> {
    let mut state = start.clone();
    let mut ops = Vec::with_capacity(len);
    let mut valid = Vec::new();
    for _ in 0..len {
        if domain.is_goal(&state) {
            break;
        }
        valid.clear();
        domain.valid_operations(&state, &mut valid);
        if valid.is_empty() {
            break;
        }
        let op = if rng.gen::<f64>() < bias {
            // best successor by goal fitness, ties broken uniformly
            let mut best_score = f64::NEG_INFINITY;
            let mut best_ops: Vec<OpId> = Vec::new();
            for &o in &valid {
                let f = domain.goal_fitness(&domain.apply(&state, o));
                if f > best_score + 1e-12 {
                    best_score = f;
                    best_ops.clear();
                    best_ops.push(o);
                } else if (f - best_score).abs() <= 1e-12 {
                    best_ops.push(o);
                }
            }
            best_ops[rng.gen_range(0..best_ops.len())]
        } else {
            valid[rng.gen_range(0..valid.len())]
        };
        state = domain.apply(&state, op);
        ops.push(op);
    }
    encode_plan(domain, start, &ops).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StateMatchMode;
    use crate::decode::Decoder;
    use gaplan_core::strips::{StripsBuilder, StripsProblem};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graded_chain(n: usize) -> StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..=n {
            b.condition(&format!("s{i}")).unwrap();
        }
        for i in 1..=n {
            b.condition(&format!("r{i}")).unwrap();
        }
        for i in 0..n {
            b.op(
                &format!("fwd{i}"),
                &[&format!("s{i}")],
                &[&format!("s{}", i + 1), &format!("r{}", i + 1)],
                &[&format!("s{i}")],
                1.0,
            )
            .unwrap();
        }
        for i in 1..=n {
            b.op(&format!("bwd{i}"), &[&format!("s{i}")], &[&format!("s{}", i - 1)], &[&format!("s{i}")], 1.0).unwrap();
        }
        b.init(&["s0"]).unwrap();
        let goal: Vec<String> = (1..=n).map(|i| format!("r{i}")).collect();
        let refs: Vec<&str> = goal.iter().map(String::as_str).collect();
        b.goal(&refs).unwrap();
        b.build().unwrap()
    }

    fn cfg() -> GaConfig {
        GaConfig { population_size: 20, initial_len: 8, max_len: 16, seed: 4, ..GaConfig::default() }
    }

    #[test]
    fn greedy_seeds_decode_to_goalward_plans() {
        let d = graded_chain(6);
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(3);
        let pop = seeded_population(&d, &d.initial_state(), &c, &SeedStrategy::GreedyWalk, 0.5, &mut rng);
        assert_eq!(pop.len(), 20);
        // the first 10 slots hold seeds; greedy walks on the graded chain go
        // straight forward, so they decode to high-fitness states
        let mut dec = Decoder::new();
        let seeded = dec.decode(&d, &d.initial_state(), &pop[0], false, StateMatchMode::ExactState);
        let fit = gaplan_core::Domain::goal_fitness(&d, &seeded.final_state);
        assert!(fit >= 0.9, "greedy seed reached fitness {fit}");
    }

    #[test]
    fn plan_seeds_roundtrip() {
        let d = graded_chain(4);
        let c = cfg();
        // explicit optimal plan: fwd0..fwd3 = op ids 0..4
        let plan: Vec<OpId> = (0..4).map(|i| OpId(i as u32)).collect();
        let mut rng = StdRng::seed_from_u64(5);
        let pop =
            seeded_population(&d, &d.initial_state(), &c, &SeedStrategy::Plans(vec![plan.clone()]), 0.3, &mut rng);
        let mut dec = Decoder::new();
        let decoded = dec.decode(&d, &d.initial_state(), &pop[0], false, StateMatchMode::ExactState);
        assert_eq!(decoded.ops, plan);
    }

    #[test]
    fn invalid_plan_seeds_are_skipped() {
        let d = graded_chain(3);
        let c = cfg();
        let bad: Vec<OpId> = vec![OpId(5)]; // bwd3 invalid at start
        let mut rng = StdRng::seed_from_u64(6);
        let pop = seeded_population(&d, &d.initial_state(), &c, &SeedStrategy::Plans(vec![bad]), 0.5, &mut rng);
        // population still full-size, all random
        assert_eq!(pop.len(), 20);
    }

    #[test]
    fn zero_fraction_is_pure_random() {
        let d = graded_chain(3);
        let c = cfg();
        let mut rng_a = StdRng::seed_from_u64(7);
        let seeded = seeded_population(&d, &d.initial_state(), &c, &SeedStrategy::GreedyWalk, 0.0, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(7);
        let random = init_population(&mut rng_b, &c);
        assert_eq!(seeded.len(), random.len());
        assert_eq!(seeded[0], random[0]);
    }

    #[test]
    fn biased_walk_interpolates() {
        let d = graded_chain(8);
        let c = cfg();
        let mut rng = StdRng::seed_from_u64(8);
        let pop = seeded_population(&d, &d.initial_state(), &c, &SeedStrategy::BiasedWalk { bias: 0.8 }, 1.0, &mut rng);
        assert_eq!(pop.len(), 20);
        // seeds should on average beat pure random walks in goal fitness
        let mut dec = Decoder::new();
        let avg_seeded: f64 = pop
            .iter()
            .map(|g| {
                let r = dec.decode(&d, &d.initial_state(), g, false, StateMatchMode::ExactState);
                gaplan_core::Domain::goal_fitness(&d, &r.final_state)
            })
            .sum::<f64>()
            / pop.len() as f64;
        let mut rng2 = StdRng::seed_from_u64(9);
        let random = init_population(&mut rng2, &c);
        let avg_random: f64 = random
            .iter()
            .map(|g| {
                let r = dec.decode(&d, &d.initial_state(), g, false, StateMatchMode::ExactState);
                gaplan_core::Domain::goal_fitness(&d, &r.final_state)
            })
            .sum::<f64>()
            / random.len() as f64;
        assert!(avg_seeded > avg_random, "seeded {avg_seeded} vs random {avg_random}");
    }

    #[test]
    #[should_panic(expected = "seed_fraction")]
    fn bad_fraction_panics() {
        let d = graded_chain(3);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = seeded_population(&d, &d.initial_state(), &cfg(), &SeedStrategy::GreedyWalk, 1.5, &mut rng);
    }
}
