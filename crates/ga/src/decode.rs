//! Indirect genome decoding (paper §3.1).
//!
//! Each gene is a float `g ∈ [0, 1)`. If the state reached so far has `k`
//! valid operations, the gene maps to the operation at index `⌊g·k⌋` of the
//! domain's deterministic valid-operation ordering. The paper's example:
//! with four valid operations `o1..o4`, `[0, 0.25) → o1`, `[0.25, 0.5) → o2`
//! and so on. Decoding therefore *cannot* produce an invalid operation, and
//! the match fitness (Eq. 1) is identically 1.

use gaplan_core::{Domain, OpId};

use crate::config::{GoalEval, StateMatchMode};
use crate::genome::Genome;
use crate::Fitness;

/// The result of decoding a genome from a start state.
#[derive(Debug, Clone)]
pub struct Decoded<S> {
    /// The decoded operation sequence (all valid by construction).
    pub ops: Vec<OpId>,
    /// Per-locus match keys: `match_keys[i]` identifies the decode state
    /// *before* gene `i`; the final entry identifies the final state. Used
    /// by state-aware crossover (two loci match iff their keys are equal).
    pub match_keys: Vec<u64>,
    /// The state after applying every decoded operation.
    pub final_state: S,
    /// Total cost of the decoded operations.
    pub cost: f64,
    /// Number of genes actually decoded. Less than the genome length when
    /// decoding stopped early (goal truncation or a dead-end state with no
    /// valid operations).
    pub decoded_len: usize,
    /// Whether some decoded prefix (or the final state) satisfies the goal.
    pub reached_goal: bool,
    /// Highest goal fitness over all states visited (including start and
    /// final), used by `GoalEval::BestPrefix`.
    pub best_prefix_goal: f64,
    /// Number of operations of the prefix achieving `best_prefix_goal`.
    pub best_prefix_at: usize,
    /// The state reached by that prefix (used for phase chaining under
    /// `GoalEval::BestPrefix`).
    pub best_prefix_state: S,
}

/// A reusable decoder. Holds the scratch buffer for valid-operation lists so
/// per-individual decoding allocates only the output vectors; rayon workers
/// each keep their own `Decoder` (`map_init`).
#[derive(Debug, Default, Clone)]
pub struct Decoder {
    scratch: Vec<OpId>,
}

/// Map one gene to an index into a `k`-element valid-operation list.
#[inline]
pub fn gene_to_index(gene: f64, k: usize) -> usize {
    debug_assert!(k > 0);
    // genes live in [0,1) so gene*k < k, but guard against accumulated
    // floating error at the boundary anyway.
    ((gene * k as f64) as usize).min(k - 1)
}

impl Decoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Decode `genome` against `domain`, starting from `start`.
    ///
    /// * `truncate_at_goal`: stop decoding at the first goal state reached
    ///   (see `GaConfig::truncate_at_goal` for the fidelity discussion).
    /// * `match_mode`: what the per-locus match keys identify (full state
    ///   signature, or the valid-op multiset of the state).
    pub fn decode<D: Domain>(
        &mut self,
        domain: &D,
        start: &D::State,
        genome: &Genome,
        truncate_at_goal: bool,
        match_mode: StateMatchMode,
    ) -> Decoded<D::State> {
        let genes = genome.genes();
        let mut ops = Vec::with_capacity(genes.len());
        let mut match_keys = Vec::with_capacity(genes.len() + 1);
        let mut state = start.clone();
        let mut cost = 0.0;
        let mut best_prefix_goal = domain.goal_fitness(&state);
        let mut best_prefix_at = 0usize;
        let mut best_prefix_state = state.clone();
        let mut reached_goal = best_prefix_goal >= 1.0;

        for &gene in genes {
            if truncate_at_goal && reached_goal {
                break;
            }
            self.scratch.clear();
            domain.valid_operations(&state, &mut self.scratch);
            if self.scratch.is_empty() {
                // dead-end state: the paper's domains always have valid
                // operations, but STRIPS/grid domains may not. Remaining
                // genes are ignored.
                break;
            }
            match_keys.push(self.match_key(domain, &state, match_mode));
            let op = self.scratch[gene_to_index(gene, self.scratch.len())];
            cost += domain.op_cost(op);
            state = domain.apply(&state, op);
            ops.push(op);
            let g = domain.goal_fitness(&state);
            if g > best_prefix_goal {
                best_prefix_goal = g;
                best_prefix_at = ops.len();
                best_prefix_state = state.clone();
            }
            if !reached_goal && g >= 1.0 {
                reached_goal = true;
            }
        }
        match_keys.push(self.match_key(domain, &state, match_mode));

        Decoded {
            decoded_len: ops.len(),
            ops,
            match_keys,
            final_state: state,
            cost,
            reached_goal,
            best_prefix_goal,
            best_prefix_at,
            best_prefix_state,
        }
    }

    #[inline]
    fn match_key<D: Domain>(&mut self, domain: &D, state: &D::State, mode: StateMatchMode) -> u64 {
        match mode {
            StateMatchMode::ExactState => domain.state_signature(state),
            StateMatchMode::ValidOpSet => {
                self.scratch.clear();
                domain.valid_operations(state, &mut self.scratch);
                gaplan_core::hash_one(&self.scratch)
            }
        }
    }

    /// Decode and score in one pass: the standard evaluation path.
    pub fn evaluate<D: Domain>(
        &mut self,
        domain: &D,
        start: &D::State,
        genome: &Genome,
        cfg: &crate::GaConfig,
    ) -> (Decoded<D::State>, Fitness) {
        let decoded = self.decode(domain, start, genome, cfg.truncate_at_goal, cfg.state_match);
        let goal = match cfg.goal_eval {
            GoalEval::FinalState => domain.goal_fitness(&decoded.final_state),
            GoalEval::BestPrefix => decoded.best_prefix_goal,
        };
        let fitness =
            Fitness::compute(goal, decoded.ops.len(), decoded.cost, cfg.weights, cfg.cost_fitness, cfg.max_len);
        (decoded, fitness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::strips::StripsBuilder;
    use gaplan_core::{Domain, Plan};

    /// line domain: positions 0..=4 as conditions; ops move right (always
    /// from i to i+1 when at i) and left; goal at 4.
    fn line() -> gaplan_core::strips::StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..5 {
            b.condition(&format!("at{i}")).unwrap();
        }
        for i in 0..4 {
            b.op(&format!("right{i}"), &[&format!("at{i}")], &[&format!("at{}", i + 1)], &[&format!("at{i}")], 1.0)
                .unwrap();
        }
        for i in 1..5 {
            b.op(&format!("left{i}"), &[&format!("at{i}")], &[&format!("at{}", i - 1)], &[&format!("at{i}")], 1.0)
                .unwrap();
        }
        b.init(&["at0"]).unwrap();
        b.goal(&["at4"]).unwrap();
        b.build().unwrap()
    }

    fn decode_simple(
        d: &gaplan_core::strips::StripsProblem,
        genes: Vec<f64>,
    ) -> Decoded<<gaplan_core::strips::StripsProblem as Domain>::State> {
        Decoder::new().decode(d, &d.initial_state(), &Genome::from_genes(genes), false, StateMatchMode::ExactState)
    }

    #[test]
    fn gene_to_index_partitions_unit_interval() {
        // paper example: 4 valid ops, 0.62 -> third op (index 2)
        assert_eq!(gene_to_index(0.62, 4), 2);
        assert_eq!(gene_to_index(0.0, 4), 0);
        assert_eq!(gene_to_index(0.249, 4), 0);
        assert_eq!(gene_to_index(0.25, 4), 1);
        assert_eq!(gene_to_index(0.999_999, 4), 3);
        assert_eq!(gene_to_index(0.5, 1), 0);
    }

    #[test]
    fn decoded_ops_are_always_valid() {
        let d = line();
        let dec = decode_simple(&d, vec![0.9, 0.1, 0.7, 0.99, 0.3, 0.5]);
        // replay as a *checked* plan: must never error
        let plan = Plan::from_ops(dec.ops.clone());
        plan.simulate(&d, &d.initial_state()).expect("decoded plan must be valid");
    }

    #[test]
    fn decode_reaches_goal_with_all_right_moves() {
        let d = line();
        // at position 0 only `right0` is valid -> any gene moves right;
        // at interior positions the valid list is [rightK, leftK]; gene < 0.5
        // picks right.
        let dec = decode_simple(&d, vec![0.1, 0.1, 0.1, 0.1]);
        assert!(dec.reached_goal);
        assert_eq!(d.goal_fitness(&dec.final_state), 1.0);
        assert_eq!(dec.ops.len(), 4);
        assert_eq!(dec.cost, 4.0);
    }

    #[test]
    fn truncate_at_goal_stops_decoding() {
        let d = line();
        let genes = vec![0.1, 0.1, 0.1, 0.1, 0.9, 0.9]; // reach goal then walk back
        let full = Decoder::new().decode(
            &d,
            &d.initial_state(),
            &Genome::from_genes(genes.clone()),
            false,
            StateMatchMode::ExactState,
        );
        assert_eq!(full.decoded_len, 6);
        assert!(!d.is_goal(&full.final_state)); // walked past the goal

        let trunc =
            Decoder::new().decode(&d, &d.initial_state(), &Genome::from_genes(genes), true, StateMatchMode::ExactState);
        assert_eq!(trunc.decoded_len, 4);
        assert!(d.is_goal(&trunc.final_state));
    }

    #[test]
    fn match_keys_align_with_states() {
        let d = line();
        let dec = decode_simple(&d, vec![0.1, 0.9]); // right, then left: back at 0
        assert_eq!(dec.match_keys.len(), 3);
        // state before gene 0 and state after gene 1 are both `at0`
        assert_eq!(dec.match_keys[0], dec.match_keys[2]);
        assert_ne!(dec.match_keys[0], dec.match_keys[1]);
    }

    #[test]
    fn dead_end_stops_decoding() {
        let mut b = StripsBuilder::new();
        b.condition("alive").unwrap();
        b.condition("dead").unwrap();
        b.op("die", &["alive"], &["dead"], &["alive"], 1.0).unwrap();
        b.init(&["alive"]).unwrap();
        b.goal(&["dead"]).unwrap();
        let d = b.build().unwrap();
        let dec = decode_simple(&d, vec![0.5, 0.5, 0.5]);
        assert_eq!(dec.decoded_len, 1); // only `die` decodable; then no valid ops
        assert!(dec.reached_goal);
    }

    #[test]
    fn identical_genomes_decode_identically() {
        let d = line();
        let genes = vec![0.3, 0.8, 0.44, 0.9];
        let a = decode_simple(&d, genes.clone());
        let b = decode_simple(&d, genes);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.match_keys, b.match_keys);
        assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn valid_op_set_match_mode_produces_keys() {
        let d = line();
        let dec = Decoder::new().decode(
            &d,
            &d.initial_state(),
            &Genome::from_genes(vec![0.1, 0.1, 0.9]),
            false,
            StateMatchMode::ValidOpSet,
        );
        // positions visited: 0, 1, 2, 1. Valid-op sets at position 1 (locus 1)
        // and position 1 again (final) coincide.
        assert_eq!(dec.match_keys[1], dec.match_keys[3]);
    }

    #[test]
    fn empty_genome_decodes_to_empty_plan() {
        let d = line();
        let dec = decode_simple(&d, vec![]);
        assert!(dec.ops.is_empty());
        assert_eq!(dec.match_keys.len(), 1);
        assert_eq!(dec.cost, 0.0);
        assert!(!dec.reached_goal);
    }
}
