//! Indirect genome decoding (paper §3.1).
//!
//! Each gene is a float `g ∈ [0, 1)`. If the state reached so far has `k`
//! valid operations, the gene maps to the operation at index `⌊g·k⌋` of the
//! domain's deterministic valid-operation ordering. The paper's example:
//! with four valid operations `o1..o4`, `[0, 0.25) → o1`, `[0.25, 0.5) → o2`
//! and so on. Decoding therefore *cannot* produce an invalid operation, and
//! the match fitness (Eq. 1) is identically 1.

use gaplan_core::{Domain, OpId, SuccessorCache};

use crate::config::{GoalEval, StateMatchMode};
use crate::genome::Genome;
use crate::Fitness;

/// Checkpoint of an individual's *unchanged prefix*, set by the breeding
/// operators so re-decoding can replay the prefix instead of re-deriving it.
///
/// Crossover copies genes `0..cut` of a parent verbatim into a child, and
/// replace-mutation leaves genes before the first flipped locus untouched.
/// Decoding is a pure function of `(start, genes)`, so the child's decode of
/// that prefix is *guaranteed* to equal the parent's: the same ops, the same
/// match keys, the same intermediate states. A `PrefixHint` carries the
/// parent's `(ops, match_keys)` for the shared prefix; [`Decoder::decode_with`]
/// replays it — re-applying ops and re-accumulating cost/goal fitness
/// bitwise-identically, but skipping every `valid_operations` enumeration and
/// match-key hash — and resumes ordinary decoding at the first changed locus.
///
/// Invariants (upheld by construction, checked in tests):
/// * `ops.len() == keys.len() == goals.len()`, one entry per replayed gene;
/// * the hint covers at most the donor's `decoded_len` (genes the donor never
///   decoded — past a goal truncation or dead end — are not replayable);
/// * a hint is only attached to a child sharing the donor's start state and
///   its first `len()` genes.
#[derive(Debug, Clone, Default)]
pub struct PrefixHint {
    ops: Vec<OpId>,
    keys: Vec<u64>,
    goals: Vec<f64>,
}

impl PrefixHint {
    /// Checkpoint of the first `prefix_genes` genes of a donor individual,
    /// given the donor's decode outputs (including its per-step goal memo,
    /// so replay never re-computes goal fitness). Capped at the donor's
    /// decoded length: genes the donor never decoded cannot be replayed.
    pub fn new(donor_ops: &[OpId], donor_keys: &[u64], donor_goals: &[f64], prefix_genes: usize) -> PrefixHint {
        let k = prefix_genes.min(donor_ops.len()).min(donor_goals.len());
        debug_assert!(donor_keys.len() > donor_ops.len(), "match_keys must have decoded_len + 1 entries");
        debug_assert_eq!(donor_goals.len(), donor_ops.len(), "step_goals must have one entry per op");
        PrefixHint { ops: donor_ops[..k].to_vec(), keys: donor_keys[..k].to_vec(), goals: donor_goals[..k].to_vec() }
    }

    /// Number of replayable genes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the hint replays nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Shrink the hint to `prefix_genes` genes — called when mutation flips
    /// a locus inside the previously unchanged prefix.
    pub fn truncate(&mut self, prefix_genes: usize) {
        self.ops.truncate(prefix_genes);
        self.keys.truncate(prefix_genes);
        self.goals.truncate(prefix_genes);
    }

    /// Borrow this hint as a [`PrefixRef`].
    pub fn as_ref(&self) -> PrefixRef<'_> {
        PrefixRef { ops: &self.ops, keys: &self.keys, goals: &self.goals }
    }
}

/// A borrowed [`PrefixHint`]: the same replayable `(ops, keys)` prefix, but
/// sliced straight out of the donor's `Evaluated` instead of cloned into
/// owned vectors. The arena-backed engine resolves each child's provenance
/// `(parent index, prefix length)` to a `PrefixRef` at evaluation time, so
/// breeding allocates nothing for hints.
#[derive(Debug, Clone, Copy)]
pub struct PrefixRef<'a> {
    ops: &'a [OpId],
    keys: &'a [u64],
    goals: &'a [f64],
}

impl<'a> PrefixRef<'a> {
    /// Borrow the first `prefix_genes` genes of a donor's decode outputs,
    /// capped at the donor's decoded length exactly like [`PrefixHint::new`].
    pub fn new(
        donor_ops: &'a [OpId],
        donor_keys: &'a [u64],
        donor_goals: &'a [f64],
        prefix_genes: usize,
    ) -> PrefixRef<'a> {
        let k = prefix_genes.min(donor_ops.len()).min(donor_goals.len());
        debug_assert!(donor_keys.len() > donor_ops.len(), "match_keys must have decoded_len + 1 entries");
        debug_assert_eq!(donor_goals.len(), donor_ops.len(), "step_goals must have one entry per op");
        PrefixRef { ops: &donor_ops[..k], keys: &donor_keys[..k], goals: &donor_goals[..k] }
    }

    /// Number of replayable genes.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the hint replays nothing.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The result of decoding a genome from a start state.
#[derive(Debug, Clone)]
pub struct Decoded<S> {
    /// The decoded operation sequence (all valid by construction).
    pub ops: Vec<OpId>,
    /// Per-locus match keys: `match_keys[i]` identifies the decode state
    /// *before* gene `i`; the final entry identifies the final state. Used
    /// by state-aware crossover (two loci match iff their keys are equal).
    pub match_keys: Vec<u64>,
    /// Goal fitness after each decoded op (`step_goals[i]` is the goal of
    /// the state reached by `ops[..=i]`). A memo for prefix replay: a child
    /// sharing this decode's prefix reads these values instead of
    /// re-computing (or re-hashing) goal fitness along the prefix.
    pub step_goals: Vec<f64>,
    /// The state after applying every decoded operation.
    pub final_state: S,
    /// Total cost of the decoded operations.
    pub cost: f64,
    /// Number of genes actually decoded. Less than the genome length when
    /// decoding stopped early (goal truncation or a dead-end state with no
    /// valid operations).
    pub decoded_len: usize,
    /// Whether some decoded prefix (or the final state) satisfies the goal.
    pub reached_goal: bool,
    /// Highest goal fitness over all states visited (including start and
    /// final), used by `GoalEval::BestPrefix`.
    pub best_prefix_goal: f64,
    /// Number of operations of the prefix achieving `best_prefix_goal`.
    pub best_prefix_at: usize,
    /// The state reached by that prefix (used for phase chaining under
    /// `GoalEval::BestPrefix`).
    pub best_prefix_state: S,
}

/// A reusable decoder. Holds the scratch buffer for valid-operation lists so
/// per-individual decoding allocates only the output vectors; rayon workers
/// each keep their own `Decoder` (`map_init`).
///
/// When decoding through a [`SuccessorCache`], the decoder additionally
/// keeps a private, lock-free L1 front cache of recent successor lists, so
/// the hot path (re-visiting a state this worker just saw) costs a signature
/// compare and a copy instead of a shard lock. L1 hits are credited back to
/// the shared cache's statistics; correctness is unaffected — the L1 stores
/// exactly what the shared cache returned.
#[derive(Debug, Default, Clone)]
pub struct Decoder {
    scratch: Vec<OpId>,
    /// Direct-mapped L1 front cache (see [`L1Entry`]).
    l1: Vec<Option<L1Entry>>,
    /// Identity of the shared cache the L1 mirrors (its address); a decoder
    /// handed a different cache drops its L1 rather than serve stale lists.
    l1_of: usize,
    /// L1 hits not yet credited to the shared cache's counters.
    l1_hits: u64,
    /// Recycled output buffers (see [`Decoder::recycle`]): capacity handed
    /// back by a caller done with a `Decoded`, refilled by the next decode
    /// instead of fresh allocations.
    spare_ops: Vec<OpId>,
    spare_keys: Vec<u64>,
    spare_goals: Vec<f64>,
    /// Signature of the state about to be probed, pre-computed by
    /// [`Decoder::goal_of`] so the decode loop hashes each state once, not
    /// twice (once for the goal lookup, once for the successor probe).
    pending_sig: Option<u64>,
}

/// One L1 slot: everything the decode loop needs about a state, keyed by its
/// signature. `goal` is filled lazily the first time the loop asks for the
/// state's goal fitness.
#[derive(Debug, Clone)]
struct L1Entry {
    sig: u64,
    key: u64,
    ops: Vec<OpId>,
    goal: Option<f64>,
}

/// Slots in a decoder's L1 front cache. Covers all 3^7 = 2187 Hanoi-7
/// states with room to spare; bigger state spaces degrade gracefully to the
/// shared cache.
const L1_SLOTS: usize = 4096;

/// Map one gene to an index into a `k`-element valid-operation list.
#[inline]
pub fn gene_to_index(gene: f64, k: usize) -> usize {
    debug_assert!(k > 0);
    // genes live in [0,1) so gene*k < k, but guard against accumulated
    // floating error at the boundary anyway.
    ((gene * k as f64) as usize).min(k - 1)
}

impl Decoder {
    /// A fresh decoder.
    pub fn new() -> Self {
        Decoder::default()
    }

    /// Hand a spent [`Decoded`] back to the decoder. Its output vectors
    /// become the scratch the next decode refills (cleared first), so a
    /// worker that decodes in a loop and discards or strips each result pays
    /// for its output allocations once, not per individual. Purely an
    /// allocation recycler — decode results are unaffected.
    pub fn recycle<S>(&mut self, decoded: Decoded<S>) {
        self.spare_ops = decoded.ops;
        self.spare_keys = decoded.match_keys;
        self.spare_goals = decoded.step_goals;
    }

    /// Decode `genome` against `domain`, starting from `start`.
    ///
    /// * `truncate_at_goal`: stop decoding at the first goal state reached
    ///   (see `GaConfig::truncate_at_goal` for the fidelity discussion).
    /// * `match_mode`: what the per-locus match keys identify (full state
    ///   signature, or the valid-op multiset of the state).
    pub fn decode<D: Domain>(
        &mut self,
        domain: &D,
        start: &D::State,
        genome: &Genome,
        truncate_at_goal: bool,
        match_mode: StateMatchMode,
    ) -> Decoded<D::State> {
        self.decode_with(domain, start, genome, truncate_at_goal, match_mode, None, None)
    }

    /// [`Decoder::decode`] with the evaluation-layer accelerations: an
    /// optional shared [`SuccessorCache`] (memoized `valid_operations` +
    /// match keys) and an optional [`PrefixHint`] (replay of the unchanged
    /// prefix). Both are pure optimizations — the returned [`Decoded`] is
    /// bitwise-identical to an uncached, hintless decode.
    #[allow(clippy::too_many_arguments)]
    pub fn decode_with<D: Domain>(
        &mut self,
        domain: &D,
        start: &D::State,
        genome: &Genome,
        truncate_at_goal: bool,
        match_mode: StateMatchMode,
        cache: Option<&SuccessorCache<D::State>>,
        hint: Option<&PrefixHint>,
    ) -> Decoded<D::State> {
        self.decode_ref(
            domain,
            start,
            genome.genes(),
            truncate_at_goal,
            match_mode,
            cache,
            hint.map(PrefixHint::as_ref),
        )
    }

    /// [`Decoder::decode_with`] over a raw gene slice and a borrowed hint —
    /// the arena-backed engine path. Bitwise-identical results.
    #[allow(clippy::too_many_arguments)]
    pub fn decode_ref<D: Domain>(
        &mut self,
        domain: &D,
        start: &D::State,
        genes: &[f64],
        truncate_at_goal: bool,
        match_mode: StateMatchMode,
        cache: Option<&SuccessorCache<D::State>>,
        hint: Option<PrefixRef<'_>>,
    ) -> Decoded<D::State> {
        self.pending_sig = None;
        if let Some(cache) = cache {
            self.ensure_l1(domain, cache);
        }
        let mut ops = std::mem::take(&mut self.spare_ops);
        ops.clear();
        ops.reserve(genes.len());
        let mut match_keys = std::mem::take(&mut self.spare_keys);
        match_keys.clear();
        match_keys.reserve(genes.len() + 1);
        let mut step_goals = std::mem::take(&mut self.spare_goals);
        step_goals.clear();
        step_goals.reserve(genes.len());
        let mut state = start.clone();
        // Ping-pong buffer: `apply_into` writes the successor here, then the
        // buffers swap. States are never allocated per step — domains that
        // override `apply_into` reuse the buffer's storage.
        let mut next = start.clone();
        let mut cost = 0.0;
        let mut best_prefix_goal =
            if cache.is_some() { self.goal_of(domain, &state) } else { domain.goal_fitness(&state) };
        let mut best_prefix_at = 0usize;
        let mut best_prefix_state = state.clone();
        let mut reached_goal = best_prefix_goal >= 1.0;

        // Replay the unchanged prefix: the donor decoded these exact genes
        // from this exact start, so its ops, match keys and step goals are
        // this decode's ops, match keys and step goals — copied over
        // verbatim. `valid_operations`, key hashing and goal evaluation are
        // all skipped; only the state evolution (one `apply_into` per op)
        // and the float cost accumulation are re-run, in the original order
        // (bitwise determinism). Dead ends cannot occur inside the prefix —
        // the donor decoded an op at each of these states, so none was a
        // dead end.
        if let Some(hint) = hint {
            // Pass 1, over the memoized goals only: how far the replay runs
            // (the donor may have decoded past a goal state this decode must
            // truncate at), the best-prefix argmax, and goal attainment —
            // all without touching any state.
            let avail = hint.ops.len().min(genes.len());
            let mut k = avail;
            if truncate_at_goal && reached_goal {
                k = 0;
            } else if truncate_at_goal {
                if let Some(i) = hint.goals[..avail].iter().position(|&g| g >= 1.0) {
                    k = i + 1;
                }
            }
            let goals = &hint.goals[..k];
            for (i, &g) in goals.iter().enumerate() {
                if g > best_prefix_goal {
                    best_prefix_goal = g;
                    best_prefix_at = i + 1;
                }
            }
            if !reached_goal && goals.iter().any(|&g| g >= 1.0) {
                reached_goal = true;
            }
            // Pass 2: evolve the state through the replayed ops, capturing
            // the best-prefix state as it goes by.
            for (i, &op) in hint.ops[..k].iter().enumerate() {
                cost += domain.op_cost(op);
                domain.apply_into(&state, op, &mut next);
                std::mem::swap(&mut state, &mut next);
                debug_assert_eq!(
                    hint.goals[i].to_bits(),
                    domain.goal_fitness(&state).to_bits(),
                    "stale memoized step goal"
                );
                if i + 1 == best_prefix_at {
                    best_prefix_state.clone_from(&state);
                }
            }
            // Pass 3: bulk-copy the donor's outputs for the replayed genes.
            ops.extend_from_slice(&hint.ops[..k]);
            match_keys.extend_from_slice(&hint.keys[..k]);
            step_goals.extend_from_slice(goals);
            // The goal probe before the replay stashed the *start* state's
            // signature for the next pick; if the replay moved the state,
            // that memo is stale and the next probe must re-hash.
            if k > 0 {
                self.pending_sig = None;
            }
        }

        for &gene in &genes[ops.len()..] {
            if truncate_at_goal && reached_goal {
                break;
            }
            // One cache probe yields the valid-op list *and* this state's
            // match key (the signature it was keyed by, or the memoized
            // valid-op-set hash); the uncached path enumerates and hashes.
            // `None` for the op means a dead-end state: the paper's domains
            // always have valid operations, but STRIPS/grid domains may not.
            // Remaining genes are ignored.
            let (key, op) = match cache {
                Some(cache) => {
                    let (sig, ops_key, op) = self.pick(domain, &state, cache, gene);
                    let key = match match_mode {
                        StateMatchMode::ExactState => sig,
                        StateMatchMode::ValidOpSet => ops_key,
                    };
                    (key, op)
                }
                None => {
                    self.scratch.clear();
                    domain.valid_operations(&state, &mut self.scratch);
                    if self.scratch.is_empty() {
                        break;
                    }
                    let key = self.match_key(domain, &state, match_mode);
                    (key, Some(self.scratch[gene_to_index(gene, self.scratch.len())]))
                }
            };
            let Some(op) = op else {
                break;
            };
            match_keys.push(key);
            cost += domain.op_cost(op);
            domain.apply_into(&state, op, &mut next);
            std::mem::swap(&mut state, &mut next);
            ops.push(op);
            let g = if cache.is_some() { self.goal_of(domain, &state) } else { domain.goal_fitness(&state) };
            step_goals.push(g);
            if g > best_prefix_goal {
                best_prefix_goal = g;
                best_prefix_at = ops.len();
                best_prefix_state.clone_from(&state);
            }
            if !reached_goal && g >= 1.0 {
                reached_goal = true;
            }
        }
        match_keys.push(match cache {
            Some(cache) => {
                let (sig, ops_key) = self.probe(domain, &state, cache);
                match match_mode {
                    StateMatchMode::ExactState => sig,
                    StateMatchMode::ValidOpSet => ops_key,
                }
            }
            None => self.match_key(domain, &state, match_mode),
        });
        if let Some(cache) = cache {
            if self.l1_hits > 0 {
                cache.credit_hits(std::mem::take(&mut self.l1_hits));
            }
        }

        Decoded {
            decoded_len: ops.len(),
            ops,
            match_keys,
            step_goals,
            final_state: state,
            cost,
            reached_goal,
            best_prefix_goal,
            best_prefix_at,
            best_prefix_state,
        }
    }

    /// (Re)arm the L1 for a `(domain, cache)` pairing, identified by the
    /// pair of addresses. A decoder that switches to a different cache or
    /// domain drops its L1 instead of serving lists memoized for another
    /// world. (Address identity is a heuristic: a freed-and-reallocated
    /// cache at the same address with the same state type could alias, but
    /// every in-tree caller builds a fresh `Decoder` per evaluation batch.)
    fn ensure_l1<D: Domain>(&mut self, domain: &D, cache: &SuccessorCache<D::State>) {
        let id = (cache as *const SuccessorCache<D::State> as usize) ^ (domain as *const D as *const () as usize);
        if self.l1_of != id || self.l1.is_empty() {
            self.l1.clear();
            self.l1.resize_with(L1_SLOTS, || None);
            self.l1_of = id;
            self.l1_hits = 0;
        }
    }

    /// Probe the L1 front cache for the state's match keys, falling back to
    /// the shared cache. Returns `(state_signature, memoized ValidOpSet
    /// key)`. On an L1 hit nothing is copied; on a miss the shared cache
    /// fills `self.scratch` as a side effect.
    fn probe<D: Domain>(&mut self, domain: &D, state: &D::State, cache: &SuccessorCache<D::State>) -> (u64, u64) {
        let sig = match self.pending_sig.take() {
            Some(sig) => sig,
            None => domain.state_signature(state),
        };
        debug_assert_eq!(sig, domain.state_signature(state), "stale pending signature");
        // Low bits index the L1: injective signature packings (hanoi's
        // base-3 fold) produce *dense* sigs, which low bits spread perfectly
        // and high bits collapse.
        let slot = sig as usize % L1_SLOTS;
        if let Some(e) = &self.l1[slot] {
            if e.sig == sig {
                self.l1_hits += 1;
                return (sig, e.key);
            }
        }
        let key = cache.successors(domain, state, sig, &mut self.scratch);
        self.l1[slot] = Some(L1Entry { sig, key, ops: self.scratch.clone(), goal: None });
        (sig, key)
    }

    /// [`Decoder::probe`] fused with the gene→op pick: on an L1 hit the op
    /// is read straight out of the resident entry — no copy of the valid-op
    /// list into scratch (the former per-step cost of the cached decode
    /// loop). Returns `(state_signature, ValidOpSet key, op)`; `op` is
    /// `None` at a dead-end state.
    fn pick<D: Domain>(
        &mut self,
        domain: &D,
        state: &D::State,
        cache: &SuccessorCache<D::State>,
        gene: f64,
    ) -> (u64, u64, Option<OpId>) {
        let sig = match self.pending_sig.take() {
            Some(sig) => sig,
            None => domain.state_signature(state),
        };
        debug_assert_eq!(sig, domain.state_signature(state), "stale pending signature");
        let slot = sig as usize % L1_SLOTS;
        if let Some(e) = &self.l1[slot] {
            if e.sig == sig {
                self.l1_hits += 1;
                let op = if e.ops.is_empty() { None } else { Some(e.ops[gene_to_index(gene, e.ops.len())]) };
                return (sig, e.key, op);
            }
        }
        let key = cache.successors(domain, state, sig, &mut self.scratch);
        let op =
            if self.scratch.is_empty() { None } else { Some(self.scratch[gene_to_index(gene, self.scratch.len())]) };
        self.l1[slot] = Some(L1Entry { sig, key, ops: self.scratch.clone(), goal: None });
        (sig, key, op)
    }

    /// Goal fitness of `state`, memoized in the L1 alongside the state's
    /// successor list (only called when a cache is armed). Also stashes the
    /// state's signature: the decode loop always probes this same state next
    /// (either for its successors or for the trailing match key), so the
    /// probe can skip re-hashing it.
    fn goal_of<D: Domain>(&mut self, domain: &D, state: &D::State) -> f64 {
        let sig = domain.state_signature(state);
        self.pending_sig = Some(sig);
        let slot = sig as usize % L1_SLOTS;
        if let Some(e) = &mut self.l1[slot] {
            if e.sig == sig {
                if let Some(g) = e.goal {
                    debug_assert_eq!(g.to_bits(), domain.goal_fitness(state).to_bits(), "stale memoized goal");
                    return g;
                }
                let g = domain.goal_fitness(state);
                e.goal = Some(g);
                return g;
            }
        }
        domain.goal_fitness(state)
    }

    #[inline]
    fn match_key<D: Domain>(&mut self, domain: &D, state: &D::State, mode: StateMatchMode) -> u64 {
        match mode {
            StateMatchMode::ExactState => domain.state_signature(state),
            StateMatchMode::ValidOpSet => {
                self.scratch.clear();
                domain.valid_operations(state, &mut self.scratch);
                gaplan_core::hash_one(&self.scratch)
            }
        }
    }

    /// Decode and score in one pass: the standard evaluation path.
    pub fn evaluate<D: Domain>(
        &mut self,
        domain: &D,
        start: &D::State,
        genome: &Genome,
        cfg: &crate::GaConfig,
    ) -> (Decoded<D::State>, Fitness) {
        self.evaluate_with(domain, start, genome, cfg, None, None)
    }

    /// [`Decoder::evaluate`] through the shared evaluation layer (optional
    /// successor cache and prefix hint); same results, fewer
    /// `valid_operations` calls.
    pub fn evaluate_with<D: Domain>(
        &mut self,
        domain: &D,
        start: &D::State,
        genome: &Genome,
        cfg: &crate::GaConfig,
        cache: Option<&SuccessorCache<D::State>>,
        hint: Option<&PrefixHint>,
    ) -> (Decoded<D::State>, Fitness) {
        let decoded = self.decode_with(domain, start, genome, cfg.truncate_at_goal, cfg.state_match, cache, hint);
        let goal = match cfg.goal_eval {
            GoalEval::FinalState => domain.goal_fitness(&decoded.final_state),
            GoalEval::BestPrefix => decoded.best_prefix_goal,
        };
        let fitness =
            Fitness::compute(goal, decoded.ops.len(), decoded.cost, cfg.weights, cfg.cost_fitness, cfg.max_len);
        (decoded, fitness)
    }

    /// [`Decoder::evaluate_with`] over a raw gene slice and a borrowed hint —
    /// the arena-backed evaluation path. Bitwise-identical results.
    pub fn evaluate_ref<D: Domain>(
        &mut self,
        domain: &D,
        start: &D::State,
        genes: &[f64],
        cfg: &crate::GaConfig,
        cache: Option<&SuccessorCache<D::State>>,
        hint: Option<PrefixRef<'_>>,
    ) -> (Decoded<D::State>, Fitness) {
        let decoded = self.decode_ref(domain, start, genes, cfg.truncate_at_goal, cfg.state_match, cache, hint);
        let goal = match cfg.goal_eval {
            GoalEval::FinalState => domain.goal_fitness(&decoded.final_state),
            GoalEval::BestPrefix => decoded.best_prefix_goal,
        };
        let fitness =
            Fitness::compute(goal, decoded.ops.len(), decoded.cost, cfg.weights, cfg.cost_fitness, cfg.max_len);
        (decoded, fitness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gaplan_core::strips::StripsBuilder;
    use gaplan_core::{Domain, Plan};

    /// line domain: positions 0..=4 as conditions; ops move right (always
    /// from i to i+1 when at i) and left; goal at 4.
    fn line() -> gaplan_core::strips::StripsProblem {
        let mut b = StripsBuilder::new();
        for i in 0..5 {
            b.condition(&format!("at{i}")).unwrap();
        }
        for i in 0..4 {
            b.op(&format!("right{i}"), &[&format!("at{i}")], &[&format!("at{}", i + 1)], &[&format!("at{i}")], 1.0)
                .unwrap();
        }
        for i in 1..5 {
            b.op(&format!("left{i}"), &[&format!("at{i}")], &[&format!("at{}", i - 1)], &[&format!("at{i}")], 1.0)
                .unwrap();
        }
        b.init(&["at0"]).unwrap();
        b.goal(&["at4"]).unwrap();
        b.build().unwrap()
    }

    fn decode_simple(
        d: &gaplan_core::strips::StripsProblem,
        genes: Vec<f64>,
    ) -> Decoded<<gaplan_core::strips::StripsProblem as Domain>::State> {
        Decoder::new().decode(d, &d.initial_state(), &Genome::from_genes(genes), false, StateMatchMode::ExactState)
    }

    #[test]
    fn gene_to_index_partitions_unit_interval() {
        // paper example: 4 valid ops, 0.62 -> third op (index 2)
        assert_eq!(gene_to_index(0.62, 4), 2);
        assert_eq!(gene_to_index(0.0, 4), 0);
        assert_eq!(gene_to_index(0.249, 4), 0);
        assert_eq!(gene_to_index(0.25, 4), 1);
        assert_eq!(gene_to_index(0.999_999, 4), 3);
        assert_eq!(gene_to_index(0.5, 1), 0);
    }

    #[test]
    fn decoded_ops_are_always_valid() {
        let d = line();
        let dec = decode_simple(&d, vec![0.9, 0.1, 0.7, 0.99, 0.3, 0.5]);
        // replay as a *checked* plan: must never error
        let plan = Plan::from_ops(dec.ops.clone());
        plan.simulate(&d, &d.initial_state()).expect("decoded plan must be valid");
    }

    #[test]
    fn decode_reaches_goal_with_all_right_moves() {
        let d = line();
        // at position 0 only `right0` is valid -> any gene moves right;
        // at interior positions the valid list is [rightK, leftK]; gene < 0.5
        // picks right.
        let dec = decode_simple(&d, vec![0.1, 0.1, 0.1, 0.1]);
        assert!(dec.reached_goal);
        assert_eq!(d.goal_fitness(&dec.final_state), 1.0);
        assert_eq!(dec.ops.len(), 4);
        assert_eq!(dec.cost, 4.0);
    }

    #[test]
    fn truncate_at_goal_stops_decoding() {
        let d = line();
        let genes = vec![0.1, 0.1, 0.1, 0.1, 0.9, 0.9]; // reach goal then walk back
        let full = Decoder::new().decode(
            &d,
            &d.initial_state(),
            &Genome::from_genes(genes.clone()),
            false,
            StateMatchMode::ExactState,
        );
        assert_eq!(full.decoded_len, 6);
        assert!(!d.is_goal(&full.final_state)); // walked past the goal

        let trunc =
            Decoder::new().decode(&d, &d.initial_state(), &Genome::from_genes(genes), true, StateMatchMode::ExactState);
        assert_eq!(trunc.decoded_len, 4);
        assert!(d.is_goal(&trunc.final_state));
    }

    #[test]
    fn match_keys_align_with_states() {
        let d = line();
        let dec = decode_simple(&d, vec![0.1, 0.9]); // right, then left: back at 0
        assert_eq!(dec.match_keys.len(), 3);
        // state before gene 0 and state after gene 1 are both `at0`
        assert_eq!(dec.match_keys[0], dec.match_keys[2]);
        assert_ne!(dec.match_keys[0], dec.match_keys[1]);
    }

    #[test]
    fn dead_end_stops_decoding() {
        let mut b = StripsBuilder::new();
        b.condition("alive").unwrap();
        b.condition("dead").unwrap();
        b.op("die", &["alive"], &["dead"], &["alive"], 1.0).unwrap();
        b.init(&["alive"]).unwrap();
        b.goal(&["dead"]).unwrap();
        let d = b.build().unwrap();
        let dec = decode_simple(&d, vec![0.5, 0.5, 0.5]);
        assert_eq!(dec.decoded_len, 1); // only `die` decodable; then no valid ops
        assert!(dec.reached_goal);
    }

    #[test]
    fn identical_genomes_decode_identically() {
        let d = line();
        let genes = vec![0.3, 0.8, 0.44, 0.9];
        let a = decode_simple(&d, genes.clone());
        let b = decode_simple(&d, genes);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.match_keys, b.match_keys);
        assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn valid_op_set_match_mode_produces_keys() {
        let d = line();
        let dec = Decoder::new().decode(
            &d,
            &d.initial_state(),
            &Genome::from_genes(vec![0.1, 0.1, 0.9]),
            false,
            StateMatchMode::ValidOpSet,
        );
        // positions visited: 0, 1, 2, 1. Valid-op sets at position 1 (locus 1)
        // and position 1 again (final) coincide.
        assert_eq!(dec.match_keys[1], dec.match_keys[3]);
    }

    #[test]
    fn empty_genome_decodes_to_empty_plan() {
        let d = line();
        let dec = decode_simple(&d, vec![]);
        assert!(dec.ops.is_empty());
        assert_eq!(dec.match_keys.len(), 1);
        assert_eq!(dec.cost, 0.0);
        assert!(!dec.reached_goal);
    }

    /// Bit-for-bit comparison of two decodes, every field.
    fn assert_decoded_eq<S: PartialEq + std::fmt::Debug>(a: &Decoded<S>, b: &Decoded<S>, what: &str) {
        assert_eq!(a.ops, b.ops, "{what}: ops");
        assert_eq!(a.match_keys, b.match_keys, "{what}: match_keys");
        assert_eq!(a.final_state, b.final_state, "{what}: final_state");
        assert!(a.cost.to_bits() == b.cost.to_bits(), "{what}: cost {} vs {}", a.cost, b.cost);
        assert_eq!(a.decoded_len, b.decoded_len, "{what}: decoded_len");
        assert_eq!(a.reached_goal, b.reached_goal, "{what}: reached_goal");
        assert!(
            a.best_prefix_goal.to_bits() == b.best_prefix_goal.to_bits(),
            "{what}: best_prefix_goal {} vs {}",
            a.best_prefix_goal,
            b.best_prefix_goal
        );
        assert_eq!(a.best_prefix_at, b.best_prefix_at, "{what}: best_prefix_at");
        assert_eq!(a.best_prefix_state, b.best_prefix_state, "{what}: best_prefix_state");
    }

    #[test]
    fn cached_decode_is_bitwise_identical_to_uncached() {
        let d = line();
        let cache = SuccessorCache::new(256);
        let genomes =
            [vec![0.9, 0.1, 0.7, 0.99, 0.3, 0.5], vec![0.1, 0.1, 0.1, 0.1], vec![0.1, 0.9, 0.1, 0.9, 0.44], vec![]];
        for (mode, truncate) in [
            (StateMatchMode::ExactState, false),
            (StateMatchMode::ExactState, true),
            (StateMatchMode::ValidOpSet, false),
            (StateMatchMode::ValidOpSet, true),
        ] {
            for genes in &genomes {
                let g = Genome::from_genes(genes.clone());
                let start = d.initial_state();
                let plain = Decoder::new().decode(&d, &start, &g, truncate, mode);
                // twice through the cache: once cold, once warm
                let cold = Decoder::new().decode_with(&d, &start, &g, truncate, mode, Some(&cache), None);
                let warm = Decoder::new().decode_with(&d, &start, &g, truncate, mode, Some(&cache), None);
                assert_decoded_eq(&plain, &cold, "cold cache");
                assert_decoded_eq(&plain, &warm, "warm cache");
            }
        }
        assert!(cache.stats().hits > 0, "repeat decodes must hit the cache");
    }

    #[test]
    fn prefix_hint_replay_is_bitwise_identical() {
        let d = line();
        let donor_genes = vec![0.1, 0.1, 0.9, 0.3, 0.2, 0.8];
        let donor = Decoder::new().decode(
            &d,
            &d.initial_state(),
            &Genome::from_genes(donor_genes.clone()),
            false,
            StateMatchMode::ValidOpSet,
        );
        // A "child" sharing the first `cut` genes with the donor, for every
        // possible cut (including 0 and the full length).
        for cut in 0..=donor_genes.len() {
            let mut child_genes = donor_genes[..cut].to_vec();
            child_genes.extend([0.7, 0.05, 0.6]);
            let g = Genome::from_genes(child_genes);
            let hint = PrefixHint::new(&donor.ops, &donor.match_keys, &donor.step_goals, cut);
            assert!(hint.len() <= cut);
            let plain = Decoder::new().decode(&d, &d.initial_state(), &g, false, StateMatchMode::ValidOpSet);
            let hinted = Decoder::new().decode_with(
                &d,
                &d.initial_state(),
                &g,
                false,
                StateMatchMode::ValidOpSet,
                None,
                Some(&hint),
            );
            assert_decoded_eq(&plain, &hinted, &format!("hint cut {cut}"));
        }
    }

    #[test]
    fn prefix_hint_respects_goal_truncation() {
        let d = line();
        // Donor reaches the goal at gene 4 under truncation; its decoded_len
        // is 4 even though the genome is longer.
        let donor_genes = vec![0.1, 0.1, 0.1, 0.1, 0.9, 0.9];
        let donor = Decoder::new().decode(
            &d,
            &d.initial_state(),
            &Genome::from_genes(donor_genes.clone()),
            true,
            StateMatchMode::ExactState,
        );
        assert_eq!(donor.decoded_len, 4);
        // A hint "covering" 6 genes is capped at the donor's 4 decoded ops;
        // replaying it against the same genome reproduces the truncation.
        let hint = PrefixHint::new(&donor.ops, &donor.match_keys, &donor.step_goals, 6);
        assert_eq!(hint.len(), 4);
        let replayed = Decoder::new().decode_with(
            &d,
            &d.initial_state(),
            &Genome::from_genes(donor_genes),
            true,
            StateMatchMode::ExactState,
            None,
            Some(&hint),
        );
        assert_decoded_eq(&donor, &replayed, "goal-truncated replay");
    }

    #[test]
    fn prefix_hint_truncate_shrinks_replay() {
        let d = line();
        let genes = vec![0.1, 0.1, 0.9, 0.3];
        let donor = Decoder::new().decode(
            &d,
            &d.initial_state(),
            &Genome::from_genes(genes.clone()),
            false,
            StateMatchMode::ExactState,
        );
        let mut hint = PrefixHint::new(&donor.ops, &donor.match_keys, &donor.step_goals, 4);
        hint.truncate(2);
        assert_eq!(hint.len(), 2);
        assert!(!hint.is_empty());
        let replayed = Decoder::new().decode_with(
            &d,
            &d.initial_state(),
            &Genome::from_genes(genes),
            false,
            StateMatchMode::ExactState,
            None,
            Some(&hint),
        );
        assert_decoded_eq(&donor, &replayed, "truncated hint");
    }

    #[test]
    fn cache_and_hint_compose() {
        let d = line();
        let cache = SuccessorCache::new(256);
        let donor_genes = vec![0.1, 0.9, 0.1, 0.1, 0.1];
        let donor = Decoder::new().decode(
            &d,
            &d.initial_state(),
            &Genome::from_genes(donor_genes.clone()),
            false,
            StateMatchMode::ValidOpSet,
        );
        let mut child_genes = donor_genes[..3].to_vec();
        child_genes.extend([0.99, 0.0]);
        let g = Genome::from_genes(child_genes);
        let hint = PrefixHint::new(&donor.ops, &donor.match_keys, &donor.step_goals, 3);
        let plain = Decoder::new().decode(&d, &d.initial_state(), &g, false, StateMatchMode::ValidOpSet);
        let both = Decoder::new().decode_with(
            &d,
            &d.initial_state(),
            &g,
            false,
            StateMatchMode::ValidOpSet,
            Some(&cache),
            Some(&hint),
        );
        assert_decoded_eq(&plain, &both, "cache + hint");
    }
}
