//! Fitness evaluation (paper §3.3, Eq. 1–4).
//!
//! With indirect encoding the match fitness is identically 1 (every decoded
//! operation is valid), so — exactly as the paper does — the total drops the
//! match term and combines only goal and cost fitness:
//! `F = w_goal·F_goal + w_cost·F_cost` (Eq. 4).

use serde::{Deserialize, Serialize};

use crate::config::{CostFitnessMode, FitnessWeights};

/// The three figures of merit plus the weighted total.
///
/// `max_len` is the normalizer for [`CostFitnessMode::LinearLength`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fitness {
    /// `F_match` (Eq. 1). Always 1.0 under indirect encoding; kept so
    /// reports can show the invariant explicitly.
    pub match_: f64,
    /// `F_goal`: domain-specific goal proximity in `[0, 1]`.
    pub goal: f64,
    /// `F_cost` (Eq. 2 or the general-cost analogue).
    pub cost: f64,
    /// `F = w_goal·F_goal + w_cost·F_cost` (Eq. 4).
    pub total: f64,
}

impl Fitness {
    /// Compute fitness for a decoded plan of `len` operations with total
    /// operation cost `cost_sum` whose final state has goal fitness `goal`.
    /// `max_len` is the `MaxLen` bound used by the linear cost fitness.
    pub fn compute(
        goal: f64,
        len: usize,
        cost_sum: f64,
        w: FitnessWeights,
        mode: CostFitnessMode,
        max_len: usize,
    ) -> Fitness {
        let cost = match mode {
            CostFitnessMode::LinearLength => (1.0 - len as f64 / max_len.max(1) as f64).clamp(0.0, 1.0),
            // reciprocal reading of Eq. 2: 1 / number of operations
            CostFitnessMode::InverseLength => {
                if len == 0 {
                    1.0
                } else {
                    1.0 / len as f64
                }
            }
            CostFitnessMode::InverseCost => 1.0 / (1.0 + cost_sum.max(0.0)),
            CostFitnessMode::Zero => 0.0,
        };
        Fitness { match_: 1.0, goal, cost, total: w.goal * goal + w.cost * cost }
    }

    /// Is this a valid solution in the paper's sense (final state satisfies
    /// the goal)? Uses a tolerance because `F_goal` may be computed from
    /// floating-point ratios.
    pub fn solves(&self) -> bool {
        self.goal >= 1.0 - 1e-12
    }
}

impl Default for Fitness {
    fn default() -> Self {
        Fitness { match_: 1.0, goal: 0.0, cost: 0.0, total: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: FitnessWeights = FitnessWeights { goal: 0.9, cost: 0.1 };

    #[test]
    fn linear_length_mode() {
        let f = Fitness::compute(0.5, 29, 29.0, W, CostFitnessMode::LinearLength, 145);
        assert!((f.cost - (1.0 - 29.0 / 145.0)).abs() < 1e-12);
        // empty plan bonus is bounded: it cannot beat a one-move goal gain
        let empty = Fitness::compute(0.875, 0, 0.0, W, CostFitnessMode::LinearLength, 145);
        let progress = Fitness::compute(0.9375, 20, 20.0, W, CostFitnessMode::LinearLength, 145);
        assert!(progress.total > empty.total, "no empty-plan attractor");
        // overflow past max_len clamps to zero
        let over = Fitness::compute(0.5, 200, 200.0, W, CostFitnessMode::LinearLength, 145);
        assert_eq!(over.cost, 0.0);
    }

    #[test]
    fn inverse_length_matches_reciprocal_eq2() {
        let f = Fitness::compute(0.5, 10, 10.0, W, CostFitnessMode::InverseLength, 100);
        assert!((f.cost - 0.1).abs() < 1e-12);
        assert!((f.total - (0.9 * 0.5 + 0.1 * 0.1)).abs() < 1e-12);
        assert_eq!(f.match_, 1.0);
    }

    #[test]
    fn empty_plan_cost_fitness_is_one() {
        let f = Fitness::compute(0.0, 0, 0.0, W, CostFitnessMode::InverseLength, 100);
        assert_eq!(f.cost, 1.0);
        assert!((f.total - 0.1).abs() < 1e-12);
    }

    #[test]
    fn inverse_cost_mode_handles_general_costs() {
        let f = Fitness::compute(1.0, 3, 9.0, W, CostFitnessMode::InverseCost, 100);
        assert!((f.cost - 0.1).abs() < 1e-12);
        assert!(f.solves());
    }

    #[test]
    fn zero_mode_ignores_cost() {
        let f = Fitness::compute(0.7, 100, 100.0, W, CostFitnessMode::Zero, 100);
        assert_eq!(f.cost, 0.0);
        assert!((f.total - 0.63).abs() < 1e-12);
    }

    #[test]
    fn shorter_solutions_score_higher() {
        let a = Fitness::compute(1.0, 31, 31.0, W, CostFitnessMode::LinearLength, 155);
        let b = Fitness::compute(1.0, 70, 70.0, W, CostFitnessMode::LinearLength, 155);
        assert!(a.total > b.total);
    }

    #[test]
    fn goal_dominates_cost_with_paper_weights() {
        // an unsolved but short plan must not outrank a solved long one
        let short_bad = Fitness::compute(0.6, 1, 1.0, W, CostFitnessMode::LinearLength, 155);
        let long_good = Fitness::compute(1.0, 1000, 1000.0, W, CostFitnessMode::LinearLength, 155);
        assert!(long_good.total > short_bad.total);
    }

    #[test]
    fn solves_requires_goal_fitness_one() {
        assert!(!Fitness::compute(0.999, 1, 1.0, W, CostFitnessMode::InverseLength, 10).solves());
        assert!(Fitness::compute(1.0, 1, 1.0, W, CostFitnessMode::InverseLength, 10).solves());
    }
}
