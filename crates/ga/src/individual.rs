//! Evaluated individuals: genome + decode result + fitness.

use gaplan_core::OpId;

use crate::decode::Decoded;
use crate::fitness::Fitness;
use crate::genome::Genome;

/// An individual together with everything evaluation produced. Keeping the
/// decode metadata (ops, match keys, final state) around is what lets
/// state-aware crossover run without re-decoding parents.
#[derive(Debug, Clone)]
pub struct Evaluated<S> {
    /// The genetic code.
    pub genome: Genome,
    /// Decoded operations (all valid by construction of the encoding).
    pub ops: Vec<OpId>,
    /// Per-locus state match keys (`decoded_len + 1` entries).
    pub match_keys: Vec<u64>,
    /// Goal fitness after each decoded op (`decoded_len` entries), the
    /// donor-side memo consumed by prefix replay.
    pub step_goals: Vec<f64>,
    /// State after executing the decoded plan.
    pub final_state: S,
    /// Number of genes decoded (≤ genome length).
    pub decoded_len: usize,
    /// Length of the prefix achieving the best goal fitness along the plan.
    pub best_prefix_at: usize,
    /// The state that prefix reaches.
    pub best_prefix_state: S,
    /// Fitness of the individual.
    pub fitness: Fitness,
}

impl<S> Evaluated<S> {
    /// Assemble from decode output and fitness.
    pub fn new(genome: Genome, decoded: Decoded<S>, fitness: Fitness) -> Self {
        Evaluated {
            genome,
            ops: decoded.ops,
            match_keys: decoded.match_keys,
            step_goals: decoded.step_goals,
            final_state: decoded.final_state,
            decoded_len: decoded.decoded_len,
            best_prefix_at: decoded.best_prefix_at,
            best_prefix_state: decoded.best_prefix_state,
            fitness,
        }
    }

    /// Does this individual encode a valid solution (paper: final state
    /// satisfies the goal)?
    pub fn solves(&self) -> bool {
        self.fitness.solves()
    }

    /// Length of the decoded plan.
    pub fn plan_len(&self) -> usize {
        self.ops.len()
    }
}
